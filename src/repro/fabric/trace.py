"""Communication-trace analysis and ASCII timeline rendering.

With ``ShmemCtx(..., trace_comm=True)`` the metrics layer records every
one-sided operation (:class:`~repro.fabric.metrics.OpRecord`).  This
module turns that trace into things a human can read:

* per-PE operation lanes rendered as an ASCII timeline;
* inter-arrival and per-kind latency summaries;
* a victim-pressure table (who got stolen from, how often).

Used by the examples and handy when debugging protocol interleavings.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass

from .metrics import OpRecord

#: One-character glyph per operation kind for timeline lanes.
GLYPHS = {
    "put": "P",
    "put_nb": "p",
    "put_signal": "s",
    "get": "G",
    "amo_fetch_add": "A",
    "amo_add_nb": "a",
    "amo_swap": "S",
    "amo_cas": "C",
    "amo_fetch": "f",
}


@dataclass(frozen=True)
class TraceSummary:
    """Aggregate view of one communication trace."""

    duration: float
    ops_by_kind: dict[str, int]
    ops_by_initiator: dict[int, int]
    ops_by_target: dict[int, int]
    bytes_total: int

    @property
    def total_ops(self) -> int:
        """All operations in the trace."""
        return sum(self.ops_by_kind.values())

    def busiest_target(self) -> int | None:
        """The PE that received the most one-sided traffic."""
        if not self.ops_by_target:
            return None
        return max(self.ops_by_target, key=self.ops_by_target.get)


def summarize(trace: list[OpRecord]) -> TraceSummary:
    """Collapse a trace into counts per kind / initiator / target."""
    by_kind: Counter = Counter()
    by_init: Counter = Counter()
    by_target: Counter = Counter()
    nbytes = 0
    t_min = t_max = 0.0
    for i, rec in enumerate(trace):
        by_kind[rec.kind] += 1
        by_init[rec.initiator] += 1
        by_target[rec.target] += 1
        nbytes += rec.nbytes
        if i == 0:
            t_min = t_max = rec.time
        else:
            t_min = min(t_min, rec.time)
            t_max = max(t_max, rec.time)
    return TraceSummary(
        duration=t_max - t_min,
        ops_by_kind=dict(by_kind),
        ops_by_initiator=dict(by_init),
        ops_by_target=dict(by_target),
        bytes_total=nbytes,
    )


def render_timeline(
    trace: list[OpRecord], npes: int, width: int = 72
) -> str:
    """ASCII timeline: one lane per initiating PE, one glyph per op.

    Time is binned linearly across ``width`` columns; when several ops of
    one PE fall into a bin the *last* one's glyph wins (the lane shows
    activity shape, not exact counts).
    """
    if not trace:
        return "(empty trace)\n"
    t0 = min(r.time for r in trace)
    t1 = max(r.time for r in trace)
    span = (t1 - t0) or 1.0
    lanes = [[" "] * width for _ in range(npes)]
    for rec in trace:
        col = min(width - 1, int((rec.time - t0) / span * width))
        lanes[rec.initiator][col] = GLYPHS.get(rec.kind, "?")
    lines = [
        f"pe{pe:<3}|{''.join(lane)}|" for pe, lane in enumerate(lanes)
    ]
    legend = " ".join(f"{g}={k}" for k, g in GLYPHS.items())
    header = f"t0={t0:.3e}s  span={span:.3e}s"
    return "\n".join([header] + lines + [legend]) + "\n"


def steal_pressure(trace: list[OpRecord]) -> dict[int, int]:
    """Claiming-operation count per target PE (who got hammered).

    Counts the operations that open a steal attempt: SWS claiming
    fetch-adds and SDC lock swaps.
    """
    pressure: Counter = Counter()
    for rec in trace:
        if rec.kind in ("amo_fetch_add", "amo_swap"):
            pressure[rec.target] += 1
    return dict(pressure)


def to_chrome_trace(trace: list[OpRecord], time_unit: float = 1e-6) -> list[dict]:
    """Convert a trace to Chrome trace-event JSON objects.

    Load the result of ``json.dump`` into ``chrome://tracing`` or
    Perfetto: one instant event per op, initiator PEs as "processes",
    the target PE recorded in args.  ``time_unit`` scales virtual
    seconds into the format's microsecond timestamps (default: 1 sim
    second = 1e6 trace us, i.e. timestamps in real microseconds).
    """
    events = []
    for r in trace:
        events.append(
            {
                "name": r.kind,
                "ph": "i",                      # instant event
                "s": "t",                       # thread scope
                "ts": r.time / time_unit,
                "pid": r.initiator,
                "tid": r.initiator,
                "args": {"target": r.target, "bytes": r.nbytes},
            }
        )
    return events


def interarrival_stats(trace: list[OpRecord], target: int) -> tuple[float, float]:
    """(mean, max) inter-arrival time of ops hitting ``target``."""
    times = sorted(r.time for r in trace if r.target == target)
    if len(times) < 2:
        return (0.0, 0.0)
    gaps = [b - a for a, b in zip(times, times[1:])]
    return (sum(gaps) / len(gaps), max(gaps))
