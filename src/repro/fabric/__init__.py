"""Simulated RDMA/PGAS fabric: the substrate the paper's testbed provided.

The real system ran on EDR InfiniBand with Sandia OpenSHMEM; this package
replaces that hardware with a deterministic discrete-event model that
preserves the properties the paper's argument rests on: per-message
latency costs, one-sided remote memory semantics, and target-side
serialization of atomics.
"""

from .engine import Call, Delay, Engine, Process
from .errors import (
    AddressError,
    AlignmentError,
    DeadlockError,
    FabricError,
    FabricTimeoutError,
    OracleViolation,
    PEIndexError,
    ProtocolError,
    RegionError,
    SimulationError,
)
from .faults import NO_FAULTS, FaultInjector, FaultPlan, PEFailure
from .latency import (
    EDR_INFINIBAND,
    PRESETS,
    SLOW_ETHERNET,
    ZERO_LATENCY,
    LatencyModel,
    get_preset,
)
from .memory import RegionSpec, SymmetricHeap
from .metrics import BLOCKING_KINDS, OP_KINDS, FabricMetrics, OpRecord
from .nic import WORD_BYTES, Nic
from .scheduler import (
    POLICIES,
    DfsScheduler,
    FixedScheduler,
    PctScheduler,
    RandomScheduler,
    ReplayScheduler,
    ScheduleDivergence,
    ScheduleTrace,
    Scheduler,
    dfs_successor,
    make_scheduler,
)
from .topology import Topology

__all__ = [
    "Call",
    "Delay",
    "Engine",
    "Process",
    "FabricError",
    "AddressError",
    "AlignmentError",
    "DeadlockError",
    "FabricTimeoutError",
    "FaultPlan",
    "FaultInjector",
    "PEFailure",
    "NO_FAULTS",
    "PEIndexError",
    "ProtocolError",
    "OracleViolation",
    "RegionError",
    "SimulationError",
    "LatencyModel",
    "EDR_INFINIBAND",
    "SLOW_ETHERNET",
    "ZERO_LATENCY",
    "PRESETS",
    "get_preset",
    "RegionSpec",
    "SymmetricHeap",
    "FabricMetrics",
    "OpRecord",
    "OP_KINDS",
    "BLOCKING_KINDS",
    "Nic",
    "WORD_BYTES",
    "Scheduler",
    "FixedScheduler",
    "RandomScheduler",
    "PctScheduler",
    "DfsScheduler",
    "ReplayScheduler",
    "ScheduleDivergence",
    "ScheduleTrace",
    "dfs_successor",
    "make_scheduler",
    "POLICIES",
    "Topology",
]
