"""Network latency model for the simulated RDMA fabric.

The model is the classic alpha-beta (postal) model extended with
operation-specific constants, matching how one-sided RDMA verbs behave on
real hardware:

* every message pays a *software injection overhead* (``alpha_sw``) on the
  initiator — the cost of composing the verb and ringing the doorbell;
* the wire adds a one-way *propagation latency* that depends on whether the
  two PEs share a node (``half_rtt_intra`` / ``half_rtt_inter``);
* payload bytes stream at ``1 / bandwidth`` seconds per byte (``beta``);
* fetching operations (get, fetch-add, swap, compare-swap) must wait a full
  round trip before the initiator observes the result;
* non-fetching operations (put, atomic add/put) can be fire-and-forget: the
  initiator only pays the injection overhead and the payload occupancy, and
  completion is guaranteed by a later ``quiet``/fence;
* atomic operations on the target NIC take ``amo_process`` seconds of
  serialized NIC occupancy, which models contention when many thieves hit
  one stealval word.

All times are in **seconds** of virtual time.  The default preset is
calibrated to the paper's testbed (Mellanox EDR 100 Gb/s InfiniBand,
ConnectX-6): ~0.9 us one-way small-message latency, ~12 GB/s effective
payload bandwidth, ~80 ns injection overhead.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from .engine import TICKS_PER_SECOND


@dataclass(frozen=True)
class LatencyModel:
    """Cost parameters for one-sided fabric operations.

    Attributes
    ----------
    alpha_sw:
        Initiator-side software overhead per message, seconds.
    half_rtt_inter:
        One-way wire latency between PEs on different nodes, seconds.
    half_rtt_intra:
        One-way latency between PEs on the same node (loopback through
        the HCA or shared memory), seconds.
    beta:
        Seconds per payload byte (inverse bandwidth).
    amo_process:
        Target-NIC serialization time per atomic, seconds.  Concurrent
        atomics aimed at the same PE queue up behind each other for this
        long, modelling NIC atomic-unit occupancy.
    get_process:
        Target-NIC serialization time per get/read, seconds.
    local_penalty:
        Multiplier applied to a PE targeting *itself* through the fabric
        API (self-targeted ops short-circuit but still pay software cost).
    jitter:
        Fractional wire-latency jitter in [0, 1).  Each message's one-way
        latency is multiplied by ``1 + jitter * u`` with a deterministic
        per-op draw ``u ∈ [0, 1)`` — modelling switch queueing noise while
        keeping runs reproducible.
    link_serialize:
        When True, payload-bearing operations additionally occupy the
        target PE's link for their streaming time: concurrent bulk
        transfers to/from one PE queue behind each other (HCA DMA-engine
        contention).  Off by default — the alpha-beta model alone
        matches the paper's single-transfer analysis.
    """

    alpha_sw: float = 80e-9
    half_rtt_inter: float = 0.9e-6
    half_rtt_intra: float = 0.25e-6
    beta: float = 1.0 / 12.0e9
    amo_process: float = 35e-9
    get_process: float = 20e-9
    local_penalty: float = 0.25
    jitter: float = 0.0
    link_serialize: bool = False

    def __post_init__(self) -> None:
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got {self.jitter}")

    def one_way(self, same_node: bool) -> float:
        """One-way message latency, excluding payload streaming time."""
        return self.half_rtt_intra if same_node else self.half_rtt_inter

    def payload_time(self, nbytes: int) -> float:
        """Time for ``nbytes`` of payload to stream onto the wire."""
        if nbytes < 0:
            raise ValueError(f"negative payload size: {nbytes}")
        return nbytes * self.beta

    def scaled(self, factor: float) -> "LatencyModel":
        """Return a copy with all latency terms multiplied by ``factor``.

        Useful for sensitivity studies ("what if the network were 4x
        slower?") without editing individual fields.
        """
        if factor <= 0:
            raise ValueError(f"scale factor must be positive, got {factor}")
        return replace(
            self,
            alpha_sw=self.alpha_sw * factor,
            half_rtt_inter=self.half_rtt_inter * factor,
            half_rtt_intra=self.half_rtt_intra * factor,
            beta=self.beta * factor,
            amo_process=self.amo_process * factor,
            get_process=self.get_process * factor,
        )

    # ------------------------------------------------------------------
    # conservative-parallel (PDES) lookahead bounds
    # ------------------------------------------------------------------
    def min_one_way(self) -> float:
        """Smallest one-way wire latency any cross-PE message can have.

        Two distinct PEs are at best on the same node, so the floor is
        ``half_rtt_intra`` (the tiered model overrides this with the
        same-socket tier).  Jitter only *adds* latency, so the floor
        holds with jitter enabled.
        """
        return min(self.half_rtt_intra, self.half_rtt_inter)

    def min_lookahead_ticks(self) -> int:
        """Hard lower bound, in integer femtosecond ticks, on the delay
        between a PE issuing any fabric operation and that operation
        first touching another PE's state.

        Every message pays ``alpha_sw`` of injection overhead plus at
        least the smallest one-way wire latency, so this is
        ``alpha_sw + half_rtt_intra`` for the two-level model — the
        lookahead a conservative time-window parallel simulation of this
        fabric may rely on.  Derived, never hand-tuned: the tick values
        are exactly the NIC's own per-op constants.
        """
        return (round(self.alpha_sw * TICKS_PER_SECOND)
                + round(self.min_one_way() * TICKS_PER_SECOND))

    def shard_window_ticks(self) -> int:
        """Safe lock-step window width for the sharded simulator, ticks.

        Tighter than :meth:`min_lookahead_ticks` because a *response* hop
        (the return half of a fetching atomic or get) is scheduled from
        the target at only ``process + one_way`` ahead of the target's
        clock — the injection overhead was paid on the request hop.  The
        window is the minimum margin over every cross-shard event class:

        * request delivery:  ``alpha_sw + one_way``
        * fetch/get response: ``min(amo_process, get_process) + one_way``

        so ``W = min(alpha_sw, amo_process, get_process) + min(one_way)``.
        A zero-latency model yields ``W == 0`` — sharded execution must
        reject it (no lookahead, no conservative parallelism).
        """
        floor = min(
            round(self.alpha_sw * TICKS_PER_SECOND),
            round(self.amo_process * TICKS_PER_SECOND),
            round(self.get_process * TICKS_PER_SECOND),
        )
        return floor + round(self.min_one_way() * TICKS_PER_SECOND)


@dataclass(frozen=True)
class TieredLatencyModel(LatencyModel):
    """Latency model with socket/node/rack wire tiers (localized stealing).

    Extends the two-level intra/inter model with a four-tier one-way
    latency table matching :class:`~repro.fabric.topology.TieredTopology`
    tiers: same-socket loopback (``half_rtt_socket``), cross-socket
    same-node (``half_rtt_intra``), same-rack leaf switch
    (``half_rtt_inter``), and cross-rack spine traversal
    (``half_rtt_xrack``).  The inherited two-level :meth:`one_way` keeps
    its meaning (tier 1 / tier 2), so code unaware of tiers still gets
    sensible numbers.
    """

    half_rtt_socket: float = 0.12e-6
    half_rtt_xrack: float = 1.6e-6

    def min_one_way(self) -> float:
        """Floor over all four tiers: two PEs may share a socket."""
        return min(
            self.half_rtt_socket,
            self.half_rtt_intra,
            self.half_rtt_inter,
            self.half_rtt_xrack,
        )

    def one_way_tier(self, tier: int) -> float:
        """One-way latency for a 0..3 hierarchy tier."""
        if tier <= 0:
            return self.half_rtt_socket
        if tier == 1:
            return self.half_rtt_intra
        if tier == 2:
            return self.half_rtt_inter
        return self.half_rtt_xrack

    def scaled(self, factor: float) -> "TieredLatencyModel":
        """Scale every latency term, including the tier extremes."""
        base = super().scaled(factor)
        return replace(
            base,
            half_rtt_socket=self.half_rtt_socket * factor,
            half_rtt_xrack=self.half_rtt_xrack * factor,
        )


#: Preset calibrated to the paper's EDR InfiniBand testbed.
EDR_INFINIBAND = LatencyModel()

#: A deliberately slow fabric (Ethernet-ish) used to magnify protocol
#: differences in examples and tests.
SLOW_ETHERNET = LatencyModel(
    alpha_sw=0.5e-6,
    half_rtt_inter=12.0e-6,
    half_rtt_intra=2.0e-6,
    beta=1.0 / 1.0e9,
    amo_process=250e-9,
    get_process=150e-9,
)

#: Zero-latency fabric: protocol logic only.  Handy for unit tests where
#: virtual-time arithmetic would obscure the assertion.
ZERO_LATENCY = LatencyModel(
    alpha_sw=0.0,
    half_rtt_inter=0.0,
    half_rtt_intra=0.0,
    beta=0.0,
    amo_process=0.0,
    get_process=0.0,
)

#: EDR fabric with socket/node/rack tiers resolved — the default model
#: for the ``localized`` protocol's tier-biased victim selection.
TIERED_EDR = TieredLatencyModel()

PRESETS = {
    "edr": EDR_INFINIBAND,
    "ethernet": SLOW_ETHERNET,
    "zero": ZERO_LATENCY,
    "tiered-edr": TIERED_EDR,
}


def get_preset(name: str) -> LatencyModel:
    """Look up a named latency preset (``edr``, ``ethernet``, ``zero``)."""
    try:
        return PRESETS[name]
    except KeyError:
        raise KeyError(
            f"unknown latency preset {name!r}; choose from {sorted(PRESETS)}"
        ) from None
