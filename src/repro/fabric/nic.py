"""One-sided RDMA operations over the simulated fabric.

The :class:`Nic` turns OpenSHMEM-style one-sided calls into discrete
events.  A simulated process performs an operation by yielding the request
object the corresponding method returns::

    old = yield nic.amo_fetch_add(me, victim, "stealval", qslot, 1)
    data = yield nic.get_bytes(me, victim, "tasks", off, nbytes)
    yield nic.amo_add_nb(me, victim, "comp", slot, ntasks)
    yield nic.quiet(me)

Timing model (see :mod:`repro.fabric.latency`):

* the initiator always pays ``alpha_sw`` of injection overhead;
* the message reaches the target after a one-way wire latency (payload
  bytes additionally stream at ``beta`` seconds/byte);
* **atomics and gets execute at the target at arrival time**, serialized
  through a per-target NIC unit (``amo_process`` / ``get_process`` of
  occupancy each).  The event queue's global time order therefore defines
  the serialization order of racing atomics — the same guarantee a real
  HCA's atomic unit provides;
* fetching ops resume the initiator one more one-way latency later (plus
  payload streaming for gets);
* non-blocking ops (``put_nb``, ``amo_add_nb``) resume the initiator after
  the injection overhead only; :meth:`quiet` blocks until every
  outstanding non-blocking op from that PE has been applied remotely.

All internal time arithmetic is in the engine's integer ticks: the latency
constants are converted once at construction, per-op completion times are
exact integer sums, and the per-target busy-until arrays hold ticks.  With
jitter enabled the jittered one-way latency is computed in float and
rounded to the nearest tick per hop.

Fault model (see :mod:`repro.fabric.faults`): when a
:class:`~repro.fabric.faults.FaultInjector` is attached, every op may be
dropped, delayed, or lost against a dead PE's memory.  Blocking calls
additionally honour ``op_timeout``: if the result has not returned within
that many virtual seconds the NIC *cancels the descriptor* — the op is
guaranteed never to be applied afterwards — and raises
:class:`~repro.fabric.errors.FabricTimeoutError` in the initiator, so a
retry can never double-apply.  An op that was already applied when its
timer fires simply completes late.  With no injector and no timeout the
scheduling paths below are exactly the fault-free ones — zero extra
events, bit-identical runs.

Every operation is tallied in :class:`~repro.fabric.metrics.FabricMetrics`.
"""

from __future__ import annotations

from typing import Any, Callable

from .engine import TICKS_PER_SECOND, Call, Engine, Process
from .errors import FabricTimeoutError, SimulationError
from .faults import FaultInjector
from .latency import LatencyModel, TieredLatencyModel
from .memory import SymmetricHeap
from .metrics import FabricMetrics, OpRecord
from .topology import Topology, TieredTopology

WORD_BYTES = 8

_U64 = (1 << 64) - 1


class _QuietWait:
    """One parked quiet() caller (identity-compared for timeout cancel)."""

    __slots__ = ("proc", "timer")

    def __init__(self, proc: Process) -> None:
        self.proc = proc
        #: Timeout-timer handle, cancelled when the quiet resumes.
        self.timer: Any = None


#: Free-list cap per operation pool.  Generous versus the realistic
#: number of in-flight ops (bounded by live PEs), tiny in absolute terms.
_POOL_MAX = 1024


class _FetchAmoOp(Call):
    """Pooled record for one fault-free blocking fetching atomic.

    The fig7 hot path issues hundreds of thousands of fetch-amos; the
    closure-based implementation allocated a handler closure, an
    at-target closure, a resume closure, a ``blocked_on`` description
    string and a Call object per op.  This record replaces all of them:
    it *is* the Call (handler pre-bound to :meth:`_start`), carries the
    op operands in ``__slots__``, renders its description lazily (only a
    deadlock report ever formats it), and returns to the owning NIC's
    free list at resume time.  Only the unguarded path (no fault
    injector, no op timeout) uses pooled records — the guarded path
    keeps the closure implementation and its descriptor-cancel
    semantics.
    """

    __slots__ = ("nic", "initiator", "target", "region", "offset", "kind",
                 "a1", "a2", "proc", "value", "_cb_at_target", "_cb_resume")

    def __init__(self, nic: "Nic") -> None:
        self.nic = nic
        self.handler = self._start
        self.args = ()
        # Bound-method callbacks created once per record, not per op.
        self._cb_at_target = self._at_target
        self._cb_resume = self._resume
        self.proc = None
        self.value = None

    def __repr__(self) -> str:
        return f"{self.kind} -> pe{self.target} {self.region}[{self.offset}]"

    def _start(self, engine: Engine, proc: Process) -> None:
        nic = self.nic
        initiator = self.initiator
        target = self.target
        # Metrics tally inlined (record() validates the kind and converts
        # the clock to float seconds — both wasted on pooled ops).
        metrics = nic.metrics
        metrics.ops_by_pe[initiator][self.kind] += 1
        metrics.bytes_by_pe[initiator] += WORD_BYTES
        if metrics.trace_enabled:
            metrics.trace.append(
                OpRecord(engine.now, initiator, target, self.kind, WORD_BYTES)
            )
        proc.blocked_on = self
        self.proc = proc
        # One-way latency inlined for the no-jitter common case.
        if nic._ow_dynamic:
            ow = nic._one_way_ticks(initiator, target)
        elif initiator == target:
            ow = nic._ow_self_ticks
        elif initiator // nic._ppn == target // nic._ppn:
            ow = nic._ow_intra_ticks
        else:
            ow = nic._ow_inter_ticks
        engine.at_ticks(
            engine.now_ticks + nic._alpha_ticks + ow,
            self._cb_at_target, actor=nic._amo_actors[target],
        )

    def _at_target(self) -> None:
        nic = self.nic
        engine = nic.engine
        target = self.target
        done = nic._serialize(
            nic._amo_busy_until, target, engine.now_ticks, nic._amo_ticks
        )
        heap = nic.heap
        kind = self.kind
        if kind == "amo_fetch_add":
            value = heap.fetch_add(target, self.region, self.offset, self.a1)
        elif kind == "amo_swap":
            value = heap.swap(target, self.region, self.offset, self.a1)
        elif kind == "amo_cas":
            value = heap.compare_swap(
                target, self.region, self.offset, self.a1, self.a2
            )
        else:  # amo_fetch
            value = heap.load(target, self.region, self.offset)
        self.value = value
        initiator = self.initiator
        if nic._ow_dynamic:
            back = nic._one_way_ticks(target, initiator)
        elif initiator == target:
            back = nic._ow_self_ticks
        elif initiator // nic._ppn == target // nic._ppn:
            back = nic._ow_intra_ticks
        else:
            back = nic._ow_inter_ticks
        engine.at_ticks(done + back, self._cb_resume, actor=self.proc.name)

    def _resume(self) -> None:
        nic = self.nic
        proc = self.proc
        value = self.value
        self.proc = None
        self.value = None
        pool = nic._amo_pool
        if len(pool) < _POOL_MAX:
            pool.append(self)
        nic.engine._step(proc, value)


#: _GetOp payload opcodes.
_GET_WORD, _GET_WORDS, _GET_BYTES = 0, 1, 2


class _GetOp(Call):
    """Pooled record for one fault-free blocking get (see _FetchAmoOp)."""

    __slots__ = ("nic", "initiator", "target", "region", "offset", "count",
                 "nbytes", "opcode", "proc", "value",
                 "_cb_at_target", "_cb_resume")

    def __init__(self, nic: "Nic") -> None:
        self.nic = nic
        self.handler = self._start
        self.args = ()
        self._cb_at_target = self._at_target
        self._cb_resume = self._resume
        self.proc = None
        self.value = None

    def __repr__(self) -> str:
        if self.opcode == _GET_WORD:
            return f"get -> pe{self.target} {self.region}[{self.offset}]"
        suffix = "B" if self.opcode == _GET_BYTES else ""
        return (f"get -> pe{self.target} "
                f"{self.region}[{self.offset}:{self.offset + self.count}]{suffix}")

    def _start(self, engine: Engine, proc: Process) -> None:
        nic = self.nic
        initiator = self.initiator
        target = self.target
        nbytes = self.nbytes
        metrics = nic.metrics
        metrics.ops_by_pe[initiator]["get"] += 1
        metrics.bytes_by_pe[initiator] += nbytes
        if metrics.trace_enabled:
            metrics.trace.append(
                OpRecord(engine.now, initiator, target, "get", nbytes)
            )
        proc.blocked_on = self
        self.proc = proc
        if nic._ow_dynamic:
            ow = nic._one_way_ticks(initiator, target)
        elif initiator == target:
            ow = nic._ow_self_ticks
        elif initiator // nic._ppn == target // nic._ppn:
            ow = nic._ow_intra_ticks
        else:
            ow = nic._ow_inter_ticks
        engine.at_ticks(
            engine.now_ticks + nic._alpha_ticks + ow,
            self._cb_at_target, actor=nic._get_actors[target],
        )

    def _at_target(self) -> None:
        nic = self.nic
        engine = nic.engine
        target = self.target
        done = nic._serialize(
            nic._get_busy_until, target, engine.now_ticks, nic._get_ticks
        )
        heap = nic.heap
        opcode = self.opcode
        if opcode == _GET_WORD:
            value = heap.load(target, self.region, self.offset)
        elif opcode == _GET_WORDS:
            value = heap.load_words(target, self.region, self.offset, self.count)
        else:
            value = heap.read_bytes(target, self.region, self.offset, self.count)
        self.value = value
        stream = round(self.nbytes * nic._beta_fs)
        initiator = self.initiator
        if nic._ow_dynamic:
            back = nic._one_way_ticks(target, initiator)
        elif initiator == target:
            back = nic._ow_self_ticks
        elif initiator // nic._ppn == target // nic._ppn:
            back = nic._ow_intra_ticks
        else:
            back = nic._ow_inter_ticks
        if nic._link_serialize:
            # The response payload occupies the target's egress link;
            # concurrent bulk reads of one victim serialize.
            done = nic._serialize(nic._link_busy_until, target, done, stream)
        else:
            back += stream
        engine.at_ticks(done + back, self._cb_resume, actor=self.proc.name)

    def _resume(self) -> None:
        nic = self.nic
        proc = self.proc
        value = self.value
        self.proc = None
        self.value = None
        pool = nic._get_pool
        if len(pool) < _POOL_MAX:
            pool.append(self)
        nic.engine._step(proc, value)


class Nic:
    """Simulated RDMA network interface shared by all PEs."""

    def __init__(
        self,
        engine: Engine,
        heap: SymmetricHeap,
        topology: Topology,
        latency: LatencyModel,
        metrics: FabricMetrics | None = None,
        jitter_seed: int = 0,
        faults: FaultInjector | None = None,
        op_timeout: float | None = None,
    ) -> None:
        if heap.npes != topology.npes:
            raise SimulationError(
                f"heap has {heap.npes} PEs but topology has {topology.npes}"
            )
        if op_timeout is not None and op_timeout <= 0:
            raise SimulationError(f"op_timeout must be positive, got {op_timeout}")
        self.engine = engine
        self.heap = heap
        self.topology = topology
        self.latency = latency
        self.metrics = metrics or FabricMetrics(heap.npes)
        #: Route-to-shard seam: a ShardRouter in sharded runs, else None.
        #: When set, ops whose target PE lives on another shard divert to
        #: the router instead of scheduling directly (see fabric.sharding).
        self.router = None
        #: Active fault injector, or None for a perfectly reliable fabric.
        self.faults = faults
        #: Per-op timeout for blocking calls and quiet(); None disables.
        self.op_timeout = op_timeout
        #: Timeouts fired so far (descriptors cancelled).
        self.timeouts = 0
        npes = heap.npes
        # Per-target serialization points for the NIC atomic and read
        # units, in integer ticks.
        self._amo_busy_until = [0] * npes
        self._get_busy_until = [0] * npes
        # Per-PE link (DMA engine) occupancy, used when link_serialize is on.
        self._link_busy_until = [0] * npes
        # Outstanding non-blocking ops per initiator, for quiet().
        self._outstanding = [0] * npes
        self._quiet_waiters: dict[int, list[_QuietWait]] = {}
        # Deterministic jitter stream: counter hashed with the seed, so a
        # given (seed, op sequence) always reproduces the same delays.
        self._jitter_seed = jitter_seed
        self._jitter_counter = 0
        # Latency constants in ticks, converted once: per-op arithmetic
        # is pure integer addition after this.
        lat = latency
        self._alpha_ticks = round(lat.alpha_sw * TICKS_PER_SECOND)
        self._amo_ticks = round(lat.amo_process * TICKS_PER_SECOND)
        self._get_ticks = round(lat.get_process * TICKS_PER_SECOND)
        self._ow_self_ticks = round(
            lat.half_rtt_intra * lat.local_penalty * TICKS_PER_SECOND
        )
        self._ow_intra_ticks = round(lat.one_way(True) * TICKS_PER_SECOND)
        self._ow_inter_ticks = round(lat.one_way(False) * TICKS_PER_SECOND)
        self._beta_fs = lat.beta * TICKS_PER_SECOND  # payload fs per byte
        self._jitter_on = bool(lat.jitter)
        # Tiered mode: a four-level one-way table indexed by the
        # topology's socket/node/rack tier.  Requires both a tiered
        # latency model and a tiered topology; otherwise the classic
        # two-level intra/inter table applies and nothing here changes.
        tiered = isinstance(lat, TieredLatencyModel) and isinstance(
            topology, TieredTopology
        )
        if tiered:
            self._tier_ticks: list[int] | None = [
                round(lat.one_way_tier(t) * TICKS_PER_SECOND) for t in range(4)
            ]
            self._tier_of = topology.tier
            self._ow_self_ticks = round(
                lat.half_rtt_socket * lat.local_penalty * TICKS_PER_SECOND
            )
        else:
            self._tier_ticks = None
            self._tier_of = None
        # Pooled ops take the table-lookup fast path only when the
        # one-way latency is a pure function of the node pair; jitter and
        # tiering both route through _one_way_ticks instead.
        self._ow_dynamic = self._jitter_on or tiered
        self._link_serialize = lat.link_serialize
        self._timeout_ticks = (
            None if op_timeout is None
            else round(op_timeout * TICKS_PER_SECOND)
        )
        self._ppn = topology.pes_per_node
        # Pre-rendered actor names (schedule-exploration tags); building
        # these per op would be an f-string on every message.
        self._amo_actors = [f"nic.amo:pe{p}" for p in range(npes)]
        self._get_actors = [f"nic.get:pe{p}" for p in range(npes)]
        self._put_actors = [f"nic.put:pe{p}" for p in range(npes)]
        self._timer_actors = [f"timer:pe{p}" for p in range(npes)]
        # Free lists of pooled op records (fault-free blocking path only).
        self._amo_pool: list[_FetchAmoOp] = []
        self._get_pool: list[_GetOp] = []
        engine.diagnostics.append(self._deadlock_diagnostic)

    # ------------------------------------------------------------------
    # latency helpers
    # ------------------------------------------------------------------
    def _one_way_ticks(self, a: int, b: int) -> int:
        if not self._jitter_on:
            if a == b:
                return self._ow_self_ticks
            if self._tier_ticks is not None:
                return self._tier_ticks[self._tier_of(a, b)]
            ppn = self._ppn
            if a // ppn == b // ppn:
                return self._ow_intra_ticks
            return self._ow_inter_ticks
        lat = self.latency
        if a == b:
            if self._tier_ticks is not None:
                base = lat.half_rtt_socket * lat.local_penalty
            else:
                base = lat.half_rtt_intra * lat.local_penalty
        elif self._tier_ticks is not None:
            base = lat.one_way_tier(self._tier_of(a, b))
        else:
            base = lat.one_way(a // self._ppn == b // self._ppn)
        # splitmix64-style hash of (seed, counter) -> u in [0, 1).
        self._jitter_counter += 1
        z = (self._jitter_seed * 0x9E3779B97F4A7C15 + self._jitter_counter
             * 0xBF58476D1CE4E5B9) & _U64
        z ^= z >> 31
        z = (z * 0x94D049BB133111EB) & _U64
        z ^= z >> 29
        u = z / float(1 << 64)
        base *= 1.0 + lat.jitter * u
        return round(base * TICKS_PER_SECOND)

    def _payload_ticks(self, nbytes: int) -> int:
        return round(nbytes * self._beta_fs)

    def _serialize(self, busy: list[int], target: int, arrival: int, cost: int) -> int:
        """Queue behind the target NIC unit; return completion tick there."""
        start = busy[target]
        if start < arrival:
            start = arrival
        done = start + cost
        busy[target] = done
        return done

    # ------------------------------------------------------------------
    # fault helpers
    # ------------------------------------------------------------------
    def _fault_route(self, target: int, kind: str, arrival: int) -> tuple[int, bool]:
        """Consult the injector for one op; returns (arrival_ticks, lost).

        A lost op never executes at the target: either the wire dropped
        it or the target PE is dead when it would arrive (the failure
        schedule is static, so arrival-time death is decided now).
        """
        faults = self.faults
        arrival += round(faults.extra_delay() * TICKS_PER_SECOND)
        if faults.should_drop(kind):
            return arrival, True
        if faults.is_dead(target, arrival / TICKS_PER_SECOND):
            faults.note_dead_target(kind)
            return arrival, True
        return arrival, False

    def _arm_timeout(
        self, engine: Engine, proc: Process, state: dict,
        initiator: int, target: int, kind: str,
    ) -> None:
        """Schedule the descriptor-cancel timer for one blocking op."""
        deadline = engine.now_ticks + self._timeout_ticks

        def fire() -> None:
            if proc.finished or state["applied"] or state["dead"]:
                return
            state["dead"] = True  # cancel: the op will never be applied
            self.timeouts += 1
            if self.faults is not None:
                self.faults.note_timeout(kind)
            engine.throw(
                proc,
                FabricTimeoutError(
                    f"{kind} from PE {initiator} to PE {target} timed out "
                    f"after {self.op_timeout:.3g}s",
                    initiator=initiator, target=target, kind=kind,
                ),
            )

        # The handle lets the completion path retire the timer instead of
        # letting it fire as a dead no-op event.
        state["timer"] = engine.at_ticks(
            deadline, fire, actor=self._timer_actors[initiator]
        )

    def _deadlock_diagnostic(self) -> str:
        """Extra context for DeadlockError: outstanding ops per PE."""
        lines = []
        for pe, n in enumerate(self._outstanding):
            waiting = len(self._quiet_waiters.get(pe, ()))
            if n or waiting:
                lines.append(
                    f"  nic: PE {pe} has {n} outstanding non-blocking op(s) "
                    f"and {waiting} quiet() waiter(s)"
                )
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # fetching atomics (blocking round trip)
    # ------------------------------------------------------------------
    def amo_fetch_add(self, initiator: int, target: int, region: str, offset: int, delta: int) -> Call:
        """Atomic fetch-and-add on a remote 64-bit word; yields the old value."""
        r = self.router
        if r is not None and not r.is_local(target):
            return r.fetch_amo(initiator, target, region, offset,
                               "amo_fetch_add", delta, 0)
        if self.faults is None and self._timeout_ticks is None:
            return self._pooled_amo(initiator, target, region, offset,
                                    "amo_fetch_add", delta, 0)
        return self._fetch_amo(initiator, target, region, offset, "amo_fetch_add",
                               lambda: self.heap.fetch_add(target, region, offset, delta))

    def amo_swap(self, initiator: int, target: int, region: str, offset: int, value: int) -> Call:
        """Atomic swap on a remote word; yields the old value."""
        r = self.router
        if r is not None and not r.is_local(target):
            return r.fetch_amo(initiator, target, region, offset,
                               "amo_swap", value, 0)
        if self.faults is None and self._timeout_ticks is None:
            return self._pooled_amo(initiator, target, region, offset,
                                    "amo_swap", value, 0)
        return self._fetch_amo(initiator, target, region, offset, "amo_swap",
                               lambda: self.heap.swap(target, region, offset, value))

    def amo_cas(self, initiator: int, target: int, region: str, offset: int,
                expected: int, desired: int) -> Call:
        """Atomic compare-and-swap; yields the old value."""
        r = self.router
        if r is not None and not r.is_local(target):
            return r.fetch_amo(initiator, target, region, offset,
                               "amo_cas", expected, desired)
        if self.faults is None and self._timeout_ticks is None:
            return self._pooled_amo(initiator, target, region, offset,
                                    "amo_cas", expected, desired)
        return self._fetch_amo(initiator, target, region, offset, "amo_cas",
                               lambda: self.heap.compare_swap(target, region, offset, expected, desired))

    def amo_fetch(self, initiator: int, target: int, region: str, offset: int) -> Call:
        """Atomic read of a remote word (steal-damping probe); yields the value."""
        r = self.router
        if r is not None and not r.is_local(target):
            return r.fetch_amo(initiator, target, region, offset,
                               "amo_fetch", 0, 0)
        if self.faults is None and self._timeout_ticks is None:
            return self._pooled_amo(initiator, target, region, offset,
                                    "amo_fetch", 0, 0)
        return self._fetch_amo(initiator, target, region, offset, "amo_fetch",
                               lambda: self.heap.load(target, region, offset))

    def _pooled_amo(self, initiator: int, target: int, region: str, offset: int,
                    kind: str, a1: int, a2: int) -> "_FetchAmoOp":
        """Check a record out of the free list and load its operands."""
        pool = self._amo_pool
        rec = pool.pop() if pool else _FetchAmoOp(self)
        rec.initiator = initiator
        rec.target = target
        rec.region = region
        rec.offset = offset
        rec.kind = kind
        rec.a1 = a1
        rec.a2 = a2
        return rec

    def _fetch_amo(self, initiator: int, target: int, region: str, offset: int,
                   kind: str, apply: Callable[[], int]) -> Call:
        def handler(engine: Engine, proc: Process) -> None:
            self.metrics.record(engine.now, initiator, target, kind, WORD_BYTES)
            proc.blocked_on = f"{kind} -> pe{target} {region}[{offset}]"
            arrival = (engine.now_ticks + self._alpha_ticks
                       + self._one_way_ticks(initiator, target))
            guarded = self.faults is not None or self.op_timeout is not None
            state = {"applied": False, "dead": False} if guarded else None
            lost = False
            if self.faults is not None:
                arrival, lost = self._fault_route(target, kind, arrival)

            def at_target() -> None:
                if state is not None:
                    if state["dead"]:
                        return  # descriptor cancelled by the timeout
                    state["applied"] = True
                    timer = state.get("timer")
                    if timer is not None:
                        engine.cancel(timer)
                done = self._serialize(
                    self._amo_busy_until, target, engine.now_ticks, self._amo_ticks
                )
                value = apply()
                back = self._one_way_ticks(target, initiator)
                engine.at_ticks(done + back, lambda: engine._step(proc, value),
                                actor=proc.name)

            if not lost:
                engine.at_ticks(arrival, at_target, actor=self._amo_actors[target])
            if self.op_timeout is not None:
                self._arm_timeout(engine, proc, state, initiator, target, kind)

        return Call(handler)

    # ------------------------------------------------------------------
    # non-blocking atomic (completion signalling)
    # ------------------------------------------------------------------
    def amo_add_nb(self, initiator: int, target: int, region: str, offset: int, delta: int) -> Call:
        """Non-blocking atomic add; initiator resumes after injection only."""
        r = self.router
        if r is not None and not r.is_local(target):
            return r.amo_add_nb(initiator, target, region, offset, delta)

        def handler(engine: Engine, proc: Process) -> None:
            self.metrics.record(engine.now, initiator, target, "amo_add_nb", WORD_BYTES)
            self._outstanding[initiator] += 1
            arrival = (engine.now_ticks + self._alpha_ticks
                       + self._one_way_ticks(initiator, target))
            lost = False
            if self.faults is not None:
                arrival, lost = self._fault_route(target, "amo_add_nb", arrival)

            def at_target() -> None:
                self._serialize(
                    self._amo_busy_until, target, engine.now_ticks, self._amo_ticks
                )
                self.heap.fetch_add(target, region, offset, delta)
                self._complete_nb(initiator)

            if lost:
                # The descriptor still retires locally (in error), so
                # quiet() completes; the remote word never changes.
                engine.at_ticks(arrival, lambda: self._complete_nb(initiator),
                                actor=self._amo_actors[target])
            else:
                engine.at_ticks(arrival, at_target, actor=self._amo_actors[target])
            engine.resume_ticks(proc, None, self._alpha_ticks)

        return Call(handler)

    # ------------------------------------------------------------------
    # gets (blocking)
    # ------------------------------------------------------------------
    def get_words(self, initiator: int, target: int, region: str, offset: int, count: int) -> Call:
        """Blocking read of consecutive remote words; yields list[int]."""
        r = self.router
        if r is not None and not r.is_local(target):
            return r.get(initiator, target, region, offset, count,
                         count * WORD_BYTES, _GET_WORDS)
        if self.faults is None and self._timeout_ticks is None:
            return self._pooled_get(initiator, target, region, offset, count,
                                    count * WORD_BYTES, _GET_WORDS)
        return self._get(initiator, target, count * WORD_BYTES,
                         lambda: self.heap.load_words(target, region, offset, count),
                         f"get -> pe{target} {region}[{offset}:{offset + count}]")

    def get_word(self, initiator: int, target: int, region: str, offset: int) -> Call:
        """Blocking read of one remote word; yields int."""
        r = self.router
        if r is not None and not r.is_local(target):
            return r.get(initiator, target, region, offset, 1,
                         WORD_BYTES, _GET_WORD)
        if self.faults is None and self._timeout_ticks is None:
            return self._pooled_get(initiator, target, region, offset, 1,
                                    WORD_BYTES, _GET_WORD)
        return self._get(initiator, target, WORD_BYTES,
                         lambda: self.heap.load(target, region, offset),
                         f"get -> pe{target} {region}[{offset}]")

    def get_bytes(self, initiator: int, target: int, region: str, offset: int, count: int) -> Call:
        """Blocking read of remote bytes; yields bytes."""
        r = self.router
        if r is not None and not r.is_local(target):
            return r.get(initiator, target, region, offset, count,
                         count, _GET_BYTES)
        if self.faults is None and self._timeout_ticks is None:
            return self._pooled_get(initiator, target, region, offset, count,
                                    count, _GET_BYTES)
        return self._get(initiator, target, count,
                         lambda: self.heap.read_bytes(target, region, offset, count),
                         f"get -> pe{target} {region}[{offset}:{offset + count}]B")

    def _pooled_get(self, initiator: int, target: int, region: str, offset: int,
                    count: int, nbytes: int, opcode: int) -> "_GetOp":
        """Check a get record out of the free list and load its operands."""
        pool = self._get_pool
        rec = pool.pop() if pool else _GetOp(self)
        rec.initiator = initiator
        rec.target = target
        rec.region = region
        rec.offset = offset
        rec.count = count
        rec.nbytes = nbytes
        rec.opcode = opcode
        return rec

    def _get(self, initiator: int, target: int, nbytes: int,
             read: Callable[[], Any], desc: str = "") -> Call:
        def handler(engine: Engine, proc: Process) -> None:
            self.metrics.record(engine.now, initiator, target, "get", nbytes)
            proc.blocked_on = desc or f"get -> pe{target} ({nbytes}B)"
            arrival = (engine.now_ticks + self._alpha_ticks
                       + self._one_way_ticks(initiator, target))
            guarded = self.faults is not None or self.op_timeout is not None
            state = {"applied": False, "dead": False} if guarded else None
            lost = False
            if self.faults is not None:
                arrival, lost = self._fault_route(target, "get", arrival)

            def at_target() -> None:
                if state is not None:
                    if state["dead"]:
                        return
                    state["applied"] = True
                    timer = state.get("timer")
                    if timer is not None:
                        engine.cancel(timer)
                done = self._serialize(
                    self._get_busy_until, target, engine.now_ticks, self._get_ticks
                )
                value = read()
                stream = self._payload_ticks(nbytes)
                if self._link_serialize:
                    # The response payload occupies the target's egress
                    # link; concurrent bulk reads of one victim serialize.
                    done = self._serialize(
                        self._link_busy_until, target, done, stream
                    )
                    back = self._one_way_ticks(target, initiator)
                else:
                    back = self._one_way_ticks(target, initiator) + stream
                engine.at_ticks(done + back, lambda: engine._step(proc, value),
                                actor=proc.name)

            if not lost:
                engine.at_ticks(arrival, at_target, actor=self._get_actors[target])
            if self.op_timeout is not None:
                self._arm_timeout(engine, proc, state, initiator, target, "get")

        return Call(handler)

    # ------------------------------------------------------------------
    # puts
    # ------------------------------------------------------------------
    def put_word(self, initiator: int, target: int, region: str, offset: int, value: int) -> Call:
        """Blocking write of one remote word (acked round trip)."""
        r = self.router
        if r is not None and not r.is_local(target):
            return r.put(initiator, target, region, offset, [value],
                         is_bytes=False, blocking=True)
        return self._put(initiator, target, WORD_BYTES, blocking=True,
                         write=lambda: self.heap.store(target, region, offset, value))

    def put_words(self, initiator: int, target: int, region: str, offset: int, values: list[int]) -> Call:
        """Blocking write of consecutive remote words."""
        r = self.router
        if r is not None and not r.is_local(target):
            return r.put(initiator, target, region, offset, list(values),
                         is_bytes=False, blocking=True)
        return self._put(initiator, target, len(values) * WORD_BYTES, blocking=True,
                         write=lambda: self.heap.store_words(target, region, offset, values))

    def put_bytes_nb(self, initiator: int, target: int, region: str, offset: int, data: bytes) -> Call:
        """Non-blocking write of remote bytes (complete after quiet)."""
        r = self.router
        if r is not None and not r.is_local(target):
            return r.put(initiator, target, region, offset, bytes(data),
                         is_bytes=True, blocking=False)
        return self._put(initiator, target, len(data), blocking=False,
                         write=lambda: self.heap.write_bytes(target, region, offset, data))

    def put_word_nb(self, initiator: int, target: int, region: str, offset: int, value: int) -> Call:
        """Non-blocking write of one remote word."""
        r = self.router
        if r is not None and not r.is_local(target):
            return r.put(initiator, target, region, offset, [value],
                         is_bytes=False, blocking=False)
        return self._put(initiator, target, WORD_BYTES, blocking=False,
                         write=lambda: self.heap.store(target, region, offset, value))

    def _put(self, initiator: int, target: int, nbytes: int, blocking: bool,
             write: Callable[[], None]) -> Call:
        kind = "put" if blocking else "put_nb"

        def handler(engine: Engine, proc: Process) -> None:
            self.metrics.record(engine.now, initiator, target, kind, nbytes)
            stream = self._payload_ticks(nbytes)
            inject = self._alpha_ticks + stream
            arrival = (engine.now_ticks + inject
                       + self._one_way_ticks(initiator, target))
            lost = False
            if self.faults is not None:
                arrival, lost = self._fault_route(target, kind, arrival)

            def apply_write() -> int:
                """Write at the target, honouring link occupancy."""
                now = engine.now_ticks
                if self._link_serialize and stream > 0:
                    done = self._serialize(
                        self._link_busy_until, target, now, stream
                    )
                else:
                    done = now
                if done > now:
                    engine.at_ticks(done, write, actor=self._put_actors[target])
                else:
                    write()
                return done

            if blocking:
                proc.blocked_on = f"put -> pe{target} ({nbytes}B)"
                guarded = self.faults is not None or self.op_timeout is not None
                state = {"applied": False, "dead": False} if guarded else None

                def at_target() -> None:
                    if state is not None:
                        if state["dead"]:
                            return
                        state["applied"] = True
                        timer = state.get("timer")
                        if timer is not None:
                            engine.cancel(timer)
                    done = apply_write()
                    back = self._one_way_ticks(target, initiator)
                    engine.at_ticks(done + back, proc._step0, actor=proc.name)

                if not lost:
                    engine.at_ticks(arrival, at_target,
                                    actor=self._put_actors[target])
                if self.op_timeout is not None:
                    self._arm_timeout(engine, proc, state, initiator, target, kind)
            else:
                self._outstanding[initiator] += 1

                def at_target_nb() -> None:
                    done = apply_write()
                    if done > engine.now_ticks:
                        engine.at_ticks(done, lambda: self._complete_nb(initiator),
                                        actor=self._put_actors[target])
                    else:
                        self._complete_nb(initiator)

                if lost:
                    engine.at_ticks(arrival, lambda: self._complete_nb(initiator),
                                    actor=self._put_actors[target])
                else:
                    engine.at_ticks(arrival, at_target_nb,
                                    actor=self._put_actors[target])
                engine.resume_ticks(proc, None, inject)

        return Call(handler)

    def put_signal_nb(
        self,
        initiator: int,
        target: int,
        region: str,
        offset: int,
        data: bytes,
        sig_region: str,
        sig_offset: int,
        sig_value: int,
    ) -> Call:
        """Non-blocking put-with-signal (OpenSHMEM 1.5 ``put_signal``).

        The payload and the signal word travel as one message: at arrival
        the payload lands through the target's link (occupying it when
        ``link_serialize`` is on, exactly like every other put) and the
        fused signal store then executes in the target's atomic unit
        (``amo_process`` of serialized occupancy, like every other
        atomic), strictly after the payload — so a consumer observing
        the signal is guaranteed to see the data.  Replaces a
        put + quiet + atomic triple with a single communication.
        """
        r = self.router
        if r is not None and not r.is_local(target):
            return r.put_signal_nb(initiator, target, region, offset,
                                   bytes(data), sig_region, sig_offset,
                                   sig_value)

        def handler(engine: Engine, proc: Process) -> None:
            nbytes = len(data) + WORD_BYTES
            self.metrics.record(engine.now, initiator, target, "put_signal", nbytes)
            self._outstanding[initiator] += 1
            inject = self._alpha_ticks + self._payload_ticks(nbytes)
            arrival = (engine.now_ticks + inject
                       + self._one_way_ticks(initiator, target))
            lost = False
            if self.faults is not None:
                arrival, lost = self._fault_route(target, "put_signal", arrival)

            stream = self._payload_ticks(len(data))

            def at_target() -> None:
                now = engine.now_ticks
                if self._link_serialize and stream > 0:
                    data_done = self._serialize(
                        self._link_busy_until, target, now, stream
                    )
                else:
                    data_done = now

                def apply_data() -> None:
                    self.heap.write_bytes(target, region, offset, data)

                if data_done > now:
                    engine.at_ticks(data_done, apply_data,
                                    actor=self._put_actors[target])
                else:
                    apply_data()
                # The signal queues behind the payload in the atomic unit;
                # _serialize guarantees sig_done >= data_done, and equal
                # times fire in insertion order — data always first.
                sig_done = self._serialize(
                    self._amo_busy_until, target, data_done, self._amo_ticks
                )

                def apply_signal() -> None:
                    self.heap.store(target, sig_region, sig_offset, sig_value)
                    self._complete_nb(initiator)

                if sig_done > engine.now_ticks:
                    engine.at_ticks(sig_done, apply_signal,
                                    actor=self._amo_actors[target])
                else:
                    apply_signal()

            if lost:
                engine.at_ticks(arrival, lambda: self._complete_nb(initiator),
                                actor=self._put_actors[target])
            else:
                engine.at_ticks(arrival, at_target,
                                actor=self._put_actors[target])
            engine.resume_ticks(proc, None, inject)

        return Call(handler)

    # ------------------------------------------------------------------
    # completion / ordering
    # ------------------------------------------------------------------
    def quiet(self, pe: int) -> Call:
        """Block until all outstanding non-blocking ops from ``pe`` applied.

        With ``op_timeout`` set, a quiet that has not drained within the
        timeout raises :class:`FabricTimeoutError` instead of blocking
        forever (outstanding descriptors keep draining in the background).
        """
        def handler(engine: Engine, proc: Process) -> None:
            if self._outstanding[pe] == 0:
                engine.resume(proc, None)
                return
            proc.blocked_on = f"quiet({self._outstanding[pe]} outstanding)"
            entry = _QuietWait(proc)
            self._quiet_waiters.setdefault(pe, []).append(entry)
            if self._timeout_ticks is not None:
                def fire() -> None:
                    waiters = self._quiet_waiters.get(pe)
                    if not waiters or entry not in waiters or proc.finished:
                        return
                    waiters.remove(entry)
                    if not waiters:
                        del self._quiet_waiters[pe]
                    self.timeouts += 1
                    if self.faults is not None:
                        self.faults.note_timeout("quiet")
                    engine.throw(
                        proc,
                        FabricTimeoutError(
                            f"quiet on PE {pe} timed out with "
                            f"{self._outstanding[pe]} op(s) outstanding",
                            initiator=pe, target=pe, kind="quiet",
                        ),
                    )

                entry.timer = engine.at_ticks(
                    engine.now_ticks + self._timeout_ticks, fire,
                    actor=self._timer_actors[pe]
                )

        return Call(handler)

    def _complete_nb(self, initiator: int) -> None:
        outstanding = self._outstanding
        outstanding[initiator] -= 1
        if outstanding[initiator] < 0:
            raise SimulationError("non-blocking completion underflow")
        if outstanding[initiator] == 0 and self._quiet_waiters:
            for entry in self._quiet_waiters.pop(initiator, []):
                if entry.timer is not None:
                    self.engine.cancel(entry.timer)
                self.engine.resume(entry.proc, None)

    def pending_ops(self, pe: int) -> int:
        """Outstanding non-blocking operations issued by ``pe``."""
        return self._outstanding[pe]
