"""One-sided RDMA operations over the simulated fabric.

The :class:`Nic` turns OpenSHMEM-style one-sided calls into discrete
events.  A simulated process performs an operation by yielding the request
object the corresponding method returns::

    old = yield nic.amo_fetch_add(me, victim, "stealval", qslot, 1)
    data = yield nic.get_bytes(me, victim, "tasks", off, nbytes)
    yield nic.amo_add_nb(me, victim, "comp", slot, ntasks)
    yield nic.quiet(me)

Timing model (see :mod:`repro.fabric.latency`):

* the initiator always pays ``alpha_sw`` of injection overhead;
* the message reaches the target after a one-way wire latency (payload
  bytes additionally stream at ``beta`` seconds/byte);
* **atomics and gets execute at the target at arrival time**, serialized
  through a per-target NIC unit (``amo_process`` / ``get_process`` of
  occupancy each).  The event queue's global time order therefore defines
  the serialization order of racing atomics — the same guarantee a real
  HCA's atomic unit provides;
* fetching ops resume the initiator one more one-way latency later (plus
  payload streaming for gets);
* non-blocking ops (``put_nb``, ``amo_add_nb``) resume the initiator after
  the injection overhead only; :meth:`quiet` blocks until every
  outstanding non-blocking op from that PE has been applied remotely.

Every operation is tallied in :class:`~repro.fabric.metrics.FabricMetrics`.
"""

from __future__ import annotations

from typing import Any, Callable

from .engine import Call, Engine, Process
from .errors import SimulationError
from .latency import LatencyModel
from .memory import SymmetricHeap
from .metrics import FabricMetrics
from .topology import Topology

WORD_BYTES = 8


class Nic:
    """Simulated RDMA network interface shared by all PEs."""

    def __init__(
        self,
        engine: Engine,
        heap: SymmetricHeap,
        topology: Topology,
        latency: LatencyModel,
        metrics: FabricMetrics | None = None,
        jitter_seed: int = 0,
    ) -> None:
        if heap.npes != topology.npes:
            raise SimulationError(
                f"heap has {heap.npes} PEs but topology has {topology.npes}"
            )
        self.engine = engine
        self.heap = heap
        self.topology = topology
        self.latency = latency
        self.metrics = metrics or FabricMetrics(heap.npes)
        # Per-target serialization points for the NIC atomic and read units.
        self._amo_busy_until = [0.0] * heap.npes
        self._get_busy_until = [0.0] * heap.npes
        # Per-PE link (DMA engine) occupancy, used when link_serialize is on.
        self._link_busy_until = [0.0] * heap.npes
        # Outstanding non-blocking ops per initiator, for quiet().
        self._outstanding = [0] * heap.npes
        self._quiet_waiters: dict[int, list[Process]] = {}
        # Deterministic jitter stream: counter hashed with the seed, so a
        # given (seed, op sequence) always reproduces the same delays.
        self._jitter_seed = jitter_seed
        self._jitter_counter = 0

    # ------------------------------------------------------------------
    # latency helpers
    # ------------------------------------------------------------------
    def _one_way(self, a: int, b: int) -> float:
        lat = self.latency
        if a == b:
            base = lat.half_rtt_intra * lat.local_penalty
        else:
            base = lat.one_way(self.topology.same_node(a, b))
        if lat.jitter:
            # splitmix64-style hash of (seed, counter) -> u in [0, 1).
            self._jitter_counter += 1
            z = (self._jitter_seed * 0x9E3779B97F4A7C15 + self._jitter_counter
                 * 0xBF58476D1CE4E5B9) & ((1 << 64) - 1)
            z ^= z >> 31
            z = (z * 0x94D049BB133111EB) & ((1 << 64) - 1)
            z ^= z >> 29
            u = z / float(1 << 64)
            base *= 1.0 + lat.jitter * u
        return base

    def _serialize(self, busy: list[float], target: int, arrival: float, cost: float) -> float:
        """Queue behind the target NIC unit; return completion time there."""
        start = max(arrival, busy[target])
        done = start + cost
        busy[target] = done
        return done

    # ------------------------------------------------------------------
    # fetching atomics (blocking round trip)
    # ------------------------------------------------------------------
    def amo_fetch_add(self, initiator: int, target: int, region: str, offset: int, delta: int) -> Call:
        """Atomic fetch-and-add on a remote 64-bit word; yields the old value."""
        return self._fetch_amo(initiator, target, region, offset, "amo_fetch_add",
                               lambda: self.heap.fetch_add(target, region, offset, delta))

    def amo_swap(self, initiator: int, target: int, region: str, offset: int, value: int) -> Call:
        """Atomic swap on a remote word; yields the old value."""
        return self._fetch_amo(initiator, target, region, offset, "amo_swap",
                               lambda: self.heap.swap(target, region, offset, value))

    def amo_cas(self, initiator: int, target: int, region: str, offset: int,
                expected: int, desired: int) -> Call:
        """Atomic compare-and-swap; yields the old value."""
        return self._fetch_amo(initiator, target, region, offset, "amo_cas",
                               lambda: self.heap.compare_swap(target, region, offset, expected, desired))

    def amo_fetch(self, initiator: int, target: int, region: str, offset: int) -> Call:
        """Atomic read of a remote word (steal-damping probe); yields the value."""
        return self._fetch_amo(initiator, target, region, offset, "amo_fetch",
                               lambda: self.heap.load(target, region, offset))

    def _fetch_amo(self, initiator: int, target: int, region: str, offset: int,
                   kind: str, apply: Callable[[], int]) -> Call:
        def handler(engine: Engine, proc: Process) -> None:
            self.metrics.record(engine.now, initiator, target, kind, WORD_BYTES)
            arrival = engine.now + self.latency.alpha_sw + self._one_way(initiator, target)

            def at_target() -> None:
                done = self._serialize(
                    self._amo_busy_until, target, engine.now, self.latency.amo_process
                )
                value = apply()
                back = self._one_way(target, initiator)
                engine.at(done + back, lambda: engine._step(proc, value))

            engine.at(arrival, at_target)

        return Call(handler)

    # ------------------------------------------------------------------
    # non-blocking atomic (completion signalling)
    # ------------------------------------------------------------------
    def amo_add_nb(self, initiator: int, target: int, region: str, offset: int, delta: int) -> Call:
        """Non-blocking atomic add; initiator resumes after injection only."""
        def handler(engine: Engine, proc: Process) -> None:
            self.metrics.record(engine.now, initiator, target, "amo_add_nb", WORD_BYTES)
            self._outstanding[initiator] += 1
            arrival = engine.now + self.latency.alpha_sw + self._one_way(initiator, target)

            def at_target() -> None:
                self._serialize(
                    self._amo_busy_until, target, engine.now, self.latency.amo_process
                )
                self.heap.fetch_add(target, region, offset, delta)
                self._complete_nb(initiator)

            engine.at(arrival, at_target)
            engine.resume(proc, None, delay=self.latency.alpha_sw)

        return Call(handler)

    # ------------------------------------------------------------------
    # gets (blocking)
    # ------------------------------------------------------------------
    def get_words(self, initiator: int, target: int, region: str, offset: int, count: int) -> Call:
        """Blocking read of consecutive remote words; yields list[int]."""
        return self._get(initiator, target, count * WORD_BYTES,
                         lambda: self.heap.load_words(target, region, offset, count))

    def get_word(self, initiator: int, target: int, region: str, offset: int) -> Call:
        """Blocking read of one remote word; yields int."""
        return self._get(initiator, target, WORD_BYTES,
                         lambda: self.heap.load(target, region, offset))

    def get_bytes(self, initiator: int, target: int, region: str, offset: int, count: int) -> Call:
        """Blocking read of remote bytes; yields bytes."""
        return self._get(initiator, target, count,
                         lambda: self.heap.read_bytes(target, region, offset, count))

    def _get(self, initiator: int, target: int, nbytes: int, read: Callable[[], Any]) -> Call:
        def handler(engine: Engine, proc: Process) -> None:
            self.metrics.record(engine.now, initiator, target, "get", nbytes)
            arrival = engine.now + self.latency.alpha_sw + self._one_way(initiator, target)

            def at_target() -> None:
                done = self._serialize(
                    self._get_busy_until, target, engine.now, self.latency.get_process
                )
                value = read()
                stream = self.latency.payload_time(nbytes)
                if self.latency.link_serialize:
                    # The response payload occupies the target's egress
                    # link; concurrent bulk reads of one victim serialize.
                    done = self._serialize(
                        self._link_busy_until, target, done, stream
                    )
                    back = self._one_way(target, initiator)
                else:
                    back = self._one_way(target, initiator) + stream
                engine.at(done + back, lambda: engine._step(proc, value))

            engine.at(arrival, at_target)

        return Call(handler)

    # ------------------------------------------------------------------
    # puts
    # ------------------------------------------------------------------
    def put_word(self, initiator: int, target: int, region: str, offset: int, value: int) -> Call:
        """Blocking write of one remote word (acked round trip)."""
        return self._put(initiator, target, WORD_BYTES, blocking=True,
                         write=lambda: self.heap.store(target, region, offset, value))

    def put_words(self, initiator: int, target: int, region: str, offset: int, values: list[int]) -> Call:
        """Blocking write of consecutive remote words."""
        return self._put(initiator, target, len(values) * WORD_BYTES, blocking=True,
                         write=lambda: self.heap.store_words(target, region, offset, values))

    def put_bytes_nb(self, initiator: int, target: int, region: str, offset: int, data: bytes) -> Call:
        """Non-blocking write of remote bytes (complete after quiet)."""
        return self._put(initiator, target, len(data), blocking=False,
                         write=lambda: self.heap.write_bytes(target, region, offset, data))

    def put_word_nb(self, initiator: int, target: int, region: str, offset: int, value: int) -> Call:
        """Non-blocking write of one remote word."""
        return self._put(initiator, target, WORD_BYTES, blocking=False,
                         write=lambda: self.heap.store(target, region, offset, value))

    def _put(self, initiator: int, target: int, nbytes: int, blocking: bool,
             write: Callable[[], None]) -> Call:
        kind = "put" if blocking else "put_nb"

        def handler(engine: Engine, proc: Process) -> None:
            self.metrics.record(engine.now, initiator, target, kind, nbytes)
            inject = self.latency.alpha_sw + self.latency.payload_time(nbytes)
            arrival = engine.now + inject + self._one_way(initiator, target)

            stream = self.latency.payload_time(nbytes)

            def apply_write() -> float:
                """Write at the target, honouring link occupancy."""
                if self.latency.link_serialize and stream > 0:
                    done = self._serialize(
                        self._link_busy_until, target, engine.now, stream
                    )
                else:
                    done = engine.now
                if done > engine.now:
                    engine.at(done, write)
                else:
                    write()
                return done

            if blocking:
                def at_target() -> None:
                    done = apply_write()
                    back = self._one_way(target, initiator)
                    engine.at(done + back, lambda: engine._step(proc, None))

                engine.at(arrival, at_target)
            else:
                self._outstanding[initiator] += 1

                def at_target_nb() -> None:
                    done = apply_write()
                    if done > engine.now:
                        engine.at(done, lambda: self._complete_nb(initiator))
                    else:
                        self._complete_nb(initiator)

                engine.at(arrival, at_target_nb)
                engine.resume(proc, None, delay=inject)

        return Call(handler)

    def put_signal_nb(
        self,
        initiator: int,
        target: int,
        region: str,
        offset: int,
        data: bytes,
        sig_region: str,
        sig_offset: int,
        sig_value: int,
    ) -> Call:
        """Non-blocking put-with-signal (OpenSHMEM 1.5 ``put_signal``).

        The payload and the signal word travel as one message: at arrival
        the data is written and then the signal word is atomically set,
        in that order — so a consumer observing the signal is guaranteed
        to see the payload.  Replaces a put + quiet + atomic triple with
        a single communication.
        """

        def handler(engine: Engine, proc: Process) -> None:
            nbytes = len(data) + WORD_BYTES
            self.metrics.record(engine.now, initiator, target, "put_signal", nbytes)
            self._outstanding[initiator] += 1
            inject = self.latency.alpha_sw + self.latency.payload_time(nbytes)
            arrival = engine.now + inject + self._one_way(initiator, target)

            def at_target() -> None:
                self.heap.write_bytes(target, region, offset, data)
                self.heap.store(target, sig_region, sig_offset, sig_value)
                self._complete_nb(initiator)

            engine.at(arrival, at_target)
            engine.resume(proc, None, delay=inject)

        return Call(handler)

    # ------------------------------------------------------------------
    # completion / ordering
    # ------------------------------------------------------------------
    def quiet(self, pe: int) -> Call:
        """Block until all outstanding non-blocking ops from ``pe`` applied."""
        def handler(engine: Engine, proc: Process) -> None:
            if self._outstanding[pe] == 0:
                engine.resume(proc, None)
            else:
                self._quiet_waiters.setdefault(pe, []).append(proc)

        return Call(handler)

    def _complete_nb(self, initiator: int) -> None:
        self._outstanding[initiator] -= 1
        if self._outstanding[initiator] < 0:
            raise SimulationError("non-blocking completion underflow")
        if self._outstanding[initiator] == 0:
            for proc in self._quiet_waiters.pop(initiator, []):
                self.engine.resume(proc, None)

    def pending_ops(self, pe: int) -> int:
        """Outstanding non-blocking operations issued by ``pe``."""
        return self._outstanding[pe]
