"""Exception hierarchy for the simulated RDMA fabric.

Every error raised by :mod:`repro.fabric` derives from :class:`FabricError`
so callers can catch substrate failures without masking programming errors
in the runtime layers above.
"""

from __future__ import annotations


class FabricError(Exception):
    """Base class for all fabric-level errors."""


class AddressError(FabricError):
    """An operation referenced memory outside a registered region."""


class RegionError(FabricError):
    """A symmetric region was redefined, missing, or shape-mismatched."""


class AlignmentError(FabricError):
    """A word-granularity operation used a misaligned byte offset."""


class PEIndexError(FabricError):
    """A processing-element index was outside ``[0, npes)``."""


class SimulationError(FabricError):
    """The discrete-event engine reached an inconsistent state."""


class DeadlockError(SimulationError):
    """All live processes are blocked and no events remain."""


class ProtocolError(FabricError):
    """A queue protocol invariant was violated (corrupt metadata, etc.)."""
