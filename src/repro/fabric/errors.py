"""Exception hierarchy for the simulated RDMA fabric.

Every error raised by :mod:`repro.fabric` derives from :class:`FabricError`
so callers can catch substrate failures without masking programming errors
in the runtime layers above.
"""

from __future__ import annotations


class FabricError(Exception):
    """Base class for all fabric-level errors."""


class AddressError(FabricError):
    """An operation referenced memory outside a registered region."""


class RegionError(FabricError):
    """A symmetric region was redefined, missing, or shape-mismatched."""


class AlignmentError(FabricError):
    """A word-granularity operation used a misaligned byte offset."""


class PEIndexError(FabricError):
    """A processing-element index was outside ``[0, npes)``."""


class SimulationError(FabricError):
    """The discrete-event engine reached an inconsistent state."""


class DeadlockError(SimulationError):
    """All live processes are blocked and no events remain.

    The message lists every stuck process with the request it is blocked
    on (op kind, target PE, address) plus any registered engine
    diagnostics — e.g. the NIC's per-PE outstanding-op and ``quiet()``
    waiter counts — so a wedged protocol can be diagnosed from the
    traceback alone.
    """


class FabricTimeoutError(FabricError):
    """A blocking fabric operation exceeded its per-op timeout.

    Raised inside the initiating process when a timed NIC operation
    (``amo_*``, ``get_*``, ``put_*`` or a timed ``quiet()``) did not
    complete within ``op_timeout`` virtual seconds.  The NIC cancels the
    in-flight descriptor when the timeout fires: a timed-out operation is
    guaranteed to **never** have been (nor ever be) applied at the
    target, so callers may safely retry without risking duplicate
    side effects.
    """

    def __init__(
        self,
        message: str,
        *,
        initiator: int = -1,
        target: int = -1,
        kind: str = "",
    ) -> None:
        super().__init__(message)
        self.initiator = initiator
        self.target = target
        self.kind = kind


class ProtocolError(FabricError):
    """A queue protocol invariant was violated (corrupt metadata, etc.)."""


class OracleViolation(ProtocolError):
    """An invariant oracle caught a cross-PE protocol violation.

    Raised by :mod:`repro.runtime.oracle` (and the queue classes' per-event
    ``oracle_check`` hooks) during schedule exploration.  ``check`` names
    the violated invariant; ``pe`` the owning PE (or ``None`` for global
    invariants like task conservation).
    """

    def __init__(self, check: str, detail: str, pe: int | None = None) -> None:
        where = f"PE {pe}: " if pe is not None else ""
        super().__init__(f"[{check}] {where}{detail}")
        self.check = check
        self.pe = pe
        self.detail = detail
