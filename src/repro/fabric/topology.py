"""Cluster topology: placement of PEs onto nodes.

The paper's testbed packs 48 cores per node across 44 nodes.  The topology
object answers one question the latency model needs — *do two PEs share a
node?* — and provides helpers for iterating node neighbourhoods (used by
locality-aware victim selectors).
"""

from __future__ import annotations

from dataclasses import dataclass

from .errors import PEIndexError


@dataclass(frozen=True)
class Topology:
    """Blocked placement of ``npes`` processing elements onto nodes.

    PEs ``[k * pes_per_node, (k+1) * pes_per_node)`` live on node ``k``.
    The last node may be partially filled.
    """

    npes: int
    pes_per_node: int = 48

    def __post_init__(self) -> None:
        if self.npes <= 0:
            raise ValueError(f"npes must be positive, got {self.npes}")
        if self.pes_per_node <= 0:
            raise ValueError(
                f"pes_per_node must be positive, got {self.pes_per_node}"
            )

    @property
    def nnodes(self) -> int:
        """Number of (possibly partially filled) nodes."""
        return -(-self.npes // self.pes_per_node)

    def check_pe(self, pe: int) -> None:
        """Raise :class:`PEIndexError` unless ``pe`` is a valid PE index."""
        if not 0 <= pe < self.npes:
            raise PEIndexError(f"PE {pe} out of range [0, {self.npes})")

    def node_of(self, pe: int) -> int:
        """Node index hosting ``pe``."""
        self.check_pe(pe)
        return pe // self.pes_per_node

    def same_node(self, a: int, b: int) -> bool:
        """True when PEs ``a`` and ``b`` share a node."""
        return self.node_of(a) == self.node_of(b)

    def pes_on_node(self, node: int) -> range:
        """PE indices resident on ``node``."""
        if not 0 <= node < self.nnodes:
            raise PEIndexError(f"node {node} out of range [0, {self.nnodes})")
        lo = node * self.pes_per_node
        hi = min(lo + self.pes_per_node, self.npes)
        return range(lo, hi)

    def local_peers(self, pe: int) -> list[int]:
        """Other PEs on the same node as ``pe``."""
        return [p for p in self.pes_on_node(self.node_of(pe)) if p != pe]
