"""Cluster topology: placement of PEs onto nodes.

The paper's testbed packs 48 cores per node across 44 nodes.  The topology
object answers one question the latency model needs — *do two PEs share a
node?* — and provides helpers for iterating node neighbourhoods (used by
locality-aware victim selectors).
"""

from __future__ import annotations

from dataclasses import dataclass

from .errors import PEIndexError


@dataclass(frozen=True)
class Topology:
    """Blocked placement of ``npes`` processing elements onto nodes.

    PEs ``[k * pes_per_node, (k+1) * pes_per_node)`` live on node ``k``.
    The last node may be partially filled.
    """

    npes: int
    pes_per_node: int = 48

    def __post_init__(self) -> None:
        if self.npes <= 0:
            raise ValueError(f"npes must be positive, got {self.npes}")
        if self.pes_per_node <= 0:
            raise ValueError(
                f"pes_per_node must be positive, got {self.pes_per_node}"
            )

    @property
    def nnodes(self) -> int:
        """Number of (possibly partially filled) nodes."""
        return -(-self.npes // self.pes_per_node)

    def check_pe(self, pe: int) -> None:
        """Raise :class:`PEIndexError` unless ``pe`` is a valid PE index."""
        if not 0 <= pe < self.npes:
            raise PEIndexError(f"PE {pe} out of range [0, {self.npes})")

    def node_of(self, pe: int) -> int:
        """Node index hosting ``pe``."""
        self.check_pe(pe)
        return pe // self.pes_per_node

    def same_node(self, a: int, b: int) -> bool:
        """True when PEs ``a`` and ``b`` share a node."""
        return self.node_of(a) == self.node_of(b)

    def pes_on_node(self, node: int) -> range:
        """PE indices resident on ``node``."""
        if not 0 <= node < self.nnodes:
            raise PEIndexError(f"node {node} out of range [0, {self.nnodes})")
        lo = node * self.pes_per_node
        hi = min(lo + self.pes_per_node, self.npes)
        return range(lo, hi)

    def local_peers(self, pe: int) -> list[int]:
        """Other PEs on the same node as ``pe``."""
        return [p for p in self.pes_on_node(self.node_of(pe)) if p != pe]


@dataclass(frozen=True)
class TieredTopology(Topology):
    """Blocked placement with socket and rack tiers (localized stealing).

    Extends the node-level :class:`Topology` with two more levels of the
    physical hierarchy: each node is split into ``pes_per_socket``-sized
    sockets, and nodes are grouped ``nodes_per_rack`` to a rack.  The
    tier distance between two PEs drives both the tiered latency model
    and tier-biased victim selection:

    ====  =========================
    tier  meaning
    ====  =========================
    0     same socket (or self)
    1     same node, other socket
    2     same rack, other node
    3     other rack
    ====  =========================
    """

    pes_per_socket: int = 24
    nodes_per_rack: int = 4

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.pes_per_socket <= 0:
            raise ValueError(
                f"pes_per_socket must be positive, got {self.pes_per_socket}"
            )
        if self.pes_per_socket > self.pes_per_node:
            raise ValueError(
                f"pes_per_socket={self.pes_per_socket} exceeds "
                f"pes_per_node={self.pes_per_node}"
            )
        if self.nodes_per_rack <= 0:
            raise ValueError(
                f"nodes_per_rack must be positive, got {self.nodes_per_rack}"
            )

    def socket_of(self, pe: int) -> int:
        """Global socket index hosting ``pe``."""
        self.check_pe(pe)
        node = pe // self.pes_per_node
        sockets_per_node = -(-self.pes_per_node // self.pes_per_socket)
        return node * sockets_per_node + (
            (pe % self.pes_per_node) // self.pes_per_socket
        )

    def rack_of(self, pe: int) -> int:
        """Rack index hosting ``pe``."""
        return self.node_of(pe) // self.nodes_per_rack

    def same_socket(self, a: int, b: int) -> bool:
        """True when PEs ``a`` and ``b`` share a socket."""
        return self.socket_of(a) == self.socket_of(b)

    def same_rack(self, a: int, b: int) -> bool:
        """True when PEs ``a`` and ``b`` share a rack."""
        return self.rack_of(a) == self.rack_of(b)

    def tier(self, a: int, b: int) -> int:
        """Hierarchy distance between two PEs (0..3, see class docs)."""
        if self.same_node(a, b):
            return 0 if self.same_socket(a, b) else 1
        return 2 if self.same_rack(a, b) else 3
