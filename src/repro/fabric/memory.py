"""Symmetric-heap memory model.

OpenSHMEM exposes a *symmetric heap*: every PE allocates the same regions
at the same offsets, so a remote address is fully described by
``(pe, region, offset)``.  This module implements that heap with plain
Python storage chosen for scalar access speed:

* **word regions** — per-PE ``list[int]`` of unsigned 64-bit words, the
  unit of atomic operations (OpenSHMEM atomics operate on values up to 64
  bits, which is exactly the constraint the stealval design lives within);
* **byte regions** — per-PE ``bytearray`` buffers used for task payload
  storage.

Plain lists beat a numpy matrix here because every access is a single
scalar: ``int(arr[pe, off])`` costs a numpy scalar box + unbox per call,
while ``row[off]`` is one C-level list index.  (The heap is the hottest
data structure in the simulator — every queue operation, steal, and
termination probe lands here.)

All mutation goes through methods on :class:`SymmetricHeap`; the NIC layer
invokes these *at message-arrival virtual time*, so the heap itself needs
no locking — event ordering is the serialization.  Hot *local* readers may
take a direct :meth:`word_view`/:meth:`byte_view` on their own PE's row;
views must be treated as read-only by general code because writes through
a view bypass both bounds checks and ``shmem_wait_until`` waiter
notification (the queue layer writes task payload bytes through views —
byte regions never carry waiters).
"""

from __future__ import annotations

from dataclasses import dataclass

from typing import Callable

from .errors import AddressError, PEIndexError, RegionError

_U64_MASK = (1 << 64) - 1

#: Waiter callback: invoked with the word's new value after a mutation.
#: Return True to deregister (condition satisfied).
WordWaiter = Callable[[int], bool]


@dataclass(frozen=True)
class RegionSpec:
    """Shape of one symmetric region."""

    name: str
    kind: str  # "words" | "bytes"
    length: int  # words or bytes, per PE

    def __post_init__(self) -> None:
        if self.kind not in ("words", "bytes"):
            raise RegionError(f"region kind must be words|bytes, got {self.kind!r}")
        if self.length <= 0:
            raise RegionError(f"region {self.name!r} length must be positive")


class SymmetricHeap:
    """Per-PE symmetric memory, addressed by ``(pe, region, offset)``."""

    def __init__(self, npes: int) -> None:
        if npes <= 0:
            raise PEIndexError(f"npes must be positive, got {npes}")
        self.npes = npes
        #: region name -> per-PE rows of 64-bit words.
        self._words: dict[str, list[list[int]]] = {}
        #: region name -> per-PE byte buffers.
        self._bytes: dict[str, list[bytearray]] = {}
        self._specs: dict[str, RegionSpec] = {}
        # Waiters for shmem_wait_until: (pe, region, offset) -> callbacks.
        self._waiters: dict[tuple[int, str, int], list[WordWaiter]] = {}

    # ------------------------------------------------------------------
    # allocation
    # ------------------------------------------------------------------
    def alloc_words(self, name: str, nwords: int, fill: int = 0) -> RegionSpec:
        """Allocate a symmetric array of ``nwords`` 64-bit words on every PE."""
        spec = RegionSpec(name, "words", nwords)
        self._register(spec)
        fill &= _U64_MASK
        self._words[name] = [[fill] * nwords for _ in range(self.npes)]
        return spec

    def alloc_bytes(self, name: str, nbytes: int) -> RegionSpec:
        """Allocate a symmetric byte buffer of ``nbytes`` on every PE."""
        spec = RegionSpec(name, "bytes", nbytes)
        self._register(spec)
        self._bytes[name] = [bytearray(nbytes) for _ in range(self.npes)]
        return spec

    def _register(self, spec: RegionSpec) -> None:
        if spec.name in self._specs:
            raise RegionError(f"region {spec.name!r} already allocated")
        self._specs[spec.name] = spec

    def spec(self, name: str) -> RegionSpec:
        """Return the :class:`RegionSpec` for ``name``."""
        try:
            return self._specs[name]
        except KeyError:
            raise RegionError(f"no such region: {name!r}") from None

    # ------------------------------------------------------------------
    # bounds checking
    # ------------------------------------------------------------------
    def _check_pe(self, pe: int) -> None:
        if not 0 <= pe < self.npes:
            raise PEIndexError(f"PE {pe} out of range [0, {self.npes})")

    def _word_row(self, pe: int, region: str, offset: int, count: int = 1) -> list[int]:
        if not 0 <= pe < self.npes:
            raise PEIndexError(f"PE {pe} out of range [0, {self.npes})")
        try:
            row = self._words[region][pe]
        except KeyError:
            raise RegionError(f"no word region {region!r}") from None
        if not (0 <= offset and offset + count <= len(row)):
            raise AddressError(
                f"word access [{offset}, {offset + count}) exceeds region "
                f"{region!r} of {len(row)} words"
            )
        return row

    def _byte_row(self, pe: int, region: str, offset: int, count: int) -> bytearray:
        if not 0 <= pe < self.npes:
            raise PEIndexError(f"PE {pe} out of range [0, {self.npes})")
        try:
            buf = self._bytes[region][pe]
        except KeyError:
            raise RegionError(f"no byte region {region!r}") from None
        if not (0 <= offset and offset + count <= len(buf)):
            raise AddressError(
                f"byte access [{offset}, {offset + count}) exceeds region "
                f"{region!r} of {len(buf)} bytes"
            )
        return buf

    # ------------------------------------------------------------------
    # direct views (hot local fast path)
    # ------------------------------------------------------------------
    def word_view(self, pe: int, region: str) -> list[int]:
        """The live word row for ``(pe, region)`` — read-only by contract.

        Local hot paths (queue owners reading their own metadata) index
        this list directly, skipping per-access bounds checks.  Writing
        through the view would bypass waiter notification; mutate via
        :meth:`store`/:meth:`fetch_add` instead.
        """
        self._check_pe(pe)
        try:
            return self._words[region][pe]
        except KeyError:
            raise RegionError(f"no word region {region!r}") from None

    def byte_view(self, pe: int, region: str) -> bytearray:
        """The live byte buffer for ``(pe, region)``.

        Byte regions carry no waiters, so the queue layer both reads and
        writes task payload slots through this view (slot arithmetic
        guarantees bounds).
        """
        self._check_pe(pe)
        try:
            return self._bytes[region][pe]
        except KeyError:
            raise RegionError(f"no byte region {region!r}") from None

    # ------------------------------------------------------------------
    # word operations (atomic unit)
    # ------------------------------------------------------------------
    # The scalar ops below inline _word_row's checks: they are the
    # hottest calls in the simulator (every queue op, steal, and
    # termination probe is one of these), and the extra call frame per
    # access is measurable at fig7 scale.  Bounds/requirement errors are
    # byte-identical to _word_row's.

    def load(self, pe: int, region: str, offset: int) -> int:
        """Read one 64-bit word."""
        if not 0 <= pe < self.npes:
            raise PEIndexError(f"PE {pe} out of range [0, {self.npes})")
        try:
            row = self._words[region][pe]
        except KeyError:
            raise RegionError(f"no word region {region!r}") from None
        if not 0 <= offset < len(row):
            raise AddressError(
                f"word access [{offset}, {offset + 1}) exceeds region "
                f"{region!r} of {len(row)} words"
            )
        return row[offset]

    def store(self, pe: int, region: str, offset: int, value: int) -> None:
        """Write one 64-bit word (value is masked to 64 bits)."""
        if not 0 <= pe < self.npes:
            raise PEIndexError(f"PE {pe} out of range [0, {self.npes})")
        try:
            row = self._words[region][pe]
        except KeyError:
            raise RegionError(f"no word region {region!r}") from None
        if not 0 <= offset < len(row):
            raise AddressError(
                f"word access [{offset}, {offset + 1}) exceeds region "
                f"{region!r} of {len(row)} words"
            )
        value &= _U64_MASK
        row[offset] = value
        if self._waiters:
            self._notify(pe, region, offset, value)

    def fetch_add(self, pe: int, region: str, offset: int, delta: int) -> int:
        """Atomic fetch-and-add; returns the *old* value.  Wraps mod 2^64."""
        if not 0 <= pe < self.npes:
            raise PEIndexError(f"PE {pe} out of range [0, {self.npes})")
        try:
            row = self._words[region][pe]
        except KeyError:
            raise RegionError(f"no word region {region!r}") from None
        if not 0 <= offset < len(row):
            raise AddressError(
                f"word access [{offset}, {offset + 1}) exceeds region "
                f"{region!r} of {len(row)} words"
            )
        old = row[offset]
        row[offset] = new = (old + delta) & _U64_MASK
        if self._waiters:
            self._notify(pe, region, offset, new)
        return old

    def swap(self, pe: int, region: str, offset: int, value: int) -> int:
        """Atomic swap; returns the old value."""
        if not 0 <= pe < self.npes:
            raise PEIndexError(f"PE {pe} out of range [0, {self.npes})")
        try:
            row = self._words[region][pe]
        except KeyError:
            raise RegionError(f"no word region {region!r}") from None
        if not 0 <= offset < len(row):
            raise AddressError(
                f"word access [{offset}, {offset + 1}) exceeds region "
                f"{region!r} of {len(row)} words"
            )
        value &= _U64_MASK
        old = row[offset]
        row[offset] = value
        if self._waiters:
            self._notify(pe, region, offset, value)
        return old

    def compare_swap(
        self, pe: int, region: str, offset: int, expected: int, desired: int
    ) -> int:
        """Atomic compare-and-swap; returns the old value (match ⇒ stored)."""
        if not 0 <= pe < self.npes:
            raise PEIndexError(f"PE {pe} out of range [0, {self.npes})")
        try:
            row = self._words[region][pe]
        except KeyError:
            raise RegionError(f"no word region {region!r}") from None
        if not 0 <= offset < len(row):
            raise AddressError(
                f"word access [{offset}, {offset + 1}) exceeds region "
                f"{region!r} of {len(row)} words"
            )
        old = row[offset]
        if old == (expected & _U64_MASK):
            desired &= _U64_MASK
            row[offset] = desired
            if self._waiters:
                self._notify(pe, region, offset, desired)
        return old

    def load_words(self, pe: int, region: str, offset: int, count: int) -> list[int]:
        """Read ``count`` consecutive words (one get on the wire)."""
        row = self._word_row(pe, region, offset, count)
        return row[offset : offset + count]

    def store_words(self, pe: int, region: str, offset: int, values: list[int]) -> None:
        """Write consecutive words."""
        row = self._word_row(pe, region, offset, len(values))
        masked = [v & _U64_MASK for v in values]
        row[offset : offset + len(masked)] = masked
        if self._waiters:
            for i, v in enumerate(masked):
                self._notify(pe, region, offset + i, v)

    # ------------------------------------------------------------------
    # word waiters (shmem_wait_until support)
    # ------------------------------------------------------------------
    def add_waiter(self, pe: int, region: str, offset: int, waiter: WordWaiter) -> None:
        """Register a callback fired on every mutation of one word.

        The callback receives the new value and returns True once its
        condition is met, which removes it.  This is the mechanism behind
        ``shmem_wait_until`` — hardware wakes the waiter on a remote
        write instead of the waiter burning poll cycles.
        """
        self._word_row(pe, region, offset)  # validate the address
        self._waiters.setdefault((pe, region, offset), []).append(waiter)

    def _notify(self, pe: int, region: str, offset: int, new_value: int) -> None:
        key = (pe, region, offset)
        waiters = self._waiters.get(key)
        if not waiters:
            return
        remaining = [w for w in waiters if not w(new_value)]
        if remaining:
            self._waiters[key] = remaining
        else:
            del self._waiters[key]

    # ------------------------------------------------------------------
    # byte operations (payload)
    # ------------------------------------------------------------------
    def read_bytes(self, pe: int, region: str, offset: int, count: int) -> bytes:
        """Read ``count`` bytes."""
        buf = self._byte_row(pe, region, offset, count)
        return bytes(buf[offset : offset + count])

    def write_bytes(self, pe: int, region: str, offset: int, data: bytes) -> None:
        """Write a byte string."""
        buf = self._byte_row(pe, region, offset, len(data))
        buf[offset : offset + len(data)] = data
