"""Symmetric-heap memory model.

OpenSHMEM exposes a *symmetric heap*: every PE allocates the same regions
at the same offsets, so a remote address is fully described by
``(pe, region, offset)``.  This module implements that heap with
numpy-backed storage:

* **word regions** — arrays of unsigned 64-bit words, the unit of atomic
  operations (OpenSHMEM atomics operate on values up to 64 bits, which is
  exactly the constraint the stealval design lives within);
* **byte regions** — raw ``uint8`` buffers used for task payload storage.

All mutation goes through methods on :class:`SymmetricHeap`; the NIC layer
invokes these *at message-arrival virtual time*, so the heap itself needs
no locking — event ordering is the serialization.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from typing import Callable

from .errors import AddressError, PEIndexError, RegionError

_U64_MASK = (1 << 64) - 1

#: Waiter callback: invoked with the word's new value after a mutation.
#: Return True to deregister (condition satisfied).
WordWaiter = Callable[[int], bool]


@dataclass(frozen=True)
class RegionSpec:
    """Shape of one symmetric region."""

    name: str
    kind: str  # "words" | "bytes"
    length: int  # words or bytes, per PE

    def __post_init__(self) -> None:
        if self.kind not in ("words", "bytes"):
            raise RegionError(f"region kind must be words|bytes, got {self.kind!r}")
        if self.length <= 0:
            raise RegionError(f"region {self.name!r} length must be positive")


class SymmetricHeap:
    """Per-PE symmetric memory, addressed by ``(pe, region, offset)``."""

    def __init__(self, npes: int) -> None:
        if npes <= 0:
            raise PEIndexError(f"npes must be positive, got {npes}")
        self.npes = npes
        self._words: dict[str, np.ndarray] = {}
        self._bytes: dict[str, np.ndarray] = {}
        self._specs: dict[str, RegionSpec] = {}
        # Waiters for shmem_wait_until: (pe, region, offset) -> callbacks.
        self._waiters: dict[tuple[int, str, int], list[WordWaiter]] = {}

    # ------------------------------------------------------------------
    # allocation
    # ------------------------------------------------------------------
    def alloc_words(self, name: str, nwords: int, fill: int = 0) -> RegionSpec:
        """Allocate a symmetric array of ``nwords`` 64-bit words on every PE."""
        spec = RegionSpec(name, "words", nwords)
        self._register(spec)
        arr = np.full((self.npes, nwords), fill & _U64_MASK, dtype=np.uint64)
        self._words[name] = arr
        return spec

    def alloc_bytes(self, name: str, nbytes: int) -> RegionSpec:
        """Allocate a symmetric byte buffer of ``nbytes`` on every PE."""
        spec = RegionSpec(name, "bytes", nbytes)
        self._register(spec)
        self._bytes[name] = np.zeros((self.npes, nbytes), dtype=np.uint8)
        return spec

    def _register(self, spec: RegionSpec) -> None:
        if spec.name in self._specs:
            raise RegionError(f"region {spec.name!r} already allocated")
        self._specs[spec.name] = spec

    def spec(self, name: str) -> RegionSpec:
        """Return the :class:`RegionSpec` for ``name``."""
        try:
            return self._specs[name]
        except KeyError:
            raise RegionError(f"no such region: {name!r}") from None

    # ------------------------------------------------------------------
    # bounds checking
    # ------------------------------------------------------------------
    def _check_pe(self, pe: int) -> None:
        if not 0 <= pe < self.npes:
            raise PEIndexError(f"PE {pe} out of range [0, {self.npes})")

    def _word_region(self, pe: int, region: str, offset: int, count: int = 1) -> np.ndarray:
        self._check_pe(pe)
        try:
            arr = self._words[region]
        except KeyError:
            raise RegionError(f"no word region {region!r}") from None
        if not (0 <= offset and offset + count <= arr.shape[1]):
            raise AddressError(
                f"word access [{offset}, {offset + count}) exceeds region "
                f"{region!r} of {arr.shape[1]} words"
            )
        return arr

    def _byte_region(self, pe: int, region: str, offset: int, count: int) -> np.ndarray:
        self._check_pe(pe)
        try:
            arr = self._bytes[region]
        except KeyError:
            raise RegionError(f"no byte region {region!r}") from None
        if not (0 <= offset and offset + count <= arr.shape[1]):
            raise AddressError(
                f"byte access [{offset}, {offset + count}) exceeds region "
                f"{region!r} of {arr.shape[1]} bytes"
            )
        return arr

    # ------------------------------------------------------------------
    # word operations (atomic unit)
    # ------------------------------------------------------------------
    def load(self, pe: int, region: str, offset: int) -> int:
        """Read one 64-bit word."""
        arr = self._word_region(pe, region, offset)
        return int(arr[pe, offset])

    def store(self, pe: int, region: str, offset: int, value: int) -> None:
        """Write one 64-bit word (value is masked to 64 bits)."""
        arr = self._word_region(pe, region, offset)
        arr[pe, offset] = value & _U64_MASK
        self._notify(pe, region, offset, value & _U64_MASK)

    def fetch_add(self, pe: int, region: str, offset: int, delta: int) -> int:
        """Atomic fetch-and-add; returns the *old* value.  Wraps mod 2^64."""
        arr = self._word_region(pe, region, offset)
        old = int(arr[pe, offset])
        new = (old + delta) & _U64_MASK
        arr[pe, offset] = new
        self._notify(pe, region, offset, new)
        return old

    def swap(self, pe: int, region: str, offset: int, value: int) -> int:
        """Atomic swap; returns the old value."""
        arr = self._word_region(pe, region, offset)
        old = int(arr[pe, offset])
        arr[pe, offset] = value & _U64_MASK
        self._notify(pe, region, offset, value & _U64_MASK)
        return old

    def compare_swap(
        self, pe: int, region: str, offset: int, expected: int, desired: int
    ) -> int:
        """Atomic compare-and-swap; returns the old value (match ⇒ stored)."""
        arr = self._word_region(pe, region, offset)
        old = int(arr[pe, offset])
        if old == (expected & _U64_MASK):
            arr[pe, offset] = desired & _U64_MASK
            self._notify(pe, region, offset, desired & _U64_MASK)
        return old

    def load_words(self, pe: int, region: str, offset: int, count: int) -> list[int]:
        """Read ``count`` consecutive words (one get on the wire)."""
        arr = self._word_region(pe, region, offset, count)
        return [int(v) for v in arr[pe, offset : offset + count]]

    def store_words(self, pe: int, region: str, offset: int, values: list[int]) -> None:
        """Write consecutive words."""
        arr = self._word_region(pe, region, offset, len(values))
        arr[pe, offset : offset + len(values)] = np.array(
            [v & _U64_MASK for v in values], dtype=np.uint64
        )
        for i, v in enumerate(values):
            self._notify(pe, region, offset + i, v & _U64_MASK)

    # ------------------------------------------------------------------
    # word waiters (shmem_wait_until support)
    # ------------------------------------------------------------------
    def add_waiter(self, pe: int, region: str, offset: int, waiter: WordWaiter) -> None:
        """Register a callback fired on every mutation of one word.

        The callback receives the new value and returns True once its
        condition is met, which removes it.  This is the mechanism behind
        ``shmem_wait_until`` — hardware wakes the waiter on a remote
        write instead of the waiter burning poll cycles.
        """
        self._word_region(pe, region, offset)  # validate the address
        self._waiters.setdefault((pe, region, offset), []).append(waiter)

    def _notify(self, pe: int, region: str, offset: int, new_value: int) -> None:
        key = (pe, region, offset)
        waiters = self._waiters.get(key)
        if not waiters:
            return
        remaining = [w for w in waiters if not w(new_value)]
        if remaining:
            self._waiters[key] = remaining
        else:
            del self._waiters[key]

    # ------------------------------------------------------------------
    # byte operations (payload)
    # ------------------------------------------------------------------
    def read_bytes(self, pe: int, region: str, offset: int, count: int) -> bytes:
        """Read ``count`` bytes."""
        arr = self._byte_region(pe, region, offset, count)
        return bytes(arr[pe, offset : offset + count].tobytes())

    def write_bytes(self, pe: int, region: str, offset: int, data: bytes) -> None:
        """Write a byte string."""
        arr = self._byte_region(pe, region, offset, len(data))
        arr[pe, offset : offset + len(data)] = np.frombuffer(data, dtype=np.uint8)
