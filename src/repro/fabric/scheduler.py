"""Pluggable event schedulers: systematic exploration of steal races.

The engine is deterministic: events at equal virtual timestamps pop in
insertion order.  That determinism is what the reproduction's timing
results rely on — but it also means every run explores exactly **one**
interleaving of the racy window the paper's argument lives in (thief
fetch-adds racing owner release/acquire and other thieves).  This module
makes the same-timestamp tie-break a *policy*:

:class:`FixedScheduler`
    Insertion order — behaviourally identical to the engine's built-in
    fast path (the default when no scheduler is attached).

:class:`RandomScheduler`
    Seeded uniform shuffle of every same-time ready set.

:class:`PctScheduler`
    PCT-style probabilistic concurrency testing: each actor (process or
    NIC unit) gets a hashed priority; the highest-priority ready event
    always runs, except at ``depth`` pre-drawn decision indices where the
    current leader's priority is demoted below everyone — bounding the
    number of "preemptions" needed to hit a bug of preemption depth d.

:class:`DfsScheduler`
    One branch of a bounded exhaustive DFS over same-time orderings:
    follows a forced choice prefix, takes index 0 afterwards, and records
    the width of every decision point so :func:`dfs_successor` can
    enumerate the next branch.

:class:`ReplayScheduler`
    Bit-identical replay of a recorded choice sequence (and the engine of
    a greedy shrinker — see :mod:`repro.analysis.explore`).

Every scheduler records its **choice sequence**: one ``(index, width)``
pair per *decision point* (a ready set with more than one event).  The
sequence is the complete schedule identity — replaying it through
:class:`ReplayScheduler` reproduces the run exactly.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from typing import Sequence

#: Policy names accepted by :func:`make_scheduler`.
POLICIES = ("fixed", "random", "pct", "dfs", "replay")


def _mix64(*parts: int) -> int:
    """splitmix64-style deterministic hash of integer parts."""
    z = 0x9E3779B97F4A7C15
    for p in parts:
        z = (z ^ (p & ((1 << 64) - 1))) * 0xBF58476D1CE4E5B9 & ((1 << 64) - 1)
        z ^= z >> 31
        z = (z * 0x94D049BB133111EB) & ((1 << 64) - 1)
        z ^= z >> 29
    return z


class Scheduler:
    """Base class: chooses among same-timestamp ready events.

    Subclasses implement :meth:`_pick`; the base records the choice
    sequence and exposes replay/diagnostic helpers.  ``ready`` entries
    are engine heap tuples ``(when, seq, fn, actor)`` sorted by ``seq``
    (insertion order), so index 0 always reproduces the default order.
    """

    #: Human-readable policy name (used in traces and deadlock reports).
    name = "base"

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        #: Recorded (choice index, ready-set width) per decision point.
        self.choices: list[tuple[int, int]] = []
        #: Decision points seen so far (== len(self.choices)).
        self.decisions = 0

    # -- policy ---------------------------------------------------------
    def _pick(self, now: float, ready: Sequence[tuple]) -> int:
        raise NotImplementedError

    def choose(self, now: float, ready: Sequence[tuple]) -> int:
        """Pick the index of the next event to run; records the choice."""
        idx = self._pick(now, ready)
        if not 0 <= idx < len(ready):
            raise ValueError(
                f"{self.name} scheduler chose {idx} of {len(ready)} ready events"
            )
        self.choices.append((idx, len(ready)))
        self.decisions += 1
        return idx

    # -- diagnostics ----------------------------------------------------
    def describe(self) -> str:
        """One-line identity for deadlock reports and trace headers."""
        return f"policy={self.name} seed={self.seed}"

    def choice_tail(self, n: int = 32) -> str:
        """The last ``n`` recorded choices, compactly rendered."""
        tail = self.choices[-n:]
        skipped = len(self.choices) - len(tail)
        body = ",".join(f"{i}/{w}" for i, w in tail)
        prefix = f"...[{skipped} earlier]," if skipped else ""
        return f"[{prefix}{body}]"

    def trace(self) -> "ScheduleTrace":
        """Snapshot the recorded choice sequence as a replayable trace."""
        return ScheduleTrace(
            policy=self.name,
            seed=self.seed,
            choices=[i for i, _ in self.choices],
            widths=[w for _, w in self.choices],
        )


class FixedScheduler(Scheduler):
    """Insertion order — the engine's default tie-break as a policy."""

    name = "fixed"

    def _pick(self, now: float, ready: Sequence[tuple]) -> int:
        return 0


class RandomScheduler(Scheduler):
    """Seeded uniform choice at every decision point."""

    name = "random"

    def __init__(self, seed: int = 0) -> None:
        super().__init__(seed)
        self._rng = random.Random(_mix64(seed, 0x5EED))

    def _pick(self, now: float, ready: Sequence[tuple]) -> int:
        return self._rng.randrange(len(ready))


class PctScheduler(Scheduler):
    """PCT-style priority scheduling with ``depth`` demotion points.

    Actors receive lazily assigned hashed priorities.  At each decision
    point the ready event whose actor holds the highest priority runs.
    ``depth`` demotion points are pre-drawn over the first
    ``horizon`` decision indices; hitting one demotes the leading actor
    below every existing priority, forcing a context switch exactly where
    a depth-d bug needs one (Burckhardt et al.'s PCT, adapted to
    same-time ready sets).
    """

    name = "pct"

    def __init__(self, seed: int = 0, depth: int = 3, horizon: int = 4096) -> None:
        super().__init__(seed)
        if depth < 0:
            raise ValueError(f"depth must be non-negative, got {depth}")
        if horizon < 1:
            raise ValueError(f"horizon must be positive, got {horizon}")
        self.depth = depth
        self.horizon = horizon
        rng = random.Random(_mix64(seed, 0x9C7))
        self._demote_at = set(rng.sample(range(horizon), min(depth, horizon)))
        self._prio: dict[str, int] = {}
        self._floor = 0  # descending counter for demoted actors

    @staticmethod
    def _actor_of(entry: tuple) -> str:
        actor = entry[3] if len(entry) > 3 else None
        return actor if actor else f"ev{entry[1]}"

    def _priority(self, entry: tuple) -> int:
        actor = self._actor_of(entry)
        if actor not in self._prio:
            # Stable digest (never Python's randomized str hash): PCT
            # priorities must be identical across interpreter runs.
            digest = _mix64(*actor.encode("utf-8"))
            self._prio[actor] = _mix64(self.seed, digest)
        return self._prio[actor]

    def _pick(self, now: float, ready: Sequence[tuple]) -> int:
        idx = max(range(len(ready)), key=lambda i: self._priority(ready[i]))
        if self.decisions in self._demote_at:
            self._floor -= 1
            self._prio[self._actor_of(ready[idx])] = self._floor
            idx = max(range(len(ready)), key=lambda i: self._priority(ready[i]))
        return idx

    def describe(self) -> str:
        return f"policy=pct seed={self.seed} depth={self.depth}"


class DfsScheduler(Scheduler):
    """One branch of a bounded exhaustive DFS over same-time orderings.

    Follows ``prefix`` at the first ``len(prefix)`` decision points, then
    index 0 (default order).  After the run, :attr:`choices` holds the
    full (choice, width) record; feed it to :func:`dfs_successor` to get
    the next prefix in depth-first order, or ``None`` when the bounded
    space is exhausted.
    """

    name = "dfs"

    def __init__(self, prefix: Sequence[int] = (), max_depth: int = 16) -> None:
        super().__init__(seed=0)
        if max_depth < 0:
            raise ValueError(f"max_depth must be non-negative, got {max_depth}")
        self.prefix = list(prefix)
        self.max_depth = max_depth

    def _pick(self, now: float, ready: Sequence[tuple]) -> int:
        if self.decisions < len(self.prefix):
            # A replayed prefix choice may exceed this run's width if the
            # divergence already changed the event population; clamp.
            return min(self.prefix[self.decisions], len(ready) - 1)
        return 0

    def describe(self) -> str:
        return f"policy=dfs prefix={self.prefix} max_depth={self.max_depth}"


def dfs_successor(
    choices: Sequence[tuple[int, int]], max_depth: int
) -> list[int] | None:
    """Next DFS prefix after a run that recorded ``choices``.

    Only the first ``max_depth`` decision points are enumerated (the
    bound that keeps the exhaustive search tractable); later decision
    points always take the default order.  Returns ``None`` when every
    bounded ordering has been visited.
    """
    bounded = list(choices[:max_depth])
    while bounded:
        idx, width = bounded[-1]
        if idx + 1 < width:
            return [i for i, _ in bounded[:-1]] + [idx + 1]
        bounded.pop()
    return None


class ReplayScheduler(Scheduler):
    """Replays a recorded choice sequence bit-identically.

    Past the end of the trace (a shrunk prefix) it falls back to the
    default insertion order.  ``strict`` additionally verifies the
    ready-set width at every replayed decision point, catching traces
    replayed against a different workload/seed.
    """

    name = "replay"

    def __init__(
        self,
        trace: "ScheduleTrace | Sequence[int]",
        strict: bool = False,
    ) -> None:
        if isinstance(trace, ScheduleTrace):
            self._replay = list(trace.choices)
            self._widths = list(trace.widths) if trace.widths else None
            seed = trace.seed
        else:
            self._replay = list(trace)
            self._widths = None
            seed = 0
        super().__init__(seed)
        self.strict = strict

    def _pick(self, now: float, ready: Sequence[tuple]) -> int:
        d = self.decisions
        if d >= len(self._replay):
            return 0
        if self.strict and self._widths is not None and d < len(self._widths):
            if self._widths[d] != len(ready):
                raise ScheduleDivergence(
                    f"replay diverged at decision {d}: recorded width "
                    f"{self._widths[d]}, live width {len(ready)}"
                )
        return min(self._replay[d], len(ready) - 1)

    def describe(self) -> str:
        return f"policy=replay len={len(self._replay)}"


class ScheduleDivergence(RuntimeError):
    """A strict replay met a ready set shaped unlike the recording."""


@dataclass
class ScheduleTrace:
    """A compact, serializable identity of one explored schedule.

    ``choices`` alone reproduces the run; ``widths`` (optional) enables
    strict replay validation; ``meta`` carries workload parameters so a
    trace file is a self-contained repro recipe.
    """

    policy: str
    seed: int
    choices: list[int]
    widths: list[int] = field(default_factory=list)
    meta: dict = field(default_factory=dict)

    def replayer(self, strict: bool = False) -> ReplayScheduler:
        """Build a scheduler that reproduces this trace."""
        return ReplayScheduler(self, strict=strict)

    def to_json(self) -> str:
        """Serialize to a JSON document (one trace per file)."""
        return json.dumps(
            {
                "format": "repro.schedule-trace/1",
                "policy": self.policy,
                "seed": self.seed,
                "choices": self.choices,
                "widths": self.widths,
                "meta": self.meta,
            },
            indent=2,
        )

    @classmethod
    def from_json(cls, text: str) -> "ScheduleTrace":
        """Parse a trace produced by :meth:`to_json`."""
        doc = json.loads(text)
        if doc.get("format") != "repro.schedule-trace/1":
            raise ValueError(f"not a schedule trace: format={doc.get('format')!r}")
        return cls(
            policy=doc["policy"],
            seed=int(doc["seed"]),
            choices=[int(c) for c in doc["choices"]],
            widths=[int(w) for w in doc.get("widths", [])],
            meta=doc.get("meta", {}),
        )


def make_scheduler(policy: str, seed: int = 0, **kwargs) -> Scheduler:
    """Factory: build a scheduler from a policy name.

    ``kwargs`` forward to the policy constructor (``depth``/``horizon``
    for pct, ``prefix``/``max_depth`` for dfs, ``trace`` for replay).
    """
    if policy == "fixed":
        return FixedScheduler(seed)
    if policy == "random":
        return RandomScheduler(seed)
    if policy == "pct":
        return PctScheduler(seed, **kwargs)
    if policy == "dfs":
        return DfsScheduler(**kwargs)
    if policy == "replay":
        return ReplayScheduler(**kwargs)
    raise ValueError(f"unknown scheduler policy {policy!r}; valid: {POLICIES}")
