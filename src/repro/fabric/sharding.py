"""Conservative time-window sharding for the discrete-event fabric.

This module partitions one simulated job's PEs across N *shard* engines
— each with its own :class:`~repro.fabric.engine.CalendarQueue` — and
keeps them causally consistent with the classic conservative
(YAWNS-style) lock-step window protocol:

* every cross-shard one-sided operation is **buffered at the
  originating shard** (:class:`ShardRouter` outbox) instead of being
  scheduled directly;
* between windows a coordinator performs the all-to-all **exchange**:
  buffered messages are enqueued into the destination shard's calendar
  queue at their true arrival ticks, so event ordering within each
  shard stays ``(when, seq)``-exact;
* each shard gets its own conservative bound: shard *i* may run to
  ``min(E_j for j != i) + W``, where ``E_j`` is shard *j*'s earliest
  unexecuted work (next event or undelivered inbound arrival) and the
  window width ``W`` is the hard lookahead lower bound derived from the
  active :class:`~repro.fabric.latency.LatencyModel`
  (:meth:`~repro.fabric.latency.LatencyModel.shard_window_ticks`) —
  never hand-tuned.  Any future cross-shard message targeting *i* is
  sent at some tick >= ``min E_j`` and arrives >= ``send + W``, so no
  shard ever sees a message from its past; quiet shards are simply not
  granted (round-elision) and the shard owning the global floor is no
  longer throttled to it.  Two in-window clamps keep the per-shard
  bound sound where the coordinator cannot see ahead: a parked
  cross-shard fetch clamps its shard's window to ``request_arrival +
  W`` (the earliest tick the response can land), and a fully-parked
  shard barrier clamps to "now" (the release tick is not yet known).

Message taxonomy (see ``docs/sharding.md`` for the full derivation):

* **one-way applies** (puts, non-blocking atomic adds, put-with-signal):
  the initiator's completion tick is a pure function of its own clock in
  the fault-free, non-link-serialized fabric, so the initiator resumes
  locally and only the remote memory effect crosses the boundary, with
  margin ``alpha_sw + one_way``;
* **fetch round trips** (fetch-add/swap/cas/fetch, gets): the request
  crosses with the same margin; the *response* is generated at the
  target's arrival event and crosses back with margin
  ``process + one_way`` — the binding term in ``W``.

Sharded mode is restricted to the fabric the bound is provable for: no
fault injection, no op timeouts, no schedule exploration, no
``link_serialize``, and a latency model with nonzero lookahead.

Two transports run the same window loop: an in-process **serial**
transport (deterministic, used by the conformance and property suites)
and a **fork** transport that runs each shard as a real OS process over
``multiprocessing`` pipes, the parent acting as the exchange
coordinator.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from functools import partial
from math import ceil, log2
from typing import Any, Callable

from .engine import TICKS_PER_SECOND, Call, Engine, Process
from .errors import DeadlockError, SimulationError
from .latency import LatencyModel
from .nic import WORD_BYTES, Nic

#: Get-op payload opcodes, shared with the NIC's pooled get records.
_GET_WORD, _GET_WORDS, _GET_BYTES = 0, 1, 2


# ======================================================================
# Partitioning
# ======================================================================
class ShardPlan:
    """Contiguous block partition of ``npes`` PEs across ``nshards``.

    ``npes`` need not divide evenly: the remainder is spread one PE at a
    time over the first shards (10 PEs / 4 shards → block sizes
    3, 3, 2, 2), so shard sizes differ by at most one.
    """

    __slots__ = ("npes", "nshards", "_starts", "_owner")

    def __init__(self, npes: int, nshards: int) -> None:
        validate_shards(npes, nshards)
        self.npes = npes
        self.nshards = nshards
        base, rem = divmod(npes, nshards)
        starts = [0]
        for s in range(nshards):
            starts.append(starts[-1] + base + (1 if s < rem else 0))
        self._starts = starts
        owner = [0] * npes
        for s in range(nshards):
            for pe in range(starts[s], starts[s + 1]):
                owner[pe] = s
        self._owner = owner

    def shard_of(self, pe: int) -> int:
        """Owning shard of one PE."""
        return self._owner[pe]

    def pes_of(self, shard: int) -> range:
        """The contiguous PE block owned by one shard."""
        return range(self._starts[shard], self._starts[shard + 1])

    def local_size(self, shard: int) -> int:
        """Number of PEs owned by one shard."""
        return self._starts[shard + 1] - self._starts[shard]

    def describe(self) -> str:
        """Human-readable partition summary for CLI banners."""
        sizes = [self.local_size(s) for s in range(self.nshards)]
        return (f"{self.npes} PEs across {self.nshards} shard(s), "
                f"block sizes {sizes}")


def validate_shards(npes: int, nshards: int) -> None:
    """Up-front validation of a ``--shards``/``--npes`` combination.

    Raises :class:`ValueError` with an actionable message instead of
    letting a bad combination crash mid-run.  Non-divisible counts are
    fine (remainder partitioning); an empty shard is not.
    """
    if npes < 1:
        raise ValueError(f"npes must be >= 1, got {npes}")
    if nshards < 1:
        raise ValueError(f"--shards must be >= 1, got {nshards}")
    if nshards > npes:
        raise ValueError(
            f"--shards {nshards} exceeds --npes {npes}: every shard must "
            f"own at least one PE (use --shards <= {npes})"
        )


def check_shardable(latency: LatencyModel) -> int:
    """Validate a latency model for sharded execution; returns the window.

    The conservative window is only sound when the model guarantees a
    positive lookahead and target-side link occupancy cannot feed back
    into initiator-visible completion times.
    """
    window = latency.shard_window_ticks()
    if window <= 0:
        raise ValueError(
            "sharded execution needs a positive lookahead, but this "
            "latency model's window floor is 0 ticks (zero-latency "
            "models cannot be sharded conservatively)"
        )
    if latency.link_serialize:
        raise ValueError(
            "sharded execution does not support link_serialize=True: "
            "target-link occupancy makes put completion times depend on "
            "remote state, which breaks the initiator-side completion "
            "bound (run with link_serialize=False or --shards 1)"
        )
    return window


def barrier_cost_ticks(latency: LatencyModel, npes: int) -> int:
    """Release latency of the dissemination barrier, in ticks.

    Must match :class:`repro.shmem.api._Barrier` exactly: the release is
    charged ``ceil(log2(P))`` inter-node hops after the last arrival.
    """
    hops = max(1, ceil(log2(max(2, npes))))
    cost = hops * (latency.alpha_sw + latency.half_rtt_inter)
    return round(cost * TICKS_PER_SECOND)


@dataclass(frozen=True)
class ShardBinding:
    """Identity of one shard inside a plan (handed to ``ShmemCtx``)."""

    plan: ShardPlan
    shard_id: int


# ======================================================================
# Router: the NIC's route-to-shard seam
# ======================================================================
class ShardRouter:
    """Cross-shard routing for one shard's NIC.

    Installed as ``nic.router``; the NIC's public op constructors divert
    any op whose target PE lives on another shard through the methods
    below.  Ops are buffered in :attr:`outbox` as picklable tuples and
    exchanged at window boundaries; inbound messages are enqueued into
    the local calendar queue at their true arrival ticks by
    :meth:`deliver`.

    Every data message carries its send tick as the final element so the
    property suite (and a curious debugger) can audit the lookahead
    invariant ``delivery_tick >= send_tick + W`` on the wire format
    itself.
    """

    def __init__(self, nic: Nic, plan: ShardPlan, shard_id: int,
                 window_ticks: int = 0) -> None:
        self.nic = nic
        self.plan = plan
        self.shard_id = shard_id
        #: Lookahead W; a parked fetch clamps the running window to
        #: ``request_arrival + W`` — the earliest tick its response can
        #: arrive — so a shard granted a deep window never runs past a
        #: reply it has not received yet.
        self.window_ticks = window_ticks
        #: (dest_shard, message) tuples awaiting the next exchange.
        self.outbox: list[tuple[int, tuple]] = []
        #: op_id -> parked initiator process awaiting a fetch response.
        self._pending: dict[int, Process] = {}
        #: op_id -> request arrival tick, for fetches whose *response*
        #: has not yet been scheduled locally.  The response resumes the
        #: initiator at >= arrival + W (the target processes the request
        #: at its arrival event; the return hop's margin is >= W), so
        #: ``min + W`` is a sound floor on this shard's next activity —
        #: without it the coordinator would read a parked shard's next
        #: *local* event as its earliest work and grant other shards past
        #: the resumption.  Cleared at :meth:`deliver` time, when the
        #: locally scheduled response makes ``next_event_ticks`` exact.
        self._pending_bound: dict[int, int] = {}
        self._op_seq = 0
        #: True for PEs this shard owns (list indexing beats dict here).
        self._local = [plan.shard_of(pe) == shard_id for pe in range(plan.npes)]
        nic.router = self

    def is_local(self, pe: int) -> bool:
        return self._local[pe]

    def drain_outbox(self) -> list[tuple[int, tuple]]:
        """Take every buffered message (called at a window boundary)."""
        out, self.outbox = self.outbox, []
        return out

    def pending_fetches(self) -> int:
        """Fetch ops awaiting a cross-shard response (diagnostics)."""
        return len(self._pending)

    def response_floor(self) -> int | None:
        """Earliest tick an un-scheduled fetch response can resume us."""
        if not self._pending_bound:
            return None
        return min(self._pending_bound.values()) + self.window_ticks

    # ------------------------------------------------------------------
    # initiator side: Call factories the NIC diverts to
    # ------------------------------------------------------------------
    def fetch_amo(self, initiator: int, target: int, region: str,
                  offset: int, kind: str, a1: int, a2: int) -> Call:
        """Cross-shard fetching atomic: request out, park until response."""
        def handler(engine: Engine, proc: Process) -> None:
            nic = self.nic
            nic.metrics.record(engine.now, initiator, target, kind, WORD_BYTES)
            proc.blocked_on = f"{kind} -> pe{target} {region}[{offset}] (x-shard)"
            send = engine.now_ticks
            arrival = (send + nic._alpha_ticks
                       + nic._one_way_ticks(initiator, target))
            op_id = self._op_seq
            self._op_seq += 1
            self._pending[op_id] = proc
            self._pending_bound[op_id] = arrival
            self.outbox.append((
                self.plan.shard_of(target),
                ("amo", arrival, initiator, target, region, offset,
                 kind, a1, a2, op_id, self.shard_id, send),
            ))
            engine.clamp_window(arrival + self.window_ticks)

        return Call(handler)

    def get(self, initiator: int, target: int, region: str, offset: int,
            count: int, nbytes: int, opcode: int) -> Call:
        """Cross-shard blocking get: request out, park until response."""
        def handler(engine: Engine, proc: Process) -> None:
            nic = self.nic
            nic.metrics.record(engine.now, initiator, target, "get", nbytes)
            proc.blocked_on = f"get -> pe{target} {region}[{offset}] (x-shard)"
            send = engine.now_ticks
            arrival = (send + nic._alpha_ticks
                       + nic._one_way_ticks(initiator, target))
            op_id = self._op_seq
            self._op_seq += 1
            self._pending[op_id] = proc
            self._pending_bound[op_id] = arrival
            self.outbox.append((
                self.plan.shard_of(target),
                ("get", arrival, initiator, target, region, offset,
                 count, nbytes, opcode, op_id, self.shard_id, send),
            ))
            engine.clamp_window(arrival + self.window_ticks)

        return Call(handler)

    def put(self, initiator: int, target: int, region: str, offset: int,
            payload: Any, is_bytes: bool, blocking: bool) -> Call:
        """Cross-shard put.  In the fault-free non-link-serialized fabric
        the completion tick is a pure function of the initiator's clock
        (``alpha + stream + one_way`` to arrive, ``+ one_way`` for the
        blocking ack), so the initiator schedules its own resume locally
        and only the memory effect crosses the boundary."""
        kind = "put" if blocking else "put_nb"

        def handler(engine: Engine, proc: Process) -> None:
            nic = self.nic
            nbytes = len(payload) * (1 if is_bytes else WORD_BYTES)
            nic.metrics.record(engine.now, initiator, target, kind, nbytes)
            stream = nic._payload_ticks(nbytes)
            inject = nic._alpha_ticks + stream
            send = engine.now_ticks
            arrival = send + inject + nic._one_way_ticks(initiator, target)
            self.outbox.append((
                self.plan.shard_of(target),
                ("put", arrival, target, region, offset, payload,
                 is_bytes, send),
            ))
            if blocking:
                proc.blocked_on = f"put -> pe{target} ({nbytes}B) (x-shard)"
                back = nic._one_way_ticks(target, initiator)
                engine.at_ticks(arrival + back, proc._step0, actor=proc.name)
            else:
                nic._outstanding[initiator] += 1
                engine.at_ticks(arrival, partial(nic._complete_nb, initiator),
                                actor=nic._put_actors[target])
                engine.resume_ticks(proc, None, inject)

        return Call(handler)

    def amo_add_nb(self, initiator: int, target: int, region: str,
                   offset: int, delta: int) -> Call:
        """Cross-shard non-blocking atomic add: applies at arrival on the
        owning shard; the descriptor retires locally at the same tick it
        would on a single engine."""
        def handler(engine: Engine, proc: Process) -> None:
            nic = self.nic
            nic.metrics.record(engine.now, initiator, target,
                               "amo_add_nb", WORD_BYTES)
            nic._outstanding[initiator] += 1
            send = engine.now_ticks
            arrival = (send + nic._alpha_ticks
                       + nic._one_way_ticks(initiator, target))
            self.outbox.append((
                self.plan.shard_of(target),
                ("addnb", arrival, target, region, offset, delta, send),
            ))
            engine.at_ticks(arrival, partial(nic._complete_nb, initiator),
                            actor=nic._amo_actors[target])
            engine.resume_ticks(proc, None, nic._alpha_ticks)

        return Call(handler)

    def put_signal_nb(self, initiator: int, target: int, region: str,
                      offset: int, data: bytes, sig_region: str,
                      sig_offset: int, sig_value: int) -> Call:
        """Cross-shard put-with-signal.

        The payload+signal message crosses once; data lands at arrival
        and the signal store serializes through the *target's* atomic
        unit exactly as on a single engine.  The initiator's descriptor
        retires at the arrival tick — one documented approximation: on a
        single engine it retires at the signal-store tick, up to a few
        ``amo_process`` later under contention, which only a ``quiet()``
        racing that contention could observe.
        """
        def handler(engine: Engine, proc: Process) -> None:
            nic = self.nic
            nbytes = len(data) + WORD_BYTES
            nic.metrics.record(engine.now, initiator, target,
                               "put_signal", nbytes)
            nic._outstanding[initiator] += 1
            inject = nic._alpha_ticks + nic._payload_ticks(nbytes)
            send = engine.now_ticks
            arrival = send + inject + nic._one_way_ticks(initiator, target)
            self.outbox.append((
                self.plan.shard_of(target),
                ("putsig", arrival, target, region, offset, data,
                 sig_region, sig_offset, sig_value, send),
            ))
            engine.at_ticks(arrival, partial(nic._complete_nb, initiator),
                            actor=nic._put_actors[target])
            engine.resume_ticks(proc, None, inject)

        return Call(handler)

    # ------------------------------------------------------------------
    # receiver side: exchange delivery + in-window application
    # ------------------------------------------------------------------
    def deliver(self, messages: list[tuple]) -> None:
        """Enqueue inbound messages at their true arrival ticks.

        Called between windows, messages pre-sorted by the coordinator
        on ``(tick, origin_shard, origin_seq)`` so the fresh engine
        sequence numbers assigned here are deterministic.
        """
        engine = self.nic.engine
        for m in messages:
            if m[0] == "brel":
                self.barrier_release(m[1])
                continue
            if m[0] == "resp":
                # The response now has an exact local event tick; the
                # conservative pending floor is no longer needed.
                self._pending_bound.pop(m[2], None)
            engine.at_ticks(m[1], partial(self._apply, m), actor="xshard")

    #: Hook installed by the shard-aware barrier (shmem layer).
    barrier_release: Callable[[int], None] = staticmethod(lambda tick: None)

    def _apply(self, m: tuple) -> None:
        """Execute one inbound message at its arrival event."""
        nic = self.nic
        engine = nic.engine
        heap = nic.heap
        op = m[0]
        if op == "amo":
            (_, _, initiator, target, region, offset,
             kind, a1, a2, op_id, origin, send) = m
            done = nic._serialize(
                nic._amo_busy_until, target, engine.now_ticks, nic._amo_ticks
            )
            if kind == "amo_fetch_add":
                value = heap.fetch_add(target, region, offset, a1)
            elif kind == "amo_swap":
                value = heap.swap(target, region, offset, a1)
            elif kind == "amo_cas":
                value = heap.compare_swap(target, region, offset, a1, a2)
            else:  # amo_fetch
                value = heap.load(target, region, offset)
            back = nic._one_way_ticks(target, initiator)
            self.outbox.append(
                (origin, ("resp", done + back, op_id, value, engine.now_ticks))
            )
        elif op == "get":
            (_, _, initiator, target, region, offset,
             count, nbytes, opcode, op_id, origin, send) = m
            done = nic._serialize(
                nic._get_busy_until, target, engine.now_ticks, nic._get_ticks
            )
            if opcode == _GET_WORD:
                value = heap.load(target, region, offset)
            elif opcode == _GET_WORDS:
                value = heap.load_words(target, region, offset, count)
            else:
                value = heap.read_bytes(target, region, offset, count)
            back = (nic._one_way_ticks(target, initiator)
                    + nic._payload_ticks(nbytes))
            self.outbox.append(
                (origin, ("resp", done + back, op_id, value, engine.now_ticks))
            )
        elif op == "put":
            _, _, target, region, offset, payload, is_bytes, send = m
            if is_bytes:
                heap.write_bytes(target, region, offset, payload)
            elif len(payload) == 1:
                heap.store(target, region, offset, payload[0])
            else:
                heap.store_words(target, region, offset, list(payload))
        elif op == "addnb":
            _, _, target, region, offset, delta, send = m
            nic._serialize(
                nic._amo_busy_until, target, engine.now_ticks, nic._amo_ticks
            )
            heap.fetch_add(target, region, offset, delta)
        elif op == "putsig":
            (_, _, target, region, offset, data,
             sig_region, sig_offset, sig_value, send) = m
            heap.write_bytes(target, region, offset, data)
            sig_done = nic._serialize(
                nic._amo_busy_until, target, engine.now_ticks, nic._amo_ticks
            )
            store = partial(heap.store, target, sig_region, sig_offset, sig_value)
            if sig_done > engine.now_ticks:
                engine.at_ticks(sig_done, store, actor=nic._amo_actors[target])
            else:
                store()
        elif op == "resp":
            _, _, op_id, value, send = m
            proc = self._pending.pop(op_id)
            engine._step(proc, value)
        else:  # pragma: no cover - wire-format guard
            raise SimulationError(f"unknown cross-shard message {op!r}")

    def diagnostic(self) -> str:
        """Extra context for merged deadlock reports."""
        if not self._pending and not self.outbox:
            return ""
        return (f"  shard {self.shard_id}: {len(self._pending)} fetch(es) "
                f"awaiting cross-shard responses, "
                f"{len(self.outbox)} message(s) buffered")


# ======================================================================
# Shard-aware barrier
# ======================================================================
class ShardBarrier:
    """Job-wide ``barrier_all`` split across shards.

    Each shard parks its local arrivals; the coordinator watches the
    between-window reports and, once every PE in the job is parked,
    broadcasts a release tick of ``max(last arrival) + the dissemination
    release cost`` — the exact tick the single-engine
    :class:`repro.shmem.api._Barrier` resumes at (the cost there is
    charged from the moment the last PE arrives).  The cost is at least
    one ``alpha + inter`` hop, which is >= the window width, so the
    release always lands at or beyond the next window bound.
    """

    __slots__ = ("engine", "local_pes", "_waiting", "_generation",
                 "_last_arrival")

    def __init__(self, engine: Engine, local_pes: int = 0) -> None:
        self.engine = engine
        #: PEs owned by this shard; when all of them are parked the
        #: arrival handler clamps the running window to "now" — the
        #: release tick depends on *other* shards' arrivals the
        #: coordinator has not seen yet, so running trailing events
        #: further could overtake the eventual release.
        self.local_pes = local_pes
        self._waiting: list[Process] = []
        self._generation = 0
        self._last_arrival = 0

    def arrive(self) -> Call:
        def handler(engine: Engine, proc: Process) -> None:
            proc.blocked_on = "barrier_all (sharded)"
            self._waiting.append(proc)
            if engine.now_ticks > self._last_arrival:
                self._last_arrival = engine.now_ticks
            if self.local_pes and len(self._waiting) >= self.local_pes:
                engine.clamp_window(engine.now_ticks)

        return Call(handler)

    def report(self) -> tuple[int, int, int]:
        """(generation, locally parked PEs, last local arrival tick)."""
        return (self._generation, len(self._waiting), self._last_arrival)

    def release(self, tick: int) -> None:
        """Resume every parked PE at ``tick`` (coordinator broadcast)."""
        engine = self.engine
        # An unrelated in-flight completion may have nudged this shard's
        # clock just past the release tick; resuming "now" instead keeps
        # time monotone and is the same rounding a straggler would see.
        when = max(tick, engine.now_ticks)
        waiters, self._waiting = self._waiting, []
        self._generation += 1
        self._last_arrival = 0
        for proc in waiters:
            engine.at_ticks(when, proc._step0, actor=proc.name)


# ======================================================================
# Window-loop coordinator (transport-agnostic)
# ======================================================================
#: One shard's between-window report:
#: (next_event_tick | None, outbox, (barrier_gen, waiting, last_arrival),
#:  live, ran_to, resp_floor | None) — ``ran_to`` is the effective bound
#: of the shard's last window after in-window clamps: every event with
#: ``when < ran_to`` has executed, and it is monotone across rounds.
#: ``resp_floor`` is :meth:`ShardRouter.response_floor`: a lower bound on
#: when a still-in-flight fetch response can resume this shard, which
#: must participate in the shard's earliest-work estimate even though no
#: local event for it exists yet.
ShardState = tuple

#: "Unbounded" grant sentinel: every other shard is idle-empty, so no
#: future message can target the grantee and it may drain its queue.
INF_TICKS = 1 << 62


@dataclass
class ExchangeStats:
    """Coordinator-side counters for one sharded run.

    ``rounds`` counts coordinator iterations; ``grants`` window grants
    actually posted (< rounds * nshards when round-elision skips quiet
    or blocked shards, whose skip count is ``elisions``).  Byte counters
    cover the shared-memory exchange rings and stay 0 on the serial
    transport (no wire).
    """

    rounds: int = 0
    grants: int = 0
    elisions: int = 0
    messages: int = 0
    barrier_releases: int = 0
    exchange_bytes: int = 0

    def as_dict(self) -> dict:
        return {
            "rounds": self.rounds,
            "grants": self.grants,
            "elisions": self.elisions,
            "messages": self.messages,
            "barrier_releases": self.barrier_releases,
            "exchange_bytes": self.exchange_bytes,
        }


class SerialShardHandle:
    """In-process shard driver: deterministic, zero IPC.

    Wraps anything exposing ``engine`` (an :class:`Engine`), ``router``
    (a :class:`ShardRouter`) and ``barrier`` (an object with
    ``report()``); the sharded ``ShmemCtx`` does.
    """

    def __init__(self, shard: Any) -> None:
        self.engine: Engine = shard.engine
        self.router: ShardRouter = shard.router
        self.barrier = shard.barrier
        self._state: ShardState | None = None
        self._ran_to = 0

    def _snapshot(self) -> ShardState:
        return (
            self.engine.next_event_ticks(),
            self.router.drain_outbox(),
            self.barrier.report(),
            self.engine.live,
            self._ran_to,
            self.router.response_floor(),
        )

    def start(self) -> ShardState:
        return self._snapshot()

    def post(self, limit: int, msgs: list[tuple]) -> None:
        """Deliver ``msgs`` and run one window to (at most) ``limit``."""
        self.router.deliver(msgs)
        self.engine.run_window(limit)
        # A fetch/barrier clamp may have stopped the window early; a
        # delivery-only grant may re-post a bound below a deeper earlier
        # one.  Either way the high-water mark is what "executed below
        # this" means, so keep it monotone.
        eff = self.engine.window_ran_to
        if eff > self._ran_to:
            self._ran_to = eff
        self._state = self._snapshot()

    def collect(self) -> ShardState:
        state, self._state = self._state, None
        return state

    def deadlock_text(self) -> str:
        lines = [self.engine._deadlock_report()]
        extra = self.router.diagnostic()
        if extra:
            lines.append(extra)
        return "\n".join(lines)

    def finish(self) -> Any:
        return None

    def shutdown(self) -> None:
        """No-op: serial shards live in the coordinator's process."""

    @property
    def exchange_bytes(self) -> int:
        return 0


def run_window_loop(
    handles: list,
    *,
    window_ticks: int,
    npes: int,
    barrier_cost: int,
    trace: list | None = None,
) -> ExchangeStats:
    """Drive shards through conservative windows until global completion.

    Per-shard bounds instead of a single global floor: with ``E_j`` =
    shard *j*'s earliest unexecuted work (next event tick or earliest
    undelivered inbound arrival), shard *i* may run to

        ``limit_i = min(E_j for j != i) + W``

    because any message that could still target *i* is sent at or after
    ``min E_j`` and arrives >= ``send + W``.  When every other shard is
    idle-empty the bound is :data:`INF_TICKS` (drain freely).  While a
    barrier is forming (any shard reports parked PEs) the bound is
    additionally capped at ``E_i + barrier_cost`` so no shard's trailing
    events overtake the eventual release tick.  Shards that cannot make
    progress under their bound — and have no pending deliveries — are
    simply not granted this round (round-elision); the shard owning the
    global minimum always can (its bound exceeds its position by >= W),
    so every round grants at least one shard and the loop terminates.

    Grants are posted to every eligible shard before any report is
    collected, so transports with real concurrency (fork) overlap all
    granted shards' windows; the coordinator's own sort/encode work for
    later shards overlaps earlier shards' stepping.

    Returns an :class:`ExchangeStats`.  Raises :class:`DeadlockError`
    (with every shard's report merged) when all queues drain, nothing is
    in flight, and live processes remain.

    ``trace``, when given, receives one record per round::

        {"E": [...], "ran_to": [...], "bound": [...], "limits": {s: L},
         "deliveries": [(dest, opcode, arrival_tick, send_tick), ...],
         "barrier": release_tick | None}

    — the property suite audits the lookahead and grant invariants from
    it (``bound`` is the uncapped conservative bound, ``limits`` what
    was actually posted).
    """
    if window_ticks <= 0:
        raise SimulationError(
            f"window width must be positive, got {window_ticks} ticks"
        )
    nshards = len(handles)
    stats = ExchangeStats()
    #: Undelivered messages per destination: (sort_key, msg) with
    #: sort_key = (arrival, origin, per-origin seq) — the deterministic
    #: delivery order regardless of report timing.
    inbox: list[list[tuple[tuple, tuple]]] = [[] for _ in range(nshards)]
    origin_seq = [0] * nshards
    states: list[ShardState | None] = [None] * nshards
    inflight = [False] * nshards

    def ingest(origin: int, st: ShardState) -> None:
        states[origin] = st
        seq = origin_seq[origin]
        for dest, msg in st[1]:
            inbox[dest].append(((msg[1], origin, seq), msg))
            seq += 1
        stats.messages += len(st[1])
        origin_seq[origin] = seq

    for s, h in enumerate(handles):
        ingest(s, h.start())

    while True:
        for s in range(nshards):
            if inflight[s]:
                ingest(s, handles[s].collect())
                inflight[s] = False

        # Barrier: when every PE in the job is parked, release all
        # shards at max(arrival) + the dissemination-release cost — the
        # same tick a single engine's barrier would pick.  The release
        # is injected as a pending delivery, so it participates in every
        # E_j until delivered (bounding other shards to release + W).
        reports = [st[2] for st in states]
        gen = reports[0][0]
        release: int | None = None
        if (all(r[0] == gen for r in reports)
                and sum(r[1] for r in reports) == npes):
            release = max(r[2] for r in reports) + barrier_cost
            for dest in range(nshards):
                inbox[dest].append(((release, -1, dest), ("brel", release)))
            stats.barrier_releases += 1
        barrier_pending = any(r[1] > 0 for r in reports)

        E: list[int | None] = []
        # Two smallest E values in one pass: shard i's bound needs
        # min(E_j for j != i), which is min2 when i owns the global
        # minimum and min1 otherwise — no per-shard "others" scan.
        min1 = min2 = None
        argmin = -1
        for s in range(nshards):
            t = states[s][0]
            floor = states[s][5]
            if floor is not None and (t is None or floor < t):
                t = floor
            box = inbox[s]
            if box:
                a = min(key[0] for key, _m in box)
                t = a if t is None or a < t else t
            E.append(t)
            if t is None:
                continue
            if min1 is None or t < min1:
                min2 = min1
                min1 = t
                argmin = s
            elif min2 is None or t < min2:
                min2 = t

        if min1 is None:  # every E is None: nothing anywhere can run
            live = sum(st[3] for st in states)
            if live:
                parts = [
                    f"sharded run deadlocked with {live} live process(es) "
                    f"across {nshards} shard(s):"
                ]
                for s, h in enumerate(handles):
                    parts.append(f"--- shard {s} ---")
                    parts.append(h.deadlock_text())
                raise DeadlockError("\n".join(parts))
            return stats

        if trace is not None:
            rec = {
                "E": list(E),
                "ran_to": [st[4] for st in states],
                "bound": [None] * nshards,
                "limits": {},
                "deliveries": [],
                "barrier": release,
            }
        posted = 0
        for s in range(nshards):
            o = min2 if s == argmin else min1
            bound = INF_TICKS if o is None else o + window_ticks
            limit = bound
            if barrier_pending and E[s] is not None:
                cap = E[s] + barrier_cost
                if cap < limit:
                    limit = cap
            if trace is not None:
                rec["bound"][s] = bound
            t = states[s][0]
            box = inbox[s]
            if not box and (t is None or limit <= t):
                # Nothing deliverable and nothing executable under the
                # bound: skip the shard entirely this round.
                stats.elisions += 1
                continue
            ran_to = states[s][4]
            if limit < ran_to:
                # Delivery-only grant: the shard already ran deeper than
                # today's bound allows (an earlier, wider grant).  Never
                # regress the posted bound below the high-water mark.
                limit = ran_to
            if box:
                box.sort(key=lambda e: e[0])
                msgs = [m for _k, m in box]
                inbox[s] = []
            else:
                msgs = []
            if trace is not None:
                rec["limits"][s] = limit
                rec["deliveries"].extend(
                    (s, m[0], m[1], m[-1] if m[0] != "brel" else None)
                    for m in msgs
                )
            handles[s].post(limit, msgs)
            inflight[s] = True
            posted += 1
        stats.grants += posted
        stats.rounds += 1
        if trace is not None:
            trace.append(rec)
        if not posted:  # pragma: no cover - progress-proof guard
            raise SimulationError(
                "sharded exchange stalled: no shard eligible for a grant"
            )


# ======================================================================
# Fork transport: one OS process per shard over shared-memory rings
# ======================================================================
def _shard_child_main(conn, link, build: Callable[[int], Any],
                      shard_id: int) -> None:
    """Child process body: build the shard, serve grants off the ring.

    The per-round path (grants in, reports out) runs entirely over the
    inherited :class:`~repro.fabric.shardring.ShardLink`; the pipe
    carries only the rare control traffic — deadlock reports, the final
    result, and error payloads.
    """
    import os
    import traceback

    parent = os.getppid()

    def check() -> None:
        if os.getppid() != parent:  # pragma: no cover - orphan guard
            raise SimulationError("shard child orphaned: coordinator died")

    try:
        handle = build(shard_id)
        link.send_report(handle.start(), check)
        while True:
            frame = link.recv_grant(check)
            if frame is None:  # STOP: switch to the pipe control loop
                break
            limit, msgs = frame
            handle.post(limit, msgs)
            link.send_report(handle.collect(), check)
        while True:
            cmd = conn.recv()
            op = cmd[0]
            if op == "deadlock":
                conn.send(handle.deadlock_text())
            elif op == "finish":
                conn.send(handle.finish())
                return
            else:  # pragma: no cover - protocol guard
                raise SimulationError(f"unknown shard command {op!r}")
    except BaseException as exc:  # surface child failures to the parent
        try:
            conn.send(("__shard_error__", repr(exc), traceback.format_exc()))
        except Exception:  # pragma: no cover - parent already gone
            pass
    finally:
        try:
            conn.close()
        except Exception:  # pragma: no cover - already closed
            pass
        link.close()


class ShardChildError(SimulationError):
    """A shard worker process failed; carries the child traceback."""


class ForkShardHandle:
    """Coordinator-side proxy for one forked shard process.

    ``build(shard_id)`` runs *in the child* after fork and must return a
    :class:`SerialShardHandle`-compatible object; with the fork start
    method the closure (and everything it captured) is inherited, so no
    pickling of simulator state ever happens.  Per-round traffic crosses
    a :class:`~repro.fabric.shardring.ShardLink` (struct-packed, no
    pickle); the pipe survives only for start/finish/deadlock/error.

    :meth:`post` returns as soon as the grant frame is in the ring, so
    the coordinator keeps encoding and posting other shards' grants
    while this child is already stepping.
    """

    def __init__(self, mp_ctx, build: Callable[[int], Any], shard_id: int,
                 capacity_words: int | None = None) -> None:
        from .shardring import ShardLink

        self.link = ShardLink(mp_ctx, capacity_words)
        parent_conn, child_conn = mp_ctx.Pipe()
        self.conn = parent_conn
        self.shard_id = shard_id
        self._stopped = False
        self._cleaned = False
        self.proc = mp_ctx.Process(
            target=_shard_child_main,
            args=(child_conn, self.link, build, shard_id),
            name=f"shard{shard_id}",
            daemon=True,
        )
        self.proc.start()
        child_conn.close()

    def _check_child(self) -> None:
        """Ring-poll liveness hook: fail fast instead of spinning on a
        ring whose far side is dead or has raised."""
        if self.conn.poll(0):
            # Unsolicited pipe traffic during ring I/O is always an
            # error payload from the child's catch-all.
            self._recv()
            raise ShardChildError(  # pragma: no cover - protocol guard
                f"shard {self.shard_id} sent unexpected control traffic"
            )
        if not self.proc.is_alive():
            raise ShardChildError(
                f"shard {self.shard_id} process exited unexpectedly "
                f"(exitcode={self.proc.exitcode})"
            )

    def _recv(self):
        try:
            reply = self.conn.recv()
        except EOFError:
            raise ShardChildError(
                f"shard {self.shard_id} process exited unexpectedly "
                f"(exitcode={self.proc.exitcode})"
            ) from None
        if (isinstance(reply, tuple) and reply
                and reply[0] == "__shard_error__"):
            raise ShardChildError(
                f"shard {self.shard_id} failed: {reply[1]}\n{reply[2]}"
            )
        return reply

    def start(self) -> ShardState:
        return self.link.recv_report(self._check_child)

    def post(self, limit: int, msgs: list[tuple]) -> None:
        self.link.post_grant(limit, msgs, self._check_child)

    def collect(self) -> ShardState:
        return self.link.recv_report(self._check_child)

    def shutdown(self) -> None:
        """Move the child from the ring loop to the pipe control loop."""
        if not self._stopped:
            self._stopped = True
            self.link.post_stop(self._check_child)

    def deadlock_text(self) -> str:
        self.shutdown()
        self.conn.send(("deadlock",))
        return self._recv()

    @property
    def exchange_bytes(self) -> int:
        return self.link.bytes_moved

    def request_finish(self) -> None:
        """Ask the child for its result without blocking on it."""
        self.shutdown()
        self.conn.send(("finish",))

    def collect_finish(self) -> Any:
        reply = self._recv()
        self.conn.close()
        return reply

    def join(self, deadline: float) -> None:
        """Join against a shared deadline; terminate a straggler."""
        self.proc.join(timeout=max(0.0, deadline - time.monotonic()))
        if self.proc.is_alive():  # pragma: no cover - hung child guard
            self.proc.terminate()
            self.proc.join(timeout=5)
        self._cleanup()

    def finish(self) -> Any:
        """Single-handle convenience; prefer :func:`finish_shards`."""
        self.request_finish()
        reply = self.collect_finish()
        self.join(time.monotonic() + 30)
        return reply

    def _cleanup(self) -> None:
        if not self._cleaned:
            self._cleaned = True
            self.link.close()
            self.link.unlink()

    def abort(self) -> None:
        """Tear the child down after a coordinator-side failure."""
        try:
            self.conn.close()
        except Exception:
            pass
        if self.proc.is_alive():
            self.proc.terminate()
        self.proc.join(timeout=5)
        self._cleanup()


def finish_shards(handles: list, timeout: float = 30.0) -> list:
    """Finish a group of shard handles with concurrent teardown.

    All children get their finish request first (they compute and
    pickle their results in parallel), then results are collected and
    every pipe closed, then all processes are joined against *one*
    shared deadline — a hung child costs the group ``timeout`` seconds
    total, not ``timeout`` each, and is terminated rather than leaked.
    Works for serial handles too (their finish is synchronous).
    """
    serial = [h for h in handles if not isinstance(h, ForkShardHandle)]
    if serial:
        return [h.finish() for h in handles]
    for h in handles:
        h.request_finish()
    results = [h.collect_finish() for h in handles]
    deadline = time.monotonic() + timeout
    for h in handles:
        h.join(deadline)
    return results


def fork_context():
    """The ``fork`` multiprocessing context, or None when unsupported."""
    import multiprocessing

    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return None


# ======================================================================
# Context-level shard group (serial transport)
# ======================================================================
class ShardGroup:
    """N sharded ``ShmemCtx`` instances driven as one logical job.

    The ctx-level entry point: spawn generator processes on the shard
    that owns their PE, then :meth:`run` the lock-step window loop over
    all shards in-process.  Every shard constructs the *same* symmetric
    heap layout (construction is deterministic and identical), so
    ``(pe, region, offset)`` addressing agrees across shards; only the
    owning shard's rows are ever authoritative.
    """

    def __init__(self, npes: int, nshards: int, latency: LatencyModel,
                 **ctx_kwargs: Any) -> None:
        from ..shmem.api import ShmemCtx

        self.plan = ShardPlan(npes, nshards)
        self.latency = latency
        check_shardable(latency)
        self.ctxs = [
            ShmemCtx(npes, latency=latency,
                     shard=ShardBinding(self.plan, s), **ctx_kwargs)
            for s in range(nshards)
        ]
        #: ExchangeStats from the last :meth:`run`.
        self.exchange: ExchangeStats | None = None

    def ctx_of(self, rank: int):
        """The sharded context owning one PE."""
        return self.ctxs[self.plan.shard_of(rank)]

    def spawn(self, rank: int, gen, name: str | None = None) -> Process:
        """Spawn a generator process on the shard owning PE ``rank``."""
        return self.ctx_of(rank).engine.spawn(gen, name=name or f"pe{rank}")

    def run(self, trace: list | None = None) -> float:
        """Run the window loop to completion; returns final seconds.

        The coordinator counters land in :attr:`exchange`.
        """
        handles = [SerialShardHandle(ctx) for ctx in self.ctxs]
        self.exchange = run_window_loop(
            handles,
            window_ticks=self.latency.shard_window_ticks(),
            npes=self.plan.npes,
            barrier_cost=barrier_cost_ticks(self.latency, self.plan.npes),
            trace=trace,
        )
        return max(ctx.engine.now for ctx in self.ctxs)
