"""Communication accounting for the fabric.

Every one-sided operation the NIC performs is tallied here, per initiating
PE and per operation kind.  The Figure-2 reproduction (steal communication
counts) is literally a read-out of these counters around a single steal,
so the bookkeeping is intentionally explicit rather than sampled.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

#: Operation kinds tracked by the NIC.
OP_KINDS = (
    "put",
    "put_nb",
    "put_signal",
    "get",
    "amo_fetch_add",
    "amo_add_nb",
    "amo_swap",
    "amo_cas",
    "amo_fetch",
)

#: Kinds that block the initiator until a round trip completes.
BLOCKING_KINDS = frozenset(
    {"put", "get", "amo_fetch_add", "amo_swap", "amo_cas", "amo_fetch"}
)

#: Set form of OP_KINDS for O(1) validation in the per-op hot path.
_OP_KIND_SET = frozenset(OP_KINDS)


@dataclass
class OpRecord:
    """One fabric operation, for fine-grained audits."""

    time: float
    initiator: int
    target: int
    kind: str
    nbytes: int


class FabricMetrics:
    """Counters for one-sided traffic, with optional per-op audit trace."""

    def __init__(self, npes: int, trace: bool = False) -> None:
        self.npes = npes
        self.ops_by_pe: list[Counter] = [Counter() for _ in range(npes)]
        self.bytes_by_pe: list[int] = [0] * npes
        self.trace_enabled = trace
        self.trace: list[OpRecord] = []
        #: Open-system serving events (arrival injections, sheds, elastic
        #: membership changes).  Empty for closed-batch runs, so their
        #: snapshots stay byte-identical to pre-serving archives.
        self.serving: Counter = Counter()

    def record_serving(self, event: str, count: int = 1) -> None:
        """Tally one serving-frontend event (injected/shed/leave/join/…)."""
        self.serving[event] += count

    def record(
        self, time: float, initiator: int, target: int, kind: str, nbytes: int
    ) -> None:
        """Tally one operation issued by ``initiator`` against ``target``."""
        if kind not in _OP_KIND_SET:
            raise ValueError(f"unknown op kind {kind!r}")
        self.ops_by_pe[initiator][kind] += 1
        self.bytes_by_pe[initiator] += nbytes
        if self.trace_enabled:
            self.trace.append(OpRecord(time, initiator, target, kind, nbytes))

    # ------------------------------------------------------------------
    # aggregation
    # ------------------------------------------------------------------
    def total_ops(self, kind: str | None = None) -> int:
        """Total operations across all PEs, optionally filtered by kind."""
        if kind is None:
            return sum(sum(c.values()) for c in self.ops_by_pe)
        return sum(c[kind] for c in self.ops_by_pe)

    def total_blocking_ops(self) -> int:
        """Total blocking (round-trip) operations across all PEs."""
        return sum(
            n for c in self.ops_by_pe for k, n in c.items() if k in BLOCKING_KINDS
        )

    def total_bytes(self) -> int:
        """Total payload bytes moved."""
        return sum(self.bytes_by_pe)

    def ops_of_pe(self, pe: int) -> Counter:
        """Counter of operations issued by one PE."""
        return self.ops_by_pe[pe]

    def snapshot(self) -> dict[str, int]:
        """Aggregate counts by kind plus totals, as a plain dict."""
        agg: Counter = Counter()
        for c in self.ops_by_pe:
            agg.update(c)
        out = {k: agg.get(k, 0) for k in OP_KINDS}
        out["total"] = sum(agg.values())
        out["blocking"] = self.total_blocking_ops()
        out["bytes"] = self.total_bytes()
        for event, n in sorted(self.serving.items()):
            if n:
                out[f"serving_{event}"] = n
        return out

    def delta(self, before: dict[str, int]) -> dict[str, int]:
        """Difference between the current snapshot and a prior one."""
        now = self.snapshot()
        return {k: now[k] - before.get(k, 0) for k in now}
