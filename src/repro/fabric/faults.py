"""Deterministic fault injection for the simulated fabric.

Real PGAS runtimes built on one-sided RDMA must survive lost packets,
latency spikes, and fail-stopped peers; the paper's fused-atomic steal is
motivated in part by how badly SDC's swap-lock degrades when the lock
holder stalls.  This module injects exactly those hazards into the
otherwise-perfect :class:`~repro.fabric.nic.Nic`, reproducibly:

* **message drops** — with probability ``drop_rate`` a one-sided op is
  lost *before it is applied* at the target.  Blocking ops then time out
  at the initiator (see ``op_timeout`` on the NIC); non-blocking ops are
  retired locally in error (so ``quiet()`` still completes) without the
  remote memory ever mutating.  Request-phase loss only: an operation
  that was applied always acks, so "timed out" implies "never applied"
  and retries are duplicate-free.
* **delay spikes** — with probability ``delay_rate`` an op's one-way
  latency grows by up to ``delay_spike`` seconds (uniform draw),
  modelling switch congestion far beyond the latency model's jitter.
* **PE failures** — at each scheduled virtual time the PE fail-stops:
  its process is killed mid-flight (``Engine.kill``) and its memory
  stops responding, so every op that *arrives* at a dead PE is dropped.

All randomness comes from a counter-hashed splitmix64 stream seeded by
``FaultPlan.seed``: a given (plan, workload) pair always reproduces the
same fault schedule, which the chaos suite relies on.

The default :class:`FaultPlan` injects nothing and installs no hooks:
`Nic` only consults the injector when a plan is active, so fault support
is zero-cost — and bit-identical — for ordinary runs.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from .errors import SimulationError

_MASK64 = (1 << 64) - 1


@dataclass(frozen=True)
class PEFailure:
    """One scheduled fail-stop: ``pe`` dies at virtual time ``time``."""

    pe: int
    time: float

    def __post_init__(self) -> None:
        if self.pe < 0:
            raise ValueError(f"pe must be non-negative, got {self.pe}")
        if self.time <= 0:
            raise ValueError(
                f"failure time must be positive (after launch), got {self.time}"
            )


@dataclass(frozen=True)
class FaultPlan:
    """Declarative, seeded description of the faults to inject.

    Attributes
    ----------
    seed:
        Base of the deterministic fault stream.
    drop_rate:
        Per-operation probability in ``[0, 1)`` that the message is lost
        before applying at the target.
    delay_rate:
        Per-operation probability in ``[0, 1)`` of a latency spike.
    delay_spike:
        Maximum extra one-way latency (seconds) added by a spike; the
        actual spike is a uniform draw in ``[0, delay_spike]``.
    pe_failures:
        Scheduled fail-stops, each a :class:`PEFailure` (or a bare
        ``(pe, time)`` tuple, normalized on construction).
    """

    seed: int = 0
    drop_rate: float = 0.0
    delay_rate: float = 0.0
    delay_spike: float = 0.0
    pe_failures: tuple[PEFailure, ...] = ()

    def __post_init__(self) -> None:
        if not 0.0 <= self.drop_rate < 1.0:
            raise ValueError(f"drop_rate must be in [0, 1), got {self.drop_rate}")
        if not 0.0 <= self.delay_rate < 1.0:
            raise ValueError(f"delay_rate must be in [0, 1), got {self.delay_rate}")
        if self.delay_spike < 0:
            raise ValueError(f"delay_spike must be >= 0, got {self.delay_spike}")
        normalized = tuple(
            f if isinstance(f, PEFailure) else PEFailure(*f)
            for f in self.pe_failures
        )
        object.__setattr__(self, "pe_failures", normalized)
        pes = [f.pe for f in normalized]
        if len(pes) != len(set(pes)):
            raise ValueError(f"duplicate PE in pe_failures: {pes}")

    @property
    def active(self) -> bool:
        """Does this plan inject anything at all?"""
        return bool(
            self.drop_rate > 0.0
            or self.delay_rate > 0.0
            or self.pe_failures
        )


class FaultInjector:
    """Runtime side of a :class:`FaultPlan`: consulted by the NIC per op.

    Also the accounting point: drops, spikes, timeouts and kills are
    tallied here and surfaced through :meth:`snapshot` into
    ``RunStats.faults``.
    """

    def __init__(self, plan: FaultPlan, npes: int) -> None:
        for f in plan.pe_failures:
            if f.pe >= npes:
                raise SimulationError(
                    f"fault plan fails PE {f.pe} but the job has {npes} PEs"
                )
        self.plan = plan
        self.npes = npes
        self._fail_time = {f.pe: f.time for f in plan.pe_failures}
        self._counter = 0
        # accounting
        self.dropped_by_kind: Counter = Counter()
        self.dead_target_drops = 0
        self.delay_spikes = 0
        self.timeouts_by_kind: Counter = Counter()
        self.killed: list[int] = []

    # ------------------------------------------------------------------
    # deterministic uniform stream
    # ------------------------------------------------------------------
    def _uniform(self) -> float:
        """Next deterministic draw in [0, 1) (splitmix64 counter hash)."""
        self._counter += 1
        z = (self.plan.seed * 0x9E3779B97F4A7C15
             + self._counter * 0xD1B54A32D192ED03) & _MASK64
        z ^= z >> 31
        z = (z * 0x94D049BB133111EB) & _MASK64
        z ^= z >> 29
        return z / float(1 << 64)

    # ------------------------------------------------------------------
    # queries (hot path — called once per fabric op when active)
    # ------------------------------------------------------------------
    def fail_time(self, pe: int) -> float | None:
        """Scheduled death time of ``pe``, or None if it never fails."""
        return self._fail_time.get(pe)

    def is_dead(self, pe: int, now: float) -> bool:
        """Is ``pe`` fail-stopped at virtual time ``now``?"""
        t = self._fail_time.get(pe)
        return t is not None and now >= t

    def should_drop(self, kind: str) -> bool:
        """Draw the per-op loss verdict (and count it when lost)."""
        if self.plan.drop_rate <= 0.0:
            return False
        if self._uniform() < self.plan.drop_rate:
            self.dropped_by_kind[kind] += 1
            return True
        return False

    def extra_delay(self) -> float:
        """Draw the per-op latency spike (0.0 almost always)."""
        if self.plan.delay_rate <= 0.0:
            return 0.0
        if self._uniform() < self.plan.delay_rate:
            self.delay_spikes += 1
            return self._uniform() * self.plan.delay_spike
        return 0.0

    # ------------------------------------------------------------------
    # notifications from the NIC
    # ------------------------------------------------------------------
    def note_dead_target(self, kind: str) -> None:
        """An op arrived at a dead PE's memory and fell on the floor."""
        self.dead_target_drops += 1
        self.dropped_by_kind[kind] += 1

    def note_timeout(self, kind: str) -> None:
        """A blocking op's timeout fired (descriptor cancelled)."""
        self.timeouts_by_kind[kind] += 1

    # ------------------------------------------------------------------
    # PE fail-stop wiring
    # ------------------------------------------------------------------
    def schedule_failures(self, engine, procs_by_pe: dict[int, object]) -> None:
        """Arm the scheduled kills against the given PE processes.

        ``procs_by_pe`` maps a PE rank to its engine :class:`Process`;
        ranks without a scheduled failure are ignored.
        """
        for pe, when in self._fail_time.items():
            proc = procs_by_pe.get(pe)
            if proc is None:
                continue

            def _kill(proc=proc, pe=pe) -> None:
                engine.kill(proc)
                self.killed.append(pe)

            engine.at(when, _kill)

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, int]:
        """Aggregate fault counters as a plain dict (for ``RunStats``)."""
        return {
            "dropped_ops": sum(self.dropped_by_kind.values()),
            "dead_target_drops": self.dead_target_drops,
            "delay_spikes": self.delay_spikes,
            "op_timeouts": sum(self.timeouts_by_kind.values()),
            "pes_killed": len(self.killed),
        }


#: Shared inert plan: injects nothing, keeps the fabric on its fast path.
NO_FAULTS = FaultPlan()
