"""Pickle-free shared-memory exchange rings for the fork shard transport.

One :class:`ShardLink` per forked shard replaces the per-round
``multiprocessing.Pipe`` pickles with two SPSC byte streams inside a
single :class:`~repro.mp.atomics.ShmWords` segment (the mp backend's
seqlock machinery from PR 5):

* the **grant stream** carries coordinator→shard window grants — a
  fixed header plus the round's inbound messages;
* the **report stream** carries shard→coordinator between-window
  reports — next-event tick, effective window bound, liveness, the
  barrier triple, and the drained outbox.

Each stream is a power-of-two ring of 64-bit words with monotone
head/tail counters.  The producer bulk-copies payload with the
lock-free :meth:`~repro.mp.atomics.ShmWords.write_block` into the
unpublished region and then publishes by storing the head through the
locked (seqlock-fenced) word API; the consumer polls the head with the
lock-free :meth:`~repro.mp.atomics.ShmWords.load_seq`, bulk-copies with
:meth:`~repro.mp.atomics.ShmWords.read_block`, and retires the range by
storing the tail.  Frames larger than the ring degrade gracefully: the
producer publishes in chunks and the consumer drains incrementally, so
capacity bounds memory, not message size.

An empty-ring wait does **not** spin: each stream carries a *doorbell*
— an ``os.pipe`` the producer rings (one non-blocking byte) after every
publish, and the consumer blocks on in ``select`` when it finds the
ring empty.  On an oversubscribed host (fewer cores than shards + the
coordinator, the common CI shape) a blocked reader hands the CPU to the
producer within a scheduler quantum, where spin/sleep backoff would
burn the producer's own timeslice and then oversleep the kernel timer
slack.  The byte is written strictly after the head store, so a
consumer that saw the ring empty either re-reads a fresh head or finds
the byte pending — no lost wakeups — and stale bytes merely cost one
spurious re-check.  The ``select`` timeout bounds how stale the
liveness ``check`` hook can get (a dead peer is noticed within ~50 ms,
not never).

Cross-shard op records are struct-packed by a small tagged codec
(:func:`encode_value` / :func:`decode_value`) that round-trips exactly
the value shapes the :class:`~repro.fabric.sharding.ShardRouter` wire
format uses — ints (arbitrary precision, bit-exact), strings, bytes,
bools, None, and nested tuples/lists with a fast path for word
payloads — so no pickle ever touches the per-round path.  The pipe
survives only for start/finish/deadlock/error traffic.
"""

from __future__ import annotations

import os
import select
import struct
from typing import Any, Callable

from ..threads.protocol import Backoff
from .errors import SimulationError

WORD = 8
_U64_MAX = (1 << 64) - 1
_I64_MIN, _I64_MAX = -(1 << 63), (1 << 63) - 1

_Q = struct.Struct("<Q")
_TAG_U64 = b"Q"      # unsigned 64-bit int
_TAG_I64 = b"q"      # signed 64-bit int (negative deltas)
_TAG_BIG = b"B"      # arbitrary-precision int: sign, length, magnitude
_TAG_STR = b"S"
_TAG_BYTES = b"Y"
_TAG_NONE = b"N"
_TAG_TRUE = b"T"
_TAG_FALSE = b"F"
_TAG_TUPLE = b"U"
_TAG_LIST = b"L"
_TAG_WTUPLE = b"V"   # tuple of u64 words, packed flat
_TAG_WLIST = b"W"    # list of u64 words, packed flat
_TAG_FLOAT = b"D"

#: Frame kinds on the grant stream.
GRANT, STOP = 1, 2
#: Frame kind on the report stream.
REPORT = 3

_GRANT_HDR = struct.Struct("<QQQ")         # kind, limit, nmsgs
_REPORT_HDR = struct.Struct("<QQQQQQQQQ")  # kind, next+1, ran_to, live,
                                           # gen, waiting, last_arrival,
                                           # resp_floor+1, nmsgs


# ======================================================================
# Tagged value codec (no pickle)
# ======================================================================
def _words_only(items: Any) -> bool:
    for v in items:
        if type(v) is not int or v < 0 or v > _U64_MAX:
            return False
    return True


def encode_value(obj: Any, out: bytearray) -> None:
    """Append one tagged value to ``out`` (exact round trip)."""
    t = type(obj)
    if t is int:
        if 0 <= obj <= _U64_MAX:
            out += _TAG_U64
            out += _Q.pack(obj)
        elif _I64_MIN <= obj < 0:
            out += _TAG_I64
            out += struct.pack("<q", obj)
        else:
            mag = abs(obj)
            raw = mag.to_bytes((mag.bit_length() + 7) // 8 or 1, "little")
            out += _TAG_BIG
            out += struct.pack("<bI", -1 if obj < 0 else 1, len(raw))
            out += raw
    elif t is str:
        raw = obj.encode("utf-8")
        out += _TAG_STR
        out += struct.pack("<I", len(raw))
        out += raw
    elif t is bytes:
        out += _TAG_BYTES
        out += struct.pack("<I", len(obj))
        out += obj
    elif obj is None:
        out += _TAG_NONE
    elif obj is True:
        out += _TAG_TRUE
    elif obj is False:
        out += _TAG_FALSE
    elif t is tuple or t is list:
        if len(obj) > 1 and _words_only(obj):
            out += _TAG_WTUPLE if t is tuple else _TAG_WLIST
            out += struct.pack("<I", len(obj))
            out += struct.pack(f"<{len(obj)}Q", *obj)
        else:
            out += _TAG_TUPLE if t is tuple else _TAG_LIST
            out += struct.pack("<I", len(obj))
            for item in obj:
                encode_value(item, out)
    elif t is float:
        out += _TAG_FLOAT
        out += struct.pack("<d", obj)
    elif t is bytearray:
        out += _TAG_BYTES
        out += struct.pack("<I", len(obj))
        out += bytes(obj)
    else:
        raise SimulationError(
            f"cross-shard message contains unencodable {t.__name__}: {obj!r}"
        )


def decode_value(buf: bytes, pos: int) -> tuple[Any, int]:
    """Decode one tagged value from ``buf`` at ``pos``; returns (value, end)."""
    tag = buf[pos:pos + 1]
    pos += 1
    if tag == _TAG_U64:
        return _Q.unpack_from(buf, pos)[0], pos + 8
    if tag == _TAG_I64:
        return struct.unpack_from("<q", buf, pos)[0], pos + 8
    if tag == _TAG_BIG:
        sign, n = struct.unpack_from("<bI", buf, pos)
        pos += 5
        return sign * int.from_bytes(buf[pos:pos + n], "little"), pos + n
    if tag == _TAG_STR:
        n = struct.unpack_from("<I", buf, pos)[0]
        pos += 4
        return buf[pos:pos + n].decode("utf-8"), pos + n
    if tag == _TAG_BYTES:
        n = struct.unpack_from("<I", buf, pos)[0]
        pos += 4
        return bytes(buf[pos:pos + n]), pos + n
    if tag == _TAG_NONE:
        return None, pos
    if tag == _TAG_TRUE:
        return True, pos
    if tag == _TAG_FALSE:
        return False, pos
    if tag in (_TAG_WTUPLE, _TAG_WLIST):
        n = struct.unpack_from("<I", buf, pos)[0]
        pos += 4
        words = struct.unpack_from(f"<{n}Q", buf, pos)
        pos += 8 * n
        return (words if tag == _TAG_WTUPLE else list(words)), pos
    if tag in (_TAG_TUPLE, _TAG_LIST):
        n = struct.unpack_from("<I", buf, pos)[0]
        pos += 4
        items = []
        for _ in range(n):
            v, pos = decode_value(buf, pos)
            items.append(v)
        return (tuple(items) if tag == _TAG_TUPLE else items), pos
    if tag == _TAG_FLOAT:
        return struct.unpack_from("<d", buf, pos)[0], pos + 8
    raise SimulationError(f"corrupt shard-ring frame: unknown tag {tag!r}")


def encode_blob(obj: Any) -> bytes:
    """Encode one value as a word-aligned, length-prefixed blob."""
    body = bytearray()
    encode_value(obj, body)
    pad = (-len(body)) % WORD
    return _Q.pack(len(body)) + bytes(body) + b"\x00" * pad


def _blob_words(payload_len: int) -> int:
    return 1 + (payload_len + WORD - 1) // WORD


# ======================================================================
# SPSC word stream over one ShmWords region
# ======================================================================
class _Stream:
    """One direction of a link: single producer, single consumer.

    ``head``/``tail`` are monotone word counters living at fixed indices
    of the shared segment; the data region is ``capacity`` words starting
    at ``base``.  Each side caches its own counter locally (it is the
    only writer of it) and polls the other side's through the seqlock.

    ``bell`` is an optional ``(read_fd, write_fd)`` doorbell pipe: the
    producer rings it after every publish and an empty-ring consumer
    blocks on it instead of spinning (see the module docstring for the
    lost-wakeup argument).  Without a bell (same-process unit tests) the
    consumer falls back to spin/sleep backoff.
    """

    __slots__ = ("words", "head_idx", "tail_idx", "base", "capacity",
                 "_head", "_tail", "bytes_moved", "bell_rd", "bell_wr")

    #: Seconds a bell-blocked consumer waits per ``select`` before
    #: re-running the liveness ``check`` hook.
    BELL_TIMEOUT = 0.05

    def __init__(self, words, head_idx: int, tail_idx: int,
                 base: int, capacity: int,
                 bell: tuple[int, int] | None = None) -> None:
        self.words = words
        self.head_idx = head_idx
        self.tail_idx = tail_idx
        self.base = base
        self.capacity = capacity
        self._head = 0   # producer-local
        self._tail = 0   # consumer-local
        self.bytes_moved = 0
        self.bell_rd, self.bell_wr = bell if bell else (None, None)

    def _ring_bell(self) -> None:
        try:
            os.write(self.bell_wr, b"\x01")
        except BlockingIOError:
            pass  # pipe already brimming with unseen wakeups

    def _await_bell(self, check: Callable[[], None] | None) -> None:
        """Block until the producer rings; drains stale bytes so the
        pipe cannot fill up.  The liveness ``check`` hook runs only on
        a timeout or end-of-file (peer's write end closed) — a normal
        ring is proof enough of life, and skipping the per-wake check
        keeps it off the hot path."""
        ready, _, _ = select.select([self.bell_rd], [], [], self.BELL_TIMEOUT)
        if ready:
            try:
                data = os.read(self.bell_rd, 4096)
            except BlockingIOError:  # pragma: no cover - raced drain
                return
            if data:
                return
        if check is not None:
            check()

    def write(self, data: bytes, check: Callable[[], None] | None = None) -> None:
        """Producer: append ``data`` (word-aligned), publishing as space
        frees up.  ``check`` runs on every backoff wait (peer liveness)."""
        if len(data) % WORD:
            raise SimulationError("shard-ring frames must be word-aligned")
        words = self.words
        cap = self.capacity
        total = len(data) // WORD
        done = 0
        head = self._head
        backoff = Backoff()
        while done < total:
            tail = words.load_seq(self.tail_idx)
            free = cap - (head - tail)
            if free == 0:
                if check is not None:
                    check()
                backoff.wait()
                continue
            n = min(free, total - done)
            pos = head % cap
            first = min(n, cap - pos)
            words.write_block(self.base + pos, data[done * WORD:(done + first) * WORD])
            if n > first:
                words.write_block(
                    self.base, data[(done + first) * WORD:(done + n) * WORD]
                )
            head += n
            words.store(self.head_idx, head)
            if self.bell_wr is not None:
                self._ring_bell()
            done += n
            backoff.reset()
        self._head = head
        self.bytes_moved += len(data)

    def read(self, nbytes: int, check: Callable[[], None] | None = None) -> bytes:
        """Consumer: block until ``nbytes`` (word-aligned) are drained."""
        words = self.words
        cap = self.capacity
        want = nbytes // WORD
        out = bytearray()
        tail = self._tail
        backoff = None
        while want:
            head = words.load_seq(self.head_idx)
            avail = head - tail
            if avail == 0:
                if self.bell_rd is not None:
                    self._await_bell(check)
                else:
                    if check is not None:
                        check()
                    if backoff is None:
                        backoff = Backoff()
                    backoff.wait()
                continue
            n = min(avail, want)
            pos = tail % cap
            first = min(n, cap - pos)
            out += words.read_block(self.base + pos, first)
            if n > first:
                out += words.read_block(self.base, n - first)
            tail += n
            words.store(self.tail_idx, tail)
            want -= n
            if backoff is not None:
                backoff.reset()
        self._tail = tail
        self.bytes_moved += len(out)
        return bytes(out)


# ======================================================================
# The per-shard link: grant stream down, report stream up
# ======================================================================
class ShardLink:
    """Both directions of one coordinator↔shard exchange channel.

    Created by the coordinator before fork; the child inherits the
    mapping and the doorbell pipes (fork start method — no pickling).
    The coordinator side produces grants and consumes reports; the
    child side mirrors.  The coordinator owns the segment lifecycle
    (:meth:`unlink`).

    Every frame on the wire is length-prefixed, so a consumer makes
    exactly two ring reads per frame — one word for the length, one
    bulk copy for the body — and parses the body from local memory.
    """

    #: Per-direction ring capacity. 1 << 14 words = 128 KiB — far above
    #: a typical round's traffic; bigger frames stream through in chunks.
    CAPACITY_WORDS = 1 << 14

    def __init__(self, mp_ctx=None, capacity_words: int | None = None) -> None:
        from ..mp.atomics import ShmWords

        cap = capacity_words or self.CAPACITY_WORDS
        if cap & (cap - 1):
            raise ValueError("ring capacity must be a power of two")
        self.capacity = cap
        # Layout: [g_head, g_tail, r_head, r_tail, grant data, report data]
        self.words = ShmWords(4 + 2 * cap, ctx=mp_ctx)
        self._bells = [*os.pipe(), *os.pipe()]
        for fd in self._bells:
            os.set_blocking(fd, False)
        self.grant = _Stream(self.words, 0, 1, 4, cap,
                             bell=(self._bells[0], self._bells[1]))
        self.report = _Stream(self.words, 2, 3, 4 + cap, cap,
                              bell=(self._bells[2], self._bells[3]))
        self._closed = False

    def _write_frame(self, stream: _Stream, frame: bytes,
                     check: Callable[[], None] | None) -> None:
        stream.write(_Q.pack(len(frame)) + frame, check)

    def _read_frame(self, stream: _Stream,
                    check: Callable[[], None] | None) -> bytes:
        n = _Q.unpack(stream.read(WORD, check))[0]
        return stream.read(n, check)

    # -- coordinator side ---------------------------------------------
    def post_grant(self, limit: int, msgs: list,
                   check: Callable[[], None] | None = None) -> None:
        frame = bytearray(_GRANT_HDR.pack(GRANT, limit, len(msgs)))
        for m in msgs:
            frame += encode_blob(m)
        self._write_frame(self.grant, bytes(frame), check)

    def post_stop(self, check: Callable[[], None] | None = None) -> None:
        self._write_frame(self.grant, _GRANT_HDR.pack(STOP, 0, 0), check)

    def recv_report(self, check: Callable[[], None] | None = None) -> tuple:
        buf = self._read_frame(self.report, check)
        (kind, nxt, ran_to, live, gen, waiting, last,
         floor, nmsgs) = _REPORT_HDR.unpack_from(buf, 0)
        if kind != REPORT:
            raise SimulationError(f"corrupt shard report frame (kind={kind})")
        pos = _REPORT_HDR.size
        outbox = []
        for _ in range(nmsgs):
            dest, arrival, blen = struct.unpack_from("<QQQ", buf, pos)
            pos += 3 * WORD
            msg, _ = decode_value(buf, pos)
            pos += WORD * ((blen + WORD - 1) // WORD)
            if msg[1] != arrival:  # pragma: no cover - wire-format guard
                raise SimulationError("shard report header/payload mismatch")
            outbox.append((dest, msg))
        next_event = None if nxt == 0 else nxt - 1
        resp_floor = None if floor == 0 else floor - 1
        return (next_event, outbox, (gen, waiting, last), live, ran_to,
                resp_floor)

    # -- child side ----------------------------------------------------
    def recv_grant(self, check: Callable[[], None] | None = None):
        """Returns ``(limit, msgs)`` or None on a STOP frame."""
        buf = self._read_frame(self.grant, check)
        kind, limit, nmsgs = _GRANT_HDR.unpack_from(buf, 0)
        if kind == STOP:
            return None
        if kind != GRANT:
            raise SimulationError(f"corrupt shard grant frame (kind={kind})")
        pos = _GRANT_HDR.size
        msgs = []
        for _ in range(nmsgs):
            blen = _Q.unpack_from(buf, pos)[0]
            pos += WORD
            msg, _ = decode_value(buf, pos)
            pos += WORD * ((blen + WORD - 1) // WORD)
            msgs.append(msg)
        return limit, msgs

    def send_report(self, state: tuple,
                    check: Callable[[], None] | None = None) -> None:
        next_event, outbox, (gen, waiting, last), live, ran_to, floor = state
        frame = bytearray(_REPORT_HDR.pack(
            REPORT,
            0 if next_event is None else next_event + 1,
            ran_to, live, gen, waiting, last,
            0 if floor is None else floor + 1,
            len(outbox),
        ))
        for dest, msg in outbox:
            body = bytearray()
            encode_value(msg, body)
            pad = (-len(body)) % WORD
            frame += struct.pack("<QQQ", dest, msg[1], len(body))
            frame += bytes(body) + b"\x00" * pad
        self._write_frame(self.report, bytes(frame), check)

    # -- lifecycle -----------------------------------------------------
    @property
    def bytes_moved(self) -> int:
        return self.grant.bytes_moved + self.report.bytes_moved

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            for fd in self._bells:
                try:
                    os.close(fd)
                except OSError:  # pragma: no cover - already closed
                    pass
        self.words.close()

    def unlink(self) -> None:
        self.words.unlink()
