"""Deterministic discrete-event engine with coroutine processes.

The engine owns a virtual clock and a priority queue of events.  Simulated
processing elements (PEs) are plain Python generators that ``yield``
*request* objects; the engine resumes a generator with the request's result
once the requested virtual time has elapsed.  Two request kinds exist at
this layer:

:class:`Delay`
    Advance the process's clock by a duration (models local computation).

:class:`Call`
    Invoke an arbitrary handler that takes over scheduling for the process
    (the NIC layer uses this to implement one-sided operations whose
    completion time depends on remote state).

Determinism: events at equal timestamps pop in insertion order (a
monotonically increasing sequence number breaks ties), so a given seed
always reproduces the same interleaving — a property the reproduction's
"run variation" experiments rely on.

Schedule exploration: attaching a
:class:`~repro.fabric.scheduler.Scheduler` replaces the insertion-order
tie-break with a pluggable policy.  The engine then collects every event
sharing the minimal timestamp into a *ready set* and lets the policy pick
which runs next, recording the choice so any interleaving can be replayed
bit-identically.  With no scheduler attached the original fast path runs
unchanged.  ``observers`` are invoked after every executed event — the
oracle layer uses them to check cross-PE invariants at each step.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Generator, Iterable

from .errors import DeadlockError, SimulationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .scheduler import Scheduler

#: Type of a simulated process body.
ProcessGen = Generator[Any, Any, Any]


@dataclass(frozen=True)
class Delay:
    """Request: advance virtual time by ``duration`` seconds."""

    duration: float

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise ValueError(f"negative delay: {self.duration}")


@dataclass(frozen=True)
class Call:
    """Request: hand control to ``handler(engine, process, *args)``.

    The handler is responsible for eventually calling
    :meth:`Engine.resume` on the process (possibly immediately).
    """

    handler: Callable[..., None]
    args: tuple = ()


class Process:
    """A live coroutine process inside the engine."""

    __slots__ = (
        "name", "gen", "engine", "finished", "result", "waiting",
        "killed", "blocked_on",
    )

    def __init__(self, name: str, gen: ProcessGen, engine: "Engine") -> None:
        self.name = name
        self.gen = gen
        self.engine = engine
        self.finished = False
        self.result: Any = None
        #: True while the process awaits a resume; guards double-resume bugs.
        self.waiting = False
        #: True once the process was fail-stopped by :meth:`Engine.kill`.
        self.killed = False
        #: Human-readable description of the request currently blocking
        #: this process (set by request handlers, shown on deadlock).
        self.blocked_on: str | None = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.finished else ("waiting" if self.waiting else "ready")
        return f"<Process {self.name} {state}>"


class Engine:
    """Deterministic discrete-event simulation engine."""

    def __init__(self, scheduler: "Scheduler | None" = None) -> None:
        self._heap: list[tuple[float, int, Callable[[], None], str | None]] = []
        self._seq = 0
        self._now = 0.0
        self.processes: list[Process] = []
        self._live = 0
        #: Events executed so far — the simulation-cost metric.
        self.events_processed = 0
        #: Callbacks returning extra context lines for deadlock reports
        #: (the NIC registers one describing outstanding ops / waiters).
        self.diagnostics: list[Callable[[], str]] = []
        #: Same-timestamp tie-break policy; None = insertion order
        #: (the bit-identical fast path).
        self.scheduler = scheduler
        #: Callbacks invoked after every executed event (invariant
        #: oracles).  Must not mutate simulation state.
        self.observers: list[Callable[[], None]] = []

    # ------------------------------------------------------------------
    # clock & event queue
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def schedule(self, delay: float, fn: Callable[[], None],
                 actor: str | None = None) -> None:
        """Run ``fn()`` ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past: {delay}")
        self.at(self._now + delay, fn, actor=actor)

    def at(self, when: float, fn: Callable[[], None],
           actor: str | None = None) -> None:
        """Run ``fn()`` at absolute virtual time ``when``.

        ``actor`` names the logical owner of the event (a process or a
        NIC unit) for schedule-exploration policies that prioritize by
        actor; it never affects the default insertion-order tie-break.
        """
        if when < self._now:
            raise SimulationError(
                f"cannot schedule at {when} before now={self._now}"
            )
        heapq.heappush(self._heap, (when, self._seq, fn, actor))
        self._seq += 1

    # ------------------------------------------------------------------
    # processes
    # ------------------------------------------------------------------
    def spawn(self, gen: ProcessGen, name: str = "proc") -> Process:
        """Register a generator as a process; it starts when :meth:`run` does.

        The first resume is scheduled at the current virtual time, so
        processes spawned before ``run()`` all begin at t=0 in spawn order.
        """
        proc = Process(name, gen, self)
        self.processes.append(proc)
        self._live += 1
        proc.waiting = True
        self.at(self._now, lambda: self._step(proc, None), actor=proc.name)
        return proc

    def resume(self, proc: Process, value: Any = None, delay: float = 0.0) -> None:
        """Resume ``proc`` with ``value`` after ``delay`` seconds."""
        if proc.finished:
            if proc.killed:
                return  # stale wakeup for a fail-stopped process
            raise SimulationError(f"resume of finished process {proc.name}")
        self.schedule(delay, lambda: self._step(proc, value), actor=proc.name)

    def throw(self, proc: Process, exc: BaseException, delay: float = 0.0) -> None:
        """Raise ``exc`` inside ``proc`` after ``delay`` seconds."""
        if proc.finished:
            if proc.killed:
                return
            raise SimulationError(f"throw into finished process {proc.name}")

        def _do() -> None:
            if proc.finished:
                return
            proc.waiting = False
            proc.blocked_on = None
            try:
                req = proc.gen.throw(exc)
            except StopIteration as stop:
                self._finish(proc, stop.value)
                return
            self._dispatch(proc, req)

        self.schedule(delay, _do, actor=proc.name)

    def kill(self, proc: Process) -> None:
        """Fail-stop ``proc`` immediately (simulated PE crash).

        The generator is closed (running any ``finally`` blocks at its
        current yield point), the process leaves the live set, and every
        later resume/throw aimed at it is silently discarded — in-flight
        completions for a dead PE land on the floor.
        """
        if proc.finished:
            return
        proc.finished = True
        proc.killed = True
        self._live -= 1
        proc.gen.close()

    def _step(self, proc: Process, value: Any) -> None:
        if proc.finished:
            return
        if not proc.waiting:
            raise SimulationError(f"double resume of process {proc.name}")
        proc.waiting = False
        proc.blocked_on = None
        try:
            req = proc.gen.send(value)
        except StopIteration as stop:
            self._finish(proc, stop.value)
            return
        self._dispatch(proc, req)

    def _dispatch(self, proc: Process, req: Any) -> None:
        proc.waiting = True
        if isinstance(req, Delay):
            proc.blocked_on = f"delay({req.duration:.3g}s)"
            self.resume(proc, None, delay=req.duration)
        elif isinstance(req, Call):
            req.handler(self, proc, *req.args)
        else:
            raise SimulationError(
                f"process {proc.name} yielded unsupported request {req!r}"
            )

    def _finish(self, proc: Process, result: Any) -> None:
        proc.finished = True
        proc.result = result
        self._live -= 1

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    def run(self, until: float | None = None) -> float:
        """Execute events until the queue drains (or ``until`` is reached).

        Returns the final virtual time.  Raises :class:`DeadlockError` if
        processes remain unfinished when the event queue empties — that
        means every live process is waiting on a resume nobody will send.

        With a :attr:`scheduler` attached, same-timestamp events run in
        the order the policy chooses (see :meth:`_run_scheduled`);
        otherwise the insertion-order fast path below runs — byte for
        byte the pre-exploration engine loop.
        """
        if self.scheduler is not None:
            return self._run_scheduled(until)
        observers = self.observers
        while self._heap:
            when, _, fn, _actor = self._heap[0]
            if until is not None and when > until:
                self._now = until
                return self._now
            heapq.heappop(self._heap)
            self._now = when
            self.events_processed += 1
            fn()
            if observers:
                for obs in observers:
                    obs()
        if self._live > 0:
            raise DeadlockError(self._deadlock_report())
        return self._now

    def _run_scheduled(self, until: float | None) -> float:
        """Exploration loop: the scheduler breaks same-timestamp ties.

        Each iteration drains every event sharing the minimal timestamp
        into a ready set (already in insertion order — the heap yields
        equal times by sequence number), asks the policy which to run,
        and pushes the rest back.  Events the chosen one schedules at the
        same timestamp join the next iteration's ready set, so a policy
        can interleave a fresh resume ahead of older pending events —
        exactly the freedom a real unordered fabric has.
        """
        sched = self.scheduler
        observers = self.observers
        while self._heap:
            when = self._heap[0][0]
            if until is not None and when > until:
                self._now = until
                return self._now
            ready = [heapq.heappop(self._heap)]
            while self._heap and self._heap[0][0] == when:
                ready.append(heapq.heappop(self._heap))
            if len(ready) == 1:
                entry = ready[0]
            else:
                idx = sched.choose(when, ready)
                entry = ready.pop(idx)
                for other in ready:
                    heapq.heappush(self._heap, other)
            self._now = when
            self.events_processed += 1
            entry[2]()
            if observers:
                for obs in observers:
                    obs()
        if self._live > 0:
            raise DeadlockError(self._deadlock_report())
        return self._now

    def _deadlock_report(self) -> str:
        """Describe every stuck process and attached diagnostics."""
        lines = [
            f"event queue empty at t={self._now:.6g}s with "
            f"{self._live} live processes:"
        ]
        for p in self.processes:
            if p.finished:
                continue
            lines.append(f"  {p.name}: blocked on {p.blocked_on or '<unknown>'}")
        for diag in self.diagnostics:
            text = diag()
            if text:
                lines.append(text)
        if self.scheduler is not None:
            # Embed the schedule identity so the hang is replayable as-is:
            # feed the recorded choices to a ReplayScheduler (or the
            # `repro explore --replay` CLI) to reproduce it.
            lines.append(f"  scheduler: {self.scheduler.describe()}")
            lines.append(
                f"  schedule choices ({len(self.scheduler.choices)} decisions, "
                f"last {min(32, len(self.scheduler.choices))} shown): "
                f"{self.scheduler.choice_tail(32)}"
            )
        return "\n".join(lines)

    def run_all(self, gens: Iterable[tuple[str, ProcessGen]]) -> float:
        """Convenience: spawn named generators then :meth:`run` to completion."""
        for name, gen in gens:
            self.spawn(gen, name=name)
        return self.run()
