"""Deterministic discrete-event engine with coroutine processes.

The engine owns a virtual clock and a calendar event queue.  Simulated
processing elements (PEs) are plain Python generators that ``yield``
*request* objects; the engine resumes a generator with the request's result
once the requested virtual time has elapsed.  Two request kinds exist at
this layer:

:class:`Delay`
    Advance the process's clock by a duration (models local computation).

:class:`Call`
    Invoke an arbitrary handler that takes over scheduling for the process
    (the NIC layer uses this to implement one-sided operations whose
    completion time depends on remote state).

Virtual time is kept as an **integer tick count** (1 tick = 1 femtosecond,
:data:`TICKS_PER_SECOND` = 10**15).  Integer ticks give exact event
ordering — no accumulated float error can reorder two events — and exact
arithmetic for every latency constant in
:mod:`~repro.fabric.latency` (the finest of which, ``beta`` per byte, is a
fraction of a nanosecond).  The public API still speaks seconds
(:attr:`Engine.now`, :meth:`Engine.schedule`, :meth:`Engine.at`); tick
variants (:attr:`Engine.now_ticks`, :meth:`Engine.schedule_ticks`,
:meth:`Engine.at_ticks`) expose the native clock for hot paths such as the
NIC's serialization arithmetic.

Determinism: events at equal timestamps pop in insertion order (a
monotonically increasing sequence number breaks ties), so a given seed
always reproduces the same interleaving — a property the reproduction's
"run variation" experiments rely on.

Event queue: a bucketed :class:`CalendarQueue` keyed on integer ticks.
Events land in coarse buckets (``tick >> CalendarQueue.SHIFT``); a small
heap orders the bucket keys and each bucket is sorted once, wholesale, when
it becomes current — cheaper than a per-event binary heap because the sort
is a single C call over the whole bucket.  Dequeue order is **bit-identical
to heapq order** on ``(when, seq)``: equal ticks always share a bucket, the
bucket sort is total on the unique ``(when, seq)`` prefix, and insertions
into the current bucket binary-insert at their sorted position.  Scheduling
methods return an opaque *event handle* accepted by :meth:`Engine.cancel`;
cancellation is lazy (the entry is tombstoned in place and skipped at
dequeue), with periodic compaction when tombstones outnumber live events.

Schedule exploration: attaching a
:class:`~repro.fabric.scheduler.Scheduler` replaces the insertion-order
tie-break with a pluggable policy.  The engine then collects every event
sharing the minimal timestamp into a *ready set* and lets the policy pick
which runs next, recording the choice so any interleaving can be replayed
bit-identically.  With no scheduler attached the original fast path runs
unchanged.  ``observers`` are invoked after every executed event — the
oracle layer uses them to check cross-PE invariants at each step.

Performance: :meth:`Engine.run` dispatches to one of three loops chosen
once, up front — a bare fast path (no scheduler, no observers), an
observed path, and the exploration path.  The fast path walks the current
bucket with everything hot held in locals; it performs **zero** per-event
instrumentation work (:attr:`Engine.instrumented_events` stays 0).
Attach schedulers/observers *before* calling :meth:`run`; attachments made
mid-run by an event are not picked up until the next :meth:`run` call.
"""

from __future__ import annotations

from bisect import insort
from functools import partial
from heapq import heapify, heappop, heappush
from typing import TYPE_CHECKING, Any, Callable, Generator, Iterable

from .errors import DeadlockError, SimulationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .scheduler import Scheduler

#: Type of a simulated process body.
ProcessGen = Generator[Any, Any, Any]

#: An event-queue entry: a mutable ``[when_ticks, seq, fn, actor]`` list.
#: ``(when, seq)`` is globally unique, so list comparison never reaches
#: the (uncomparable) callback.  Scheduling methods return the entry as a
#: cancellation handle; ``fn is None`` marks it cancelled or consumed.
EventHandle = list

#: Virtual-clock resolution: one tick is one femtosecond.  Fine enough
#: that every latency constant (including per-byte ``beta`` at 12 GB/s,
#: ~0.083 ns/byte) is an exact integer number of ticks.
TICKS_PER_SECOND = 10**15

#: Cumulative events executed by *all* engines in this process.  The
#: sweep runner reads this around a run to report events/sec without
#: needing a handle on the engine buried inside an experiment.
_event_tally = 0


def to_ticks(seconds: float) -> int:
    """Convert seconds to integer femtosecond ticks (round to nearest)."""
    return round(seconds * TICKS_PER_SECOND)


def to_seconds(ticks: int) -> float:
    """Convert integer ticks back to float seconds (correctly rounded)."""
    return ticks / TICKS_PER_SECOND


def events_tally() -> int:
    """Total events executed process-wide since import (or last reset)."""
    return _event_tally


def reset_event_tally() -> None:
    """Zero the process-wide event tally (sweep runner bookkeeping)."""
    global _event_tally
    _event_tally = 0


def add_event_tally(events: int) -> None:
    """Credit events executed outside this process (forked shard
    children report their engines' tallies back to the coordinator)."""
    global _event_tally
    _event_tally += events


class CalendarQueue:
    """Bucketed event queue with heapq-identical dequeue order.

    Entries are ``[when_ticks, seq, fn, actor]`` lists bucketed by
    ``when_ticks >> SHIFT``.  A heap of bucket keys yields buckets in
    time order; the *current* bucket is sorted wholesale on promotion and
    walked by cursor.  Three facts make dequeue order bit-identical to a
    ``(when, seq)`` binary heap:

    * equal ticks share a bucket (same key), so a tie never spans buckets;
    * the promotion sort is total on the unique ``(when, seq)`` prefix;
    * an insertion into the current bucket binary-inserts at its sorted
      position at-or-after the cursor (new events carry a fresh ``seq``
      and cannot sort before anything already consumed).

    Cancellation (:meth:`cancel`) is lazy: the entry's callback slot is
    nulled in place and the dequeue path skips it — no re-heapify, no
    search.  When tombstones exceed :data:`COMPACT_MIN` *and* outnumber
    live entries, a compaction sweep rebuilds the lists in place.
    """

    #: Bucket width exponent: one bucket spans ``2**SHIFT`` ticks
    #: (2**34 fs ≈ 17 µs of virtual time).  Coarse on purpose — the
    #: fabric workloads average ~1 event per distinct tick, so fine
    #: buckets pay a dict op plus a key-heap push per event for nothing;
    #: the pending set is small (hundreds), so the binary insert into a
    #: wide current bucket is cheap.  See docs/performance.md ("Event
    #: queue design") for the measured sizing sweep.
    SHIFT = 34

    #: Lazy-cancellation compaction floor: never compact below this many
    #: tombstones (a sweep is O(pending) and must stay rare).
    COMPACT_MIN = 256

    #: Consumed-prefix trim threshold: once the cursor has walked this
    #: far into the current bucket, the consumed prefix is deleted so a
    #: long-lived bucket does not retain fired events.  Amortized O(1)
    #: per event.
    TRIM = 4096

    __slots__ = ("_shift", "_buckets", "_keys", "_cur", "_cur_i",
                 "_cur_key", "_len", "_tombstones")

    def __init__(self, shift: int | None = None) -> None:
        self._shift = self.SHIFT if shift is None else shift
        #: Future buckets: key -> unsorted list of entries.
        self._buckets: dict[int, list[EventHandle]] = {}
        #: Min-heap of keys present in ``_buckets``.
        self._keys: list[int] = []
        #: Current (sorted) bucket being drained, or None.
        self._cur: list[EventHandle] | None = None
        #: Cursor: index of the next entry to dequeue from ``_cur``.
        self._cur_i = 0
        self._cur_key = -1
        self._len = 0
        self._tombstones = 0

    def __len__(self) -> int:
        return self._len

    def push(self, entry: EventHandle) -> None:
        """Insert ``entry``; ``entry[0]`` must be >= the last dequeue tick."""
        cur = self._cur
        if cur is not None and entry[0] >> self._shift == self._cur_key:
            # Active bucket: binary-insert at the sorted position.  New
            # entries carry a fresh seq, so they can never sort before the
            # cursor — searching [cur_i:] keeps the insert cheap.
            insort(cur, entry, self._cur_i)
        else:
            self._push_slow(entry)
        self._len += 1

    def _push_slow(self, entry: EventHandle) -> None:
        """Insert into a non-current bucket (the engine inlines the
        current-bucket fast path and falls back here)."""
        key = entry[0] >> self._shift
        b = self._buckets.get(key)
        if b is None:
            self._buckets[key] = [entry]
            heappush(self._keys, key)
        else:
            b.append(entry)

    def cancel(self, entry: EventHandle) -> bool:
        """Tombstone a pending entry; False if already fired/cancelled."""
        if entry[2] is None:
            return False
        entry[2] = None
        self._len -= 1
        self._tombstones += 1
        if self._tombstones > self.COMPACT_MIN and self._tombstones > self._len:
            self._compact()
        return True

    def peek(self) -> EventHandle | None:
        """Next live entry (cursor parked on it), or None when empty.

        Skips and reclaims tombstones; promotes (sorts) the next bucket
        when the current one drains.  After a non-None return the entry
        sits at ``_cur[_cur_i]`` — consuming it is ``_cur_i += 1`` plus
        nulling ``entry[2]`` and decrementing ``_len``.
        """
        while True:
            cur = self._cur
            if cur is not None:
                keys = self._keys
                if keys and keys[0] < self._cur_key:
                    # Windowed stepping (Engine.run_window) can park the
                    # cursor on a future bucket; a later insert below that
                    # bucket's key range would then be hidden behind it.
                    # Shelve the unconsumed tail and re-promote in order.
                    tail = cur[self._cur_i:]
                    if tail:
                        b = self._buckets.get(self._cur_key)
                        if b is None:
                            self._buckets[self._cur_key] = tail
                            heappush(keys, self._cur_key)
                        else:
                            b.extend(tail)
                    self._cur = None
                    continue
                i = self._cur_i
                if i >= self.TRIM:
                    del cur[:i]
                    self._cur_i = i = 0
                n = len(cur)
                while i < n:
                    e = cur[i]
                    if e[2] is not None:
                        self._cur_i = i
                        return e
                    self._tombstones -= 1
                    i += 1
                self._cur_i = i
            keys = self._keys
            if not keys:
                self._cur = None
                return None
            key = heappop(keys)
            lst = self._buckets.pop(key)
            lst.sort()
            self._cur = lst
            self._cur_i = 0
            self._cur_key = key

    def pop(self) -> tuple[int, int, Callable[[], None], Any] | None:
        """Dequeue the next live entry as a ``(when, seq, fn, actor)`` tuple."""
        e = self.peek()
        if e is None:
            return None
        self._cur_i += 1
        self._len -= 1
        when, seq, fn, actor = e
        e[2] = None  # consumed: a late cancel() must be a no-op
        return (when, seq, fn, actor)

    def _promote(self) -> list[EventHandle] | None:
        """Sort and install the next bucket; None when no buckets remain."""
        keys = self._keys
        if not keys:
            self._cur = None
            return None
        key = heappop(keys)
        lst = self._buckets.pop(key)
        lst.sort()
        self._cur = lst
        self._cur_i = 0
        self._cur_key = key
        return lst

    def _compact(self) -> None:
        """Sweep tombstones out of every pending list, in place.

        In-place slice assignment preserves list identity, so a compaction
        triggered *inside* a run loop (a callback cancelling timers) never
        invalidates the loop's reference to the current bucket.
        """
        cur = self._cur
        if cur is not None:
            i = self._cur_i
            live_tail = [e for e in cur[i:] if e[2] is not None]
            self._tombstones -= (len(cur) - i) - len(live_tail)
            cur[i:] = live_tail
        dead_keys = []
        for key, lst in self._buckets.items():
            live = [e for e in lst if e[2] is not None]
            if len(live) != len(lst):
                self._tombstones -= len(lst) - len(live)
                if live:
                    lst[:] = live
                else:
                    dead_keys.append(key)
        if dead_keys:
            for key in dead_keys:
                del self._buckets[key]
            self._keys = [k for k in self._keys if k in self._buckets]
            heapify(self._keys)


class Delay:
    """Request: advance virtual time by ``duration`` seconds.

    The tick conversion happens once at construction, so a Delay object
    may be cached and re-yielded (workers reuse one per constant
    overhead).  Instances render as ``delay(...)`` in deadlock reports.
    """

    __slots__ = ("duration", "ticks")

    def __init__(self, duration: float) -> None:
        if duration < 0:
            raise ValueError(f"negative delay: {duration}")
        self.duration = duration
        self.ticks = round(duration * TICKS_PER_SECOND)

    def __repr__(self) -> str:
        return f"delay({self.duration:.3g}s)"


class Call:
    """Request: hand control to ``handler(engine, process, *args)``.

    The handler is responsible for eventually calling
    :meth:`Engine.resume` on the process (possibly immediately).
    Subclasses with extra state are dispatched through the same path
    (the NIC's pooled operation records subclass Call so the dispatch
    test stays two pointer compares on the hot path).
    """

    __slots__ = ("handler", "args")

    def __init__(self, handler: Callable[..., None], args: tuple = ()) -> None:
        self.handler = handler
        self.args = args

    def __repr__(self) -> str:
        return f"call({getattr(self.handler, '__name__', self.handler)!r})"


class Process:
    """A live coroutine process inside the engine."""

    __slots__ = (
        "name", "gen", "engine", "finished", "result", "waiting",
        "killed", "blocked_on", "_step0",
    )

    def __init__(self, name: str, gen: ProcessGen, engine: "Engine") -> None:
        self.name = name
        self.gen = gen
        self.engine = engine
        self.finished = False
        self.result: Any = None
        #: True while the process awaits a resume; guards double-resume bugs.
        self.waiting = False
        #: True once the process was fail-stopped by :meth:`Engine.kill`.
        self.killed = False
        #: Description of the request currently blocking this process
        #: (set by request handlers, rendered in deadlock reports; may be
        #: any object whose ``str`` describes the wait — Delay instances
        #: are stored as-is to keep the hot dispatch allocation-free).
        self.blocked_on: Any = None
        #: Cached value-less resume callback.  Delay expiry and every
        #: ``resume(value=None)`` reuse this one bound partial instead of
        #: allocating a fresh closure per event (the fig7 hot path).
        self._step0 = partial(engine._step, self, None)

    def __repr__(self) -> str:
        state = "done" if self.finished else ("waiting" if self.waiting else "ready")
        return f"<Process {self.name} {state}>"


class Engine:
    """Deterministic discrete-event simulation engine."""

    def __init__(self, scheduler: "Scheduler | None" = None) -> None:
        #: Calendar event queue; entries are ``[when_ticks, seq, fn, actor]``.
        self._q = CalendarQueue()
        self._seq = 0
        self._now = 0  # integer ticks
        self.processes: list[Process] = []
        self._live = 0
        #: Events executed so far — the simulation-cost metric.
        self.events_processed = 0
        #: Events that went through an instrumented loop (observers or
        #: scheduler attached).  Stays 0 on the bare fast path — tests
        #: assert on this to prove the fast path really ran.
        self.instrumented_events = 0
        #: Callbacks returning extra context lines for deadlock reports
        #: (the NIC registers one describing outstanding ops / waiters).
        self.diagnostics: list[Callable[[], str]] = []
        #: Same-timestamp tie-break policy; None = insertion order
        #: (the bit-identical fast path).
        self.scheduler = scheduler
        #: Callbacks invoked after every executed event (invariant
        #: oracles).  Must not mutate simulation state.
        self.observers: list[Callable[[], None]] = []
        #: Active window bound while :meth:`run_window` is executing
        #: (None outside a window).  Event handlers may *lower* it via
        #: :meth:`clamp_window` — the sharded router clamps when a
        #: cross-shard fetch parks (its response may arrive as early as
        #: ``request_arrival + W``) and the shard barrier clamps when
        #: every local PE is parked (the release tick is not yet known).
        self._window_limit: int | None = None
        #: Effective bound of the last :meth:`run_window` call after any
        #: in-window clamps: every event with ``when < window_ran_to``
        #: has been executed.  The shard coordinator reads this to know
        #: how far the shard actually advanced.
        self.window_ran_to = 0

    # ------------------------------------------------------------------
    # clock & event queue
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now / TICKS_PER_SECOND

    @property
    def now_ticks(self) -> int:
        """Current virtual time in integer ticks (1 tick = 1 fs)."""
        return self._now

    def schedule(self, delay: float, fn: Callable[[], None],
                 actor: str | None = None) -> EventHandle:
        """Run ``fn()`` ``delay`` seconds from now.

        Returns an opaque handle accepted by :meth:`cancel` (as do all
        the scheduling variants below).
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past: {delay}")
        # Relative scheduling is exact integer arithmetic on the current
        # tick — immune to float round-trip loss at large virtual times.
        when = self._now + round(delay * TICKS_PER_SECOND)
        entry = [when, self._seq, fn, actor]
        self._seq += 1
        # Current-bucket insert inlined from CalendarQueue.push (hot path).
        q = self._q
        cur = q._cur
        if cur is not None and when >> q._shift == q._cur_key:
            insort(cur, entry, q._cur_i)
        else:
            q._push_slow(entry)
        q._len += 1
        return entry

    def schedule_ticks(self, dticks: int, fn: Callable[[], None],
                       actor: str | None = None) -> EventHandle:
        """Run ``fn()`` ``dticks`` ticks from now (tick-native hot path)."""
        if dticks < 0:
            raise SimulationError(f"cannot schedule into the past: {dticks} ticks")
        when = self._now + dticks
        entry = [when, self._seq, fn, actor]
        self._seq += 1
        q = self._q
        cur = q._cur
        if cur is not None and when >> q._shift == q._cur_key:
            insort(cur, entry, q._cur_i)
        else:
            q._push_slow(entry)
        q._len += 1
        return entry

    def at(self, when: float, fn: Callable[[], None],
           actor: str | None = None) -> EventHandle:
        """Run ``fn()`` at absolute virtual time ``when`` seconds.

        ``actor`` names the logical owner of the event (a process or a
        NIC unit) for schedule-exploration policies that prioritize by
        actor; it never affects the default insertion-order tie-break.
        """
        ticks = round(when * TICKS_PER_SECOND)
        if ticks < self._now:
            # Tolerate sub-tick float fuzz: a caller that computed
            # ``engine.now + x`` may round a hair below the integer
            # clock; clamp to now.  Anything truly in the past raises.
            if when >= self._now / TICKS_PER_SECOND:
                ticks = self._now
            else:
                raise SimulationError(
                    f"cannot schedule at {when} before now={self.now}"
                )
        entry = [ticks, self._seq, fn, actor]
        self._seq += 1
        self._q.push(entry)
        return entry

    def at_ticks(self, when_ticks: int, fn: Callable[[], None],
                 actor: str | None = None) -> EventHandle:
        """Run ``fn()`` at absolute tick ``when_ticks`` (tick-native)."""
        if when_ticks < self._now:
            raise SimulationError(
                f"cannot schedule at tick {when_ticks} before now={self._now}"
            )
        entry = [when_ticks, self._seq, fn, actor]
        self._seq += 1
        q = self._q
        cur = q._cur
        if cur is not None and when_ticks >> q._shift == q._cur_key:
            insort(cur, entry, q._cur_i)
        else:
            q._push_slow(entry)
        q._len += 1
        return entry

    def cancel(self, handle: EventHandle) -> bool:
        """Cancel a pending event by its scheduling handle.

        Returns True if the event was live (and is now tombstoned),
        False if it already fired or was already cancelled — cancelling
        late is always safe.  The NIC uses this to retire op-timeout
        timers the moment an operation completes, instead of letting a
        dead timer fire as a no-op event.
        """
        return self._q.cancel(handle)

    # ------------------------------------------------------------------
    # processes
    # ------------------------------------------------------------------
    def spawn(self, gen: ProcessGen, name: str = "proc") -> Process:
        """Register a generator as a process; it starts when :meth:`run` does.

        The first resume is scheduled at the current virtual time, so
        processes spawned before ``run()`` all begin at t=0 in spawn order.
        """
        proc = Process(name, gen, self)
        self.processes.append(proc)
        self._live += 1
        proc.waiting = True
        self.at_ticks(self._now, proc._step0, actor=name)
        return proc

    def resume(self, proc: Process, value: Any = None, delay: float = 0.0) -> None:
        """Resume ``proc`` with ``value`` after ``delay`` seconds."""
        if proc.finished:
            if proc.killed:
                return  # stale wakeup for a fail-stopped process
            raise SimulationError(f"resume of finished process {proc.name}")
        fn = proc._step0 if value is None else partial(self._step, proc, value)
        self.schedule(delay, fn, actor=proc.name)

    def resume_ticks(self, proc: Process, value: Any, dticks: int) -> None:
        """Resume ``proc`` with ``value`` after ``dticks`` ticks."""
        if proc.finished:
            if proc.killed:
                return
            raise SimulationError(f"resume of finished process {proc.name}")
        fn = proc._step0 if value is None else partial(self._step, proc, value)
        self.schedule_ticks(dticks, fn, actor=proc.name)

    def throw(self, proc: Process, exc: BaseException, delay: float = 0.0) -> None:
        """Raise ``exc`` inside ``proc`` after ``delay`` seconds."""
        if proc.finished:
            if proc.killed:
                return
            raise SimulationError(f"throw into finished process {proc.name}")

        def _do() -> None:
            if proc.finished:
                return
            proc.waiting = False
            proc.blocked_on = None
            try:
                req = proc.gen.throw(exc)
            except StopIteration as stop:
                self._finish(proc, stop.value)
                return
            self._dispatch(proc, req)

        self.schedule(delay, _do, actor=proc.name)

    def kill(self, proc: Process) -> None:
        """Fail-stop ``proc`` immediately (simulated PE crash).

        The generator is closed (running any ``finally`` blocks at its
        current yield point), the process leaves the live set, and every
        later resume/throw aimed at it is silently discarded — in-flight
        completions for a dead PE land on the floor.
        """
        if proc.finished:
            return
        proc.finished = True
        proc.killed = True
        self._live -= 1
        proc.gen.close()

    def _step(self, proc: Process, value: Any) -> None:
        if proc.finished:
            return
        if not proc.waiting:
            raise SimulationError(f"double resume of process {proc.name}")
        proc.waiting = False
        proc.blocked_on = None
        try:
            req = proc.gen.send(value)
        except StopIteration as stop:
            self._finish(proc, stop.value)
            return
        self._dispatch(proc, req)

    def _dispatch(self, proc: Process, req: Any) -> None:
        proc.waiting = True
        if req.__class__ is Delay:
            # Store the request itself as the blocking description — its
            # repr renders lazily, only if a deadlock report needs it.
            proc.blocked_on = req
            when = self._now + req.ticks
            entry = [when, self._seq, proc._step0, proc.name]
            self._seq += 1
            q = self._q
            cur = q._cur
            if cur is not None and when >> q._shift == q._cur_key:
                insort(cur, entry, q._cur_i)
            else:
                q._push_slow(entry)
            q._len += 1
        elif isinstance(req, Call):
            # Covers Call itself and subclasses (the NIC's pooled
            # operation records) in one C-level type check.
            req.handler(self, proc, *req.args)
        elif isinstance(req, Delay):  # pragma: no cover - subclass escape hatch
            proc.blocked_on = req
            self.resume(proc, None, delay=req.duration)
        else:
            raise SimulationError(
                f"process {proc.name} yielded unsupported request {req!r}"
            )

    def _finish(self, proc: Process, result: Any) -> None:
        proc.finished = True
        proc.result = result
        self._live -= 1

    # ------------------------------------------------------------------
    # windowed execution (sharded conservative-parallel mode)
    # ------------------------------------------------------------------
    @property
    def live(self) -> int:
        """Number of spawned processes that have not finished."""
        return self._live

    def next_event_ticks(self) -> int | None:
        """Tick of the earliest pending live event, or None when empty.

        The shard coordinator polls this between lock-step windows to
        compute the next safe window bound (YAWNS-style: the global
        minimum next-event time plus the latency model's lookahead).
        """
        e = self._q.peek()
        return None if e is None else e[0]

    def run_window(self, limit_ticks: int) -> int:
        """Execute every pending event with ``when < limit_ticks``.

        Returns the number of events executed.  Unlike :meth:`run`, an
        empty queue is *not* a deadlock here — a shard may simply have
        nothing to do this window while a cross-shard message is in
        flight toward it; the coordinator owns global deadlock detection.
        The clock is left at the last executed event (never advanced to
        the bound), so message insertions at ticks ``>= limit_ticks``
        are always legal afterwards.

        Window mode supports observers (per-shard oracles) but not
        schedule exploration: sharded contexts reject schedulers up
        front.

        The bound is dynamic: an event handler may lower it mid-window
        through :meth:`clamp_window` (never raise it).  The effective
        bound at exit is published as :attr:`window_ran_to` — the tick
        below which every event has now been executed.
        """
        global _event_tally
        observers = self.observers
        q = self._q
        events = 0
        self._window_limit = limit_ticks
        try:
            while True:
                e = q.peek()
                if e is None or e[0] >= self._window_limit:
                    break
                q._cur_i += 1
                q._len -= 1
                fn = e[2]
                e[2] = None
                self._now = e[0]
                events += 1
                fn()
                if observers:
                    for obs in observers:
                        obs()
        finally:
            self.window_ran_to = self._window_limit
            self._window_limit = None
            self.events_processed += events
            _event_tally += events
        return events

    def clamp_window(self, limit_ticks: int) -> None:
        """Lower the active :meth:`run_window` bound (no-op outside one).

        Events execute in tick order, so by the time a handler running
        at tick ``t`` clamps to ``limit_ticks >= t`` no event beyond the
        new bound has executed — lowering is always sound; raising is
        never allowed.
        """
        wl = self._window_limit
        if wl is not None and limit_ticks < wl:
            self._window_limit = limit_ticks

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    def run(self, until: float | None = None) -> float:
        """Execute events until the queue drains (or ``until`` is reached).

        Returns the final virtual time.  Raises :class:`DeadlockError` if
        processes remain unfinished when the event queue empties — that
        means every live process is waiting on a resume nobody will send.

        With a :attr:`scheduler` attached, same-timestamp events run in
        the order the policy chooses (see :meth:`_run_scheduled`); with
        observers attached, the observed loop notifies them per event.
        Otherwise the bare fast path runs: same event order, same final
        stats, no per-event instrumentation.
        """
        if self.scheduler is not None:
            return self._run_scheduled(until)
        if self.observers:
            return self._run_observed(until)
        global _event_tally
        q = self._q
        until_ticks = None if until is None else round(until * TICKS_PER_SECOND)
        events = 0
        try:
            if until_ticks is None:
                # Bare fast path: walk the current bucket by cursor with
                # the queue internals inlined.  ``q._cur`` keeps its
                # identity across callbacks (insertions insort in place,
                # compaction rewrites in place), so only the cursor and
                # length are re-read per iteration.
                while True:
                    cur = q._cur
                    if cur is None or q._cur_i >= len(cur):
                        if q._promote() is None:
                            break
                        continue
                    i = q._cur_i
                    if i >= q.TRIM:
                        del cur[:i]
                        q._cur_i = i = 0
                    n = len(cur)
                    while i < n:
                        e = cur[i]
                        i += 1
                        fn = e[2]
                        if fn is None:  # tombstone (cancelled timer)
                            q._tombstones -= 1
                            continue
                        e[2] = None  # consumed: a late cancel() is a no-op
                        q._cur_i = i  # publish before fn() may insort
                        q._len -= 1
                        self._now = e[0]
                        events += 1
                        fn()
                        n = len(cur)  # fn may have inserted behind n
                    q._cur_i = i
            else:
                while True:
                    e = q.peek()
                    if e is None:
                        if self._live > 0:
                            raise DeadlockError(self._deadlock_report())
                        return self._now / TICKS_PER_SECOND
                    if e[0] > until_ticks:
                        self._now = until_ticks
                        return self._now / TICKS_PER_SECOND
                    q._cur_i += 1
                    q._len -= 1
                    fn = e[2]
                    e[2] = None
                    self._now = e[0]
                    events += 1
                    fn()
        finally:
            self.events_processed += events
            _event_tally += events
        if self._live > 0:
            raise DeadlockError(self._deadlock_report())
        return self._now / TICKS_PER_SECOND

    def _run_observed(self, until: float | None) -> float:
        """Default-order loop with per-event observer notification."""
        global _event_tally
        observers = self.observers
        q = self._q
        until_ticks = None if until is None else round(until * TICKS_PER_SECOND)
        events = 0
        try:
            while True:
                e = q.peek()
                if e is None:
                    break
                if until_ticks is not None and e[0] > until_ticks:
                    self._now = until_ticks
                    return self._now / TICKS_PER_SECOND
                q._cur_i += 1
                q._len -= 1
                fn = e[2]
                e[2] = None
                self._now = e[0]
                events += 1
                fn()
                for obs in observers:
                    obs()
        finally:
            self.events_processed += events
            self.instrumented_events += events
            _event_tally += events
        if self._live > 0:
            raise DeadlockError(self._deadlock_report())
        return self._now / TICKS_PER_SECOND

    def _run_scheduled(self, until: float | None) -> float:
        """Exploration loop: the scheduler breaks same-timestamp ties.

        Each iteration gathers every live event sharing the minimal
        timestamp into a ready set (already in insertion order — the
        current bucket is sorted by ``(when, seq)``, so the tie run is
        contiguous at the cursor), asks the policy which to run, and
        removes only the chosen entry.  Events the chosen one schedules
        at the same timestamp binary-insert after the cursor and join the
        next iteration's ready set, so a policy can interleave a fresh
        resume ahead of older pending events — exactly the freedom a real
        unordered fabric has.
        """
        global _event_tally
        sched = self.scheduler
        observers = self.observers
        q = self._q
        until_ticks = None if until is None else round(until * TICKS_PER_SECOND)
        events = 0
        try:
            while True:
                first = q.peek()
                if first is None:
                    break
                when = first[0]
                if until_ticks is not None and when > until_ticks:
                    self._now = until_ticks
                    return self._now / TICKS_PER_SECOND
                cur = q._cur
                i = q._cur_i
                n = len(cur)
                if i + 1 < n and cur[i + 1][0] == when:
                    # Tie: gather the contiguous same-tick run (skipping
                    # tombstones) and let the policy choose.
                    ready: list[EventHandle] = []
                    pos: list[int] = []
                    j = i
                    while j < n and cur[j][0] == when:
                        e = cur[j]
                        if e[2] is not None:
                            ready.append(e)
                            pos.append(j)
                        j += 1
                    if len(ready) == 1:
                        entry = ready[0]
                        del cur[pos[0]]
                    else:
                        idx = sched.choose(when, ready)
                        entry = ready[idx]
                        del cur[pos[idx]]
                else:
                    entry = first
                    del cur[i]
                q._len -= 1
                fn = entry[2]
                entry[2] = None
                self._now = when
                events += 1
                fn()
                for obs in observers:
                    obs()
        finally:
            self.events_processed += events
            self.instrumented_events += events
            _event_tally += events
        if self._live > 0:
            raise DeadlockError(self._deadlock_report())
        return self._now / TICKS_PER_SECOND

    def _deadlock_report(self) -> str:
        """Describe every stuck process and attached diagnostics."""
        lines = [
            f"event queue empty at t={self.now:.6g}s with "
            f"{self._live} live processes:"
        ]
        for p in self.processes:
            if p.finished:
                continue
            lines.append(f"  {p.name}: blocked on {p.blocked_on or '<unknown>'}")
        for diag in self.diagnostics:
            text = diag()
            if text:
                lines.append(text)
        if self.scheduler is not None:
            # Embed the schedule identity so the hang is replayable as-is:
            # feed the recorded choices to a ReplayScheduler (or the
            # `repro explore --replay` CLI) to reproduce it.
            lines.append(f"  scheduler: {self.scheduler.describe()}")
            lines.append(
                f"  schedule choices ({len(self.scheduler.choices)} decisions, "
                f"last {min(32, len(self.scheduler.choices))} shown): "
                f"{self.scheduler.choice_tail(32)}"
            )
        return "\n".join(lines)

    def run_all(self, gens: Iterable[tuple[str, ProcessGen]]) -> float:
        """Convenience: spawn named generators then :meth:`run` to completion."""
        for name, gen in gens:
            self.spawn(gen, name=name)
        return self.run()
