"""Deterministic discrete-event engine with coroutine processes.

The engine owns a virtual clock and a priority queue of events.  Simulated
processing elements (PEs) are plain Python generators that ``yield``
*request* objects; the engine resumes a generator with the request's result
once the requested virtual time has elapsed.  Two request kinds exist at
this layer:

:class:`Delay`
    Advance the process's clock by a duration (models local computation).

:class:`Call`
    Invoke an arbitrary handler that takes over scheduling for the process
    (the NIC layer uses this to implement one-sided operations whose
    completion time depends on remote state).

Virtual time is kept as an **integer tick count** (1 tick = 1 femtosecond,
:data:`TICKS_PER_SECOND` = 10**15).  Integer ticks give exact event
ordering — no accumulated float error can reorder two events — and exact
arithmetic for every latency constant in
:mod:`~repro.fabric.latency` (the finest of which, ``beta`` per byte, is a
fraction of a nanosecond).  The public API still speaks seconds
(:attr:`Engine.now`, :meth:`Engine.schedule`, :meth:`Engine.at`); tick
variants (:attr:`Engine.now_ticks`, :meth:`Engine.schedule_ticks`,
:meth:`Engine.at_ticks`) expose the native clock for hot paths such as the
NIC's serialization arithmetic.

Determinism: events at equal timestamps pop in insertion order (a
monotonically increasing sequence number breaks ties), so a given seed
always reproduces the same interleaving — a property the reproduction's
"run variation" experiments rely on.

Schedule exploration: attaching a
:class:`~repro.fabric.scheduler.Scheduler` replaces the insertion-order
tie-break with a pluggable policy.  The engine then collects every event
sharing the minimal timestamp into a *ready set* and lets the policy pick
which runs next, recording the choice so any interleaving can be replayed
bit-identically.  With no scheduler attached the original fast path runs
unchanged.  ``observers`` are invoked after every executed event — the
oracle layer uses them to check cross-PE invariants at each step.

Performance: :meth:`Engine.run` dispatches to one of three loops chosen
once, up front — a bare fast path (no scheduler, no observers), an
observed path, and the exploration path.  The fast path pops and fires
events with everything hot held in locals; it performs **zero** per-event
instrumentation work (:attr:`Engine.instrumented_events` stays 0).
Attach schedulers/observers *before* calling :meth:`run`; attachments made
mid-run by an event are not picked up until the next :meth:`run` call.
"""

from __future__ import annotations

import heapq
from functools import partial
from typing import TYPE_CHECKING, Any, Callable, Generator, Iterable

from .errors import DeadlockError, SimulationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .scheduler import Scheduler

#: Type of a simulated process body.
ProcessGen = Generator[Any, Any, Any]

#: Virtual-clock resolution: one tick is one femtosecond.  Fine enough
#: that every latency constant (including per-byte ``beta`` at 12 GB/s,
#: ~0.083 ns/byte) is an exact integer number of ticks.
TICKS_PER_SECOND = 10**15

#: Cumulative events executed by *all* engines in this process.  The
#: sweep runner reads this around a run to report events/sec without
#: needing a handle on the engine buried inside an experiment.
_event_tally = 0


def to_ticks(seconds: float) -> int:
    """Convert seconds to integer femtosecond ticks (round to nearest)."""
    return round(seconds * TICKS_PER_SECOND)


def to_seconds(ticks: int) -> float:
    """Convert integer ticks back to float seconds (correctly rounded)."""
    return ticks / TICKS_PER_SECOND


def events_tally() -> int:
    """Total events executed process-wide since import (or last reset)."""
    return _event_tally


def reset_event_tally() -> None:
    """Zero the process-wide event tally (sweep runner bookkeeping)."""
    global _event_tally
    _event_tally = 0


class Delay:
    """Request: advance virtual time by ``duration`` seconds.

    The tick conversion happens once at construction, so a Delay object
    may be cached and re-yielded (workers reuse one per constant
    overhead).  Instances render as ``delay(...)`` in deadlock reports.
    """

    __slots__ = ("duration", "ticks")

    def __init__(self, duration: float) -> None:
        if duration < 0:
            raise ValueError(f"negative delay: {duration}")
        self.duration = duration
        self.ticks = round(duration * TICKS_PER_SECOND)

    def __repr__(self) -> str:
        return f"delay({self.duration:.3g}s)"


class Call:
    """Request: hand control to ``handler(engine, process, *args)``.

    The handler is responsible for eventually calling
    :meth:`Engine.resume` on the process (possibly immediately).
    """

    __slots__ = ("handler", "args")

    def __init__(self, handler: Callable[..., None], args: tuple = ()) -> None:
        self.handler = handler
        self.args = args

    def __repr__(self) -> str:
        return f"call({getattr(self.handler, '__name__', self.handler)!r})"


class Process:
    """A live coroutine process inside the engine."""

    __slots__ = (
        "name", "gen", "engine", "finished", "result", "waiting",
        "killed", "blocked_on",
    )

    def __init__(self, name: str, gen: ProcessGen, engine: "Engine") -> None:
        self.name = name
        self.gen = gen
        self.engine = engine
        self.finished = False
        self.result: Any = None
        #: True while the process awaits a resume; guards double-resume bugs.
        self.waiting = False
        #: True once the process was fail-stopped by :meth:`Engine.kill`.
        self.killed = False
        #: Description of the request currently blocking this process
        #: (set by request handlers, rendered in deadlock reports; may be
        #: any object whose ``str`` describes the wait — Delay instances
        #: are stored as-is to keep the hot dispatch allocation-free).
        self.blocked_on: Any = None

    def __repr__(self) -> str:
        state = "done" if self.finished else ("waiting" if self.waiting else "ready")
        return f"<Process {self.name} {state}>"


class Engine:
    """Deterministic discrete-event simulation engine."""

    def __init__(self, scheduler: "Scheduler | None" = None) -> None:
        #: Event heap; entries are ``(when_ticks, seq, fn, actor)``.
        self._heap: list[tuple[int, int, Callable[[], None], str | None]] = []
        self._seq = 0
        self._now = 0  # integer ticks
        self.processes: list[Process] = []
        self._live = 0
        #: Events executed so far — the simulation-cost metric.
        self.events_processed = 0
        #: Events that went through an instrumented loop (observers or
        #: scheduler attached).  Stays 0 on the bare fast path — tests
        #: assert on this to prove the fast path really ran.
        self.instrumented_events = 0
        #: Callbacks returning extra context lines for deadlock reports
        #: (the NIC registers one describing outstanding ops / waiters).
        self.diagnostics: list[Callable[[], str]] = []
        #: Same-timestamp tie-break policy; None = insertion order
        #: (the bit-identical fast path).
        self.scheduler = scheduler
        #: Callbacks invoked after every executed event (invariant
        #: oracles).  Must not mutate simulation state.
        self.observers: list[Callable[[], None]] = []

    # ------------------------------------------------------------------
    # clock & event queue
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now / TICKS_PER_SECOND

    @property
    def now_ticks(self) -> int:
        """Current virtual time in integer ticks (1 tick = 1 fs)."""
        return self._now

    def schedule(self, delay: float, fn: Callable[[], None],
                 actor: str | None = None) -> None:
        """Run ``fn()`` ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past: {delay}")
        # Relative scheduling is exact integer arithmetic on the current
        # tick — immune to float round-trip loss at large virtual times.
        heapq.heappush(
            self._heap,
            (self._now + round(delay * TICKS_PER_SECOND), self._seq, fn, actor),
        )
        self._seq += 1

    def schedule_ticks(self, dticks: int, fn: Callable[[], None],
                       actor: str | None = None) -> None:
        """Run ``fn()`` ``dticks`` ticks from now (tick-native hot path)."""
        if dticks < 0:
            raise SimulationError(f"cannot schedule into the past: {dticks} ticks")
        heapq.heappush(self._heap, (self._now + dticks, self._seq, fn, actor))
        self._seq += 1

    def at(self, when: float, fn: Callable[[], None],
           actor: str | None = None) -> None:
        """Run ``fn()`` at absolute virtual time ``when`` seconds.

        ``actor`` names the logical owner of the event (a process or a
        NIC unit) for schedule-exploration policies that prioritize by
        actor; it never affects the default insertion-order tie-break.
        """
        ticks = round(when * TICKS_PER_SECOND)
        if ticks < self._now:
            # Tolerate sub-tick float fuzz: a caller that computed
            # ``engine.now + x`` may round a hair below the integer
            # clock; clamp to now.  Anything truly in the past raises.
            if when >= self._now / TICKS_PER_SECOND:
                ticks = self._now
            else:
                raise SimulationError(
                    f"cannot schedule at {when} before now={self.now}"
                )
        heapq.heappush(self._heap, (ticks, self._seq, fn, actor))
        self._seq += 1

    def at_ticks(self, when_ticks: int, fn: Callable[[], None],
                 actor: str | None = None) -> None:
        """Run ``fn()`` at absolute tick ``when_ticks`` (tick-native)."""
        if when_ticks < self._now:
            raise SimulationError(
                f"cannot schedule at tick {when_ticks} before now={self._now}"
            )
        heapq.heappush(self._heap, (when_ticks, self._seq, fn, actor))
        self._seq += 1

    # ------------------------------------------------------------------
    # processes
    # ------------------------------------------------------------------
    def spawn(self, gen: ProcessGen, name: str = "proc") -> Process:
        """Register a generator as a process; it starts when :meth:`run` does.

        The first resume is scheduled at the current virtual time, so
        processes spawned before ``run()`` all begin at t=0 in spawn order.
        """
        proc = Process(name, gen, self)
        self.processes.append(proc)
        self._live += 1
        proc.waiting = True
        self.at_ticks(self._now, partial(self._step, proc, None), actor=name)
        return proc

    def resume(self, proc: Process, value: Any = None, delay: float = 0.0) -> None:
        """Resume ``proc`` with ``value`` after ``delay`` seconds."""
        if proc.finished:
            if proc.killed:
                return  # stale wakeup for a fail-stopped process
            raise SimulationError(f"resume of finished process {proc.name}")
        self.schedule(delay, partial(self._step, proc, value), actor=proc.name)

    def resume_ticks(self, proc: Process, value: Any, dticks: int) -> None:
        """Resume ``proc`` with ``value`` after ``dticks`` ticks."""
        if proc.finished:
            if proc.killed:
                return
            raise SimulationError(f"resume of finished process {proc.name}")
        self.schedule_ticks(dticks, partial(self._step, proc, value),
                            actor=proc.name)

    def throw(self, proc: Process, exc: BaseException, delay: float = 0.0) -> None:
        """Raise ``exc`` inside ``proc`` after ``delay`` seconds."""
        if proc.finished:
            if proc.killed:
                return
            raise SimulationError(f"throw into finished process {proc.name}")

        def _do() -> None:
            if proc.finished:
                return
            proc.waiting = False
            proc.blocked_on = None
            try:
                req = proc.gen.throw(exc)
            except StopIteration as stop:
                self._finish(proc, stop.value)
                return
            self._dispatch(proc, req)

        self.schedule(delay, _do, actor=proc.name)

    def kill(self, proc: Process) -> None:
        """Fail-stop ``proc`` immediately (simulated PE crash).

        The generator is closed (running any ``finally`` blocks at its
        current yield point), the process leaves the live set, and every
        later resume/throw aimed at it is silently discarded — in-flight
        completions for a dead PE land on the floor.
        """
        if proc.finished:
            return
        proc.finished = True
        proc.killed = True
        self._live -= 1
        proc.gen.close()

    def _step(self, proc: Process, value: Any) -> None:
        if proc.finished:
            return
        if not proc.waiting:
            raise SimulationError(f"double resume of process {proc.name}")
        proc.waiting = False
        proc.blocked_on = None
        try:
            req = proc.gen.send(value)
        except StopIteration as stop:
            self._finish(proc, stop.value)
            return
        self._dispatch(proc, req)

    def _dispatch(self, proc: Process, req: Any) -> None:
        proc.waiting = True
        cls = req.__class__
        if cls is Delay:
            # Store the request itself as the blocking description — its
            # repr renders lazily, only if a deadlock report needs it.
            proc.blocked_on = req
            heapq.heappush(
                self._heap,
                (self._now + req.ticks, self._seq,
                 partial(self._step, proc, None), proc.name),
            )
            self._seq += 1
        elif cls is Call:
            req.handler(self, proc, *req.args)
        elif isinstance(req, Delay):  # pragma: no cover - subclass escape hatch
            proc.blocked_on = req
            self.resume(proc, None, delay=req.duration)
        elif isinstance(req, Call):  # pragma: no cover - subclass escape hatch
            req.handler(self, proc, *req.args)
        else:
            raise SimulationError(
                f"process {proc.name} yielded unsupported request {req!r}"
            )

    def _finish(self, proc: Process, result: Any) -> None:
        proc.finished = True
        proc.result = result
        self._live -= 1

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    def run(self, until: float | None = None) -> float:
        """Execute events until the queue drains (or ``until`` is reached).

        Returns the final virtual time.  Raises :class:`DeadlockError` if
        processes remain unfinished when the event queue empties — that
        means every live process is waiting on a resume nobody will send.

        With a :attr:`scheduler` attached, same-timestamp events run in
        the order the policy chooses (see :meth:`_run_scheduled`); with
        observers attached, the observed loop notifies them per event.
        Otherwise the bare fast path runs: same event order, same final
        stats, no per-event instrumentation.
        """
        if self.scheduler is not None:
            return self._run_scheduled(until)
        if self.observers:
            return self._run_observed(until)
        global _event_tally
        heap = self._heap
        pop = heapq.heappop
        until_ticks = None if until is None else round(until * TICKS_PER_SECOND)
        events = 0
        try:
            if until_ticks is None:
                while heap:
                    when, _seq, fn, _actor = pop(heap)
                    self._now = when
                    events += 1
                    fn()
            else:
                while heap:
                    if heap[0][0] > until_ticks:
                        self._now = until_ticks
                        break
                    when, _seq, fn, _actor = pop(heap)
                    self._now = when
                    events += 1
                    fn()
                else:
                    if self._live > 0:
                        raise DeadlockError(self._deadlock_report())
                return self._now / TICKS_PER_SECOND
        finally:
            self.events_processed += events
            _event_tally += events
        if self._live > 0:
            raise DeadlockError(self._deadlock_report())
        return self._now / TICKS_PER_SECOND

    def _run_observed(self, until: float | None) -> float:
        """Default-order loop with per-event observer notification."""
        global _event_tally
        observers = self.observers
        heap = self._heap
        pop = heapq.heappop
        until_ticks = None if until is None else round(until * TICKS_PER_SECOND)
        events = 0
        try:
            while heap:
                if until_ticks is not None and heap[0][0] > until_ticks:
                    self._now = until_ticks
                    return self._now / TICKS_PER_SECOND
                when, _seq, fn, _actor = pop(heap)
                self._now = when
                events += 1
                fn()
                for obs in observers:
                    obs()
        finally:
            self.events_processed += events
            self.instrumented_events += events
            _event_tally += events
        if self._live > 0:
            raise DeadlockError(self._deadlock_report())
        return self._now / TICKS_PER_SECOND

    def _run_scheduled(self, until: float | None) -> float:
        """Exploration loop: the scheduler breaks same-timestamp ties.

        Each iteration drains every event sharing the minimal timestamp
        into a ready set (already in insertion order — the heap yields
        equal times by sequence number), asks the policy which to run,
        and pushes the rest back.  Events the chosen one schedules at the
        same timestamp join the next iteration's ready set, so a policy
        can interleave a fresh resume ahead of older pending events —
        exactly the freedom a real unordered fabric has.
        """
        global _event_tally
        sched = self.scheduler
        observers = self.observers
        heap = self._heap
        until_ticks = None if until is None else round(until * TICKS_PER_SECOND)
        events = 0
        try:
            while heap:
                when = heap[0][0]
                if until_ticks is not None and when > until_ticks:
                    self._now = until_ticks
                    return self._now / TICKS_PER_SECOND
                ready = [heapq.heappop(heap)]
                while heap and heap[0][0] == when:
                    ready.append(heapq.heappop(heap))
                if len(ready) == 1:
                    entry = ready[0]
                else:
                    idx = sched.choose(when, ready)
                    entry = ready.pop(idx)
                    for other in ready:
                        heapq.heappush(heap, other)
                self._now = when
                events += 1
                entry[2]()
                for obs in observers:
                    obs()
        finally:
            self.events_processed += events
            self.instrumented_events += events
            _event_tally += events
        if self._live > 0:
            raise DeadlockError(self._deadlock_report())
        return self._now / TICKS_PER_SECOND

    def _deadlock_report(self) -> str:
        """Describe every stuck process and attached diagnostics."""
        lines = [
            f"event queue empty at t={self.now:.6g}s with "
            f"{self._live} live processes:"
        ]
        for p in self.processes:
            if p.finished:
                continue
            lines.append(f"  {p.name}: blocked on {p.blocked_on or '<unknown>'}")
        for diag in self.diagnostics:
            text = diag()
            if text:
                lines.append(text)
        if self.scheduler is not None:
            # Embed the schedule identity so the hang is replayable as-is:
            # feed the recorded choices to a ReplayScheduler (or the
            # `repro explore --replay` CLI) to reproduce it.
            lines.append(f"  scheduler: {self.scheduler.describe()}")
            lines.append(
                f"  schedule choices ({len(self.scheduler.choices)} decisions, "
                f"last {min(32, len(self.scheduler.choices))} shown): "
                f"{self.scheduler.choice_tail(32)}"
            )
        return "\n".join(lines)

    def run_all(self, gens: Iterable[tuple[str, ProcessGen]]) -> float:
        """Convenience: spawn named generators then :meth:`run` to completion."""
        for name, gen in gens:
            self.spawn(gen, name=name)
        return self.run()
