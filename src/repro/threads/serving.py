"""Open-system serving over the real-thread shim substrate.

The threads backend has no virtual clock, so the arrival trace is
replayed by *order*, not by tick: the owner thread doubles as the
arrival feeder, releasing the trace's tasks (their sequence numbers) in
batches through the shim protocol while thief threads steal under
genuine preemption.  Latency is the **claim latency** — wall-clock
nanoseconds from a task's release (injection) to the moment a thief's
claim copies it out (or the owner re-absorbs it) — the share of serving
latency this substrate can actually measure, since there is no simulated
execution.  Checksums and counts are deterministic (they depend only on
the task *set*, not the interleaving), which is what the cross-backend
conformance suite pins against the fabric and mp runs.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from ..runtime.arrivals import ArrivalProcess, parse_arrival_spec, serving_checksum
from ..runtime.stats import QuantileSketch, ServingStats
from .queue_shim import ThreadSwsQueue
from .sdc_shim import ThreadSdcQueue

_QUEUES = {"sws": ThreadSwsQueue, "sdc": ThreadSdcQueue}


@dataclass
class ThreadServeResult:
    """One serving run's outcome on the threads backend."""

    serving: ServingStats
    loot: list[list[int]] = field(default_factory=list)
    kept: list[int] = field(default_factory=list)

    @property
    def completed_seqs(self) -> list[int]:
        out = [s for chunk in self.loot for s in chunk]
        out.extend(self.kept)
        return out


def run_serve_threads(
    arrival: str | ArrivalProcess,
    duration_s: float,
    seed: int = 0,
    impl: str = "sws",
    nthieves: int = 4,
    slo_s: float = 0.0,
    nbatches: int = 16,
    pace_s: float = 2e-5,
    acquires: int = 2,
) -> ThreadServeResult:
    """Replay one arrival trace through the thread shim queues.

    Every emitted arrival is injected (no shedding on this substrate);
    the disjoint union of thief loot and owner-kept tasks must equal the
    full trace, which :class:`ServingStats`'s books and checksum record.
    """
    if impl not in _QUEUES:
        raise ValueError(f"impl must be one of {sorted(_QUEUES)}, got {impl!r}")
    if isinstance(arrival, str):
        process = parse_arrival_spec(arrival, duration_s, seed)
    else:
        process = arrival
    n = process.emitted
    seqs = list(range(n))
    queue = _QUEUES[impl](seqs)
    sketch = QuantileSketch()
    slo_ns = int(slo_s * 1e9)
    slo_attained = 0
    release_ns: dict[int, int] = {}
    loot: list[list[int]] = [[] for _ in range(nthieves)]
    lat_lock = threading.Lock()
    stop = threading.Event()

    def note_complete(tasks: list[int], now: int) -> None:
        nonlocal slo_attained
        with lat_lock:
            for s in tasks:
                lat = now - release_ns[s]
                sketch.add(lat)
                if slo_ns and lat <= slo_ns:
                    slo_attained += 1

    def thief(idx: int) -> None:
        while not stop.is_set():
            res = queue.steal()
            if res.claimed:
                note_complete(res.claimed, time.monotonic_ns())
                loot[idx].extend(res.claimed)
            else:
                time.sleep(1e-6)

    threads = [
        threading.Thread(target=thief, args=(i,), daemon=True)
        for i in range(nthieves)
    ]
    for t in threads:
        t.start()

    # The feeder: inject the trace in arrival order, batch by batch.
    # ``release`` absorbs any unclaimed remainder into owner_kept, so the
    # kept list grows as the run proceeds; those re-absorptions complete
    # at the absorbing call's time.
    kept_stamped = 0

    def stamp_new_kept() -> None:
        nonlocal kept_stamped
        fresh = queue.owner_kept[kept_stamped:]
        kept_stamped = len(queue.owner_kept)
        if fresh:
            note_complete(fresh, time.monotonic_ns())

    batch = max(1, (n + nbatches - 1) // nbatches) if n else 0
    done_acquires = 0
    injected = 0
    while injected < n:
        chunk = seqs[injected : injected + batch]
        now = time.monotonic_ns()
        for s in chunk:
            release_ns[s] = now
        queue.release(len(chunk))
        stamp_new_kept()
        injected += len(chunk)
        time.sleep(pace_s)
        if done_acquires < acquires:
            queue.acquire()
            stamp_new_kept()
            done_acquires += 1
    queue.drain()
    stamp_new_kept()
    stop.set()
    for t in threads:
        t.join(timeout=5.0)
    kept = queue.take_kept()

    completed = [s for chunk in loot for s in chunk] + kept
    serving = ServingStats(
        emitted=n,
        injected=injected,
        shed=0,
        completed=len(completed),
        slo_ticks=slo_ns,
        slo_attained=slo_attained,
        checksum=serving_checksum(completed),
        latency=sketch,
    )
    return ThreadServeResult(serving=serving, loot=loot, kept=kept)
