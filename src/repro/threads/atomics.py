"""64-bit atomic words over real Python threads.

The discrete-event fabric serializes atomics by event order; this module
provides the same primitive operations under *true preemption* so the
stealval protocol can be cross-checked against genuine races
(``tests/test_threads.py``, ``tests/test_threads_sdc.py``).  CPython has
no public CAS on shared integers, so each word carries a mutex — the
semantics, not the performance, are the point.  For the cross-*process*
equivalent see :mod:`repro.mp.atomics`.
"""

from __future__ import annotations

import threading

_U64_MASK = (1 << 64) - 1


class AtomicWord64:
    """One 64-bit word with atomic RMW operations."""

    __slots__ = ("_value", "_lock")

    def __init__(self, value: int = 0) -> None:
        self._value = value & _U64_MASK
        self._lock = threading.Lock()

    def load(self) -> int:
        """Atomic read."""
        with self._lock:
            return self._value

    def store(self, value: int) -> None:
        """Atomic write."""
        with self._lock:
            self._value = value & _U64_MASK

    def fetch_add(self, delta: int) -> int:
        """Atomic fetch-and-add (wraps mod 2^64); returns the old value."""
        with self._lock:
            old = self._value
            self._value = (old + delta) & _U64_MASK
            return old

    def swap(self, value: int) -> int:
        """Atomic swap; returns the old value."""
        with self._lock:
            old = self._value
            self._value = value & _U64_MASK
            return old

    def compare_swap(self, expected: int, desired: int) -> int:
        """Atomic compare-and-swap; returns the old value."""
        with self._lock:
            old = self._value
            if old == (expected & _U64_MASK):
                self._value = desired & _U64_MASK
            return old


class AtomicArray64:
    """Fixed-length array of independent atomic 64-bit words."""

    def __init__(self, length: int, fill: int = 0) -> None:
        if length <= 0:
            raise ValueError(f"length must be positive, got {length}")
        self._words = [AtomicWord64(fill) for _ in range(length)]

    def __len__(self) -> int:
        return len(self._words)

    def __getitem__(self, index: int) -> AtomicWord64:
        return self._words[index]

    def snapshot(self) -> list[int]:
        """Non-atomic-across-words read of all values."""
        return [w.load() for w in self._words]
