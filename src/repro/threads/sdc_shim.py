"""SDC steal protocol over real threads — the baseline race harness.

Counterpart of :class:`~repro.threads.queue_shim.ThreadSwsQueue`: the
lock-based SDC protocol re-run under genuine preemption, by binding the
substrate-independent core (:class:`~repro.threads.protocol.SdcShimCore`)
to :class:`~repro.threads.atomics.AtomicWord64`.  Thieves acquire a
spinlock word, read the (tail, split) metadata, advance the tail, and
unlock — exactly the simulator's six-step structure minus the wire.

Comparing the two shims under the same hammer shows the behavioural
difference the paper measures: SDC thieves serialize on the lock while
SWS claims proceed concurrently.  The same core also drives the
multiprocess substrate (:mod:`repro.mp.queue`).
"""

from __future__ import annotations

import threading
import time

from .atomics import AtomicWord64
from .protocol import SdcShimCore, SdcShimResult

#: Historic name: thread tests match on these fields.
SdcThreadResult = SdcShimResult


class ThreadSdcQueue(SdcShimCore):
    """Owner-side SDC queue state over real atomics."""

    def __init__(self, tasks: list[int]) -> None:
        self.buffer = list(tasks)
        self.nfilled = len(self.buffer)
        self.lock = AtomicWord64(0)
        self.tail = AtomicWord64(0)
        self.split = AtomicWord64(0)
        self._init_protocol()

    def _read_tasks(self, start: int, count: int) -> list[int]:
        return self.buffer[start : start + count]


def hammer_sdc(
    tasks: list[int],
    nthieves: int = 4,
    releases: int = 8,
    acquires: int = 3,
) -> tuple[list[list[int]], list[int]]:
    """Race harness mirroring :func:`repro.threads.queue_shim.hammer`."""
    queue = ThreadSdcQueue(tasks)
    loot: list[list[int]] = [[] for _ in range(nthieves)]
    stop = threading.Event()

    def thief(idx: int) -> None:
        while not stop.is_set():
            res = queue.steal()
            if res.claimed:
                loot[idx].extend(res.claimed)
            else:
                time.sleep(1e-6)

    threads = [
        threading.Thread(target=thief, args=(i,), daemon=True)
        for i in range(nthieves)
    ]
    for t in threads:
        t.start()

    chunk = max(1, len(tasks) // releases)
    done_acquires = 0
    while queue.cursor < len(tasks):
        queue.release(chunk)
        time.sleep(2e-5)
        if done_acquires < acquires:
            queue.acquire()
            done_acquires += 1
    queue.drain()
    stop.set()
    for t in threads:
        t.join(timeout=5.0)
    return loot, queue.owner_kept
