"""SDC steal protocol over real threads — the baseline race harness.

Counterpart of :class:`~repro.threads.queue_shim.ThreadSwsQueue`: the
lock-based SDC protocol re-run under genuine preemption.  Thieves acquire
a spinlock word, read the (tail, split) metadata, advance the tail, and
unlock — exactly the simulator's six-step structure minus the wire.

Comparing the two shims under the same hammer shows the behavioural
difference the paper measures: SDC thieves serialize on the lock while
SWS claims proceed concurrently.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from .atomics import AtomicWord64


@dataclass
class SdcThreadResult:
    """One thief attempt's outcome."""

    claimed: list[int] = field(default_factory=list)
    lock_spins: int = 0
    empty: bool = False


class ThreadSdcQueue:
    """Owner-side SDC queue state over real atomics."""

    def __init__(self, tasks: list[int]) -> None:
        self.buffer = list(tasks)
        self.lock = AtomicWord64(0)
        self.tail = AtomicWord64(0)
        self.split = AtomicWord64(0)
        self.cursor = 0
        self.owner_kept: list[int] = []

    # -- owner ---------------------------------------------------------
    def release(self, count: int) -> None:
        """Expose the next ``count`` buffer tasks (requires empty shared,
        like the real protocol; surplus shared is absorbed first)."""
        self._lock()
        try:
            tail, split = self.tail.load(), self.split.load()
            if split > tail:
                # Absorb the remainder (acquire-all) before re-exposing.
                self.owner_kept.extend(self.buffer[tail:split])
                self.tail.store(split)
            count = min(count, len(self.buffer) - self.cursor)
            self.cursor += count
            self.split.store(self.cursor)
            self.tail.store(self.cursor - count)
        finally:
            self._unlock()

    def acquire(self) -> list[int]:
        """Pull back half of the shared portion under the lock."""
        self._lock()
        try:
            tail, split = self.tail.load(), self.split.load()
            avail = split - tail
            ntake = (avail + 1) // 2
            taken = self.buffer[split - ntake : split]
            self.owner_kept.extend(taken)
            self.split.store(split - ntake)
            return taken
        finally:
            self._unlock()

    def drain(self) -> None:
        """Absorb everything left (shared remainder + unshared)."""
        self._lock()
        try:
            tail, split = self.tail.load(), self.split.load()
            self.owner_kept.extend(self.buffer[tail:split])
            self.tail.store(split)
            self.owner_kept.extend(self.buffer[self.cursor :])
            self.cursor = len(self.buffer)
        finally:
            self._unlock()

    def _lock(self) -> None:
        while self.lock.compare_swap(0, 1) != 0:
            time.sleep(0)

    def _unlock(self) -> None:
        self.lock.store(0)

    # -- thief ---------------------------------------------------------
    def steal(self, max_spins: int = 10_000) -> SdcThreadResult:
        """One lock-protected steal-half attempt."""
        res = SdcThreadResult()
        while self.lock.compare_swap(0, 1) != 0:
            res.lock_spins += 1
            if res.lock_spins >= max_spins:
                return res
            time.sleep(0)
        try:
            tail, split = self.tail.load(), self.split.load()
            avail = split - tail
            if avail <= 0:
                res.empty = True
                return res
            n = max(1, avail // 2)
            res.claimed = self.buffer[tail : tail + n]
            self.tail.store(tail + n)
            return res
        finally:
            self._unlock()


def hammer_sdc(
    tasks: list[int],
    nthieves: int = 4,
    releases: int = 8,
    acquires: int = 3,
) -> tuple[list[list[int]], list[int]]:
    """Race harness mirroring :func:`repro.threads.queue_shim.hammer`."""
    queue = ThreadSdcQueue(tasks)
    loot: list[list[int]] = [[] for _ in range(nthieves)]
    stop = threading.Event()

    def thief(idx: int) -> None:
        while not stop.is_set():
            res = queue.steal()
            if res.claimed:
                loot[idx].extend(res.claimed)
            else:
                time.sleep(1e-6)

    threads = [
        threading.Thread(target=thief, args=(i,), daemon=True)
        for i in range(nthieves)
    ]
    for t in threads:
        t.start()

    chunk = max(1, len(tasks) // releases)
    done_acquires = 0
    while queue.cursor < len(tasks):
        queue.release(chunk)
        time.sleep(2e-5)
        if done_acquires < acquires:
            queue.acquire()
            done_acquires += 1
    queue.drain()
    stop.set()
    for t in threads:
        t.join(timeout=5.0)
    return loot, queue.owner_kept
