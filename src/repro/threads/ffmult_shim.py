"""Fence-free multiplicity deque over real threads — the dup-race harness.

Counterpart of :class:`~repro.threads.queue_shim.ThreadSwsQueue` and
:class:`~repro.threads.sdc_shim.ThreadSdcQueue` for the ``ff-mult``
protocol: the substrate-independent core
(:class:`~repro.threads.protocol.FfMultShimCore`) bound to
:class:`~repro.threads.atomics.AtomicWord64` used as *plain* words — the
steal path performs no atomic read-modify-write at all, so genuine thread
preemption produces the races the protocol is designed to tolerate: two
thieves observing the same tail both take the same task.

The conservation contract under the hammer is therefore *at-least-once*
over the task **set**: the union of all thieves' loot and the owner's
leftovers covers every original task, each appearing one or more times —
duplicates legal, losses not.  :func:`hammer_ffmult` additionally returns
the per-index handout multiplicity so property tests can assert
``multiplicity >= 1`` everywhere and ``> 1`` only where a race happened.
"""

from __future__ import annotations

import threading
import time
from collections import Counter

from .atomics import AtomicWord64
from .protocol import FfMultShimCore, FfMultShimResult

#: Naming symmetry with the other two shims.
FfMultThreadResult = FfMultShimResult


class ThreadFfMultQueue(FfMultShimCore):
    """Owner-side fence-free multiplicity queue state over real words."""

    def __init__(self, tasks: list[int]) -> None:
        self.buffer = list(tasks)
        self.nfilled = len(self.buffer)
        self.tail = AtomicWord64(0)
        self.split = AtomicWord64(0)
        self._init_protocol()

    def _read_tasks(self, start: int, count: int) -> list[int]:
        return self.buffer[start : start + count]


def hammer_ffmult(
    tasks: list[int],
    nthieves: int = 4,
    releases: int = 8,
    acquires: int = 3,
) -> tuple[list[list[int]], list[int], Counter]:
    """Race harness mirroring :func:`repro.threads.queue_shim.hammer`.

    Returns ``(per-thief loot, owner-kept tasks, index multiplicity)``;
    the union of loot and kept must **cover** ``tasks`` (set equality),
    with duplicates allowed wherever the multiplicity counter exceeds 1.
    """
    queue = ThreadFfMultQueue(tasks)
    loot: list[list[int]] = [[] for _ in range(nthieves)]
    handouts: list[Counter] = [Counter() for _ in range(nthieves)]
    stop = threading.Event()

    def thief(idx: int) -> None:
        while not stop.is_set():
            res = queue.steal()
            if res.claimed:
                loot[idx].extend(res.claimed)
                handouts[idx][res.index] += 1
            else:
                time.sleep(1e-6)

    threads = [
        threading.Thread(target=thief, args=(i,), daemon=True)
        for i in range(nthieves)
    ]
    for t in threads:
        t.start()

    chunk = max(1, len(tasks) // releases)
    done_acquires = 0
    while queue.cursor < len(tasks):
        queue.release(chunk)
        time.sleep(2e-5)
        if done_acquires < acquires:
            queue.acquire()
            done_acquires += 1
    queue.drain()
    stop.set()
    for t in threads:
        t.join(timeout=5.0)
    multiplicity: Counter = Counter()
    for h in handouts:
        multiplicity.update(h)
    return loot, queue.owner_kept, multiplicity
