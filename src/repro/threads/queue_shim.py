"""SWS stealval protocol over real threads — the race-test harness.

This is a deliberately compact re-implementation of the SWS claim
protocol using :class:`~repro.threads.atomics.AtomicWord64` instead of
simulated NIC atomics, so genuine thread preemption exercises the same
invariants the simulator's event ordering guarantees:

* a claiming ``fetch_add`` partitions the allotment — no task is claimed
  twice, none is skipped;
* claims racing an owner lock (``swap`` to the locked sentinel) either
  land before the swap (the owner accounts for them) or observe the
  locked word (the thief aborts and its stray increment is obliterated
  by the owner's re-publish);
* completion signalling via per-epoch slots reconstructs exactly the
  claimed volumes.

Tasks are plain integers; the "queue" is a Python list indexed like the
circular buffer.  Thieves record which tasks they stole; tests assert the
union of all thieves' loot plus the owner's leftovers equals the original
task set exactly.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from ..core.steal_half import max_steals, schedule, steal_displacement, steal_volume
from ..core.stealval import StealValEpoch

from .atomics import AtomicArray64, AtomicWord64


@dataclass
class ThreadStealResult:
    """One thief attempt's outcome."""

    claimed: list[int] = field(default_factory=list)
    aborted_locked: bool = False
    empty: bool = False


class ThreadSwsQueue:
    """Owner-side SWS queue state over real atomics."""

    def __init__(self, tasks: list[int], max_epochs: int = 2, comp_slots: int = 24) -> None:
        self.buffer = list(tasks)            # immutable backing store
        self.max_epochs = max_epochs
        self.comp_slots = comp_slots
        self.stealval = AtomicWord64(StealValEpoch.pack(0, 0, 0, 0))
        self.comp = AtomicArray64(max_epochs * comp_slots)
        self.epoch = 0
        # Owner bookkeeping: [start, start+itasks) is the live allotment.
        self._records: list[dict] = [
            {"epoch": 0, "start": 0, "itasks": 0, "claims": 0}
        ]
        self.cursor = 0                      # next unshared buffer index
        self.owner_kept: list[int] = []      # tasks re-acquired by the owner

    # -- owner ---------------------------------------------------------
    def release(self, count: int) -> None:
        """Publish the next ``count`` buffer tasks as a new allotment.

        Unlike the simulator's split queue — where the unclaimed
        remainder stays physically contiguous with newly exposed tasks —
        this flat-buffer shim cannot re-share a remainder across the hole
        an ``acquire`` leaves, so any unclaimed remainder is absorbed by
        the owner first (acquire-all-then-release).  The claim/lock/
        completion races being validated are unaffected.
        """
        rem_start, rem = self._close()
        if rem:
            self.owner_kept.extend(self.buffer[rem_start : rem_start + rem])
        count = min(count, len(self.buffer) - self.cursor)
        start = self.cursor
        self.cursor += count
        self._reopen(start, count)

    def acquire(self) -> list[int]:
        """Lock, pull back half the unclaimed remainder, re-publish."""
        rem_start, rem = self._close()
        ntake = (rem + 1) // 2
        taken = self.buffer[rem_start + (rem - ntake) : rem_start + rem]
        self.owner_kept.extend(taken)
        self._reopen(rem_start, rem - ntake)
        return taken

    def _close(self) -> tuple[int, int]:
        old = self.stealval.swap(StealValEpoch.locked_word())
        view = StealValEpoch.unpack(old)
        rec = self._records[-1]
        assert view.epoch == rec["epoch"] and view.itasks == rec["itasks"]
        claims = min(view.asteals, max_steals(view.itasks))
        rec["claims"] = claims
        disp = steal_displacement(rec["itasks"], claims)
        return rec["start"] + disp, rec["itasks"] - disp

    def _reopen(self, start: int, itasks: int) -> None:
        next_epoch = (self.epoch + 1) % self.max_epochs
        # Wait until the epoch's previous record fully completed, then
        # prune settled records and zero the epoch's completion row.
        while any(
            r["epoch"] == next_epoch and not self._settled(r)
            for r in self._records
        ):
            time.sleep(1e-5)
        self._records = [r for r in self._records if not self._settled(r)]
        base = next_epoch * self.comp_slots
        for i in range(self.comp_slots):
            self.comp[base + i].store(0)
        self.epoch = next_epoch
        self._records.append({"epoch": next_epoch, "start": start, "itasks": itasks})
        self.stealval.store(StealValEpoch.pack(0, next_epoch, itasks, start % (1 << 19)))

    def _settled(self, rec: dict) -> bool:
        claims = rec.get("claims")
        if claims is None:
            return False
        vols = schedule(rec["itasks"])
        base = rec["epoch"] * self.comp_slots
        return all(self.comp[base + i].load() == vols[i] for i in range(claims))

    def drain(self) -> None:
        """Wait for every claimed steal to signal completion."""
        rem_start, rem = self._close()
        self.owner_kept.extend(self.buffer[rem_start : rem_start + rem])
        while not all(self._settled(r) for r in self._records):
            time.sleep(1e-5)
        unshared = self.buffer[self.cursor :]
        self.owner_kept.extend(unshared)
        self.cursor = len(self.buffer)

    # -- thief ---------------------------------------------------------
    def steal(self) -> ThreadStealResult:
        """One claiming attempt, exactly the simulator's 3-step protocol."""
        old = self.stealval.fetch_add(StealValEpoch.ASTEAL_UNIT)
        view = StealValEpoch.unpack(old)
        if view.locked:
            return ThreadStealResult(aborted_locked=True)
        vol = steal_volume(view.itasks, view.asteals)
        if vol == 0:
            return ThreadStealResult(empty=True)
        disp = steal_displacement(view.itasks, view.asteals)
        # The tail field stores start % 2^19; tests keep buffers smaller
        # than that, so the raw value is the buffer index.
        start = view.tail + disp
        claimed = self.buffer[start : start + vol]
        # Simulate copy latency so completion really lags the claim.
        time.sleep(0)
        self.comp[view.epoch * self.comp_slots + view.asteals].fetch_add(vol)
        return ThreadStealResult(claimed=claimed)


def hammer(
    tasks: list[int],
    nthieves: int = 4,
    releases: int = 8,
    acquires: int = 3,
    seed: int = 0,
) -> tuple[list[list[int]], list[int]]:
    """Race harness: one owner thread releasing/acquiring, N thief threads.

    Returns ``(per-thief loot, owner-kept tasks)``; their disjoint union
    must equal ``tasks``.
    """
    queue = ThreadSwsQueue(tasks)
    loot: list[list[int]] = [[] for _ in range(nthieves)]
    stop = threading.Event()

    def thief(idx: int) -> None:
        while not stop.is_set():
            res = queue.steal()
            if res.claimed:
                loot[idx].extend(res.claimed)
            else:
                time.sleep(1e-6)

    threads = [
        threading.Thread(target=thief, args=(i,), daemon=True)
        for i in range(nthieves)
    ]
    for t in threads:
        t.start()

    chunk = max(1, len(tasks) // releases)
    done_acquires = 0
    while queue.cursor < len(tasks):
        queue.release(chunk)
        time.sleep(2e-5)
        if done_acquires < acquires:
            queue.acquire()
            done_acquires += 1
    queue.drain()
    stop.set()
    for t in threads:
        t.join(timeout=5.0)
    return loot, queue.owner_kept
