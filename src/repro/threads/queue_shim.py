"""SWS stealval protocol over real threads — the race-test harness.

This binds the substrate-independent SWS shim protocol
(:class:`~repro.threads.protocol.SwsShimCore`) to
:class:`~repro.threads.atomics.AtomicWord64`, so genuine thread
preemption exercises the same invariants the simulator's event ordering
guarantees:

* a claiming ``fetch_add`` partitions the allotment — no task is claimed
  twice, none is skipped;
* claims racing an owner lock (``swap`` to the locked sentinel) either
  land before the swap (the owner accounts for them) or observe the
  locked word (the thief aborts and its stray increment is obliterated
  by the owner's re-publish);
* completion signalling via per-epoch slots reconstructs exactly the
  claimed volumes.

Tasks are plain integers; the "queue" is a Python list indexed like the
circular buffer.  Thieves record which tasks they stole; tests assert the
union of all thieves' loot plus the owner's leftovers equals the original
task set exactly.  The same core also drives the multiprocess substrate
(:mod:`repro.mp.queue`) — protocol logic lives in exactly one place.
"""

from __future__ import annotations

import threading
import time

from .atomics import AtomicArray64, AtomicWord64
from .protocol import ShimStealResult, SwsShimCore

#: Historic name: thread tests match on these fields.
ThreadStealResult = ShimStealResult


class ThreadSwsQueue(SwsShimCore):
    """Owner-side SWS queue state over real atomics."""

    def __init__(self, tasks: list[int], max_epochs: int = 2, comp_slots: int = 24) -> None:
        self.buffer = list(tasks)            # immutable backing store
        self.nfilled = len(self.buffer)
        self.stealval = AtomicWord64(0)
        self.comp = AtomicArray64(max_epochs * comp_slots)
        self._init_protocol(max_epochs, comp_slots)

    def _read_tasks(self, start: int, count: int) -> list[int]:
        return self.buffer[start : start + count]


def hammer(
    tasks: list[int],
    nthieves: int = 4,
    releases: int = 8,
    acquires: int = 3,
    seed: int = 0,
) -> tuple[list[list[int]], list[int]]:
    """Race harness: one owner thread releasing/acquiring, N thief threads.

    Returns ``(per-thief loot, owner-kept tasks)``; their disjoint union
    must equal ``tasks``.
    """
    queue = ThreadSwsQueue(tasks)
    loot: list[list[int]] = [[] for _ in range(nthieves)]
    stop = threading.Event()

    def thief(idx: int) -> None:
        while not stop.is_set():
            res = queue.steal()
            if res.claimed:
                loot[idx].extend(res.claimed)
            else:
                time.sleep(1e-6)

    threads = [
        threading.Thread(target=thief, args=(i,), daemon=True)
        for i in range(nthieves)
    ]
    for t in threads:
        t.start()

    chunk = max(1, len(tasks) // releases)
    done_acquires = 0
    while queue.cursor < len(tasks):
        queue.release(chunk)
        time.sleep(2e-5)
        if done_acquires < acquires:
            queue.acquire()
            done_acquires += 1
    queue.drain()
    stop.set()
    for t in threads:
        t.join(timeout=5.0)
    return loot, queue.owner_kept
