"""Real-thread substrate: the SWS protocol under genuine preemption."""

from .atomics import AtomicArray64, AtomicWord64
from .queue_shim import ThreadStealResult, ThreadSwsQueue, hammer
from .sdc_shim import SdcThreadResult, ThreadSdcQueue, hammer_sdc

__all__ = [
    "AtomicWord64",
    "AtomicArray64",
    "ThreadSwsQueue",
    "ThreadStealResult",
    "hammer",
    "ThreadSdcQueue",
    "SdcThreadResult",
    "hammer_sdc",
]
