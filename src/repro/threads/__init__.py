"""Real-thread substrate: the SWS protocol under genuine preemption."""

from .atomics import AtomicArray64, AtomicWord64
from .protocol import (
    SdcShimCore,
    SdcShimResult,
    ShimStealResult,
    SwsShimCore,
    sdc_steal_once,
    sws_steal_once,
)
from .queue_shim import ThreadStealResult, ThreadSwsQueue, hammer
from .sdc_shim import SdcThreadResult, ThreadSdcQueue, hammer_sdc

__all__ = [
    "AtomicWord64",
    "AtomicArray64",
    "SwsShimCore",
    "SdcShimCore",
    "ShimStealResult",
    "SdcShimResult",
    "sws_steal_once",
    "sdc_steal_once",
    "ThreadSwsQueue",
    "ThreadStealResult",
    "hammer",
    "ThreadSdcQueue",
    "SdcThreadResult",
    "hammer_sdc",
]
