"""Real-thread substrate: the SWS protocol under genuine preemption."""

from .atomics import AtomicArray64, AtomicWord64
from .ffmult_shim import FfMultThreadResult, ThreadFfMultQueue, hammer_ffmult
from .protocol import (
    FfMultShimCore,
    FfMultShimResult,
    SdcShimCore,
    SdcShimResult,
    ShimStealResult,
    SwsShimCore,
    ffmult_steal_once,
    sdc_steal_once,
    sws_steal_once,
)
from .queue_shim import ThreadStealResult, ThreadSwsQueue, hammer
from .sdc_shim import SdcThreadResult, ThreadSdcQueue, hammer_sdc

__all__ = [
    "AtomicWord64",
    "AtomicArray64",
    "SwsShimCore",
    "SdcShimCore",
    "FfMultShimCore",
    "ShimStealResult",
    "SdcShimResult",
    "FfMultShimResult",
    "sws_steal_once",
    "sdc_steal_once",
    "ffmult_steal_once",
    "ThreadSwsQueue",
    "ThreadStealResult",
    "hammer",
    "ThreadSdcQueue",
    "SdcThreadResult",
    "hammer_sdc",
    "ThreadFfMultQueue",
    "FfMultThreadResult",
    "hammer_ffmult",
]
