"""Backend-agnostic SWS / SDC shim protocol cores.

The stealval claim protocol validated under real threads
(:mod:`repro.threads.queue_shim`) and under real OS processes
(:mod:`repro.mp.queue`) is *the same algorithm*; only the atomic
substrate differs — :class:`~repro.threads.atomics.AtomicWord64` for
threads, striped-lock shared-memory words for processes.  This module
holds the substrate-independent halves so neither backend carries a
copy:

* :class:`SwsShimCore` — the owner's release / acquire / close / reopen
  / settle bookkeeping and the epoch-array completion discipline;
* :func:`sws_steal_once` — the thief's 3-step fused discover+claim
  (one ``fetch_add``, local schedule arithmetic, completion signal);
* :class:`SdcShimCore` / :func:`sdc_steal_once` — the lock-based SDC
  baseline (spinlock, read metadata, advance tail, unlock);
* :class:`FfMultShimCore` / :func:`ffmult_steal_once` — the fence-free
  multiplicity deque (plain reads + a plain tail store, no atomic RMW on
  the steal path; racing thieves may duplicate a task, never lose one).

A substrate plugs in by providing word objects exposing atomic
``load`` / ``store`` / ``swap`` / ``fetch_add`` (and ``compare_swap``
for SDC's spinlock) plus a ``_read_tasks(start, count)`` accessor for
its task buffer.  The stealval encode/decode is
:class:`repro.core.stealval.StealValEpoch` — reused, never copied.

Two small data-plane helpers also live here because both real-time
substrates need them:

* :class:`RecordCodec` — fixed-width packing of task records to/from
  little-endian 64-bit words, so a bulk steal copy is one contiguous
  byte slice instead of per-word atomic loads;
* :class:`Backoff` — adaptive spin → yield → exponential-sleep waiter
  for polling loops (idle workers, completion waits), replacing
  fixed-interval sleeps that either burn CPU or add latency.
"""

from __future__ import annotations

import struct
import time
from dataclasses import dataclass, field

from ..core.steal_half import max_steals, schedule, steal_displacement, steal_volume
from ..core.stealval import StealValEpoch


class RecordCodec:
    """Fixed-width task-record codec for bulk data-plane copies.

    A task record is ``words_per_task`` unsigned little-endian 64-bit
    words.  Encoding a batch produces one ``bytes`` blob suitable for a
    single ``write_block``; decoding the blob a ``read_block`` returned
    recovers the records without touching the atomic word API.  Single
    -word tasks decode to plain ints (matching what per-word ``load``
    would have produced); wider tasks decode to tuples.
    """

    __slots__ = ("words_per_task", "record_bytes", "_struct")

    def __init__(self, words_per_task: int = 1) -> None:
        if words_per_task <= 0:
            raise ValueError(
                f"words_per_task must be positive, got {words_per_task}"
            )
        self.words_per_task = words_per_task
        self._struct = struct.Struct(f"<{words_per_task}Q")
        self.record_bytes = self._struct.size

    def encode(self, tasks) -> bytes:
        """Pack a batch of records into one contiguous blob."""
        if self.words_per_task == 1:
            return struct.pack(f"<{len(tasks)}Q", *tasks)
        return b"".join(self._struct.pack(*t) for t in tasks)

    def decode(self, data: bytes) -> list:
        """Unpack a blob back into records (ints or tuples)."""
        if self.words_per_task == 1:
            return list(struct.unpack(f"<{len(data) // 8}Q", data))
        return [t for t in self._struct.iter_unpack(data)]


class StallTimeout(RuntimeError):
    """A bounded wait ran out of wall clock without observing progress.

    The base class for every "this would have spun forever" diagnostic;
    the mp substrate refines it as :class:`repro.mp.errors.MpStallError`
    with stripe / rank / holder-pid context.
    """


class Backoff:
    """Adaptive spin → yield → exponential-sleep waiter.

    The first ``spins`` calls to :meth:`wait` return immediately (pure
    spin — right when the awaited writer is mid-critical-section on
    another core); the next ``yields`` calls release the GIL/CPU with
    ``time.sleep(0)``; after that each call sleeps, doubling from
    ``sleep_s`` up to ``max_sleep_s``.  Call :meth:`reset` whenever
    progress is observed so a busy phase snaps back to spinning.

    With ``deadline_s`` set, a single no-progress stretch (wall time
    since the last :meth:`reset`) longer than the deadline triggers
    ``on_deadline`` — which may repair whatever is stuck and return
    truthy to keep waiting with a fresh deadline — or, without a
    handler (or when it returns falsy), raises :class:`StallTimeout`.
    Polling loops must never be able to spin forever silently.
    """

    __slots__ = ("spins", "yields", "sleep_s", "max_sleep_s", "_n",
                 "deadline_s", "on_deadline", "_t0")

    def __init__(
        self,
        spins: int = 16,
        yields: int = 8,
        sleep_s: float = 1e-5,
        max_sleep_s: float = 1e-3,
        deadline_s: float | None = None,
        on_deadline=None,
    ) -> None:
        self.spins = spins
        self.yields = yields
        self.sleep_s = sleep_s
        self.max_sleep_s = max_sleep_s
        self.deadline_s = deadline_s
        self.on_deadline = on_deadline
        self._n = 0
        self._t0 = None

    def reset(self) -> None:
        self._n = 0
        self._t0 = None

    def elapsed(self) -> float:
        """Seconds spent in the current no-progress stretch."""
        return 0.0 if self._t0 is None else time.monotonic() - self._t0

    def wait(self) -> None:
        n = self._n
        self._n = n + 1
        if self.deadline_s is not None:
            now = time.monotonic()
            if self._t0 is None:
                self._t0 = now
            elif now - self._t0 >= self.deadline_s:
                if self.on_deadline is not None and self.on_deadline():
                    self._t0 = now  # handler made progress: re-arm
                else:
                    raise StallTimeout(
                        f"no progress for {now - self._t0:.1f}s "
                        f"(deadline {self.deadline_s}s)"
                    )
        if n < self.spins:
            return
        n -= self.spins
        if n < self.yields:
            time.sleep(0)
            return
        delay = self.sleep_s * (1 << min(n - self.yields, 12))
        time.sleep(delay if delay < self.max_sleep_s else self.max_sleep_s)


@dataclass
class ShimStealResult:
    """One thief attempt's outcome (shared by every shim substrate).

    ``view`` is the decoded stealval the claiming fetch-add observed —
    the damping state machine (paper §4.3) feeds on it.
    """

    claimed: list = field(default_factory=list)
    aborted_locked: bool = False
    empty: bool = False
    view: object = None


def sws_steal_once(
    stealval, comp, comp_slots: int, read_tasks,
    claimant=None, claim_token: int = 0, intent=None,
) -> ShimStealResult:
    """One claiming attempt — exactly the simulator's 3-step protocol.

    ``stealval`` is an atomic word, ``comp`` an indexable of atomic
    words (the per-epoch completion array), ``read_tasks(start, count)``
    the substrate's task-buffer accessor.  The single ``fetch_add``
    both discovers and claims; everything after it is local arithmetic
    plus the completion signal.

    Two optional crash-tolerance hooks (inert by default, used by the
    mp substrate's :class:`CrashPlan` mode):

    * ``claimant`` / ``claim_token`` — an atomic word array parallel to
      ``comp``; a successful claim stores its token (rank + 1) into its
      slot *before* copying, so a victim whose completion wait stalls
      can tell whether the claim is held by a dead process and void it.
    * ``intent(start, vol)`` — called after the claim wins and before
      the copy; the thief records the claimed buffer range durably so a
      crash after the completion signal (loot only in dead private
      memory) is recoverable from the victim's buffer.
    """
    old = stealval.fetch_add(StealValEpoch.ASTEAL_UNIT)
    view = StealValEpoch.unpack(old)
    if view.locked:
        return ShimStealResult(aborted_locked=True, view=view)
    vol = steal_volume(view.itasks, view.asteals)
    if vol == 0:
        return ShimStealResult(empty=True, view=view)
    disp = steal_displacement(view.itasks, view.asteals)
    # The tail field stores start % 2^19; shim buffers stay smaller
    # than that, so the raw value is the buffer index.
    start = view.tail + disp
    if claimant is not None:
        claimant[view.epoch * comp_slots + view.asteals].store(claim_token)
    if intent is not None:
        intent(start, vol)
    claimed = read_tasks(start, vol)
    # Simulate copy latency so completion really lags the claim.
    time.sleep(0)
    comp[view.epoch * comp_slots + view.asteals].fetch_add(vol)
    return ShimStealResult(claimed=claimed, view=view)


class SwsShimCore:
    """Owner-side SWS shim state over any atomic-word substrate.

    Subclasses provide ``self.stealval`` (atomic word), ``self.comp``
    (atomic word array of ``max_epochs * comp_slots``), ``self.nfilled``
    (tasks written to the buffer so far) and :meth:`_read_tasks` before
    calling :meth:`_init_protocol`.
    """

    #: Cap on the adaptive backoff's sleep while waiting on in-flight
    #: completions (the historical fixed poll interval).
    POLL_S = 1e-5

    #: Hard wall-clock deadline for one no-progress completion wait.
    #: ``None`` (the default, and the threads backend's setting) keeps
    #: the historical unbounded wait; the mp substrate sets it so a
    #: thief that died mid-claim stalls into :meth:`_on_settle_stall`
    #: instead of wedging the owner forever.
    stall_s: float | None = None

    #: Optional claimant-token word array parallel to ``comp`` (crash
    #: accounting — see ``sws_steal_once``).  When present its epoch row
    #: is zeroed alongside the completion row on epoch reuse.
    claimant = None

    def _on_settle_stall(self) -> bool:
        """Called when a completion wait exceeds ``stall_s``.

        Return truthy if progress was repaired (e.g. dead claims voided)
        and the wait should continue with a fresh deadline; the default
        repairs nothing, so the wait raises :class:`StallTimeout`.
        """
        return False

    def _settle_backoff(self) -> Backoff:
        return Backoff(
            sleep_s=self.POLL_S / 4, max_sleep_s=self.POLL_S,
            deadline_s=self.stall_s, on_deadline=self._on_settle_stall,
        )

    def _init_protocol(self, max_epochs: int, comp_slots: int) -> None:
        self.max_epochs = max_epochs
        self.comp_slots = comp_slots
        self.epoch = 0
        # Owner bookkeeping: [start, start+itasks) is the live allotment.
        self._records: list[dict] = [
            {"epoch": 0, "start": 0, "itasks": 0, "claims": 0}
        ]
        self.cursor = 0                      # next unshared buffer index
        self.owner_kept: list = []           # tasks re-acquired by the owner
        self.stealval.store(StealValEpoch.pack(0, 0, 0, 0))

    def _read_tasks(self, start: int, count: int) -> list:
        raise NotImplementedError

    def _keep(self, start: int, count: int) -> None:
        if count:
            self.owner_kept.extend(self._read_tasks(start, count))

    # -- owner ---------------------------------------------------------
    def release(self, count: int) -> None:
        """Publish the next ``count`` buffer tasks as a new allotment.

        Unlike the simulator's split queue — where the unclaimed
        remainder stays physically contiguous with newly exposed tasks —
        this flat-buffer shim cannot re-share a remainder across the hole
        an ``acquire`` leaves, so any unclaimed remainder is absorbed by
        the owner first (acquire-all-then-release).  The claim/lock/
        completion races being validated are unaffected.
        """
        rem_start, rem = self._close()
        self._keep(rem_start, rem)
        count = min(count, self.nfilled - self.cursor)
        start = self.cursor
        self.cursor += count
        self._reopen(start, count)

    def acquire(self) -> list:
        """Lock, pull back half the unclaimed remainder, re-publish."""
        rem_start, rem = self._close()
        ntake = (rem + 1) // 2
        taken = self._read_tasks(rem_start + (rem - ntake), ntake) if ntake else []
        self.owner_kept.extend(taken)
        self._reopen(rem_start, rem - ntake)
        return taken

    def _close(self) -> tuple[int, int]:
        old = self.stealval.swap(StealValEpoch.locked_word())
        view = StealValEpoch.unpack(old)
        rec = self._records[-1]
        assert view.epoch == rec["epoch"] and view.itasks == rec["itasks"]
        claims = min(view.asteals, max_steals(view.itasks))
        rec["claims"] = claims
        disp = steal_displacement(rec["itasks"], claims)
        return rec["start"] + disp, rec["itasks"] - disp

    def _reopen(self, start: int, itasks: int) -> None:
        next_epoch = (self.epoch + 1) % self.max_epochs
        # Wait until the epoch's previous record fully completed, then
        # prune settled records and zero the epoch's completion row.
        backoff = self._settle_backoff()
        while any(
            r["epoch"] == next_epoch and not self._settled(r)
            for r in self._records
        ):
            backoff.wait()
        self._records = [r for r in self._records if not self._settled(r)]
        base = next_epoch * self.comp_slots
        for i in range(self.comp_slots):
            self.comp[base + i].store(0)
        if self.claimant is not None:
            for i in range(self.comp_slots):
                self.claimant[base + i].store(0)
        self.epoch = next_epoch
        self._records.append({"epoch": next_epoch, "start": start, "itasks": itasks})
        self.stealval.store(StealValEpoch.pack(0, next_epoch, itasks, start % (1 << 19)))

    def _settled(self, rec: dict) -> bool:
        claims = rec.get("claims")
        if claims is None:
            return False
        vols = schedule(rec["itasks"])
        base = rec["epoch"] * self.comp_slots
        return all(self.comp[base + i].load() == vols[i] for i in range(claims))

    def drain(self) -> None:
        """Wait for every claimed steal to complete, absorb the rest.

        Leaves the stealval locked: post-drain claim attempts abort.
        """
        rem_start, rem = self._close()
        self._keep(rem_start, rem)
        backoff = self._settle_backoff()
        while not all(self._settled(r) for r in self._records):
            backoff.wait()
        self._keep(self.cursor, self.nfilled - self.cursor)
        self.cursor = self.nfilled

    def take_kept(self) -> list:
        """Hand back (and clear) the owner-reabsorbed tasks."""
        kept, self.owner_kept = self.owner_kept, []
        return kept

    # -- thief ---------------------------------------------------------
    def steal(self) -> ShimStealResult:
        """One claiming attempt against this queue's own words."""
        return sws_steal_once(
            self.stealval, self.comp, self.comp_slots, self._read_tasks
        )


# ======================================================================
# SDC: the lock-based baseline protocol
# ======================================================================

def sdc_steal_once(
    lock, tail, split, read_tasks, max_spins: int = 10_000,
    token: int = 1, dead_holder=None, intent=None,
) -> "SdcShimResult":
    """One lock-protected steal-half attempt (the six-step SDC shape).

    ``token`` is the value CASed into the lock word (the mp substrate
    passes its pid so a stuck lock names its holder).  ``dead_holder``,
    when given, is consulted every few hundred spins with the observed
    holder token; if it reports the holder dead the spinner takes the
    lock over with a single CAS (race-free: only one contender's
    ``compare_swap(holder, token)`` can win).  ``intent(start, count)``
    is called under the lock *before* the tail advance so a thief crash
    after the advance leaves a durable record of the claimed range.
    """
    res = SdcShimResult()
    while lock.compare_swap(0, token) != 0:
        res.lock_spins += 1
        if dead_holder is not None and res.lock_spins % 256 == 0:
            holder = lock.load()
            if holder and dead_holder(holder):
                if lock.compare_swap(holder, token) == holder:
                    break  # dead holder's lock taken over
                continue
        if res.lock_spins >= max_spins:
            return res
        time.sleep(0)
    try:
        t, s = tail.load(), split.load()
        avail = s - t
        if avail <= 0:
            res.empty = True
            return res
        n = max(1, avail // 2)
        if intent is not None:
            intent(t, n)
        res.claimed = read_tasks(t, n)
        tail.store(t + n)
        return res
    finally:
        lock.store(0)


@dataclass
class SdcShimResult:
    """One SDC thief attempt's outcome."""

    claimed: list = field(default_factory=list)
    lock_spins: int = 0
    empty: bool = False


class SdcShimCore:
    """Owner-side SDC shim state over any atomic-word substrate.

    Subclasses provide ``self.lock`` / ``self.tail`` / ``self.split``
    (atomic words), ``self.nfilled`` and :meth:`_read_tasks` before
    calling :meth:`_init_protocol`.
    """

    def _init_protocol(self) -> None:
        self.lock.store(0)
        self.tail.store(0)
        self.split.store(0)
        self.cursor = 0
        self.owner_kept: list = []

    def _read_tasks(self, start: int, count: int) -> list:
        raise NotImplementedError

    # -- owner ---------------------------------------------------------
    def release(self, count: int) -> None:
        """Expose the next ``count`` buffer tasks (requires empty shared,
        like the real protocol; surplus shared is absorbed first)."""
        self._lock()
        try:
            tail, split = self.tail.load(), self.split.load()
            if split > tail:
                # Absorb the remainder (acquire-all) before re-exposing.
                self.owner_kept.extend(self._read_tasks(tail, split - tail))
                self.tail.store(split)
            count = min(count, self.nfilled - self.cursor)
            self.cursor += count
            self.split.store(self.cursor)
            self.tail.store(self.cursor - count)
        finally:
            self._unlock()

    def acquire(self) -> list:
        """Pull back half of the shared portion under the lock."""
        self._lock()
        try:
            tail, split = self.tail.load(), self.split.load()
            avail = split - tail
            ntake = (avail + 1) // 2
            taken = self._read_tasks(split - ntake, ntake) if ntake else []
            self.owner_kept.extend(taken)
            self.split.store(split - ntake)
            return taken
        finally:
            self._unlock()

    def drain(self) -> None:
        """Absorb everything left (shared remainder + unshared)."""
        self._lock()
        try:
            tail, split = self.tail.load(), self.split.load()
            self.owner_kept.extend(self._read_tasks(tail, split - tail))
            self.tail.store(split)
            self.owner_kept.extend(
                self._read_tasks(self.cursor, self.nfilled - self.cursor)
            )
            self.cursor = self.nfilled
        finally:
            self._unlock()

    def take_kept(self) -> list:
        """Hand back (and clear) the owner-reabsorbed tasks."""
        kept, self.owner_kept = self.owner_kept, []
        return kept

    #: Lock-word token this owner CASes in (the mp substrate sets its
    #: pid so a wedged queue names its holder) and the dead-holder
    #: oracle consulted by the takeover path (None: spin forever, the
    #: historical single-address-space behaviour).
    lock_token: int = 1
    dead_holder = None

    def _lock(self) -> None:
        spins = 0
        while self.lock.compare_swap(0, self.lock_token) != 0:
            spins += 1
            if self.dead_holder is not None and spins % 256 == 0:
                holder = self.lock.load()
                if holder and self.dead_holder(holder):
                    if self.lock.compare_swap(holder, self.lock_token) == holder:
                        return  # dead holder's lock taken over
            time.sleep(0)

    def _unlock(self) -> None:
        self.lock.store(0)

    # -- thief ---------------------------------------------------------
    def steal(self, max_spins: int = 10_000) -> SdcShimResult:
        """One lock-protected steal-half attempt."""
        return sdc_steal_once(
            self.lock, self.tail, self.split, self._read_tasks, max_spins,
            token=self.lock_token, dead_holder=self.dead_holder,
        )


# ======================================================================
# ff-mult: the fence-free multiplicity deque
# ======================================================================

@dataclass
class FfMultShimResult:
    """One fence-free thief attempt's outcome.

    ``index`` is the absolute buffer index the thief consumed (``-1``
    when the shared section looked empty) — the mutation/property suites
    key duplicate multiplicity on it.
    """

    claimed: list = field(default_factory=list)
    empty: bool = False
    index: int = -1


def ffmult_steal_once(tail, split, read_tasks) -> FfMultShimResult:
    """One fence-free steal (Castañeda & Piña): no atomic RMW anywhere.

    Plain load of ``tail`` and ``split``, plain read of one task record,
    plain store of ``tail + 1``.  Two thieves observing the same tail
    both consume the same record and both store the same new tail — a
    legal duplicate handout.  The record is read *before* the tail store,
    so an index is never passed without someone holding its task: races
    duplicate work, they cannot lose it.
    """
    t = tail.load()
    s = split.load()
    if s - t <= 0:
        return FfMultShimResult(empty=True)
    claimed = read_tasks(t, 1)
    # Widen the race window so duplicates actually happen under test.
    time.sleep(0)
    tail.store(t + 1)
    return FfMultShimResult(claimed=list(claimed), index=t)


class FfMultShimCore:
    """Owner-side fence-free multiplicity shim over any word substrate.

    Subclasses provide ``self.tail`` / ``self.split`` (plain-load/store
    word objects), ``self.nfilled`` and :meth:`_read_tasks` before
    calling :meth:`_init_protocol`.

    The owner never takes a lock either: before re-publishing it absorbs
    the shared remainder ``[tail, split)`` into ``owner_kept`` and
    repairs the tail upward.  A thief's stale ``tail`` store can land
    after the repair and re-expose already-consumed indices — those
    re-steals are duplicates, which the at-least-once contract allows;
    every absorb reads the range *before* moving the tail, so no index
    is ever skipped unread.
    """

    def _init_protocol(self) -> None:
        self.tail.store(0)
        self.split.store(0)
        self.cursor = 0
        self.owner_kept: list = []

    def _read_tasks(self, start: int, count: int) -> list:
        raise NotImplementedError

    # -- owner ---------------------------------------------------------
    def release(self, count: int) -> None:
        """Absorb the shared remainder, then expose ``count`` new tasks."""
        t, s = self.tail.load(), self.split.load()
        if s > t:
            self.owner_kept.extend(self._read_tasks(t, s - t))
        count = min(count, self.nfilled - self.cursor)
        start = self.cursor
        self.cursor += count
        # Order matters: park the tail at the new region's base *before*
        # widening the split, so a thief never observes (old tail, new
        # split) and walks through the absorbed gap.
        self.tail.store(start)
        self.split.store(start + count)

    def acquire(self) -> list:
        """Pull back half the shared section (reads before the shrink)."""
        t, s = self.tail.load(), self.split.load()
        avail = s - t
        if avail <= 0:
            return []
        ntake = (avail + 1) // 2
        taken = self._read_tasks(s - ntake, ntake)
        self.owner_kept.extend(taken)
        self.split.store(s - ntake)
        return taken

    def drain(self) -> None:
        """Absorb everything left: shared remainder, then unshared."""
        t, s = self.tail.load(), self.split.load()
        if s > t:
            self.owner_kept.extend(self._read_tasks(t, s - t))
        self.tail.store(s)
        self.owner_kept.extend(
            self._read_tasks(self.cursor, self.nfilled - self.cursor)
        )
        self.cursor = self.nfilled

    def take_kept(self) -> list:
        """Hand back (and clear) the owner-reabsorbed tasks."""
        kept, self.owner_kept = self.owner_kept, []
        return kept

    # -- thief ---------------------------------------------------------
    def steal(self) -> FfMultShimResult:
        """One fence-free attempt against this queue's own words."""
        return ffmult_steal_once(self.tail, self.split, self._read_tasks)
