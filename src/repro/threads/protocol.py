"""Backend-agnostic SWS / SDC shim protocol cores.

The stealval claim protocol validated under real threads
(:mod:`repro.threads.queue_shim`) and under real OS processes
(:mod:`repro.mp.queue`) is *the same algorithm*; only the atomic
substrate differs — :class:`~repro.threads.atomics.AtomicWord64` for
threads, striped-lock shared-memory words for processes.  This module
holds the substrate-independent halves so neither backend carries a
copy:

* :class:`SwsShimCore` — the owner's release / acquire / close / reopen
  / settle bookkeeping and the epoch-array completion discipline;
* :func:`sws_steal_once` — the thief's 3-step fused discover+claim
  (one ``fetch_add``, local schedule arithmetic, completion signal);
* :class:`SdcShimCore` / :func:`sdc_steal_once` — the lock-based SDC
  baseline (spinlock, read metadata, advance tail, unlock).

A substrate plugs in by providing word objects exposing atomic
``load`` / ``store`` / ``swap`` / ``fetch_add`` (and ``compare_swap``
for SDC's spinlock) plus a ``_read_tasks(start, count)`` accessor for
its task buffer.  The stealval encode/decode is
:class:`repro.core.stealval.StealValEpoch` — reused, never copied.

Two small data-plane helpers also live here because both real-time
substrates need them:

* :class:`RecordCodec` — fixed-width packing of task records to/from
  little-endian 64-bit words, so a bulk steal copy is one contiguous
  byte slice instead of per-word atomic loads;
* :class:`Backoff` — adaptive spin → yield → exponential-sleep waiter
  for polling loops (idle workers, completion waits), replacing
  fixed-interval sleeps that either burn CPU or add latency.
"""

from __future__ import annotations

import struct
import time
from dataclasses import dataclass, field

from ..core.steal_half import max_steals, schedule, steal_displacement, steal_volume
from ..core.stealval import StealValEpoch


class RecordCodec:
    """Fixed-width task-record codec for bulk data-plane copies.

    A task record is ``words_per_task`` unsigned little-endian 64-bit
    words.  Encoding a batch produces one ``bytes`` blob suitable for a
    single ``write_block``; decoding the blob a ``read_block`` returned
    recovers the records without touching the atomic word API.  Single
    -word tasks decode to plain ints (matching what per-word ``load``
    would have produced); wider tasks decode to tuples.
    """

    __slots__ = ("words_per_task", "record_bytes", "_struct")

    def __init__(self, words_per_task: int = 1) -> None:
        if words_per_task <= 0:
            raise ValueError(
                f"words_per_task must be positive, got {words_per_task}"
            )
        self.words_per_task = words_per_task
        self._struct = struct.Struct(f"<{words_per_task}Q")
        self.record_bytes = self._struct.size

    def encode(self, tasks) -> bytes:
        """Pack a batch of records into one contiguous blob."""
        if self.words_per_task == 1:
            return struct.pack(f"<{len(tasks)}Q", *tasks)
        return b"".join(self._struct.pack(*t) for t in tasks)

    def decode(self, data: bytes) -> list:
        """Unpack a blob back into records (ints or tuples)."""
        if self.words_per_task == 1:
            return list(struct.unpack(f"<{len(data) // 8}Q", data))
        return [t for t in self._struct.iter_unpack(data)]


class Backoff:
    """Adaptive spin → yield → exponential-sleep waiter.

    The first ``spins`` calls to :meth:`wait` return immediately (pure
    spin — right when the awaited writer is mid-critical-section on
    another core); the next ``yields`` calls release the GIL/CPU with
    ``time.sleep(0)``; after that each call sleeps, doubling from
    ``sleep_s`` up to ``max_sleep_s``.  Call :meth:`reset` whenever
    progress is observed so a busy phase snaps back to spinning.
    """

    __slots__ = ("spins", "yields", "sleep_s", "max_sleep_s", "_n")

    def __init__(
        self,
        spins: int = 16,
        yields: int = 8,
        sleep_s: float = 1e-5,
        max_sleep_s: float = 1e-3,
    ) -> None:
        self.spins = spins
        self.yields = yields
        self.sleep_s = sleep_s
        self.max_sleep_s = max_sleep_s
        self._n = 0

    def reset(self) -> None:
        self._n = 0

    def wait(self) -> None:
        n = self._n
        self._n = n + 1
        if n < self.spins:
            return
        n -= self.spins
        if n < self.yields:
            time.sleep(0)
            return
        delay = self.sleep_s * (1 << min(n - self.yields, 12))
        time.sleep(delay if delay < self.max_sleep_s else self.max_sleep_s)


@dataclass
class ShimStealResult:
    """One thief attempt's outcome (shared by every shim substrate).

    ``view`` is the decoded stealval the claiming fetch-add observed —
    the damping state machine (paper §4.3) feeds on it.
    """

    claimed: list = field(default_factory=list)
    aborted_locked: bool = False
    empty: bool = False
    view: object = None


def sws_steal_once(stealval, comp, comp_slots: int, read_tasks) -> ShimStealResult:
    """One claiming attempt — exactly the simulator's 3-step protocol.

    ``stealval`` is an atomic word, ``comp`` an indexable of atomic
    words (the per-epoch completion array), ``read_tasks(start, count)``
    the substrate's task-buffer accessor.  The single ``fetch_add``
    both discovers and claims; everything after it is local arithmetic
    plus the completion signal.
    """
    old = stealval.fetch_add(StealValEpoch.ASTEAL_UNIT)
    view = StealValEpoch.unpack(old)
    if view.locked:
        return ShimStealResult(aborted_locked=True, view=view)
    vol = steal_volume(view.itasks, view.asteals)
    if vol == 0:
        return ShimStealResult(empty=True, view=view)
    disp = steal_displacement(view.itasks, view.asteals)
    # The tail field stores start % 2^19; shim buffers stay smaller
    # than that, so the raw value is the buffer index.
    start = view.tail + disp
    claimed = read_tasks(start, vol)
    # Simulate copy latency so completion really lags the claim.
    time.sleep(0)
    comp[view.epoch * comp_slots + view.asteals].fetch_add(vol)
    return ShimStealResult(claimed=claimed, view=view)


class SwsShimCore:
    """Owner-side SWS shim state over any atomic-word substrate.

    Subclasses provide ``self.stealval`` (atomic word), ``self.comp``
    (atomic word array of ``max_epochs * comp_slots``), ``self.nfilled``
    (tasks written to the buffer so far) and :meth:`_read_tasks` before
    calling :meth:`_init_protocol`.
    """

    #: Cap on the adaptive backoff's sleep while waiting on in-flight
    #: completions (the historical fixed poll interval).
    POLL_S = 1e-5

    def _init_protocol(self, max_epochs: int, comp_slots: int) -> None:
        self.max_epochs = max_epochs
        self.comp_slots = comp_slots
        self.epoch = 0
        # Owner bookkeeping: [start, start+itasks) is the live allotment.
        self._records: list[dict] = [
            {"epoch": 0, "start": 0, "itasks": 0, "claims": 0}
        ]
        self.cursor = 0                      # next unshared buffer index
        self.owner_kept: list = []           # tasks re-acquired by the owner
        self.stealval.store(StealValEpoch.pack(0, 0, 0, 0))

    def _read_tasks(self, start: int, count: int) -> list:
        raise NotImplementedError

    def _keep(self, start: int, count: int) -> None:
        if count:
            self.owner_kept.extend(self._read_tasks(start, count))

    # -- owner ---------------------------------------------------------
    def release(self, count: int) -> None:
        """Publish the next ``count`` buffer tasks as a new allotment.

        Unlike the simulator's split queue — where the unclaimed
        remainder stays physically contiguous with newly exposed tasks —
        this flat-buffer shim cannot re-share a remainder across the hole
        an ``acquire`` leaves, so any unclaimed remainder is absorbed by
        the owner first (acquire-all-then-release).  The claim/lock/
        completion races being validated are unaffected.
        """
        rem_start, rem = self._close()
        self._keep(rem_start, rem)
        count = min(count, self.nfilled - self.cursor)
        start = self.cursor
        self.cursor += count
        self._reopen(start, count)

    def acquire(self) -> list:
        """Lock, pull back half the unclaimed remainder, re-publish."""
        rem_start, rem = self._close()
        ntake = (rem + 1) // 2
        taken = self._read_tasks(rem_start + (rem - ntake), ntake) if ntake else []
        self.owner_kept.extend(taken)
        self._reopen(rem_start, rem - ntake)
        return taken

    def _close(self) -> tuple[int, int]:
        old = self.stealval.swap(StealValEpoch.locked_word())
        view = StealValEpoch.unpack(old)
        rec = self._records[-1]
        assert view.epoch == rec["epoch"] and view.itasks == rec["itasks"]
        claims = min(view.asteals, max_steals(view.itasks))
        rec["claims"] = claims
        disp = steal_displacement(rec["itasks"], claims)
        return rec["start"] + disp, rec["itasks"] - disp

    def _reopen(self, start: int, itasks: int) -> None:
        next_epoch = (self.epoch + 1) % self.max_epochs
        # Wait until the epoch's previous record fully completed, then
        # prune settled records and zero the epoch's completion row.
        backoff = Backoff(sleep_s=self.POLL_S / 4, max_sleep_s=self.POLL_S)
        while any(
            r["epoch"] == next_epoch and not self._settled(r)
            for r in self._records
        ):
            backoff.wait()
        self._records = [r for r in self._records if not self._settled(r)]
        base = next_epoch * self.comp_slots
        for i in range(self.comp_slots):
            self.comp[base + i].store(0)
        self.epoch = next_epoch
        self._records.append({"epoch": next_epoch, "start": start, "itasks": itasks})
        self.stealval.store(StealValEpoch.pack(0, next_epoch, itasks, start % (1 << 19)))

    def _settled(self, rec: dict) -> bool:
        claims = rec.get("claims")
        if claims is None:
            return False
        vols = schedule(rec["itasks"])
        base = rec["epoch"] * self.comp_slots
        return all(self.comp[base + i].load() == vols[i] for i in range(claims))

    def drain(self) -> None:
        """Wait for every claimed steal to complete, absorb the rest.

        Leaves the stealval locked: post-drain claim attempts abort.
        """
        rem_start, rem = self._close()
        self._keep(rem_start, rem)
        backoff = Backoff(sleep_s=self.POLL_S / 4, max_sleep_s=self.POLL_S)
        while not all(self._settled(r) for r in self._records):
            backoff.wait()
        self._keep(self.cursor, self.nfilled - self.cursor)
        self.cursor = self.nfilled

    def take_kept(self) -> list:
        """Hand back (and clear) the owner-reabsorbed tasks."""
        kept, self.owner_kept = self.owner_kept, []
        return kept

    # -- thief ---------------------------------------------------------
    def steal(self) -> ShimStealResult:
        """One claiming attempt against this queue's own words."""
        return sws_steal_once(
            self.stealval, self.comp, self.comp_slots, self._read_tasks
        )


# ======================================================================
# SDC: the lock-based baseline protocol
# ======================================================================

def sdc_steal_once(
    lock, tail, split, read_tasks, max_spins: int = 10_000
) -> "SdcShimResult":
    """One lock-protected steal-half attempt (the six-step SDC shape)."""
    res = SdcShimResult()
    while lock.compare_swap(0, 1) != 0:
        res.lock_spins += 1
        if res.lock_spins >= max_spins:
            return res
        time.sleep(0)
    try:
        t, s = tail.load(), split.load()
        avail = s - t
        if avail <= 0:
            res.empty = True
            return res
        n = max(1, avail // 2)
        res.claimed = read_tasks(t, n)
        tail.store(t + n)
        return res
    finally:
        lock.store(0)


@dataclass
class SdcShimResult:
    """One SDC thief attempt's outcome."""

    claimed: list = field(default_factory=list)
    lock_spins: int = 0
    empty: bool = False


class SdcShimCore:
    """Owner-side SDC shim state over any atomic-word substrate.

    Subclasses provide ``self.lock`` / ``self.tail`` / ``self.split``
    (atomic words), ``self.nfilled`` and :meth:`_read_tasks` before
    calling :meth:`_init_protocol`.
    """

    def _init_protocol(self) -> None:
        self.lock.store(0)
        self.tail.store(0)
        self.split.store(0)
        self.cursor = 0
        self.owner_kept: list = []

    def _read_tasks(self, start: int, count: int) -> list:
        raise NotImplementedError

    # -- owner ---------------------------------------------------------
    def release(self, count: int) -> None:
        """Expose the next ``count`` buffer tasks (requires empty shared,
        like the real protocol; surplus shared is absorbed first)."""
        self._lock()
        try:
            tail, split = self.tail.load(), self.split.load()
            if split > tail:
                # Absorb the remainder (acquire-all) before re-exposing.
                self.owner_kept.extend(self._read_tasks(tail, split - tail))
                self.tail.store(split)
            count = min(count, self.nfilled - self.cursor)
            self.cursor += count
            self.split.store(self.cursor)
            self.tail.store(self.cursor - count)
        finally:
            self._unlock()

    def acquire(self) -> list:
        """Pull back half of the shared portion under the lock."""
        self._lock()
        try:
            tail, split = self.tail.load(), self.split.load()
            avail = split - tail
            ntake = (avail + 1) // 2
            taken = self._read_tasks(split - ntake, ntake) if ntake else []
            self.owner_kept.extend(taken)
            self.split.store(split - ntake)
            return taken
        finally:
            self._unlock()

    def drain(self) -> None:
        """Absorb everything left (shared remainder + unshared)."""
        self._lock()
        try:
            tail, split = self.tail.load(), self.split.load()
            self.owner_kept.extend(self._read_tasks(tail, split - tail))
            self.tail.store(split)
            self.owner_kept.extend(
                self._read_tasks(self.cursor, self.nfilled - self.cursor)
            )
            self.cursor = self.nfilled
        finally:
            self._unlock()

    def take_kept(self) -> list:
        """Hand back (and clear) the owner-reabsorbed tasks."""
        kept, self.owner_kept = self.owner_kept, []
        return kept

    def _lock(self) -> None:
        while self.lock.compare_swap(0, 1) != 0:
            time.sleep(0)

    def _unlock(self) -> None:
        self.lock.store(0)

    # -- thief ---------------------------------------------------------
    def steal(self, max_spins: int = 10_000) -> SdcShimResult:
        """One lock-protected steal-half attempt."""
        return sdc_steal_once(
            self.lock, self.tail, self.split, self._read_tasks, max_spins
        )
