"""Diagnostic errors for the multiprocess substrate.

A wedged cross-process run used to look like a hung pytest job; these
errors carry enough context (rank, stripe, holder pid, wait time) that a
CI timeout names the suspect instead of just dying.
"""

from __future__ import annotations

from ..threads.protocol import StallTimeout


class MpStallError(StallTimeout):
    """A cross-process wait exceeded its hard wall-clock deadline.

    Raised instead of spinning forever: by the striped-lock acquire path
    when a stripe's holder is alive but never releases, by the driver's
    idle loop when no progress happens for ``stall_s`` seconds, and by
    ``hammer_mp`` when a thief or the owner wedges.  The message names
    the suspect stripe / rank / holder pid so the failure is actionable.
    """

    def __init__(self, message: str, *, stripe: int | None = None,
                 rank: int | None = None, holder_pid: int | None = None,
                 waited_s: float | None = None) -> None:
        parts = [message]
        if stripe is not None:
            parts.append(f"stripe={stripe}")
        if rank is not None:
            parts.append(f"rank={rank}")
        if holder_pid is not None:
            parts.append(f"holder_pid={holder_pid}")
        if waited_s is not None:
            parts.append(f"waited={waited_s:.1f}s")
        super().__init__(" ".join(parts))
        self.stripe = stripe
        self.rank = rank
        self.holder_pid = holder_pid
        self.waited_s = waited_s


class RingOverflowError(RuntimeError):
    """A crash-mode shared ring (private deque / xlog / inbox) filled up.

    Sizing is generous for the chaos workloads; overflowing one is a
    configuration error, not a protocol state — fail loudly.
    """
