"""Crash-recovery data plane for the multiprocess substrate.

Everything a fail-stopped PE would otherwise take to the grave is kept
in shared memory, in owner-exclusive structures the supervisor can read
post-mortem:

* :class:`ShmRing` — the crash-mode replacement for the PE loop's
  private Python deque: a bounded ring of task records with monotone
  head/tail cursors published through the locked word API, so a dead
  PE's queued-but-unshared work is scavengeable.
* an **in-flight journal** (flag + payload words, see
  :class:`PeRegions`) written *before* a task is popped for execution
  and cleared *after* its children are safely in the ring — every crash
  window around an execution yields a re-injected duplicate, never a
  lost subtree.
* **steal-intent words** — a thief durably records ``(victim, start,
  count)`` for each winning claim before copying; a thief that dies
  with loot only in its dead address space is recovered by re-reading
  the victim's buffer range (claimed ranges are never overwritten, so
  the bytes stay valid).
* :class:`ShmXlog` — an append-only per-PE log of executed-task
  fingerprints: the ground truth for at-least-once accounting (the
  duplicate-aware oracle dedups the union of all logs).
* :class:`ShmInbox` — a single-producer/single-consumer ring the
  supervisor re-injects scavenged orphan tasks through.

The orderings are chosen so that *every* reachable crash point leaves
each task either still visible somewhere in shared memory (ring,
in-flight journal, intent, victim buffer, inbox) or already fingerprint
-logged — at-least-once, with duplicates absorbed by the accounting,
never silent loss.

The supervisor-side scavengers live here too: :func:`scavenge_rank`
pulls a dead PE's shared-queue remainder (via the protocol's own lock /
swap-to-locked paths, so live thieves race it safely), ring, journal,
intent and undrained inbox into a list of payloads ready to re-inject.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from ..core.steal_half import max_steals, schedule, steal_displacement
from ..core.stealval import StealValEpoch
from ..shmem.heap import SymArray, SymWord, SymmetricAllocator
from ..threads.protocol import Backoff, RecordCodec
from .atomics import pid_alive
from .errors import RingOverflowError
from .heap import MpHeap


class ShmRing:
    """Owner-exclusive deque of task records in shared words.

    Monotone ``head``/``tail`` cursors (record counts, slot = cursor %
    capacity) are published through the locked word API; record bytes go
    through the lock-free block plane (single writer: the owner, or the
    supervisor after the owner died).  Publish ordering is loss-proof:
    a push writes bytes first and advances ``tail`` last; a pop-for-
    execution journals the record in the in-flight words *before*
    retreating ``tail``; a share-from-the-left only advances ``head``
    *after* the records are republished in the steal queue — so every
    crash window duplicates, never loses.
    """

    def __init__(self, heap: MpHeap, head: SymWord, tail: SymWord,
                 buf: SymArray, capacity: int, words_per_task: int) -> None:
        self._head_w = heap.ref(head)
        self._tail_w = heap.ref(tail)
        self._buf = heap.slice(buf)
        self.capacity = capacity
        self.words_per_task = words_per_task
        self._codec = RecordCodec(words_per_task)
        # Owner-local cursor mirrors (re-synced from shared on bind so a
        # respawned owner resumes where the supervisor left the ring).
        self._head = self._head_w.load()
        self._tail = self._tail_w.load()

    def __len__(self) -> int:
        return self._tail - self._head

    def __bool__(self) -> bool:
        return self._tail > self._head

    def _write_records(self, cursor: int, tasks) -> None:
        wpt = self.words_per_task
        total = self.capacity * wpt
        data = self._codec.encode(tasks)
        w0 = (cursor * wpt) % total
        if w0 + len(data) // 8 <= total:
            self._buf.write_block(w0, data)
        else:
            split = (total - w0) * 8
            self._buf.write_block(w0, data[:split])
            self._buf.write_block(0, data[split:])

    def _read_records(self, cursor: int, count: int) -> list:
        wpt = self.words_per_task
        total = self.capacity * wpt
        nw = count * wpt
        w0 = (cursor * wpt) % total
        if w0 + nw <= total:
            data = self._buf.read_block(w0, nw)
        else:
            head = total - w0
            data = self._buf.read_block(w0, head) + self._buf.read_block(
                0, nw - head)
        return self._codec.decode(data)

    def extend(self, tasks) -> None:
        """Push records at the tail (bytes first, cursor last)."""
        tasks = list(tasks)
        if not tasks:
            return
        if len(self) + len(tasks) > self.capacity:
            raise RingOverflowError(
                f"ring of {self.capacity} records cannot take "
                f"{len(tasks)} more (holding {len(self)})"
            )
        self._write_records(self._tail, tasks)
        self._tail += len(tasks)
        self._tail_w.store(self._tail)

    def peek_right(self):
        """Read the newest record without removing it."""
        if not self:
            raise IndexError("peek on empty ring")
        return self._read_records(self._tail - 1, 1)[0]

    def drop_right(self) -> None:
        """Retreat the tail past the newest record (after journaling)."""
        if not self:
            raise IndexError("drop on empty ring")
        self._tail -= 1
        self._tail_w.store(self._tail)

    def peek_left_block(self, count: int) -> list:
        """Read the ``count`` oldest records without removing them."""
        count = min(count, len(self))
        return self._read_records(self._head, count) if count else []

    def drop_left(self, count: int) -> None:
        """Advance the head past ``count`` records (after republish)."""
        if count > len(self):
            raise IndexError(f"drop_left({count}) with {len(self)} held")
        if count:
            self._head += count
            self._head_w.store(self._head)

    def scavenge(self) -> list:
        """Post-mortem read of everything still in the ring.

        Supervisor-side: cursors are re-read from shared memory (the
        local mirrors belong to the dead owner's address space).
        """
        head = self._head_w.load()
        tail = self._tail_w.load()
        self._head, self._tail = head, tail
        return self._read_records(head, tail - head) if tail > head else []


class ShmXlog:
    """Append-only per-PE log of executed-task fingerprints.

    One word per execution; the count word is published after the
    fingerprint bytes, so a crash mid-append under-reports by at most
    the one task whose in-flight journal entry still stands (it will be
    re-executed and logged by a survivor).  The union of all logs,
    deduplicated, is the at-least-once oracle's executed set.
    """

    def __init__(self, heap: MpHeap, count: SymWord, buf: SymArray,
                 capacity: int) -> None:
        self._count_w = heap.ref(count)
        self._buf = heap.slice(buf)
        self.capacity = capacity
        self._count = self._count_w.load()

    def append(self, fingerprint: int) -> None:
        if self._count >= self.capacity:
            raise RingOverflowError(
                f"xlog of {self.capacity} entries overflowed"
            )
        self._buf[self._count].store(fingerprint)
        self._count += 1
        self._count_w.store(self._count)

    def read_all(self) -> list[int]:
        count = self._count_w.load()
        if not count:
            return []
        import struct

        return list(struct.unpack(
            f"<{count}Q", self._buf.read_block(0, count)
        ))


class ShmInbox:
    """SPSC re-injection ring: the supervisor posts, one PE drains."""

    def __init__(self, heap: MpHeap, rd: SymWord, wr: SymWord,
                 buf: SymArray, capacity: int, words_per_task: int) -> None:
        self._rd_w = heap.ref(rd)
        self._wr_w = heap.ref(wr)
        self._ring = ShmRing.__new__(ShmRing)  # reuse the record codecs
        self._ring._buf = heap.slice(buf)
        self._ring.capacity = capacity
        self._ring.words_per_task = words_per_task
        self._ring._codec = RecordCodec(words_per_task)
        self.capacity = capacity

    # -- producer (supervisor) ----------------------------------------
    def post(self, tasks) -> None:
        tasks = list(tasks)
        if not tasks:
            return
        rd, wr = self._rd_w.load(), self._wr_w.load()
        if wr - rd + len(tasks) > self.capacity:
            raise RingOverflowError(
                f"inbox of {self.capacity} records cannot take "
                f"{len(tasks)} more (holding {wr - rd})"
            )
        self._ring._write_records(wr, tasks)
        self._wr_w.store(wr + len(tasks))

    def pending(self) -> int:
        return self._wr_w.load_seq() - self._rd_w.load_seq()

    # -- consumer (the PE) --------------------------------------------
    def drain(self) -> list:
        rd = self._rd_w.load_seq()
        wr = self._wr_w.load_seq()
        if wr <= rd:
            return []
        tasks = self._ring._read_records(rd, wr - rd)
        self._rd_w.store(wr)
        return tasks


# ----------------------------------------------------------------------
# Region layout
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class CrashRegions:
    """Picklable footprint of all crash-mode shared state for one run.

    Global per-rank word arrays (heartbeat, idle flag, activity counter,
    dead flag, pid) plus a stop word, and per-rank rings / journals /
    intents / xlogs / inboxes.
    """

    npes: int
    words_per_task: int
    ring_cap: int
    xlog_cap: int
    inbox_cap: int
    stop: SymWord
    hb: SymArray
    idle: SymArray
    act: SymArray
    dead: SymArray
    pid: SymArray
    ring_head: tuple[SymWord, ...]
    ring_tail: tuple[SymWord, ...]
    ring_buf: tuple[SymArray, ...]
    inflight_flag: tuple[SymWord, ...]
    inflight_buf: tuple[SymArray, ...]
    intent: tuple[SymArray, ...]
    xlog_cnt: tuple[SymWord, ...]
    xlog_buf: tuple[SymArray, ...]
    inbox_rd: tuple[SymWord, ...]
    inbox_wr: tuple[SymWord, ...]
    inbox_buf: tuple[SymArray, ...]

    @classmethod
    def reserve(cls, heap: MpHeap, npes: int, words_per_task: int,
                ring_cap: int, xlog_cap: int,
                inbox_cap: int) -> "CrashRegions":
        g = SymmetricAllocator(heap, "crash")
        stop = g.word("stop")
        hb = g.array("hb", npes)
        idle = g.array("idle", npes)
        act = g.array("act", npes)
        dead = g.array("dead", npes)
        pid = g.array("pid", npes)
        g.commit()
        per: dict[str, list] = {k: [] for k in (
            "ring_head", "ring_tail", "ring_buf", "inflight_flag",
            "inflight_buf", "intent", "xlog_cnt", "xlog_buf",
            "inbox_rd", "inbox_wr", "inbox_buf",
        )}
        for r in range(npes):
            a = SymmetricAllocator(heap, f"crash{r}")
            per["ring_head"].append(a.word("rhead"))
            per["ring_tail"].append(a.word("rtail"))
            per["ring_buf"].append(a.array("rbuf", ring_cap * words_per_task))
            per["inflight_flag"].append(a.word("iflag"))
            per["inflight_buf"].append(a.array("ibuf", words_per_task))
            per["intent"].append(a.array("intent", 3))
            per["xlog_cnt"].append(a.word("xcnt"))
            per["xlog_buf"].append(a.array("xbuf", xlog_cap))
            per["inbox_rd"].append(a.word("nrd"))
            per["inbox_wr"].append(a.word("nwr"))
            per["inbox_buf"].append(a.array("nbuf", inbox_cap * words_per_task))
            a.commit()
        return cls(
            npes, words_per_task, ring_cap, xlog_cap, inbox_cap,
            stop, hb, idle, act, dead, pid,
            **{k: tuple(v) for k, v in per.items()},
        )

    def bind(self, heap: MpHeap, rank: int) -> "PeRegions":
        return PeRegions(heap, self, rank)


class PeRegions:
    """One rank's bound view of the crash regions (worker or supervisor)."""

    def __init__(self, heap: MpHeap, regions: CrashRegions,
                 rank: int) -> None:
        self.rank = rank
        self.stop = heap.ref(regions.stop)
        self.hb = heap.slice(regions.hb)[rank]
        self.idle = heap.slice(regions.idle)[rank]
        self.act = heap.slice(regions.act)[rank]
        self.dead = heap.slice(regions.dead)
        self.pid = heap.slice(regions.pid)[rank]
        self.ring = ShmRing(
            heap, regions.ring_head[rank], regions.ring_tail[rank],
            regions.ring_buf[rank], regions.ring_cap,
            regions.words_per_task,
        )
        self._iflag = heap.ref(regions.inflight_flag[rank])
        self._ibuf = heap.slice(regions.inflight_buf[rank])
        self._icodec = RecordCodec(regions.words_per_task)
        self._intent = heap.slice(regions.intent[rank])
        self.xlog = ShmXlog(
            heap, regions.xlog_cnt[rank], regions.xlog_buf[rank],
            regions.xlog_cap,
        )
        self.inbox = ShmInbox(
            heap, regions.inbox_rd[rank], regions.inbox_wr[rank],
            regions.inbox_buf[rank], regions.inbox_cap,
            regions.words_per_task,
        )

    # -- in-flight journal --------------------------------------------
    def inflight_write(self, payload) -> None:
        """Journal the record about to execute (payload first, flag last)."""
        self._ibuf.write_block(0, self._icodec.encode([payload]))
        self._iflag.store(1)

    def inflight_clear(self) -> None:
        self._iflag.store(0)

    def inflight_scavenge(self) -> list:
        """Post-mortem: the journaled record, if one was in flight."""
        if not self._iflag.load():
            return []
        wpt = self._icodec.words_per_task
        return self._icodec.decode(self._ibuf.read_block(0, wpt))

    # -- steal intent --------------------------------------------------
    def intent_set(self, victim: int, start: int, count: int) -> None:
        """Durably record a claimed range (range first, victim last)."""
        self._intent[1].store(start)
        self._intent[2].store(count)
        self._intent[0].store(victim + 1)

    def intent_clear(self) -> None:
        self._intent[0].store(0)

    def intent_read(self) -> tuple[int, int, int] | None:
        v = self._intent[0].load()
        if not v:
            return None
        return v - 1, self._intent[1].load(), self._intent[2].load()


# ----------------------------------------------------------------------
# Supervisor-side scavenging
# ----------------------------------------------------------------------

def _scavenge_sws_queue(heap: MpHeap, layout) -> list:
    """Take over a dead owner's SWS queue; return the unclaimed remainder.

    The supervisor plays the owner's own close protocol: one swap to the
    locked sentinel wins against every racing claim (a fetch-add before
    the swap is counted in the closing view's ``asteals``; one after it
    observes the sentinel and aborts).  Claims still in flight are then
    settled or — when the claimant pid is dead — voided, their ranges
    re-read from the still-valid buffer bytes.
    """
    thief = layout.thief(heap)
    old = heap.ref(layout.stealval).swap(StealValEpoch.locked_word())
    view = StealValEpoch.unpack(old)
    if view.locked:
        # Already locked: a previous scavenge, or a death inside an
        # owner-side critical window (unreachable from the seeded crash
        # points, which only fire between tasks / post-claim / in
        # die_holding).
        return []
    tasks: list = []
    claims = min(view.asteals, max_steals(view.itasks))
    disp = steal_displacement(view.itasks, claims)
    if view.itasks - disp > 0:
        tasks.extend(thief._read_tasks(view.tail + disp, view.itasks - disp))
    # Settle or void the outstanding claims so a respawned owner can
    # safely reuse the completion rows.
    vols = schedule(view.itasks)
    base = view.epoch * thief.comp_slots
    backoff = Backoff(sleep_s=1e-5, max_sleep_s=1e-3, deadline_s=30.0)
    for i in range(claims):
        while thief.comp[base + i].load() < vols[i]:
            token = (thief.claimant[base + i].load()
                     if thief.claimant is not None else 0)
            if token and not pid_alive(token):
                d = steal_displacement(view.itasks, i)
                tasks.extend(thief._read_tasks(view.tail + d, vols[i]))
                thief.comp[base + i].store(vols[i])
                break
            backoff.wait()
    return tasks


def _scavenge_sdc_queue(heap: MpHeap, layout) -> list:
    """Take over a dead owner's SDC queue; return the shared remainder."""
    thief = layout.thief(heap)
    lock = heap.ref(layout.lock)
    token = os.getpid()
    backoff = Backoff(sleep_s=1e-5, max_sleep_s=1e-3, deadline_s=30.0)
    while True:
        holder = lock.compare_swap(0, token)
        if holder == 0:
            break
        if not pid_alive(holder):
            if lock.compare_swap(holder, token) == holder:
                break
        backoff.wait()
    try:
        t = heap.ref(layout.tail).load()
        s = heap.ref(layout.split).load()
        if s <= t:
            return []
        tasks = thief._read_tasks(t, s - t)
        heap.ref(layout.tail).store(s)
        return tasks
    finally:
        lock.store(0)


def scavenge_rank(heap: MpHeap, layouts, impl: str, regions: CrashRegions,
                  rank: int) -> tuple[list, dict[str, int]]:
    """Everything a dead ``rank`` still owed the computation.

    Returns ``(payloads, breakdown)`` where the breakdown counts tasks
    per source (shared queue, ring, in-flight journal, steal intent,
    undrained inbox).  Call only after the rank's process is confirmed
    dead and ``break_dead_leases`` has repaired its stripes.
    """
    pe = regions.bind(heap, rank)
    tasks: list = []
    breakdown: dict[str, int] = {}

    if impl == "sws":
        got = _scavenge_sws_queue(heap, layouts[rank])
    else:
        got = _scavenge_sdc_queue(heap, layouts[rank])
    breakdown["queue"] = len(got)
    tasks.extend(got)

    got = pe.ring.scavenge()
    breakdown["ring"] = len(got)
    tasks.extend(got)

    got = pe.inflight_scavenge()
    breakdown["inflight"] = len(got)
    tasks.extend(got)

    intent = pe.intent_read()
    if intent is not None:
        victim, start, count = intent
        # The claimed range in the victim's buffer is still valid: shim
        # buffers never rewrite published slots (cursors are monotone).
        got = layouts[victim].thief(heap)._read_tasks(start, count)
        breakdown["intent"] = len(got)
        tasks.extend(got)
        pe.intent_clear()
    else:
        breakdown["intent"] = 0

    got = pe.inbox.drain()
    breakdown["inbox"] = len(got)
    tasks.extend(got)
    return tasks, breakdown
