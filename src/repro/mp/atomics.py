"""Cross-process atomic 64-bit words over ``multiprocessing.shared_memory``.

THE atomic seam of the multiprocess substrate: every access to shared
words goes through :class:`ShmWords` — no other module in ``repro.mp``
touches the raw ``SharedMemory`` buffer (grep for ``_shm.buf`` to audit;
it appears only here).  Semantics first: each operation holds one of a
*striped* set of ``multiprocessing.Lock``\\ s, so operations on the same
word serialize (real atomicity across address spaces) while contended
victims on different stripes don't serialize the whole world.

Like :class:`repro.threads.atomics.AtomicWord64`, this trades raw speed
for honest cross-process mutual exclusion — CPython has no shared-memory
CAS — but unlike the threads shim the preemption here is the OS kernel
scheduling *separate processes*, GIL nowhere in sight.

Two lock-free escape hatches keep the data plane off the lock path:

* **seqlock reads** (:meth:`ShmWords.load_seq`): every data word has a
  shadow *sequence word*; locked writers bump it to odd before and back
  to even after the data write, so a reader can spin on
  ``seq / data / seq`` without taking any stripe lock and retry on a
  torn observation.  Owner-local metadata inspection (the hottest read
  in the work-stealing drivers) uses this path.
* **block copies** (:meth:`ShmWords.read_block` /
  :meth:`ShmWords.write_block`): one contiguous ``bytes()`` of the
  underlying buffer for regions the caller owns exclusively — a thief's
  claimed steal block, an owner's unpublished fill region.  Exclusive
  ownership is the whole contract: these never touch locks or sequence
  words.

:class:`WordRef` / :class:`WordSlice` adapt word indices to the
object-per-word interface (``load``/``store``/``swap``/``fetch_add``/
``compare_swap``) the shared shim protocol cores expect, so
:mod:`repro.threads.protocol` runs unchanged on either substrate.
"""

from __future__ import annotations

import multiprocessing
import struct
import time

_U64_MASK = (1 << 64) - 1
_WORD = struct.Struct("<Q")
WORD_BYTES = _WORD.size

#: Lock-free read spins before yielding the CPU to the (single) writer.
_SEQ_READ_SPINS = 64

#: Default lock-stripe count; power of two so ``index % nstripes`` mixes.
DEFAULT_STRIPES = 16


def _preferred_context():
    """A fork context when the platform has one (cheap, inherits the
    mapping), else the platform default."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else None)


class ShmWords:
    """A fixed array of 64-bit words in one shared-memory segment.

    All word accesses are atomic with respect to every process attached
    to the segment.  The creating process should call :meth:`unlink`
    exactly once when the run is over (children only :meth:`close`).

    Picklable: sending an instance to a ``spawn``-started process
    re-attaches by segment name (the stripe locks travel through
    multiprocessing's own reduction).  Under ``fork`` children simply
    inherit the mapping.
    """

    def __init__(
        self,
        nwords: int,
        nstripes: int = DEFAULT_STRIPES,
        ctx=None,
    ) -> None:
        if nwords <= 0:
            raise ValueError(f"nwords must be positive, got {nwords}")
        if nstripes <= 0:
            raise ValueError(f"nstripes must be positive, got {nstripes}")
        from multiprocessing import shared_memory

        ctx = ctx or _preferred_context()
        self.nwords = nwords
        self._locks = tuple(ctx.Lock() for _ in range(nstripes))
        # Layout: nwords data words, then nwords shadow sequence words
        # (the seqlock plane — see load_seq).  Doubling the segment is
        # cheap next to what it buys: lock-free metadata reads.
        self._seq_base = nwords * WORD_BYTES
        self._shm = shared_memory.SharedMemory(
            create=True, size=2 * nwords * WORD_BYTES
        )
        self._shm.buf[:] = bytes(2 * nwords * WORD_BYTES)
        self._owner = True

    # -- pickling (spawn-method portability) ---------------------------
    def __getstate__(self):
        return {
            "nwords": self.nwords,
            "_locks": self._locks,
            "_name": self._shm.name,
        }

    def __setstate__(self, state):
        from multiprocessing import shared_memory

        self.nwords = state["nwords"]
        self._locks = state["_locks"]
        self._seq_base = self.nwords * WORD_BYTES
        self._shm = shared_memory.SharedMemory(name=state["_name"])
        self._owner = False

    # -- the atomic API ------------------------------------------------
    def _check(self, index: int) -> int:
        if not 0 <= index < self.nwords:
            raise IndexError(f"word {index} out of range [0, {self.nwords})")
        return index * WORD_BYTES

    def load(self, index: int) -> int:
        """Atomic read of word ``index``."""
        off = self._check(index)
        with self._locks[index % len(self._locks)]:
            return _WORD.unpack_from(self._shm.buf, off)[0]

    def store(self, index: int, value: int) -> None:
        """Atomic write of word ``index``."""
        off = self._check(index)
        soff = self._seq_base + off
        buf = self._shm.buf
        with self._locks[index % len(self._locks)]:
            seq = _WORD.unpack_from(buf, soff)[0]
            _WORD.pack_into(buf, soff, (seq + 1) & _U64_MASK)
            _WORD.pack_into(buf, off, value & _U64_MASK)
            _WORD.pack_into(buf, soff, (seq + 2) & _U64_MASK)

    def swap(self, index: int, value: int) -> int:
        """Atomic swap; returns the old value."""
        off = self._check(index)
        soff = self._seq_base + off
        buf = self._shm.buf
        with self._locks[index % len(self._locks)]:
            old = _WORD.unpack_from(buf, off)[0]
            seq = _WORD.unpack_from(buf, soff)[0]
            _WORD.pack_into(buf, soff, (seq + 1) & _U64_MASK)
            _WORD.pack_into(buf, off, value & _U64_MASK)
            _WORD.pack_into(buf, soff, (seq + 2) & _U64_MASK)
            return old

    def fetch_add(self, index: int, delta: int) -> int:
        """Atomic fetch-and-add (wraps mod 2^64); returns the old value."""
        off = self._check(index)
        soff = self._seq_base + off
        buf = self._shm.buf
        with self._locks[index % len(self._locks)]:
            old = _WORD.unpack_from(buf, off)[0]
            seq = _WORD.unpack_from(buf, soff)[0]
            _WORD.pack_into(buf, soff, (seq + 1) & _U64_MASK)
            _WORD.pack_into(buf, off, (old + delta) & _U64_MASK)
            _WORD.pack_into(buf, soff, (seq + 2) & _U64_MASK)
            return old

    def compare_swap(self, index: int, expected: int, desired: int) -> int:
        """Atomic compare-and-swap; returns the old value."""
        off = self._check(index)
        soff = self._seq_base + off
        buf = self._shm.buf
        with self._locks[index % len(self._locks)]:
            old = _WORD.unpack_from(buf, off)[0]
            if old == (expected & _U64_MASK):
                seq = _WORD.unpack_from(buf, soff)[0]
                _WORD.pack_into(buf, soff, (seq + 1) & _U64_MASK)
                _WORD.pack_into(buf, off, desired & _U64_MASK)
                _WORD.pack_into(buf, soff, (seq + 2) & _U64_MASK)
            return old

    # -- lock-free data plane ------------------------------------------
    def load_seq(self, index: int) -> int:
        """Lock-free read of word ``index`` via its sequence word.

        Single-writer seqlock read protocol: sample the shadow sequence
        word, read the data word, re-sample the sequence; an even and
        unchanged sequence means no locked writer touched the word
        mid-read, so the value is consistent.  Retries (with a CPU yield
        every ``_SEQ_READ_SPINS`` attempts) until a clean sample lands.

        This is the owner-local / polling fast path: no stripe lock, no
        cross-process contention.  Writers pay two extra packs per
        mutation to fund it.
        """
        off = self._check(index)
        soff = self._seq_base + off
        buf = self._shm.buf
        spins = 0
        while True:
            s0 = _WORD.unpack_from(buf, soff)[0]
            if not s0 & 1:
                value = _WORD.unpack_from(buf, off)[0]
                if _WORD.unpack_from(buf, soff)[0] == s0:
                    return value
            spins += 1
            if spins >= _SEQ_READ_SPINS:
                time.sleep(0)
                spins = 0

    def read_block(self, start: int, count: int) -> bytes:
        """One contiguous lock-free copy of ``count`` words as bytes.

        Contract: the caller holds an *exclusive claim* on
        ``[start, start + count)`` — e.g. a thief that has already won
        the range via ``fetch_add`` on the control word — so no writer
        can race the copy.  No locks, no sequence words: one
        ``bytes(memoryview)`` slice out of the segment.
        """
        if count <= 0:
            return b""
        self._check(start)
        self._check(start + count - 1)
        off = start * WORD_BYTES
        return bytes(self._shm.buf[off : off + count * WORD_BYTES])

    def write_block(self, start: int, data: bytes) -> None:
        """One contiguous lock-free write of packed little-endian words.

        Contract: single writer on an *unpublished* region — the range
        only becomes visible to readers after a subsequent control-word
        update through the locked API (which fences via its stripe
        lock).  ``len(data)`` must be a multiple of the word size.
        Sequence words are not touched: ``load_seq`` on words inside a
        block-written range is only sound after that publish.
        """
        nbytes = len(data)
        if nbytes == 0:
            return
        if nbytes % WORD_BYTES:
            raise ValueError(
                f"block length {nbytes} not a multiple of {WORD_BYTES}"
            )
        count = nbytes // WORD_BYTES
        self._check(start)
        self._check(start + count - 1)
        off = start * WORD_BYTES
        self._shm.buf[off : off + nbytes] = data

    # -- lifecycle -----------------------------------------------------
    def close(self) -> None:
        """Detach this process's mapping."""
        self._shm.close()

    def unlink(self) -> None:
        """Destroy the segment (creator only, after every child exited)."""
        if self._owner:
            self._shm.unlink()

    def ref(self, index: int) -> "WordRef":
        """An :class:`AtomicWord64`-shaped handle on one word."""
        self._check(index)
        return WordRef(self, index)

    def slice(self, start: int, length: int) -> "WordSlice":
        """An :class:`AtomicArray64`-shaped handle on a word range."""
        self._check(start)
        if length > 0:
            self._check(start + length - 1)
        return WordSlice(self, start, length)


class WordRef:
    """One shared word behind the :class:`AtomicWord64` interface."""

    __slots__ = ("_words", "_index")

    def __init__(self, words: ShmWords, index: int) -> None:
        self._words = words
        self._index = index

    def load(self) -> int:
        return self._words.load(self._index)

    def load_seq(self) -> int:
        """Lock-free seqlock read (see :meth:`ShmWords.load_seq`)."""
        return self._words.load_seq(self._index)

    def store(self, value: int) -> None:
        self._words.store(self._index, value)

    def swap(self, value: int) -> int:
        return self._words.swap(self._index, value)

    def fetch_add(self, delta: int) -> int:
        return self._words.fetch_add(self._index, delta)

    def compare_swap(self, expected: int, desired: int) -> int:
        return self._words.compare_swap(self._index, expected, desired)


class WordSlice:
    """A shared word range behind the :class:`AtomicArray64` interface."""

    __slots__ = ("_words", "_start", "_length")

    def __init__(self, words: ShmWords, start: int, length: int) -> None:
        self._words = words
        self._start = start
        self._length = length

    def __len__(self) -> int:
        return self._length

    def __getitem__(self, index: int) -> WordRef:
        if not 0 <= index < self._length:
            raise IndexError(f"index {index} out of range [0, {self._length})")
        return WordRef(self._words, self._start + index)

    def snapshot(self) -> list[int]:
        """Non-atomic-across-words read of all values."""
        return [self._words.load(self._start + i) for i in range(self._length)]

    def read_block(self, start: int, count: int) -> bytes:
        """Lock-free bulk copy relative to the slice (exclusive-claim
        contract of :meth:`ShmWords.read_block`)."""
        if not (0 <= start and start + count <= self._length):
            raise IndexError(
                f"block [{start}, {start + count}) out of range "
                f"[0, {self._length})"
            )
        return self._words.read_block(self._start + start, count)

    def write_block(self, start: int, data: bytes) -> None:
        """Lock-free bulk write relative to the slice (single-writer
        unpublished-region contract of :meth:`ShmWords.write_block`)."""
        count = len(data) // WORD_BYTES
        if not (0 <= start and start + count <= self._length):
            raise IndexError(
                f"block [{start}, {start + count}) out of range "
                f"[0, {self._length})"
            )
        self._words.write_block(self._start + start, data)
