"""Cross-process atomic 64-bit words over ``multiprocessing.shared_memory``.

THE atomic seam of the multiprocess substrate: every access to shared
words goes through :class:`ShmWords` — no other module in ``repro.mp``
touches the raw ``SharedMemory`` buffer (grep for ``_shm.buf`` to audit;
it appears only here).  Semantics first: each operation holds one of a
*striped* set of ``multiprocessing.Lock``\\ s, so operations on the same
word serialize (real atomicity across address spaces) while contended
victims on different stripes don't serialize the whole world.

Like :class:`repro.threads.atomics.AtomicWord64`, this trades raw speed
for honest cross-process mutual exclusion — CPython has no shared-memory
CAS — but unlike the threads shim the preemption here is the OS kernel
scheduling *separate processes*, GIL nowhere in sight.

Two lock-free escape hatches keep the data plane off the lock path:

* **seqlock reads** (:meth:`ShmWords.load_seq`): every data word has a
  shadow *sequence word*; locked writers bump it to odd before and back
  to even after the data write, so a reader can spin on
  ``seq / data / seq`` without taking any stripe lock and retry on a
  torn observation.  Owner-local metadata inspection (the hottest read
  in the work-stealing drivers) uses this path.
* **block copies** (:meth:`ShmWords.read_block` /
  :meth:`ShmWords.write_block`): one contiguous ``bytes()`` of the
  underlying buffer for regions the caller owns exclusively — a thief's
  claimed steal block, an owner's unpublished fill region.  Exclusive
  ownership is the whole contract: these never touch locks or sequence
  words.

**Crash-fault tolerance (lock leases).**  A ``multiprocessing.Lock`` is
a POSIX semaphore: SIGKILL its holder and the semaphore stays taken
forever, wedging every process that shares the stripe.  Every stripe
therefore carries two *lease words* in the shared segment — holder pid
and lease expiry (``monotonic_ns``, CLOCK_MONOTONIC is system-wide on
Linux) — written on acquire and cleared *before* release.  A contender
that cannot acquire within a timeout slice inspects the lease: a holder
that is **dead** (pid liveness probe) with an **expired** lease is
unambiguously fail-stopped mid-critical-section, and :meth:`break_lease`
repairs the stripe — re-evens any odd shadow sequence word (so seqlock
readers stop spinning on a torn write), marks those words suspect,
clears the lease, and force-releases the semaphore.  Breakers serialize
on a dedicated repair lock (with its own lease words) and re-verify the
holder under it, so exactly one break happens per death.  No stripe
lock may block forever: a holder that is *alive* but never releases
raises :class:`~repro.mp.errors.MpStallError` after ``stall_s`` naming
the stripe and holder pid.  Lease words add bookkeeping writes to the
locked path but no semantics change — lock-holder successions are
exactly as before when nobody dies.
"""

from __future__ import annotations

import multiprocessing
import os
import struct
import time
from dataclasses import dataclass

_U64_MASK = (1 << 64) - 1
_WORD = struct.Struct("<Q")
_PAIR = struct.Struct("<QQ")
WORD_BYTES = _WORD.size

#: Lock-free read spins before yielding the CPU to the (single) writer.
_SEQ_READ_SPINS = 64

#: Lock-free read spins between dead-writer lease inspections.
_SEQ_REPAIR_SPINS = 4096

#: Default lock-stripe count; power of two so ``index % nstripes`` mixes.
DEFAULT_STRIPES = 16

#: Lease duration written on every stripe acquire.  Critical sections
#: are microseconds, so an *expired* lease whose holder pid is *dead*
#: is unambiguous; short means crash recovery is sub-second.
DEFAULT_LEASE_S = 0.2

#: Hard wall-clock bound on one stripe acquire (or stuck seqlock read)
#: before an MpStallError names the suspect.  Generous: it only fires
#: for live-but-wedged holders, never for dead ones (leases break those).
DEFAULT_STALL_S = 120.0

#: Semaphore wait slice between lease inspections while contending.
_ACQUIRE_SLICE_S = 0.02


def _preferred_context():
    """A fork context when the platform has one (cheap, inherits the
    mapping), else the platform default."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else None)


#: This process's pid, for lease stamps on the locked hot path.  A
#: plain ``os.getpid()`` there costs a real syscall per locked op; the
#: cache is refreshed in fork children via ``os.register_at_fork`` (and
#: spawn children re-import the module), so — unlike a value captured at
#: object construction — it can never leak a parent's pid into a
#: child's lease.
_PID = os.getpid()


def _refresh_pid() -> None:
    global _PID
    _PID = os.getpid()


if hasattr(os, "register_at_fork"):  # pragma: no branch
    os.register_at_fork(after_in_child=_refresh_pid)


def pid_alive(pid: int) -> bool:
    """Is ``pid`` a live (running, non-zombie) process?

    A SIGKILLed child lingers as a zombie until its parent reaps it,
    and the signal-0 probe succeeds on zombies — but a zombie will
    never release a lock, so for lease-breaking purposes it is dead.
    Sibling processes cannot reap it themselves, hence the explicit
    ``/proc`` state check where available.
    """
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True  # exists, owned by someone else
    try:
        with open(f"/proc/{pid}/stat", "rb") as f:
            stat = f.read()
        # Field 3, after the parenthesized (and possibly space-laden)
        # command name: single-letter state, 'Z' when zombie.
        return stat[stat.rindex(b")") + 2:stat.rindex(b")") + 3] != b"Z"
    except (OSError, ValueError):
        return True  # no procfs: best effort, assume alive


@dataclass(frozen=True)
class LeaseBreak:
    """One repaired stripe: who died and which words were suspect."""

    stripe: int
    dead_pid: int
    suspect_words: tuple[int, ...]


class ShmWords:
    """A fixed array of 64-bit words in one shared-memory segment.

    All word accesses are atomic with respect to every process attached
    to the segment.  The creating process should call :meth:`unlink`
    exactly once when the run is over (children only :meth:`close`).

    Picklable: sending an instance to a ``spawn``-started process
    re-attaches by segment name (the stripe locks travel through
    multiprocessing's own reduction).  Under ``fork`` children simply
    inherit the mapping.
    """

    def __init__(
        self,
        nwords: int,
        nstripes: int = DEFAULT_STRIPES,
        ctx=None,
        lease_s: float = DEFAULT_LEASE_S,
        stall_s: float = DEFAULT_STALL_S,
    ) -> None:
        if nwords <= 0:
            raise ValueError(f"nwords must be positive, got {nwords}")
        if nstripes <= 0:
            raise ValueError(f"nstripes must be positive, got {nstripes}")
        if lease_s <= 0:
            raise ValueError(f"lease_s must be positive, got {lease_s}")
        from multiprocessing import shared_memory

        ctx = ctx or _preferred_context()
        self.nwords = nwords
        self._locks = tuple(ctx.Lock() for _ in range(nstripes))
        self._repair_lock = ctx.Lock()
        # Layout: nwords data words, then nwords shadow sequence words
        # (the seqlock plane — see load_seq), then 2 lease words per
        # stripe (holder pid, lease expiry monotonic_ns), then 3 admin
        # words (repair count, repair-lock holder pid, repair-lock
        # expiry).  Doubling the segment is cheap next to what it buys:
        # lock-free metadata reads and crash-breakable locks.
        total = 2 * nwords + 2 * len(self._locks) + 3
        self._shm = shared_memory.SharedMemory(
            create=True, size=total * WORD_BYTES
        )
        self._shm.buf[:] = bytes(total * WORD_BYTES)
        self._owner = True
        self._unlinked = False
        self._init_layout(lease_s, stall_s)

    def _init_layout(self, lease_s: float, stall_s: float) -> None:
        self._seq_base = self.nwords * WORD_BYTES
        self._meta_base = 2 * self.nwords * WORD_BYTES
        self._admin_base = self._meta_base + 2 * len(self._locks) * WORD_BYTES
        self.lease_s = lease_s
        self.stall_s = stall_s
        self._lease_ns = int(lease_s * 1e9)
        self._lease_offs = tuple(
            self._meta_base + 2 * s * WORD_BYTES
            for s in range(len(self._locks))
        )
        #: Per-process log of lease breaks this process performed.
        self.repair_log: list[LeaseBreak] = []
        #: Per-process set of words marked suspect by local repairs.
        self.suspect_words: set[int] = set()

    # -- pickling (spawn-method portability) ---------------------------
    def __getstate__(self):
        return {
            "nwords": self.nwords,
            "_locks": self._locks,
            "_repair_lock": self._repair_lock,
            "_name": self._shm.name,
            "lease_s": self.lease_s,
            "stall_s": self.stall_s,
        }

    def __setstate__(self, state):
        from multiprocessing import resource_tracker, shared_memory

        self.nwords = state["nwords"]
        self._locks = state["_locks"]
        self._repair_lock = state["_repair_lock"]
        self._shm = shared_memory.SharedMemory(name=state["_name"])
        # Attaching registered the segment with this process's resource
        # tracker; unregister it so a child killed mid-run (or exiting
        # cleanly) never races the creator's unlink with a double-unlink
        # warning at tracker shutdown.  The creator owns the lifecycle.
        try:
            resource_tracker.unregister(self._shm._name, "shared_memory")
        except Exception:
            pass
        self._owner = False
        self._unlinked = False
        self._init_layout(state["lease_s"], state["stall_s"])

    # -- leased stripe acquisition -------------------------------------
    def _stripe(self, index: int) -> int:
        return index % len(self._locks)

    def _lease_off(self, stripe: int) -> int:
        return self._lease_offs[stripe]

    def holder(self, stripe: int) -> tuple[int, int]:
        """Current (holder pid, lease expiry ns) of a stripe (racy read)."""
        return _PAIR.unpack_from(self._shm.buf, self._lease_offs[stripe])

    def _acquire(self, stripe: int) -> None:
        # _PID, never a pid captured at construction: a fork child
        # inherits this object by memory copy (no __setstate__), and a
        # parent-pid lease would read as permanently alive.  The module
        # cache is fork-hook refreshed, so it is always this process.
        if self._locks[stripe].acquire(False):
            _PAIR.pack_into(
                self._shm.buf, self._lease_offs[stripe], _PID,
                time.monotonic_ns() + self._lease_ns,
            )
            return
        self._acquire_slow(stripe)

    def _acquire_slow(self, stripe: int) -> None:
        lock = self._locks[stripe]
        t0 = time.monotonic()
        while True:
            if lock.acquire(timeout=_ACQUIRE_SLICE_S):
                _PAIR.pack_into(
                    self._shm.buf, self._lease_offs[stripe], _PID,
                    time.monotonic_ns() + self._lease_ns,
                )
                return
            self.break_lease(stripe)
            waited = time.monotonic() - t0
            if waited >= self.stall_s:
                from .errors import MpStallError

                pid, _exp = self.holder(stripe)
                raise MpStallError(
                    "stripe lock acquire stalled (live holder?)",
                    stripe=stripe, holder_pid=pid or None, waited_s=waited,
                )

    def _release(self, stripe: int) -> None:
        # Clear the lease *before* releasing the semaphore: a contender
        # can then never observe a stale dead pid while the lock is in
        # fact free or freshly re-held (the next holder writes its own
        # lease immediately after its acquire succeeds).
        _WORD.pack_into(self._shm.buf, self._lease_offs[stripe], 0)
        self._locks[stripe].release()

    # -- lease breaking / stripe repair --------------------------------
    def break_lease(self, stripe: int) -> LeaseBreak | None:
        """Repair ``stripe`` if its holder is dead with an expired lease.

        Returns the :class:`LeaseBreak` performed, or None when the
        stripe needed no repair (free, live holder, lease not yet
        expired, or another process repaired it first).  Safe to call
        from any process at any time: the verdict is re-checked under
        the repair lock, so concurrent breakers cannot double-release.
        """
        pid, expiry = self.holder(stripe)
        if pid == 0 or time.monotonic_ns() < expiry or pid_alive(pid):
            return None
        if not self._acquire_repair():
            return None
        try:
            pid, expiry = self.holder(stripe)  # re-check under the guard
            if pid == 0 or time.monotonic_ns() < expiry or pid_alive(pid):
                return None
            suspects = self._repair_stripe_seqs(stripe)
            _WORD.pack_into(self._shm.buf, self._lease_off(stripe), 0)
            off = self._admin_base
            count = _WORD.unpack_from(self._shm.buf, off)[0]
            _WORD.pack_into(self._shm.buf, off, (count + 1) & _U64_MASK)
            try:
                self._locks[stripe].release()
            except ValueError:
                pass  # narrow race: holder died between clear and release
            rec = LeaseBreak(stripe, pid, suspects)
            self.repair_log.append(rec)
            self.suspect_words.update(suspects)
            return rec
        finally:
            self._release_repair()

    def _repair_stripe_seqs(self, stripe: int) -> tuple[int, ...]:
        """Re-even every odd shadow sequence word in the stripe.

        A holder killed mid-``store`` leaves its word's sequence odd
        forever; readers would spin.  The word's *data* may hold either
        the old or the new value — mark it suspect, bump the sequence to
        the next even value, and let the duplicate-aware accounting
        absorb whichever write landed.
        """
        buf = self._shm.buf
        suspects: list[int] = []
        for w in range(stripe, self.nwords, len(self._locks)):
            soff = self._seq_base + w * WORD_BYTES
            seq = _WORD.unpack_from(buf, soff)[0]
            if seq & 1:
                _WORD.pack_into(buf, soff, (seq + 1) & _U64_MASK)
                suspects.append(w)
        return tuple(suspects)

    def break_dead_leases(self) -> list[LeaseBreak]:
        """Sweep every stripe, breaking all dead-holder leases.

        The supervisor calls this the moment it observes a PE process
        die, so survivors recover in one sweep instead of each paying a
        lease-expiry wait on first contact.
        """
        out = []
        for s in range(len(self._locks)):
            rec = self.break_lease(s)
            if rec is not None:
                out.append(rec)
        return out

    def repairs_total(self) -> int:
        """Global count of lease breaks performed on this segment."""
        return _WORD.unpack_from(self._shm.buf, self._admin_base)[0]

    def _acquire_repair(self) -> bool:
        """Take the repair lock, itself lease-protected.

        Returns False if the repair lock cannot be obtained and its
        holder looks alive (someone else is repairing — let them).
        """
        off = self._admin_base + WORD_BYTES
        deadline = time.monotonic() + self.stall_s
        while not self._repair_lock.acquire(timeout=_ACQUIRE_SLICE_S):
            pid, expiry = _PAIR.unpack_from(self._shm.buf, off)
            if pid and time.monotonic_ns() >= expiry and not pid_alive(pid):
                # The previous repairer died mid-repair.  Forced release
                # races are acceptable here: repairs are rare, idempotent
                # re-checked operations.
                _WORD.pack_into(self._shm.buf, off, 0)
                try:
                    self._repair_lock.release()
                except ValueError:
                    pass
                continue
            if time.monotonic() >= deadline:
                return False
        _PAIR.pack_into(
            self._shm.buf, off, os.getpid(),
            time.monotonic_ns() + self._lease_ns,
        )
        return True

    def _release_repair(self) -> None:
        _WORD.pack_into(self._shm.buf, self._admin_base + WORD_BYTES, 0)
        self._repair_lock.release()

    # -- chaos hook ----------------------------------------------------
    def die_holding(self, index: int, make_seq_odd: bool = True) -> None:
        """Fail-stop THIS process while holding ``index``'s stripe lock.

        The chaos harness's worst-case crash point: the stripe lease is
        held, and (with ``make_seq_odd``) the word's shadow sequence is
        left odd as if the holder died mid-``store`` — exactly the state
        :meth:`break_lease` must repair.  Never returns.
        """
        import signal

        off = self._check(index)
        stripe = self._stripe(index)
        self._acquire(stripe)
        if make_seq_odd:
            soff = self._seq_base + off
            seq = _WORD.unpack_from(self._shm.buf, soff)[0]
            _WORD.pack_into(self._shm.buf, soff, (seq + 1) & _U64_MASK)
        os.kill(os.getpid(), signal.SIGKILL)

    # -- the atomic API ------------------------------------------------
    def _check(self, index: int) -> int:
        if not 0 <= index < self.nwords:
            raise IndexError(f"word {index} out of range [0, {self.nwords})")
        return index * WORD_BYTES

    def load(self, index: int) -> int:
        """Atomic read of word ``index``."""
        off = self._check(index)
        s = self._stripe(index)
        self._acquire(s)
        try:
            return _WORD.unpack_from(self._shm.buf, off)[0]
        finally:
            self._release(s)

    def store(self, index: int, value: int) -> None:
        """Atomic write of word ``index``."""
        off = self._check(index)
        soff = self._seq_base + off
        buf = self._shm.buf
        s = self._stripe(index)
        self._acquire(s)
        try:
            seq = _WORD.unpack_from(buf, soff)[0]
            _WORD.pack_into(buf, soff, (seq + 1) & _U64_MASK)
            _WORD.pack_into(buf, off, value & _U64_MASK)
            _WORD.pack_into(buf, soff, (seq + 2) & _U64_MASK)
        finally:
            self._release(s)

    def swap(self, index: int, value: int) -> int:
        """Atomic swap; returns the old value."""
        off = self._check(index)
        soff = self._seq_base + off
        buf = self._shm.buf
        s = self._stripe(index)
        self._acquire(s)
        try:
            old = _WORD.unpack_from(buf, off)[0]
            seq = _WORD.unpack_from(buf, soff)[0]
            _WORD.pack_into(buf, soff, (seq + 1) & _U64_MASK)
            _WORD.pack_into(buf, off, value & _U64_MASK)
            _WORD.pack_into(buf, soff, (seq + 2) & _U64_MASK)
            return old
        finally:
            self._release(s)

    def fetch_add(self, index: int, delta: int) -> int:
        """Atomic fetch-and-add (wraps mod 2^64); returns the old value."""
        off = self._check(index)
        soff = self._seq_base + off
        buf = self._shm.buf
        s = self._stripe(index)
        self._acquire(s)
        try:
            old = _WORD.unpack_from(buf, off)[0]
            seq = _WORD.unpack_from(buf, soff)[0]
            _WORD.pack_into(buf, soff, (seq + 1) & _U64_MASK)
            _WORD.pack_into(buf, off, (old + delta) & _U64_MASK)
            _WORD.pack_into(buf, soff, (seq + 2) & _U64_MASK)
            return old
        finally:
            self._release(s)

    def compare_swap(self, index: int, expected: int, desired: int) -> int:
        """Atomic compare-and-swap; returns the old value."""
        off = self._check(index)
        soff = self._seq_base + off
        buf = self._shm.buf
        s = self._stripe(index)
        self._acquire(s)
        try:
            old = _WORD.unpack_from(buf, off)[0]
            if old == (expected & _U64_MASK):
                seq = _WORD.unpack_from(buf, soff)[0]
                _WORD.pack_into(buf, soff, (seq + 1) & _U64_MASK)
                _WORD.pack_into(buf, off, desired & _U64_MASK)
                _WORD.pack_into(buf, soff, (seq + 2) & _U64_MASK)
            return old
        finally:
            self._release(s)

    # -- lock-free data plane ------------------------------------------
    def load_seq(self, index: int) -> int:
        """Lock-free read of word ``index`` via its sequence word.

        Single-writer seqlock read protocol: sample the shadow sequence
        word, read the data word, re-sample the sequence; an even and
        unchanged sequence means no locked writer touched the word
        mid-read, so the value is consistent.  Retries (with a CPU yield
        every ``_SEQ_READ_SPINS`` attempts) until a clean sample lands.

        This is the owner-local / polling fast path: no stripe lock, no
        cross-process contention.  Writers pay two extra packs per
        mutation to fund it.

        Crash tolerance: a writer killed mid-critical-section leaves
        the sequence odd forever; after ``_SEQ_REPAIR_SPINS`` fruitless
        spins the reader inspects the stripe lease and breaks it if the
        holder is dead (re-evening the sequence), so readers recover
        instead of spinning on a corpse.  A *live* writer that never
        finishes raises :class:`~repro.mp.errors.MpStallError` after
        ``stall_s``.
        """
        off = self._check(index)
        soff = self._seq_base + off
        buf = self._shm.buf
        spins = 0
        total = 0
        t0 = None
        while True:
            s0 = _WORD.unpack_from(buf, soff)[0]
            if not s0 & 1:
                value = _WORD.unpack_from(buf, off)[0]
                if _WORD.unpack_from(buf, soff)[0] == s0:
                    return value
            spins += 1
            total += 1
            if spins >= _SEQ_READ_SPINS:
                time.sleep(0)
                spins = 0
            if total % _SEQ_REPAIR_SPINS == 0:
                now = time.monotonic()
                if t0 is None:
                    t0 = now
                self.break_lease(self._stripe(index))
                if now - t0 >= self.stall_s:
                    from .errors import MpStallError

                    pid, _exp = self.holder(self._stripe(index))
                    raise MpStallError(
                        f"seqlock read of word {index} stuck on odd "
                        f"sequence (live writer?)",
                        stripe=self._stripe(index), holder_pid=pid or None,
                        waited_s=now - t0,
                    )

    def read_block(self, start: int, count: int) -> bytes:
        """One contiguous lock-free copy of ``count`` words as bytes.

        Contract: the caller holds an *exclusive claim* on
        ``[start, start + count)`` — e.g. a thief that has already won
        the range via ``fetch_add`` on the control word — so no writer
        can race the copy.  No locks, no sequence words: one
        ``bytes(memoryview)`` slice out of the segment.
        """
        if count <= 0:
            return b""
        self._check(start)
        self._check(start + count - 1)
        off = start * WORD_BYTES
        return bytes(self._shm.buf[off : off + count * WORD_BYTES])

    def write_block(self, start: int, data: bytes) -> None:
        """One contiguous lock-free write of packed little-endian words.

        Contract: single writer on an *unpublished* region — the range
        only becomes visible to readers after a subsequent control-word
        update through the locked API (which fences via its stripe
        lock).  ``len(data)`` must be a multiple of the word size.
        Sequence words are not touched: ``load_seq`` on words inside a
        block-written range is only sound after that publish.
        """
        nbytes = len(data)
        if nbytes == 0:
            return
        if nbytes % WORD_BYTES:
            raise ValueError(
                f"block length {nbytes} not a multiple of {WORD_BYTES}"
            )
        count = nbytes // WORD_BYTES
        self._check(start)
        self._check(start + count - 1)
        off = start * WORD_BYTES
        self._shm.buf[off : off + nbytes] = data

    # -- lifecycle -----------------------------------------------------
    def close(self) -> None:
        """Detach this process's mapping."""
        try:
            self._shm.close()
        except BufferError:
            pass  # exported memoryviews still alive; mapping dies with us

    def unlink(self) -> None:
        """Destroy the segment (creator only, after every child exited).

        Idempotent, and tolerant of a segment that already vanished —
        abnormal-exit teardown paths may race an OS cleanup.
        """
        if self._owner and not self._unlinked:
            self._unlinked = True
            try:
                self._shm.unlink()
            except FileNotFoundError:
                pass

    def ref(self, index: int) -> "WordRef":
        """An :class:`AtomicWord64`-shaped handle on one word."""
        self._check(index)
        return WordRef(self, index)

    def slice(self, start: int, length: int) -> "WordSlice":
        """An :class:`AtomicArray64`-shaped handle on a word range."""
        self._check(start)
        if length > 0:
            self._check(start + length - 1)
        return WordSlice(self, start, length)


class WordRef:
    """One shared word behind the :class:`AtomicWord64` interface."""

    __slots__ = ("_words", "_index")

    def __init__(self, words: ShmWords, index: int) -> None:
        self._words = words
        self._index = index

    def load(self) -> int:
        return self._words.load(self._index)

    def load_seq(self) -> int:
        """Lock-free seqlock read (see :meth:`ShmWords.load_seq`)."""
        return self._words.load_seq(self._index)

    def store(self, value: int) -> None:
        self._words.store(self._index, value)

    def swap(self, value: int) -> int:
        return self._words.swap(self._index, value)

    def fetch_add(self, delta: int) -> int:
        return self._words.fetch_add(self._index, delta)

    def compare_swap(self, expected: int, desired: int) -> int:
        return self._words.compare_swap(self._index, expected, desired)


class WordSlice:
    """A shared word range behind the :class:`AtomicArray64` interface."""

    __slots__ = ("_words", "_start", "_length")

    def __init__(self, words: ShmWords, start: int, length: int) -> None:
        self._words = words
        self._start = start
        self._length = length

    def __len__(self) -> int:
        return self._length

    def __getitem__(self, index: int) -> WordRef:
        if not 0 <= index < self._length:
            raise IndexError(f"index {index} out of range [0, {self._length})")
        return WordRef(self._words, self._start + index)

    def snapshot(self) -> list[int]:
        """Non-atomic-across-words read of all values."""
        return [self._words.load(self._start + i) for i in range(self._length)]

    def read_block(self, start: int, count: int) -> bytes:
        """Lock-free bulk copy relative to the slice (exclusive-claim
        contract of :meth:`ShmWords.read_block`)."""
        if not (0 <= start and start + count <= self._length):
            raise IndexError(
                f"block [{start}, {start + count}) out of range "
                f"[0, {self._length})"
            )
        return self._words.read_block(self._start + start, count)

    def write_block(self, start: int, data: bytes) -> None:
        """Lock-free bulk write relative to the slice (single-writer
        unpublished-region contract of :meth:`ShmWords.write_block`)."""
        count = len(data) // WORD_BYTES
        if not (0 <= start and start + count <= self._length):
            raise IndexError(
                f"block [{start}, {start + count}) out of range "
                f"[0, {self._length})"
            )
        self._words.write_block(self._start + start, data)
