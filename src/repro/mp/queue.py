"""SWS and SDC stealval queues across real OS processes.

These bind the substrate-independent shim protocol cores
(:mod:`repro.threads.protocol` — the *same* release / acquire / claim /
completion logic the thread shims run, reusing
:class:`repro.core.stealval.StealValEpoch` verbatim) to shared-memory
words from :class:`~repro.mp.heap.MpHeap`.  The owner-side objects live
in the process that plays the PE owning the queue; thief-side views
(:class:`MpSwsThief`, :class:`MpSdcThief`) are cheap picklable handles
any other process can steal through.

Task payloads are tuples of 64-bit words (``words_per_task``), or bare
ints when ``words_per_task == 1``.  The *control* words (stealval,
completion array, SDC lock/tail/split) go through the striped-lock
atomic seam; the *task buffer* is a lock-free bulk data plane: a
claimed block is exclusively owned by the claiming thief, so the copy
is one contiguous ``read_block`` byte slice (two when the ring wraps)
decoded by :class:`~repro.threads.protocol.RecordCodec`, and the
owner's fill is one ``write_block`` into the not-yet-published region.

:func:`hammer_mp` mirrors :func:`repro.threads.queue_shim.hammer` with
thief *processes*: the owner runs in the calling process, N children
race claims against it, and the returned loot/kept partition must equal
the original task set exactly.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from ..core.steal_half import schedule, steal_displacement
from ..shmem.heap import SymArray, SymWord, SymmetricAllocator
from ..threads.protocol import (
    Backoff,
    FfMultShimCore,
    FfMultShimResult,
    RecordCodec,
    SdcShimCore,
    SdcShimResult,
    ShimStealResult,
    SwsShimCore,
    ffmult_steal_once,
    sdc_steal_once,
    sws_steal_once,
)
from .atomics import pid_alive
from .heap import MpHeap

#: Default completion-array slots per epoch (covers allotments < 2^24).
DEFAULT_COMP_SLOTS = 24


class _MpTaskBuffer:
    """Word-backed task buffer shared by owner and thief views."""

    def _bind_buffer(self, heap: MpHeap, buffer: SymArray, capacity: int,
                     words_per_task: int) -> None:
        self._buf = heap.slice(buffer)
        self.capacity = capacity
        self.words_per_task = words_per_task
        self._codec = RecordCodec(words_per_task)

    def _read_tasks(self, start: int, count: int) -> list:
        """Bulk-copy ``count`` records starting at record index ``start``.

        A claimed block is exclusively owned by the reader (the steal
        protocol's fetch-add already won it), so this is the lock-free
        ``read_block`` path: one contiguous byte slice, or two when the
        block wraps the ring end — record indices are taken modulo the
        buffer, which is a no-op for the flat-cursor shims but lets ring
        layouts reuse the same accessor.
        """
        if count <= 0:
            return []
        wpt = self.words_per_task
        total = self.capacity * wpt
        nw = count * wpt
        if nw > total:
            raise IndexError(
                f"block of {count} records exceeds buffer of "
                f"{self.capacity}"
            )
        w0 = (start * wpt) % total
        buf = self._buf
        if w0 + nw <= total:
            data = buf.read_block(w0, nw)
        else:
            head = total - w0
            data = buf.read_block(w0, head) + buf.read_block(0, nw - head)
        return self._codec.decode(data)


@dataclass(frozen=True)
class SwsQueueLayout:
    """Picklable symmetric-heap footprint of one mp SWS queue."""

    stealval: SymWord
    comp: SymArray
    buffer: SymArray
    capacity: int
    words_per_task: int = 1
    max_epochs: int = 2
    comp_slots: int = DEFAULT_COMP_SLOTS
    #: Claimant-token array parallel to ``comp`` — a successful claim
    #: records who holds it (rank + 1) before copying, so a crashed
    #: thief's claim can be identified and voided.  Always reserved
    #: (2 * comp_slots words is noise); only written in crash mode.
    claimant: SymArray | None = None

    @classmethod
    def reserve(
        cls,
        heap: MpHeap,
        prefix: str,
        capacity: int,
        words_per_task: int = 1,
        max_epochs: int = 2,
        comp_slots: int = DEFAULT_COMP_SLOTS,
    ) -> "SwsQueueLayout":
        """Lay the queue out on an unfrozen heap via the shmem allocator."""
        if capacity >= 1 << 19:
            # The stealval tail field stores start % 2^19; shim buffers
            # must stay below that so the raw value is the buffer index.
            raise ValueError(f"capacity must be < 2^19, got {capacity}")
        alloc = SymmetricAllocator(heap, prefix)
        stealval = alloc.word("stealval")
        comp = alloc.array("comp", max_epochs * comp_slots)
        buffer = alloc.array("buffer", capacity * words_per_task)
        claimant = alloc.array("claimant", max_epochs * comp_slots)
        alloc.commit()
        return cls(stealval, comp, buffer, capacity, words_per_task,
                   max_epochs, comp_slots, claimant)

    def owner(self, heap: MpHeap) -> "MpSwsQueue":
        """Owner-side queue object (construct in the owning process)."""
        return MpSwsQueue(heap, self)

    def thief(self, heap: MpHeap) -> "MpSwsThief":
        """Thief-side view (construct in any process)."""
        return MpSwsThief(heap, self)


class MpSwsQueue(_MpTaskBuffer, SwsShimCore):
    """Owner-side SWS queue state over cross-process atomics."""

    #: Dead-claimant oracle ``token -> bool`` (crash mode only): maps a
    #: claimant token recorded by ``sws_steal_once`` to "that process is
    #: dead".  The driver installs it; ``None`` keeps the historical
    #: wait-forever-on-completion behaviour.
    dead_claimant = None

    def __init__(self, heap: MpHeap, layout: SwsQueueLayout) -> None:
        self._bind_buffer(heap, layout.buffer, layout.capacity,
                          layout.words_per_task)
        self.nfilled = 0
        self.stealval = heap.ref(layout.stealval)
        self.comp = heap.slice(layout.comp)
        if layout.claimant is not None:
            self.claimant = heap.slice(layout.claimant)
        self._init_protocol(layout.max_epochs, layout.comp_slots)

    def _on_settle_stall(self) -> bool:
        """A completion wait stalled: void claims held by dead thieves.

        A thief SIGKILLed between its claiming ``fetch_add`` and its
        completion ``fetch_add`` leaves its slot short forever, wedging
        the owner's settle wait.  For each unsettled claim whose
        recorded claimant token maps to a dead process, re-read the
        claimed buffer range (still valid: claimed ranges are never
        overwritten while the record is live) back into ``owner_kept``
        and store the expected volume into the completion slot.  The
        dead thief may also have copied the block before dying — that
        path yields a duplicate execution, which at-least-once
        accounting absorbs.

        Returns truthy to keep waiting: either a void just unwedged the
        books, or the claimant is alive and merely slow.  Only a long
        run of fruitless rounds (no void, no settle) gives up and lets
        the backoff raise its diagnostic.
        """
        if self.void_dead_claims():
            self._stall_rounds = 0
            return True
        self._stall_rounds = getattr(self, "_stall_rounds", 0) + 1
        return self._stall_rounds < 30

    def void_dead_claims(self) -> int:
        """Void unsettled claims whose claimant is dead; returns count."""
        dead = self.dead_claimant
        if dead is None or self.claimant is None:
            return 0
        voided = 0
        for rec in self._records:
            claims = rec.get("claims")
            if claims is None:
                continue  # the live (still-open) record
            vols = schedule(rec["itasks"])
            base = rec["epoch"] * self.comp_slots
            for i in range(claims):
                if self.comp[base + i].load() == vols[i]:
                    continue
                token = self.claimant[base + i].load()
                if token and dead(token):
                    disp = steal_displacement(rec["itasks"], i)
                    self.owner_kept.extend(
                        self._read_tasks(rec["start"] + disp, vols[i])
                    )
                    self.comp[base + i].store(vols[i])
                    voided += 1
        return voided

    def push(self, task) -> bool:
        """Append one task's words at the fill cursor; False when full."""
        if self.nfilled >= self.capacity:
            return False
        wpt = self.words_per_task
        base = self.nfilled * wpt
        if wpt == 1:
            self._buf[base].store(task)
        else:
            if len(task) != wpt:
                raise ValueError(
                    f"task must be {wpt} words, got {len(task)}"
                )
            for j, word in enumerate(task):
                self._buf[base + j].store(word)
        self.nfilled += 1
        return True

    def push_all(self, tasks) -> int:
        """Append many tasks in one bulk write; returns how many fit.

        The fill region ``[nfilled, nfilled + fit)`` is unpublished
        (``release`` exposes it later via a locked stealval store), so
        the single-writer ``write_block`` contract holds.
        """
        tasks = list(tasks)
        fit = min(len(tasks), self.capacity - self.nfilled)
        if fit <= 0:
            return 0
        batch = tasks[:fit]
        wpt = self.words_per_task
        if wpt > 1:
            for task in batch:
                if len(task) != wpt:
                    raise ValueError(
                        f"task must be {wpt} words, got {len(task)}"
                    )
        self._buf.write_block(self.nfilled * wpt, self._codec.encode(batch))
        self.nfilled += fit
        return fit


class MpSwsThief(_MpTaskBuffer):
    """Thief-side view: just enough shared words to claim blocks."""

    #: Crash-mode hooks (inert by default): a nonzero ``claim_token``
    #: (rank + 1) records ownership of each winning claim in the
    #: victim's claimant array; ``intent(start, vol)`` durably records
    #: the claimed buffer range before the copy so a thief crash after
    #: the completion signal is recoverable by the supervisor.
    claim_token: int = 0
    intent = None

    def __init__(self, heap: MpHeap, layout: SwsQueueLayout) -> None:
        self._bind_buffer(heap, layout.buffer, layout.capacity,
                          layout.words_per_task)
        self.stealval = heap.ref(layout.stealval)
        self.comp = heap.slice(layout.comp)
        self.comp_slots = layout.comp_slots
        self.claimant = (
            heap.slice(layout.claimant) if layout.claimant is not None
            else None
        )

    def steal(self) -> ShimStealResult:
        """One fused discover+claim attempt (single remote fetch-add)."""
        return sws_steal_once(
            self.stealval, self.comp, self.comp_slots, self._read_tasks,
            claimant=self.claimant if self.claim_token else None,
            claim_token=self.claim_token, intent=self.intent,
        )

    def probe(self) -> int:
        """Read-only stealval fetch (damping's empty-mode probe).

        Seqlock read: every stealval mutation goes through the locked
        word API (which bumps the shadow sequence), so the probe skips
        the stripe lock entirely.
        """
        return self.stealval.load_seq()


@dataclass(frozen=True)
class SdcQueueLayout:
    """Picklable symmetric-heap footprint of one mp SDC queue."""

    lock: SymWord
    tail: SymWord
    split: SymWord
    buffer: SymArray
    capacity: int
    words_per_task: int = 1

    @classmethod
    def reserve(
        cls,
        heap: MpHeap,
        prefix: str,
        capacity: int,
        words_per_task: int = 1,
    ) -> "SdcQueueLayout":
        """Lay the queue out on an unfrozen heap via the shmem allocator."""
        alloc = SymmetricAllocator(heap, prefix)
        lock = alloc.word("lock")
        tail = alloc.word("tail")
        split = alloc.word("split")
        buffer = alloc.array("buffer", capacity * words_per_task)
        alloc.commit()
        return cls(lock, tail, split, buffer, capacity, words_per_task)

    def owner(self, heap: MpHeap) -> "MpSdcQueue":
        """Owner-side queue object (construct in the owning process)."""
        return MpSdcQueue(heap, self)

    def thief(self, heap: MpHeap) -> "MpSdcThief":
        """Thief-side view (construct in any process)."""
        return MpSdcThief(heap, self)


def _dead_pid_token(token: int) -> bool:
    """Dead-holder oracle for pid lock tokens (SDC takeover path).

    The mp SDC lock word holds its owner's pid, so "is the holder dead"
    is a signal-0 probe.  Pid recycling within one run would mask a
    death; astronomically unlikely at these process counts and run
    lengths, and the cost would be a diagnosed stall, not corruption.
    """
    return not pid_alive(token)


class MpSdcQueue(_MpTaskBuffer, SdcShimCore):
    """Owner-side SDC (lock-based) queue over cross-process atomics.

    The lock word carries this process's *pid* as its token, so any
    contender can detect a SIGKILLed holder and take the lock over with
    one race-free ``compare_swap(holder, token)``.  The queue state
    under a broken SDC lock is benign: the six-step critical sections
    only ever advance ``tail``/``split`` after reading, so a takeover
    mid-section re-reads consistent words (at worst the same block is
    read twice — a duplicate, never a loss).
    """

    dead_holder = staticmethod(_dead_pid_token)

    def __init__(self, heap: MpHeap, layout: SdcQueueLayout) -> None:
        self._bind_buffer(heap, layout.buffer, layout.capacity,
                          layout.words_per_task)
        self.nfilled = 0
        self.lock = heap.ref(layout.lock)
        self.tail = heap.ref(layout.tail)
        self.split = heap.ref(layout.split)
        self.lock_token = os.getpid()
        self._init_protocol()

    push = MpSwsQueue.push
    push_all = MpSwsQueue.push_all


class MpSdcThief(_MpTaskBuffer):
    """Thief-side view of an mp SDC queue."""

    #: Crash-mode range-intent hook (see :class:`MpSwsThief`).
    intent = None

    def __init__(self, heap: MpHeap, layout: SdcQueueLayout) -> None:
        self._bind_buffer(heap, layout.buffer, layout.capacity,
                          layout.words_per_task)
        self.lock = heap.ref(layout.lock)
        self.tail = heap.ref(layout.tail)
        self.split = heap.ref(layout.split)

    def steal(self, max_spins: int = 10_000) -> SdcShimResult:
        """One lock-protected steal-half attempt."""
        return sdc_steal_once(
            self.lock, self.tail, self.split, self._read_tasks, max_spins,
            token=os.getpid(), dead_holder=_dead_pid_token,
            intent=self.intent,
        )


@dataclass(frozen=True)
class FfMultQueueLayout:
    """Picklable symmetric-heap footprint of one mp ff-mult queue."""

    tail: SymWord
    split: SymWord
    buffer: SymArray
    capacity: int
    words_per_task: int = 1

    @classmethod
    def reserve(
        cls,
        heap: MpHeap,
        prefix: str,
        capacity: int,
        words_per_task: int = 1,
    ) -> "FfMultQueueLayout":
        """Lay the queue out on an unfrozen heap via the shmem allocator."""
        alloc = SymmetricAllocator(heap, prefix)
        tail = alloc.word("tail")
        split = alloc.word("split")
        buffer = alloc.array("buffer", capacity * words_per_task)
        alloc.commit()
        return cls(tail, split, buffer, capacity, words_per_task)

    def owner(self, heap: MpHeap) -> "MpFfMultQueue":
        """Owner-side queue object (construct in the owning process)."""
        return MpFfMultQueue(heap, self)

    def thief(self, heap: MpHeap) -> "MpFfMultThief":
        """Thief-side view (construct in any process)."""
        return MpFfMultThief(heap, self)


class MpFfMultQueue(_MpTaskBuffer, FfMultShimCore):
    """Owner-side fence-free multiplicity queue over shared memory.

    No lock word at all: the owner repairs the tail and absorbs the
    shared remainder with plain stores, exactly like the thread shim —
    across address spaces a stale thief store can still re-expose
    consumed indices, producing the duplicates the at-least-once
    contract allows (the hammer checks set-coverage, not partition).
    """

    def __init__(self, heap: MpHeap, layout: FfMultQueueLayout) -> None:
        self._bind_buffer(heap, layout.buffer, layout.capacity,
                          layout.words_per_task)
        self.nfilled = 0
        self.tail = heap.ref(layout.tail)
        self.split = heap.ref(layout.split)
        self._init_protocol()

    push = MpSwsQueue.push
    push_all = MpSwsQueue.push_all


class MpFfMultThief(_MpTaskBuffer):
    """Thief-side view of an mp ff-mult queue (no atomic RMW at all)."""

    def __init__(self, heap: MpHeap, layout: FfMultQueueLayout) -> None:
        self._bind_buffer(heap, layout.buffer, layout.capacity,
                          layout.words_per_task)
        self.tail = heap.ref(layout.tail)
        self.split = heap.ref(layout.split)

    def steal(self) -> FfMultShimResult:
        """One fence-free attempt: two plain reads, one plain store."""
        return ffmult_steal_once(self.tail, self.split, self._read_tasks)


# ======================================================================
# The cross-process hammer (mirror of repro.threads.queue_shim.hammer)
# ======================================================================

def _hammer_thief(heap, layout, stop_addr, idx, outq, impl, stall_s):
    """Thief child: race claims until the owner raises the stop flag."""
    stop = heap.ref(stop_addr)
    thief = layout.thief(heap)
    loot: list = []
    volumes: list[int] = []
    backoff = Backoff(sleep_s=1e-6, max_sleep_s=1e-4, deadline_s=stall_s)
    try:
        while not stop.load_seq():
            res = (thief.steal(max_spins=100) if impl == "sdc"
                   else thief.steal())
            if res.claimed:
                loot.extend(res.claimed)
                volumes.append(len(res.claimed))
                backoff.reset()
            else:
                backoff.wait()
    except StallTimeout as exc:
        outq.put((idx, loot, volumes, str(exc)))
        return
    outq.put((idx, loot, volumes, None))


def hammer_mp(
    tasks: list[int],
    nthieves: int = 4,
    releases: int = 8,
    acquires: int = 3,
    impl: str = "sws",
    join_timeout: float = 30.0,
    stall_s: float = 60.0,
) -> tuple[list[list[int]], list[int]]:
    """Race harness: owner in this process, N thief *processes*.

    Returns ``(per-thief loot, owner-kept tasks)``.  For the
    exactly-once protocols (``sws``, ``sdc``) their disjoint union must
    equal ``tasks`` exactly — the shim conservation contract, now under
    genuine hardware preemption across address spaces.  For ``ff-mult``
    the contract is at-least-once: the union must *cover* ``tasks``
    (set equality), with duplicates legal wherever thief stores raced.

    ``stall_s`` is a hard wall-clock deadline on every wait in the
    harness — the owner's completion settles, each thief's idle
    backoff, and result collection.  A wedged run raises a diagnostic
    :class:`~repro.mp.errors.MpStallError` naming the stuck party
    instead of hanging CI until the job timeout guesses for it.
    """
    import queue as stdlib_queue
    import time

    from .atomics import _preferred_context
    from .errors import MpStallError

    layout_classes = {
        "sws": SwsQueueLayout,
        "sdc": SdcQueueLayout,
        "ff-mult": FfMultQueueLayout,
    }
    if impl not in layout_classes:
        raise ValueError(f"impl must be sws|sdc|ff-mult, got {impl!r}")
    ctx = _preferred_context()
    heap = MpHeap(ctx=ctx)
    layout_cls = layout_classes[impl]
    layout = layout_cls.reserve(heap, "q0", capacity=len(tasks))
    ctl = SymmetricAllocator(heap, "ctl")
    stop_addr = ctl.word("stop")
    ctl.commit()
    heap.freeze()
    try:
        queue = layout.owner(heap)
        queue.stall_s = stall_s
        queue.push_all(tasks)
        outq = ctx.Queue()
        procs = [
            ctx.Process(
                target=_hammer_thief,
                args=(heap, layout, stop_addr, i, outq, impl, stall_s),
                daemon=True,
            )
            for i in range(nthieves)
        ]
        for p in procs:
            p.start()

        chunk = max(1, len(tasks) // releases)
        done_acquires = 0
        while queue.cursor < len(tasks):
            queue.release(chunk)
            time.sleep(2e-5)
            if done_acquires < acquires:
                queue.acquire()
                done_acquires += 1
        queue.drain()
        heap.ref(stop_addr).store(1)

        loot: list[list[int]] = [[] for _ in range(nthieves)]
        for _ in range(nthieves):
            try:
                idx, claimed, _volumes, err = outq.get(timeout=join_timeout)
            except stdlib_queue.Empty:
                raise MpStallError(
                    "mp hammer thief produced no result",
                    waited_s=join_timeout,
                ) from None
            if err is not None:
                raise MpStallError(f"mp hammer thief stalled: {err}",
                                   rank=idx)
            loot[idx] = claimed
        for p in procs:
            p.join(timeout=join_timeout)
            if p.is_alive():
                p.terminate()
                raise MpStallError("mp hammer thief failed to exit",
                                   waited_s=join_timeout)
        return loot, queue.owner_kept
    finally:
        heap.close()
        heap.unlink()
