"""Multiprocess substrate: the SWS protocol across real OS processes.

The third execution substrate of the reproduction (after the simulated
fabric and the in-process thread shims): shared-memory 64-bit words with
cross-process atomic operations, the same shim protocol cores as the
thread substrate (:mod:`repro.threads.protocol`), and a process-pool PE
driver that runs the synthetic and UTS workloads end-to-end.  See
``docs/backends.md`` for what each substrate can and cannot falsify.
"""

from .atomics import ShmWords, WordRef, WordSlice
from .driver import (
    MpPeStats,
    MpRunResult,
    run_mp,
    synthetic_expected,
    uts_expected,
)
from .heap import MpHeap
from .queue import (
    FfMultQueueLayout,
    MpFfMultQueue,
    MpFfMultThief,
    MpSdcQueue,
    MpSdcThief,
    MpSwsQueue,
    MpSwsThief,
    SdcQueueLayout,
    SwsQueueLayout,
    hammer_mp,
)

__all__ = [
    "ShmWords",
    "WordRef",
    "WordSlice",
    "MpHeap",
    "SwsQueueLayout",
    "SdcQueueLayout",
    "FfMultQueueLayout",
    "MpSwsQueue",
    "MpSwsThief",
    "MpSdcQueue",
    "MpSdcThief",
    "MpFfMultQueue",
    "MpFfMultThief",
    "hammer_mp",
    "run_mp",
    "MpRunResult",
    "MpPeStats",
    "synthetic_expected",
    "uts_expected",
]
