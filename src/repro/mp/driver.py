"""Process-pool PE driver: end-to-end workloads across real processes.

Each PE is a real OS process owning one mp stealval queue in the shared
symmetric heap; idle PEs steal from victims with steal-half volumes and
(for SWS) the paper's §4.3 damping state machine, exactly as the
simulated runtime does — but here the interleavings come from the
kernel scheduler across address spaces, not from a discrete-event loop.

Workloads:

* ``synthetic`` — a flat bag of ``ntasks`` independent tasks seeded on
  PE 0; every other PE starts empty, so all load balance comes from
  stealing.
* ``uts`` — an Unbalanced Tree Search over a named SHA-1 tree
  (:mod:`repro.workloads.uts`); tasks are 20-byte node states packed
  into 4 shared words, children are enqueued locally and shared on
  demand.

Termination uses two global counters (``created`` / ``completed``) with
the monotone argument: ``completed <= created`` always, and reading
``completed`` *before* ``created`` makes an observed equality stable —
every created task has executed, nothing is in flight.

Steal attempts are classified with the simulator's own
:class:`repro.core.results.StealStatus`, and per-PE stats aggregate into
:class:`MpRunResult` whose ``summary()`` feeds the sweep runner and the
``python -m repro mp`` subcommand.
"""

from __future__ import annotations

import random
import time
from collections import deque
from dataclasses import dataclass, field

from ..core.damping import DampingTracker, TargetMode
from ..core.results import StealStatus
from ..core.stealval import StealValEpoch
from ..shmem.heap import SymmetricAllocator
from ..threads.protocol import Backoff
from ..workloads.uts import UtsParams, expand, get_tree
from .atomics import _preferred_context
from .heap import MpHeap
from .queue import SdcQueueLayout, SwsQueueLayout

_U64 = (1 << 64) - 1

#: Local-queue size below which a PE does not bother sharing.
RELEASE_MIN = 4


def _mix64(x: int) -> int:
    """Splitmix64 finalizer: an order-independent task fingerprint."""
    x = (x + 0x9E3779B97F4A7C15) & _U64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _U64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _U64
    return (x ^ (x >> 31)) & _U64


# ----------------------------------------------------------------------
# Task codecs: workload payloads <-> tuples of 64-bit words
# ----------------------------------------------------------------------

def encode_uts(state: bytes, depth: int, is_root: bool) -> tuple[int, int, int, int]:
    """Pack a UTS node (20-byte SHA-1 state + depth + root flag) into 4 words."""
    return (
        int.from_bytes(state[0:8], "little"),
        int.from_bytes(state[8:16], "little"),
        int.from_bytes(state[16:20], "little"),
        depth | (int(is_root) << 32),
    )


def decode_uts(words) -> tuple[bytes, int, bool]:
    """Inverse of :func:`encode_uts`."""
    w0, w1, w2, w3 = words
    state = (
        w0.to_bytes(8, "little")
        + w1.to_bytes(8, "little")
        + (w2 & 0xFFFFFFFF).to_bytes(4, "little")
    )
    return state, w3 & 0xFFFFFFFF, bool(w3 >> 32)


def _fp_uts(words) -> int:
    return _mix64(words[0] ^ words[2])


def synthetic_expected(ntasks: int) -> tuple[int, int]:
    """(node count, xor-of-fingerprints) for the flat synthetic bag."""
    chk = 0
    for i in range(ntasks):
        chk ^= _mix64(i)
    return ntasks, chk


def uts_expected(params: UtsParams, max_nodes: int | None = 2_000_000) -> tuple[int, int]:
    """(node count, xor-of-fingerprints) via a sequential DFS oracle."""
    count = 0
    chk = 0
    stack: list[tuple[bytes, int, bool]] = [(params.root(), 0, True)]
    while stack:
        state, depth, is_root = stack.pop()
        count += 1
        if max_nodes is not None and count > max_nodes:
            raise RuntimeError(f"tree exceeded max_nodes={max_nodes}")
        chk ^= _fp_uts(encode_uts(state, depth, is_root))
        for c in expand(params, state, depth, is_root):
            stack.append((c, depth + 1, False))
    return count, chk


# ----------------------------------------------------------------------
# Result records
# ----------------------------------------------------------------------

@dataclass
class MpPeStats:
    """One PE process's accounting for a run."""

    rank: int
    executed: int = 0
    checksum: int = 0
    steals: dict = field(default_factory=dict)      # StealStatus.value -> count
    steal_volumes: list = field(default_factory=list)
    probes: int = 0
    probe_aborts: int = 0
    demotions: int = 0
    promotions: int = 0
    releases: int = 0
    acquires: int = 0

    @property
    def tasks_stolen(self) -> int:
        return sum(self.steal_volumes)


@dataclass
class MpRunResult:
    """Aggregate outcome of one multiprocess run."""

    workload: str
    impl: str
    npes: int
    seed: int
    created: int
    completed: int
    wall_s: float
    pes: list[MpPeStats] = field(default_factory=list)
    expected_executed: int | None = None
    expected_checksum: int | None = None

    @property
    def total_executed(self) -> int:
        return sum(p.executed for p in self.pes)

    @property
    def checksum(self) -> int:
        chk = 0
        for p in self.pes:
            chk ^= p.checksum
        return chk

    @property
    def total_steals(self) -> int:
        return sum(
            p.steals.get(StealStatus.STOLEN.value, 0) for p in self.pes
        )

    @property
    def conserved(self) -> bool:
        """Zero lost / duplicated tasks, as far as the books can tell."""
        ok = self.created == self.completed == self.total_executed
        if self.expected_executed is not None:
            ok = ok and self.total_executed == self.expected_executed
        if self.expected_checksum is not None:
            ok = ok and self.checksum == self.expected_checksum
        return ok

    def steal_volume_histogram(self) -> dict[int, int]:
        hist: dict[int, int] = {}
        for p in self.pes:
            for v in p.steal_volumes:
                hist[v] = hist.get(v, 0) + 1
        return dict(sorted(hist.items()))

    def summary(self) -> dict:
        """Flat JSON-ready record (sweep payload / CLI output)."""
        return {
            "workload": self.workload,
            "impl": self.impl,
            "npes": self.npes,
            "seed": self.seed,
            "created": self.created,
            "completed": self.completed,
            "executed": self.total_executed,
            "conserved": self.conserved,
            "steals": self.total_steals,
            "tasks_stolen": sum(p.tasks_stolen for p in self.pes),
            "wall_s": round(self.wall_s, 4),
        }


# ----------------------------------------------------------------------
# The PE process body
# ----------------------------------------------------------------------

def _pe_main(
    rank, npes, heap, layouts, impl, wl, ctl, seed, damping, outq
) -> None:
    """One PE: execute local tasks, share on demand, steal when starved."""
    try:
        stats = _pe_loop(rank, npes, heap, layouts, impl, wl, ctl, seed, damping)
        outq.put(("ok", rank, stats))
    except BaseException:
        import traceback

        outq.put(("error", rank, traceback.format_exc()))


def _pe_loop(rank, npes, heap, layouts, impl, wl, ctl, seed, damping) -> dict:
    kind, arg = wl
    created = heap.ref(ctl["created"])
    completed = heap.ref(ctl["completed"])
    owner = layouts[rank].owner(heap)
    thieves = {
        v: layouts[v].thief(heap) for v in range(npes) if v != rank
    }
    rng = random.Random((seed * 1_000_003) ^ rank)
    tracker = DampingTracker(npes, enabled=damping and impl == "sws")
    stats = MpPeStats(rank=rank)
    local: deque = deque()

    if kind == "synthetic":
        if rank == 0:
            local.extend(range(arg))
        execute = lambda payload: ()          # independent leaf tasks
        fingerprint = _mix64
    elif kind == "uts":
        params = arg
        if rank == 0:
            local.append(encode_uts(params.root(), 0, True))

        def execute(payload):
            state, depth, is_root = decode_uts(payload)
            return [
                encode_uts(c, depth + 1, False)
                for c in expand(params, state, depth, is_root)
            ]

        fingerprint = _fp_uts
    else:
        raise ValueError(f"unknown workload {kind!r}")

    # Owner-local metadata inspection runs after every executed task; the
    # seqlock read keeps it off the stripe locks the thieves' claims are
    # hammering, and the verdict is cached against the raw word (claims
    # change the word, so a stale verdict is impossible).
    sv_cache = [None, False]

    def shared_has_work() -> bool:
        if impl == "sws":
            raw = owner.stealval.load_seq()
            if raw != sv_cache[0]:
                sv_cache[0] = raw
                sv_cache[1] = DampingTracker.view_has_work(
                    StealValEpoch.unpack(raw)
                )
            return sv_cache[1]
        return owner.split.load_seq() - owner.tail.load_seq() > 0

    def reclaim() -> int:
        kept = owner.take_kept()
        local.extend(kept)
        return len(kept)

    def try_share() -> None:
        if (
            len(local) < RELEASE_MIN
            or owner.nfilled >= owner.capacity
            or shared_has_work()
        ):
            return
        n = len(local) // 2
        batch = [local.popleft() for _ in range(n)]
        pushed = owner.push_all(batch)
        for payload in reversed(batch[pushed:]):
            local.appendleft(payload)        # buffer full: keep the rest
        if pushed:
            owner.release(pushed)
            stats.releases += 1
            reclaim()                        # absorbed previous remainder

    def try_steal_from(victim: int) -> bool:
        thief = thieves[victim]
        if impl == "sws":
            if tracker.mode(victim) is TargetMode.EMPTY:
                view = StealValEpoch.unpack(thief.probe())
                tracker.note_probe(victim, DampingTracker.view_has_work(view))
                if tracker.mode(victim) is TargetMode.EMPTY:
                    return False             # probe said empty: no AMO spent
            res = thief.steal()
            if res.claimed:
                status = StealStatus.STOLEN
                tracker.note_success(victim)
            elif res.aborted_locked:
                status = StealStatus.DISABLED
            else:
                status = StealStatus.EMPTY
                tracker.note_failed_claim(victim, res.view)
        else:
            res = thief.steal(max_spins=200)
            if res.claimed:
                status = StealStatus.STOLEN
            elif res.empty:
                status = StealStatus.EMPTY
            else:
                status = StealStatus.LOCKED_ABORT
        stats.steals[status.value] = stats.steals.get(status.value, 0) + 1
        if res.claimed:
            stats.steal_volumes.append(len(res.claimed))
            local.extend(res.claimed)
            return True
        return False

    # Completion increments are batched locally and flushed whenever the
    # local deque drains (and before any termination read).  Deferring
    # ``completed`` only ever *understates* it, so the global invariant
    # ``completed <= created`` survives; ``created`` must stay prompt —
    # children become stealable at the next release, and their creation
    # has to be on the books before any other PE can complete them.
    done_pending = 0
    idle = Backoff(sleep_s=1e-5, max_sleep_s=1e-3)
    while True:
        if local:
            payload = local.pop()
            children = execute(payload)
            if children:
                created.fetch_add(len(children))
                local.extend(children)
            done_pending += 1
            stats.executed += 1
            stats.checksum ^= fingerprint(payload)
            try_share()
            continue
        if done_pending:
            completed.fetch_add(done_pending)
            done_pending = 0
        # Local deque empty: reclaim our own shared remainder first.
        owner.acquire()
        stats.acquires += 1
        if reclaim():
            idle.reset()
            continue
        # Steal sweep over victims in a fresh random order.
        order = rng.sample(sorted(thieves), len(thieves))
        if any(try_steal_from(v) for v in order):
            idle.reset()
            continue
        # Nothing anywhere: are the books balanced?  (completed first!)
        done = completed.load_seq()
        if done == created.load_seq():
            break
        idle.wait()

    stats.probes = tracker.stats.probes
    stats.probe_aborts = tracker.stats.probe_aborts
    stats.demotions = tracker.stats.demotions
    stats.promotions = tracker.stats.promotions
    return stats.__dict__


# ----------------------------------------------------------------------
# The parent-side runner
# ----------------------------------------------------------------------

def run_mp(
    workload: str = "synthetic",
    impl: str = "sws",
    npes: int = 4,
    *,
    ntasks: int = 2000,
    tree: str | UtsParams = "test_tiny",
    seed: int = 0,
    damping: bool = True,
    capacity: int | None = None,
    verify: bool = False,
    join_timeout: float = 120.0,
) -> MpRunResult:
    """Run one workload end-to-end across ``npes`` real processes.

    With ``verify=True`` the expected node count and checksum are
    computed by a sequential oracle and attached to the result, making
    ``result.conserved`` a zero-lost / zero-duplicated proof.
    """
    if impl not in ("sws", "sdc"):
        raise ValueError(f"impl must be sws|sdc, got {impl!r}")
    if workload not in ("synthetic", "uts"):
        raise ValueError(f"workload must be synthetic|uts, got {workload!r}")
    if npes < 2:
        raise ValueError(f"npes must be >= 2, got {npes}")

    if workload == "synthetic":
        wl = ("synthetic", ntasks)
        wpt = 1
        capacity = capacity or max(256, 2 * ntasks)
        nseed = ntasks
    else:
        params = tree if isinstance(tree, UtsParams) else get_tree(tree)
        wl = ("uts", params)
        wpt = 4
        capacity = capacity or (1 << 14)
        nseed = 1

    ctx = _preferred_context()
    heap = MpHeap(ctx=ctx)
    layout_cls = SwsQueueLayout if impl == "sws" else SdcQueueLayout
    layouts = [
        layout_cls.reserve(heap, f"pe{r}", capacity, words_per_task=wpt)
        for r in range(npes)
    ]
    alloc = SymmetricAllocator(heap, "ctl")
    ctl = {"created": alloc.word("created"), "completed": alloc.word("completed")}
    alloc.commit()
    heap.freeze()
    try:
        heap.ref(ctl["created"]).store(nseed)
        outq = ctx.Queue()
        procs = [
            ctx.Process(
                target=_pe_main,
                args=(r, npes, heap, layouts, impl, wl, ctl, seed, damping, outq),
                daemon=True,
            )
            for r in range(npes)
        ]
        t0 = time.perf_counter()
        for p in procs:
            p.start()

        pes: list[MpPeStats] = []
        errors: list[str] = []
        try:
            for _ in range(npes):
                status, rank, payload = outq.get(timeout=join_timeout)
                if status == "ok":
                    pes.append(MpPeStats(**payload))
                else:
                    errors.append(f"PE {rank}:\n{payload}")
        except BaseException:
            for p in procs:
                if p.is_alive():
                    p.terminate()
            raise
        wall = time.perf_counter() - t0
        for p in procs:
            p.join(timeout=join_timeout)
            if p.is_alive():
                p.terminate()
                errors.append("PE process failed to exit after reporting")
        if errors:
            raise RuntimeError("mp run failed:\n" + "\n".join(errors))

        pes.sort(key=lambda s: s.rank)
        result = MpRunResult(
            workload=workload,
            impl=impl,
            npes=npes,
            seed=seed,
            created=heap.ref(ctl["created"]).load(),
            completed=heap.ref(ctl["completed"]).load(),
            wall_s=wall,
            pes=pes,
        )
        if verify:
            if workload == "synthetic":
                exp_n, exp_chk = synthetic_expected(ntasks)
            else:
                exp_n, exp_chk = uts_expected(wl[1])
            result.expected_executed = exp_n
            result.expected_checksum = exp_chk
        return result
    finally:
        heap.close()
        heap.unlink()
