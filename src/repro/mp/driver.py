"""Process-pool PE driver: end-to-end workloads across real processes.

Each PE is a real OS process owning one mp stealval queue in the shared
symmetric heap; idle PEs steal from victims with steal-half volumes and
(for SWS) the paper's §4.3 damping state machine, exactly as the
simulated runtime does — but here the interleavings come from the
kernel scheduler across address spaces, not from a discrete-event loop.

Workloads:

* ``synthetic`` — a flat bag of ``ntasks`` independent tasks seeded on
  PE 0; every other PE starts empty, so all load balance comes from
  stealing.
* ``uts`` — an Unbalanced Tree Search over a named SHA-1 tree
  (:mod:`repro.workloads.uts`); tasks are 20-byte node states packed
  into 4 shared words, children are enqueued locally and shared on
  demand.

Termination uses two global counters (``created`` / ``completed``) with
the monotone argument: ``completed <= created`` always, and reading
``completed`` *before* ``created`` makes an observed equality stable —
every created task has executed, nothing is in flight.

Steal attempts are classified with the simulator's own
:class:`repro.core.results.StealStatus`, and per-PE stats aggregate into
:class:`MpRunResult` whose ``summary()`` feeds the sweep runner and the
``python -m repro mp`` subcommand.
"""

from __future__ import annotations

import os
import random
import time
from collections import Counter, deque
from dataclasses import dataclass, field

from ..core.damping import DampingTracker, TargetMode
from ..core.results import StealStatus
from ..core.stealval import StealValEpoch
from ..shmem.heap import SymmetricAllocator
from ..threads.protocol import Backoff, StallTimeout
from ..workloads.uts import UtsParams, expand, get_tree
from .atomics import _preferred_context, pid_alive
from .errors import MpStallError, RingOverflowError
from .faults import CrashInjector, CrashPlan, NO_CRASHES
from .heap import MpHeap
from .queue import SdcQueueLayout, SwsQueueLayout
from .recovery import CrashRegions, ShmInbox, scavenge_rank

_U64 = (1 << 64) - 1

#: Local-queue size below which a PE does not bother sharing.
RELEASE_MIN = 4

#: Hard deadline on a PE's idle wait with no global progress: pre-lease
#: deadlocks fail fast with a diagnostic instead of hanging the job.
MP_IDLE_STALL_S = 120.0

#: Completion-wait deadline in crash mode, after which the owner checks
#: for (and voids) claims held by dead thieves.
CRASH_SETTLE_S = 2.0

#: Consecutive stable supervisor sweeps required to declare quiescence.
STABLE_SWEEPS = 3


def _mix64(x: int) -> int:
    """Splitmix64 finalizer: an order-independent task fingerprint."""
    x = (x + 0x9E3779B97F4A7C15) & _U64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _U64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _U64
    return (x ^ (x >> 31)) & _U64


# ----------------------------------------------------------------------
# Task codecs: workload payloads <-> tuples of 64-bit words
# ----------------------------------------------------------------------

def encode_uts(state: bytes, depth: int, is_root: bool) -> tuple[int, int, int, int]:
    """Pack a UTS node (20-byte SHA-1 state + depth + root flag) into 4 words."""
    return (
        int.from_bytes(state[0:8], "little"),
        int.from_bytes(state[8:16], "little"),
        int.from_bytes(state[16:20], "little"),
        depth | (int(is_root) << 32),
    )


def decode_uts(words) -> tuple[bytes, int, bool]:
    """Inverse of :func:`encode_uts`."""
    w0, w1, w2, w3 = words
    state = (
        w0.to_bytes(8, "little")
        + w1.to_bytes(8, "little")
        + (w2 & 0xFFFFFFFF).to_bytes(4, "little")
    )
    return state, w3 & 0xFFFFFFFF, bool(w3 >> 32)


def _fp_uts(words) -> int:
    return _mix64(words[0] ^ words[2])


def synthetic_expected(ntasks: int) -> tuple[int, int]:
    """(node count, xor-of-fingerprints) for the flat synthetic bag."""
    chk = 0
    for i in range(ntasks):
        chk ^= _mix64(i)
    return ntasks, chk


def uts_expected(params: UtsParams, max_nodes: int | None = 2_000_000) -> tuple[int, int]:
    """(node count, xor-of-fingerprints) via a sequential DFS oracle."""
    count = 0
    chk = 0
    stack: list[tuple[bytes, int, bool]] = [(params.root(), 0, True)]
    while stack:
        state, depth, is_root = stack.pop()
        count += 1
        if max_nodes is not None and count > max_nodes:
            raise RuntimeError(f"tree exceeded max_nodes={max_nodes}")
        chk ^= _fp_uts(encode_uts(state, depth, is_root))
        for c in expand(params, state, depth, is_root):
            stack.append((c, depth + 1, False))
    return count, chk


# ----------------------------------------------------------------------
# Result records
# ----------------------------------------------------------------------

@dataclass
class MpPeStats:
    """One PE process's accounting for a run."""

    rank: int
    executed: int = 0
    checksum: int = 0
    steals: dict = field(default_factory=dict)      # StealStatus.value -> count
    steal_volumes: list = field(default_factory=list)
    probes: int = 0
    probe_aborts: int = 0
    demotions: int = 0
    promotions: int = 0
    releases: int = 0
    acquires: int = 0

    @property
    def tasks_stolen(self) -> int:
        return sum(self.steal_volumes)


@dataclass
class MpRunResult:
    """Aggregate outcome of one multiprocess run."""

    workload: str
    impl: str
    npes: int
    seed: int
    created: int
    completed: int
    wall_s: float
    pes: list[MpPeStats] = field(default_factory=list)
    expected_executed: int | None = None
    expected_checksum: int | None = None
    # -- crash-mode (at-least-once) accounting -------------------------
    #: True when a CrashPlan was active: tasks may legitimately execute
    #: more than once, and the oracle becomes duplicate-aware.
    at_least_once: bool = False
    crashed_ranks: list[int] = field(default_factory=list)
    respawned_ranks: list[int] = field(default_factory=list)
    #: Tasks recovered from dead PEs, by source (queue/ring/inflight/...).
    scavenged: dict = field(default_factory=dict)
    #: Stripe lease breaks performed across the whole run.
    lease_breaks: int = 0
    #: Wall time spent detecting deaths, repairing and re-injecting.
    recovery_wall_s: float = 0.0
    #: Distinct tasks executed (xlog union) and their xor fingerprint.
    executed_unique: int | None = None
    unique_checksum: int | None = None
    #: multiplicity -> how many distinct tasks ran that many times.
    multiplicity: dict = field(default_factory=dict)

    @property
    def total_executed(self) -> int:
        return sum(p.executed for p in self.pes)

    @property
    def checksum(self) -> int:
        chk = 0
        for p in self.pes:
            chk ^= p.checksum
        return chk

    @property
    def total_steals(self) -> int:
        return sum(
            p.steals.get(StealStatus.STOLEN.value, 0) for p in self.pes
        )

    @property
    def conserved(self) -> bool:
        """No task lost, as far as the books can tell.

        Exactly-once runs require the full counter/checksum equalities.
        At-least-once (crash) runs require the *deduplicated* executed
        set to match the sequential oracle exactly — every task ran at
        least once (``executed >= expected`` follows), and the xor over
        distinct fingerprints reconciles; duplicates are legitimate.
        """
        if self.at_least_once:
            ok = True
            if self.expected_executed is not None:
                ok = (
                    self.executed_unique == self.expected_executed
                    and self.total_executed >= self.expected_executed
                )
            if self.expected_checksum is not None:
                ok = ok and self.unique_checksum == self.expected_checksum
            return ok
        ok = self.created == self.completed == self.total_executed
        if self.expected_executed is not None:
            ok = ok and self.total_executed == self.expected_executed
        if self.expected_checksum is not None:
            ok = ok and self.checksum == self.expected_checksum
        return ok

    def steal_volume_histogram(self) -> dict[int, int]:
        hist: dict[int, int] = {}
        for p in self.pes:
            for v in p.steal_volumes:
                hist[v] = hist.get(v, 0) + 1
        return dict(sorted(hist.items()))

    def summary(self) -> dict:
        """Flat JSON-ready record (sweep payload / CLI output)."""
        out = {
            "workload": self.workload,
            "impl": self.impl,
            "npes": self.npes,
            "seed": self.seed,
            "created": self.created,
            "completed": self.completed,
            "executed": self.total_executed,
            "conserved": self.conserved,
            "steals": self.total_steals,
            "tasks_stolen": sum(p.tasks_stolen for p in self.pes),
            "wall_s": round(self.wall_s, 4),
        }
        if self.at_least_once:
            out.update({
                "at_least_once": True,
                "crashed_ranks": list(self.crashed_ranks),
                "respawned_ranks": list(self.respawned_ranks),
                "executed_unique": self.executed_unique,
                "duplicates": (
                    None if self.executed_unique is None
                    else self.total_executed - self.executed_unique
                ),
                "multiplicity": dict(self.multiplicity),
                "scavenged": dict(self.scavenged),
                "lease_breaks": self.lease_breaks,
                "recovery_wall_s": round(self.recovery_wall_s, 4),
            })
        return out


# ----------------------------------------------------------------------
# The PE process body
# ----------------------------------------------------------------------

def _pe_main(
    rank, npes, heap, layouts, impl, wl, ctl, seed, damping, outq
) -> None:
    """One PE: execute local tasks, share on demand, steal when starved."""
    try:
        stats = _pe_loop(rank, npes, heap, layouts, impl, wl, ctl, seed, damping)
        outq.put(("ok", rank, stats))
    except BaseException:
        import traceback

        outq.put(("error", rank, traceback.format_exc()))


def _bind_workload(kind, arg):
    """(rank-0 seed tasks, execute, fingerprint) for a workload spec."""
    if kind == "synthetic":
        return range(arg), (lambda payload: ()), _mix64
    if kind == "uts":
        params = arg

        def execute(payload):
            state, depth, is_root = decode_uts(payload)
            return [
                encode_uts(c, depth + 1, False)
                for c in expand(params, state, depth, is_root)
            ]

        return [encode_uts(params.root(), 0, True)], execute, _fp_uts
    raise ValueError(f"unknown workload {kind!r}")


def _pe_loop(rank, npes, heap, layouts, impl, wl, ctl, seed, damping) -> dict:
    kind, arg = wl
    created = heap.ref(ctl["created"])
    completed = heap.ref(ctl["completed"])
    owner = layouts[rank].owner(heap)
    thieves = {
        v: layouts[v].thief(heap) for v in range(npes) if v != rank
    }
    rng = random.Random((seed * 1_000_003) ^ rank)
    tracker = DampingTracker(npes, enabled=damping and impl == "sws")
    stats = MpPeStats(rank=rank)
    local: deque = deque()

    seed_tasks, execute, fingerprint = _bind_workload(kind, arg)
    if rank == 0:
        local.extend(seed_tasks)

    # Owner-local metadata inspection runs after every executed task; the
    # seqlock read keeps it off the stripe locks the thieves' claims are
    # hammering, and the verdict is cached against the raw word (claims
    # change the word, so a stale verdict is impossible).
    sv_cache = [None, False]

    def shared_has_work() -> bool:
        if impl == "sws":
            raw = owner.stealval.load_seq()
            if raw != sv_cache[0]:
                sv_cache[0] = raw
                sv_cache[1] = DampingTracker.view_has_work(
                    StealValEpoch.unpack(raw)
                )
            return sv_cache[1]
        return owner.split.load_seq() - owner.tail.load_seq() > 0

    def reclaim() -> int:
        kept = owner.take_kept()
        local.extend(kept)
        return len(kept)

    def try_share() -> None:
        if (
            len(local) < RELEASE_MIN
            or owner.nfilled >= owner.capacity
            or shared_has_work()
        ):
            return
        n = len(local) // 2
        batch = [local.popleft() for _ in range(n)]
        pushed = owner.push_all(batch)
        for payload in reversed(batch[pushed:]):
            local.appendleft(payload)        # buffer full: keep the rest
        if pushed:
            owner.release(pushed)
            stats.releases += 1
            reclaim()                        # absorbed previous remainder

    def try_steal_from(victim: int) -> bool:
        thief = thieves[victim]
        if impl == "sws":
            if tracker.mode(victim) is TargetMode.EMPTY:
                view = StealValEpoch.unpack(thief.probe())
                tracker.note_probe(victim, DampingTracker.view_has_work(view))
                if tracker.mode(victim) is TargetMode.EMPTY:
                    return False             # probe said empty: no AMO spent
            res = thief.steal()
            if res.claimed:
                status = StealStatus.STOLEN
                tracker.note_success(victim)
            elif res.aborted_locked:
                status = StealStatus.DISABLED
            else:
                status = StealStatus.EMPTY
                tracker.note_failed_claim(victim, res.view)
        else:
            res = thief.steal(max_spins=200)
            if res.claimed:
                status = StealStatus.STOLEN
            elif res.empty:
                status = StealStatus.EMPTY
            else:
                status = StealStatus.LOCKED_ABORT
        stats.steals[status.value] = stats.steals.get(status.value, 0) + 1
        if res.claimed:
            stats.steal_volumes.append(len(res.claimed))
            local.extend(res.claimed)
            return True
        return False

    # Completion increments are batched locally and flushed whenever the
    # local deque drains (and before any termination read).  Deferring
    # ``completed`` only ever *understates* it, so the global invariant
    # ``completed <= created`` survives; ``created`` must stay prompt —
    # children become stealable at the next release, and their creation
    # has to be on the books before any other PE can complete them.
    done_pending = 0

    def _idle_stall() -> bool:
        # Repair any dead-holder stripes first; if nothing was stuck on
        # a corpse, this is a genuine livelock — name the rank and die.
        if heap.words.break_dead_leases():
            return True
        raise MpStallError("PE idle loop made no progress", rank=rank,
                           waited_s=MP_IDLE_STALL_S)

    idle = Backoff(sleep_s=1e-5, max_sleep_s=1e-3,
                   deadline_s=MP_IDLE_STALL_S, on_deadline=_idle_stall)
    while True:
        if local:
            payload = local.pop()
            children = execute(payload)
            if children:
                created.fetch_add(len(children))
                local.extend(children)
            done_pending += 1
            stats.executed += 1
            stats.checksum ^= fingerprint(payload)
            try_share()
            continue
        if done_pending:
            completed.fetch_add(done_pending)
            done_pending = 0
        # Local deque empty: reclaim our own shared remainder first.
        owner.acquire()
        stats.acquires += 1
        if reclaim():
            idle.reset()
            continue
        # Steal sweep over victims in a fresh random order.
        order = rng.sample(sorted(thieves), len(thieves))
        if any(try_steal_from(v) for v in order):
            idle.reset()
            continue
        # Nothing anywhere: are the books balanced?  (completed first!)
        done = completed.load_seq()
        if done == created.load_seq():
            break
        idle.wait()

    stats.probes = tracker.stats.probes
    stats.probe_aborts = tracker.stats.probe_aborts
    stats.demotions = tracker.stats.demotions
    stats.promotions = tracker.stats.promotions
    return stats.__dict__


# ----------------------------------------------------------------------
# Crash-mode PE body (CrashPlan active)
#
# The private deque moves into a shared-memory ring, every execution is
# journaled and fingerprint-logged, and termination is supervisor-led
# (stop word) because created/completed cannot be exactly reconciled
# once a crash has lost batched completions or double-created children.
# ----------------------------------------------------------------------

class _RingKeeper:
    """``owner_kept`` stand-in that lands reabsorbed tasks straight in
    the PE's shared ring, instead of a Python list a crash would lose."""

    __slots__ = ("_ring",)

    def __init__(self, ring) -> None:
        self._ring = ring

    def extend(self, tasks) -> None:
        self._ring.extend(tasks)

    def append(self, task) -> None:
        self._ring.extend([task])


def _pe_main_crash(rank, npes, heap, layouts, impl, wl, ctl, seed, damping,
                   crash, regions, fresh, outq) -> None:
    try:
        stats = _pe_loop_crash(rank, npes, heap, layouts, impl, wl, ctl,
                               seed, damping, crash, regions, fresh)
        outq.put(("ok", rank, stats))
    except BaseException:
        import traceback

        outq.put(("error", rank, traceback.format_exc()))


def _pe_loop_crash(rank, npes, heap, layouts, impl, wl, ctl, seed, damping,
                   crash, regions, fresh) -> dict:
    kind, arg = wl
    created = heap.ref(ctl["created"])
    completed = heap.ref(ctl["completed"])
    owner = layouts[rank].owner(heap)
    owner.stall_s = CRASH_SETTLE_S
    if impl == "sws":
        owner.dead_claimant = lambda token: not pid_alive(token)
    pe = regions.bind(heap, rank)
    pe.pid.store(os.getpid())
    ring = pe.ring
    owner.owner_kept = _RingKeeper(ring)
    injector = CrashInjector(crash, rank, npes)
    die_at_steal = [False]

    def _mk_intent(victim):
        def _intent(start, count):
            pe.intent_set(victim, start, count)
            if die_at_steal[0]:
                injector.die()       # mid-steal: claim won, loot not copied
        return _intent

    thieves = {}
    for v in range(npes):
        if v == rank:
            continue
        thief = layouts[v].thief(heap)
        thief.intent = _mk_intent(v)
        if impl == "sws":
            thief.claim_token = os.getpid()
        thieves[v] = thief

    rng = random.Random((seed * 1_000_003) ^ rank)
    tracker = DampingTracker(npes, enabled=damping and impl == "sws")
    stats = MpPeStats(rank=rank)
    seed_tasks, execute, fingerprint = _bind_workload(kind, arg)
    if rank == 0 and fresh:
        ring.extend(seed_tasks)

    sv_cache = [None, False]

    def shared_has_work() -> bool:
        if impl == "sws":
            raw = owner.stealval.load_seq()
            if raw != sv_cache[0]:
                sv_cache[0] = raw
                sv_cache[1] = DampingTracker.view_has_work(
                    StealValEpoch.unpack(raw)
                )
            return sv_cache[1]
        return owner.split.load_seq() - owner.tail.load_seq() > 0

    def try_share() -> None:
        if (
            len(ring) < RELEASE_MIN
            or owner.nfilled >= owner.capacity
            or shared_has_work()
        ):
            return
        batch = ring.peek_left_block(len(ring) // 2)
        pushed = owner.push_all(batch)
        if pushed:
            owner.release(pushed)    # absorbed remainder lands in the ring
            stats.releases += 1
        # Only now drop the shared-out records: a crash before this
        # point duplicates them (scavenger + steal queue), never loses.
        ring.drop_left(pushed)

    idle_state = [0]

    def set_idle(flag: int) -> None:
        if idle_state[0] != flag:
            idle_state[0] = flag
            pe.idle.store(flag)

    act_box = [pe.act.load()]

    def bump_act() -> None:
        act_box[0] += 1
        pe.act.store(act_box[0])

    def try_steal_from(victim: int) -> bool:
        thief = thieves[victim]
        if impl == "sws":
            if tracker.mode(victim) is TargetMode.EMPTY:
                view = StealValEpoch.unpack(thief.probe())
                tracker.note_probe(victim, DampingTracker.view_has_work(view))
                if tracker.mode(victim) is TargetMode.EMPTY:
                    return False
            res = thief.steal()
            if res.claimed:
                status = StealStatus.STOLEN
                tracker.note_success(victim)
            elif res.aborted_locked:
                status = StealStatus.DISABLED
            else:
                status = StealStatus.EMPTY
                tracker.note_failed_claim(victim, res.view)
        else:
            res = thief.steal(max_spins=200)
            if res.claimed:
                status = StealStatus.STOLEN
            elif res.empty:
                status = StealStatus.EMPTY
            else:
                status = StealStatus.LOCKED_ABORT
        stats.steals[status.value] = stats.steals.get(status.value, 0) + 1
        if res.claimed:
            stats.steal_volumes.append(len(res.claimed))
            bump_act()
            set_idle(0)
            ring.extend(res.claimed)
            pe.intent_clear()        # loot durable: intent record retired
            return True
        return False

    def _idle_stall() -> bool:
        if heap.words.break_dead_leases():
            return True
        raise MpStallError("PE idle loop made no progress", rank=rank,
                           waited_s=MP_IDLE_STALL_S)

    sv_index = heap.index(
        layouts[rank].stealval if impl == "sws" else layouts[rank].lock
    )
    done_pending = 0
    hb_n = 0
    idle = Backoff(sleep_s=1e-5, max_sleep_s=1e-3,
                   deadline_s=MP_IDLE_STALL_S, on_deadline=_idle_stall)
    while True:
        hb_n += 1
        pe.hb.store(hb_n)
        if ring:
            set_idle(0)
            payload = ring.peek_right()
            pe.inflight_write(payload)    # journal before the pop: a
            ring.drop_right()             # crash here duplicates, at worst
            children = execute(payload)
            if children:
                created.fetch_add(len(children))
                ring.extend(children)
            fp = fingerprint(payload)
            pe.xlog.append(fp)
            stats.executed += 1
            stats.checksum ^= fp
            done_pending += 1
            bump_act()
            pe.inflight_clear()
            point = injector.maybe_die()
            if point == "steal":
                die_at_steal[0] = True    # next winning claim dies mid-copy
            elif point == "lock":
                heap.words.die_holding(sv_index)
            try_share()
            idle.reset()
            continue
        if done_pending:
            completed.fetch_add(done_pending)
            done_pending = 0
        owner.acquire()                   # reclaim lands in the ring
        stats.acquires += 1
        if ring:
            bump_act()
            idle.reset()
            continue
        got = pe.inbox.drain()
        if got:
            ring.extend(got)
            bump_act()
            set_idle(0)
            idle.reset()
            continue
        order = rng.sample(sorted(thieves), len(thieves))
        if any(
            try_steal_from(v) for v in order if not pe.dead[v].load_seq()
        ):
            idle.reset()
            continue
        set_idle(1)
        if pe.stop.load_seq():
            break
        idle.wait()

    stats.probes = tracker.stats.probes
    stats.probe_aborts = tracker.stats.probe_aborts
    stats.demotions = tracker.stats.demotions
    stats.promotions = tracker.stats.promotions
    return stats.__dict__


# ----------------------------------------------------------------------
# The parent-side runner
# ----------------------------------------------------------------------

def run_mp(
    workload: str = "synthetic",
    impl: str = "sws",
    npes: int = 4,
    *,
    ntasks: int = 2000,
    tree: str | UtsParams = "test_tiny",
    seed: int = 0,
    damping: bool = True,
    capacity: int | None = None,
    verify: bool = False,
    join_timeout: float = 120.0,
    crash: CrashPlan | None = None,
) -> MpRunResult:
    """Run one workload end-to-end across ``npes`` real processes.

    With ``verify=True`` the expected node count and checksum are
    computed by a sequential oracle and attached to the result, making
    ``result.conserved`` a zero-lost / zero-duplicated proof.

    With an active ``crash`` plan the run switches to the crash-tolerant
    regime: shared-memory rings instead of private deques, a supervisor
    that scavenges and re-injects dead PEs' work, and duplicate-aware
    at-least-once accounting (the oracle is always computed).  Without a
    plan none of that machinery is allocated and the run is bit-identical
    to the non-crash driver.
    """
    if impl not in ("sws", "sdc"):
        raise ValueError(f"impl must be sws|sdc, got {impl!r}")
    if workload not in ("synthetic", "uts"):
        raise ValueError(f"workload must be synthetic|uts, got {workload!r}")
    if npes < 2:
        raise ValueError(f"npes must be >= 2, got {npes}")

    if workload == "synthetic":
        wl = ("synthetic", ntasks)
        wpt = 1
        capacity = capacity or max(256, 2 * ntasks)
        nseed = ntasks
    else:
        params = tree if isinstance(tree, UtsParams) else get_tree(tree)
        wl = ("uts", params)
        wpt = 4
        capacity = capacity or (1 << 14)
        nseed = 1

    if crash is not None and crash.active:
        return _run_mp_crash(
            workload, impl, npes, wl=wl, wpt=wpt, capacity=capacity,
            nseed=nseed, seed=seed, damping=damping,
            join_timeout=join_timeout, crash=crash,
        )

    ctx = _preferred_context()
    heap = MpHeap(ctx=ctx)
    layout_cls = SwsQueueLayout if impl == "sws" else SdcQueueLayout
    layouts = [
        layout_cls.reserve(heap, f"pe{r}", capacity, words_per_task=wpt)
        for r in range(npes)
    ]
    alloc = SymmetricAllocator(heap, "ctl")
    ctl = {"created": alloc.word("created"), "completed": alloc.word("completed")}
    alloc.commit()
    heap.freeze()
    procs: list = []
    try:
        heap.ref(ctl["created"]).store(nseed)
        outq = ctx.Queue()
        procs = [
            ctx.Process(
                target=_pe_main,
                args=(r, npes, heap, layouts, impl, wl, ctl, seed, damping, outq),
                daemon=True,
            )
            for r in range(npes)
        ]
        t0 = time.perf_counter()
        for p in procs:
            p.start()

        pes: list[MpPeStats] = []
        errors: list[str] = []
        try:
            for _ in range(npes):
                status, rank, payload = outq.get(timeout=join_timeout)
                if status == "ok":
                    pes.append(MpPeStats(**payload))
                else:
                    errors.append(f"PE {rank}:\n{payload}")
        except BaseException:
            for p in procs:
                if p.is_alive():
                    p.terminate()
            raise
        wall = time.perf_counter() - t0
        for p in procs:
            p.join(timeout=join_timeout)
            if p.is_alive():
                p.terminate()
                errors.append("PE process failed to exit after reporting")
        if errors:
            raise RuntimeError("mp run failed:\n" + "\n".join(errors))

        pes.sort(key=lambda s: s.rank)
        result = MpRunResult(
            workload=workload,
            impl=impl,
            npes=npes,
            seed=seed,
            created=heap.ref(ctl["created"]).load(),
            completed=heap.ref(ctl["completed"]).load(),
            wall_s=wall,
            pes=pes,
        )
        if verify:
            if workload == "synthetic":
                exp_n, exp_chk = synthetic_expected(ntasks)
            else:
                exp_n, exp_chk = uts_expected(wl[1])
            result.expected_executed = exp_n
            result.expected_checksum = exp_chk
        return result
    finally:
        # Teardown must run even when a PE died abnormally: kill any
        # stragglers *before* unlinking so no live mapping outlasts the
        # segment, then destroy it exactly once (unlink is idempotent).
        for p in procs:
            if p.is_alive():
                p.terminate()
        for p in procs:
            p.join(timeout=5)
        heap.close()
        heap.unlink()


def _sweep_quiescent(heap, layouts, impl, regions, live_ranks):
    """One supervisor observation: is the system plausibly done?

    Quiescent iff every live PE flags idle, no inbox holds undelivered
    re-injections, no ring holds queued work, and no live shared queue
    exposes stealable tasks.  Returns ``(verdict, act vector)``; the
    caller additionally requires the act vector (per-PE activity
    counters) to hold still across ``STABLE_SWEEPS`` consecutive
    quiescent sweeps, which closes the claim-in-flight races a single
    observation cannot see.
    """
    idle_w = heap.slice(regions.idle)
    for r in live_ranks:
        if not idle_w[r].load_seq():
            return False, None
    acts = tuple(
        (r, heap.slice(regions.act)[r].load_seq()) for r in live_ranks
    )
    for r in live_ranks:
        pe = regions.bind(heap, r)
        if pe.inbox.pending() or len(pe.ring):
            return False, None
        if impl == "sws":
            view = StealValEpoch.unpack(
                heap.ref(layouts[r].stealval).load_seq()
            )
            if DampingTracker.view_has_work(view):
                return False, None
        else:
            if (heap.ref(layouts[r].split).load_seq()
                    - heap.ref(layouts[r].tail).load_seq() > 0):
                return False, None
    return True, acts


def _run_mp_crash(
    workload, impl, npes, *, wl, wpt, capacity, nseed, seed, damping,
    join_timeout, crash,
) -> MpRunResult:
    """Crash-tolerant mp run: workers + a scavenging supervisor.

    The supervisor watches process liveness (and heartbeat words for
    diagnostics); on a death it quarantines the rank, breaks its stripe
    leases, scavenges every shared structure the corpse owned, re-injects
    the orphans to a survivor's inbox, and optionally respawns the rank.
    Termination is a stop word raised once ``STABLE_SWEEPS`` consecutive
    sweeps observe global quiescence.
    """
    from queue import Empty as _QueueEmpty

    # The sequential oracle runs up front: duplicate-aware accounting
    # needs the expected set anyway, and its size bounds the shared
    # rings and fingerprint logs.
    if workload == "synthetic":
        exp_n, exp_chk = synthetic_expected(wl[1])
    else:
        exp_n, exp_chk = uts_expected(wl[1])

    ctx = _preferred_context()
    heap = MpHeap(ctx=ctx)
    layout_cls = SwsQueueLayout if impl == "sws" else SdcQueueLayout
    layouts = [
        layout_cls.reserve(heap, f"pe{r}", capacity, words_per_task=wpt)
        for r in range(npes)
    ]
    alloc = SymmetricAllocator(heap, "ctl")
    ctl = {"created": alloc.word("created"), "completed": alloc.word("completed")}
    alloc.commit()
    regions = CrashRegions.reserve(
        heap, npes, wpt,
        ring_cap=2 * exp_n + 64,
        xlog_cap=2 * exp_n + 64,
        inbox_cap=exp_n + 64,
    )
    heap.freeze()
    procs: dict[int, object] = {}
    try:
        heap.ref(ctl["created"]).store(nseed)
        outq = ctx.Queue()

        def spawn(r, plan, fresh):
            p = ctx.Process(
                target=_pe_main_crash,
                args=(r, npes, heap, layouts, impl, wl, ctl, seed,
                      damping, plan, regions, fresh, outq),
                daemon=True,
            )
            p.start()
            return p

        t0 = time.perf_counter()
        for r in range(npes):
            procs[r] = spawn(r, crash, True)

        pes: list[MpPeStats] = []
        errors: list[str] = []
        crashed: list[int] = []
        respawned: list[int] = []
        scavenged: Counter = Counter()
        recovery_wall = 0.0
        dead_flags = heap.slice(regions.dead)
        stop = heap.ref(regions.stop)
        stable = 0
        prev_acts = None
        inject_rr = 0
        accounted: set[int] = set()
        deadline = time.monotonic() + join_timeout

        def drain_outq() -> None:
            while True:
                try:
                    status, r, payload = outq.get_nowait()
                except _QueueEmpty:
                    return
                if status == "ok":
                    pes.append(MpPeStats(**payload))
                else:
                    errors.append(f"PE {r}:\n{payload}")

        # -- supervision loop -----------------------------------------
        while True:
            drain_outq()
            if errors:
                raise RuntimeError(
                    "mp crash run failed:\n" + "\n".join(errors)
                )
            for r, p in list(procs.items()):
                if p.is_alive() or r in accounted:
                    continue
                accounted.add(r)
                if p.exitcode == 0:
                    continue            # clean exit; stats via outq
                # Fail-stop detected: quarantine, repair, scavenge.
                t1 = time.perf_counter()
                crashed.append(r)
                dead_flags[r].store(1)
                heap.words.break_dead_leases()
                tasks, breakdown = scavenge_rank(
                    heap, layouts, impl, regions, r
                )
                scavenged.update(breakdown)
                # The dead incarnation's durable accounting: its
                # fingerprint log (a respawn appends after this point,
                # so the two incarnations never overlap).
                fps = regions.bind(heap, r).xlog.read_all()
                chk = 0
                for f in fps:
                    chk ^= f
                pes.append(MpPeStats(rank=r, executed=len(fps),
                                     checksum=chk))
                if tasks:
                    live = [x for x, pp in procs.items() if pp.is_alive()]
                    if not live:
                        raise MpStallError(
                            "every PE died; orphan work cannot be "
                            "re-injected"
                        )
                    target = live[inject_rr % len(live)]
                    inject_rr += 1
                    regions.bind(heap, target).inbox.post(tasks)
                if crash.respawn:
                    dead_flags[r].store(0)
                    procs[r] = spawn(r, NO_CRASHES, False)
                    accounted.discard(r)
                    respawned.append(r)
                recovery_wall += time.perf_counter() - t1
                stable, prev_acts = 0, None
            live_ranks = [r for r, p in procs.items() if p.is_alive()]
            if not live_ranks:
                break                  # everyone exited (or crashed out)
            quiet, acts = _sweep_quiescent(
                heap, layouts, impl, regions, live_ranks
            )
            if quiet and acts == prev_acts:
                stable += 1
                if stable >= STABLE_SWEEPS:
                    stop.store(1)
                    break
            else:
                stable = 0
            prev_acts = acts
            if time.monotonic() > deadline:
                raise MpStallError(
                    "crash-mode supervisor saw no quiescence",
                    waited_s=join_timeout,
                )
            time.sleep(0.02)

        # -- shutdown: collect the survivors --------------------------
        while any(p.is_alive() for p in procs.values()):
            drain_outq()
            if errors:
                raise RuntimeError(
                    "mp crash run failed:\n" + "\n".join(errors)
                )
            if time.monotonic() > deadline:
                raise MpStallError(
                    "PE processes failed to exit after stop",
                    waited_s=join_timeout,
                )
            time.sleep(0.01)
        drain_outq()
        if errors:
            raise RuntimeError("mp crash run failed:\n" + "\n".join(errors))
        wall = time.perf_counter() - t0

        # -- duplicate-aware accounting from the fingerprint logs ------
        all_fps: list[int] = []
        for r in range(npes):
            all_fps.extend(regions.bind(heap, r).xlog.read_all())
        counts = Counter(all_fps)
        unique_chk = 0
        for f in counts:
            unique_chk ^= f
        multiplicity = dict(sorted(Counter(counts.values()).items()))

        pes.sort(key=lambda s: s.rank)
        return MpRunResult(
            workload=workload,
            impl=impl,
            npes=npes,
            seed=seed,
            created=heap.ref(ctl["created"]).load(),
            completed=heap.ref(ctl["completed"]).load(),
            wall_s=wall,
            pes=pes,
            expected_executed=exp_n,
            expected_checksum=exp_chk,
            at_least_once=True,
            crashed_ranks=crashed,
            respawned_ranks=respawned,
            scavenged=dict(scavenged),
            lease_breaks=heap.words.repairs_total(),
            recovery_wall_s=recovery_wall,
            executed_unique=len(counts),
            unique_checksum=unique_chk,
            multiplicity=multiplicity,
        )
    finally:
        for p in procs.values():
            if p.is_alive():
                p.terminate()
        for p in procs.values():
            p.join(timeout=5)
        heap.close()
        heap.unlink()


# ----------------------------------------------------------------------
# Open-system serving mode (docs/serving.md)
#
# The parent process is the arrival feeder: it replays a seeded arrival
# trace (in arrival order) into per-rank SPSC inboxes, bumping the
# global ``created`` counter *before* each post so the created/completed
# books can never balance while an injection is still in flight.  PEs
# drain their inbox into the local deque and otherwise run the classic
# share/steal loop; each record carries ``(seq, post_ns)`` so completion
# latency survives steals.  Termination: the feeder sets ``closed`` after
# the last post, and a starved PE exits once ``closed`` is set and
# ``completed == created`` (completed read first, as ever).
# ----------------------------------------------------------------------

#: Serving records are (arrival seq, post timestamp ns) pairs.
_SERVE_WPT = 2


@dataclass
class MpServeResult:
    """Everything one mp serving run produced."""

    impl: str
    npes: int
    seed: int
    created: int
    completed: int
    wall_s: float
    pes: list["MpPeStats"] = field(default_factory=list)
    serving: "ServingStats | None" = None

    @property
    def checksum(self) -> int:
        chk = 0
        for s in self.pes:
            chk ^= s.checksum
        return chk

    def summary(self) -> dict:
        out = {
            "impl": self.impl,
            "npes": self.npes,
            "created": self.created,
            "completed": self.completed,
            "wall_s": round(self.wall_s, 4),
            "tasks_per_s": (
                round(self.completed / self.wall_s, 1) if self.wall_s > 0 else 0.0
            ),
            "checksum": self.checksum,
        }
        if self.serving is not None:
            pct = self.serving.latency.percentiles()
            out.update(
                {
                    "injected": self.serving.injected,
                    "p50_ns": round(pct["p50"], 1),
                    "p99_ns": round(pct["p99"], 1),
                    "p999_ns": round(pct["p999"], 1),
                    "slo_fraction": round(self.serving.slo_fraction, 4),
                }
            )
        return out


def _reserve_serve_inbox(heap, rank: int, capacity: int):
    """Symmetric rd/wr/buf words for one PE's arrival inbox."""
    alloc = SymmetricAllocator(heap, f"serve{rank}")
    rd = alloc.word("rd")
    wr = alloc.word("wr")
    buf = alloc.array("buf", capacity * _SERVE_WPT)
    alloc.commit()
    return (rd, wr, buf, capacity)


def _serve_inbox(heap, region) -> ShmInbox:
    rd, wr, buf, capacity = region
    return ShmInbox(heap, rd, wr, buf, capacity, _SERVE_WPT)


def _pe_main_serve(
    rank, npes, heap, layouts, inbox_regions, impl, ctl, seed, damping,
    slo_ns, outq
) -> None:
    try:
        payload = _pe_loop_serve(
            rank, npes, heap, layouts, inbox_regions, impl, ctl, seed,
            damping, slo_ns
        )
        outq.put(("ok", rank, payload))
    except BaseException:
        import traceback

        outq.put(("error", rank, traceback.format_exc()))


def _pe_loop_serve(
    rank, npes, heap, layouts, inbox_regions, impl, ctl, seed, damping,
    slo_ns
) -> dict:
    from ..runtime.stats import QuantileSketch

    created = heap.ref(ctl["created"])
    completed = heap.ref(ctl["completed"])
    closed = heap.ref(ctl["closed"])
    owner = layouts[rank].owner(heap)
    inbox = _serve_inbox(heap, inbox_regions[rank])
    thieves = {
        v: layouts[v].thief(heap) for v in range(npes) if v != rank
    }
    rng = random.Random((seed * 1_000_003) ^ rank)
    tracker = DampingTracker(npes, enabled=damping and impl == "sws")
    stats = MpPeStats(rank=rank)
    local: deque = deque()
    sketch = QuantileSketch()
    slo_attained = 0

    sv_cache = [None, False]

    def shared_has_work() -> bool:
        if impl == "sws":
            raw = owner.stealval.load_seq()
            if raw != sv_cache[0]:
                sv_cache[0] = raw
                sv_cache[1] = DampingTracker.view_has_work(
                    StealValEpoch.unpack(raw)
                )
            return sv_cache[1]
        return owner.split.load_seq() - owner.tail.load_seq() > 0

    def reclaim() -> int:
        kept = owner.take_kept()
        local.extend(kept)
        return len(kept)

    def try_share() -> None:
        if (
            len(local) < RELEASE_MIN
            or owner.nfilled >= owner.capacity
            or shared_has_work()
        ):
            return
        n = len(local) // 2
        batch = [local.popleft() for _ in range(n)]
        pushed = owner.push_all(batch)
        for payload in reversed(batch[pushed:]):
            local.appendleft(payload)
        if pushed:
            owner.release(pushed)
            stats.releases += 1
            reclaim()

    def try_steal_from(victim: int) -> bool:
        thief = thieves[victim]
        if impl == "sws":
            if tracker.mode(victim) is TargetMode.EMPTY:
                view = StealValEpoch.unpack(thief.probe())
                tracker.note_probe(victim, DampingTracker.view_has_work(view))
                if tracker.mode(victim) is TargetMode.EMPTY:
                    return False
            res = thief.steal()
            if res.claimed:
                status = StealStatus.STOLEN
                tracker.note_success(victim)
            elif res.aborted_locked:
                status = StealStatus.DISABLED
            else:
                status = StealStatus.EMPTY
                tracker.note_failed_claim(victim, res.view)
        else:
            res = thief.steal(max_spins=200)
            if res.claimed:
                status = StealStatus.STOLEN
            elif res.empty:
                status = StealStatus.EMPTY
            else:
                status = StealStatus.LOCKED_ABORT
        stats.steals[status.value] = stats.steals.get(status.value, 0) + 1
        if res.claimed:
            stats.steal_volumes.append(len(res.claimed))
            local.extend(res.claimed)
            return True
        return False

    done_pending = 0

    def _idle_stall() -> bool:
        if heap.words.break_dead_leases():
            return True
        raise MpStallError("serving PE idle loop made no progress",
                           rank=rank, waited_s=MP_IDLE_STALL_S)

    idle = Backoff(sleep_s=1e-5, max_sleep_s=1e-3,
                   deadline_s=MP_IDLE_STALL_S, on_deadline=_idle_stall)
    while True:
        if local:
            payload = local.pop()
            seq, post_ns = payload
            lat = time.monotonic_ns() - post_ns
            sketch.add(lat)
            if slo_ns and lat <= slo_ns:
                slo_attained += 1
            done_pending += 1
            stats.executed += 1
            stats.checksum ^= _mix64(seq)
            try_share()
            continue
        if done_pending:
            completed.fetch_add(done_pending)
            done_pending = 0
        fresh = inbox.drain()
        if fresh:
            local.extend(fresh)
            idle.reset()
            continue
        owner.acquire()
        stats.acquires += 1
        if reclaim():
            idle.reset()
            continue
        order = rng.sample(sorted(thieves), len(thieves))
        if any(try_steal_from(v) for v in order):
            idle.reset()
            continue
        if closed.load_seq():
            done = completed.load_seq()
            if done == created.load_seq():
                break
        idle.wait()

    stats.probes = tracker.stats.probes
    stats.probe_aborts = tracker.stats.probe_aborts
    stats.demotions = tracker.stats.demotions
    stats.promotions = tracker.stats.promotions
    payload = stats.__dict__
    payload["serve_sketch"] = sketch.to_dict()
    payload["serve_slo_attained"] = slo_attained
    return payload


def run_mp_serve(
    arrival="poisson:50000",
    duration_s: float = 2e-3,
    impl: str = "sws",
    npes: int = 4,
    *,
    seed: int = 0,
    slo_s: float = 0.0,
    damping: bool = True,
    capacity: int | None = None,
    inbox_cap: int | None = None,
    nbatches: int = 16,
    pace_s: float = 2e-4,
    join_timeout: float = 120.0,
) -> MpServeResult:
    """Serve one arrival trace across ``npes`` real processes.

    The trace's *order* is replayed (the mp substrate has no virtual
    clock): the parent feeds batches round-robin into per-rank inboxes
    with ``pace_s`` gaps, and latency is wall-clock nanoseconds from post
    to execution, surviving steals because the stamp travels inside the
    2-word task record.  No shedding on this substrate — every emitted
    arrival is injected, so ``checksum`` must equal the fabric/threads
    serving checksum for the same trace length.
    """
    from ..runtime.arrivals import parse_arrival_spec
    from ..runtime.stats import QuantileSketch, ServingStats

    if impl not in ("sws", "sdc"):
        raise ValueError(f"impl must be sws|sdc, got {impl!r}")
    if npes < 2:
        raise ValueError(f"npes must be >= 2, got {npes}")
    if isinstance(arrival, str):
        process = parse_arrival_spec(arrival, duration_s, seed)
    else:
        process = arrival
    n = process.emitted
    capacity = capacity or max(256, 2 * n)
    inbox_cap = inbox_cap or max(64, capacity)
    slo_ns = int(slo_s * 1e9)

    ctx = _preferred_context()
    heap = MpHeap(ctx=ctx)
    layout_cls = SwsQueueLayout if impl == "sws" else SdcQueueLayout
    layouts = [
        layout_cls.reserve(heap, f"pe{r}", capacity,
                           words_per_task=_SERVE_WPT)
        for r in range(npes)
    ]
    inbox_regions = [
        _reserve_serve_inbox(heap, r, inbox_cap) for r in range(npes)
    ]
    alloc = SymmetricAllocator(heap, "ctl")
    ctl = {
        "created": alloc.word("created"),
        "completed": alloc.word("completed"),
        "closed": alloc.word("closed"),
    }
    alloc.commit()
    heap.freeze()
    procs: list = []
    try:
        created = heap.ref(ctl["created"])
        closed = heap.ref(ctl["closed"])
        outq = ctx.Queue()
        procs = [
            ctx.Process(
                target=_pe_main_serve,
                args=(r, npes, heap, layouts, inbox_regions, impl, ctl,
                      seed, damping, slo_ns, outq),
                daemon=True,
            )
            for r in range(npes)
        ]
        t0 = time.perf_counter()
        for p in procs:
            p.start()

        # -- the feeder: replay the trace in batches, round-robin ------
        inboxes = [_serve_inbox(heap, reg) for reg in inbox_regions]
        batch = max(1, (n + nbatches - 1) // nbatches) if n else 0
        injected = 0
        while injected < n:
            seqs = range(injected, min(n, injected + batch))
            by_rank: dict[int, list[int]] = {}
            for s in seqs:
                by_rank.setdefault(s % npes, []).append(s)
            for r in sorted(by_rank):
                group = by_rank[r]
                # Count first: the books cannot balance while the post
                # is still in flight, so no PE exits early.
                created.fetch_add(len(group))
                stamp = time.monotonic_ns()
                records = [(s, stamp) for s in group]
                while True:
                    try:
                        inboxes[r].post(records)
                        break
                    except RingOverflowError:
                        time.sleep(1e-4)
            injected += len(seqs)
            time.sleep(pace_s)
        closed.store(1)

        pes: list[MpPeStats] = []
        errors: list[str] = []
        sketch = QuantileSketch()
        slo_attained = 0
        try:
            for _ in range(npes):
                status, rank, payload = outq.get(timeout=join_timeout)
                if status == "ok":
                    sk = payload.pop("serve_sketch")
                    slo_attained += payload.pop("serve_slo_attained")
                    sketch.merge(QuantileSketch.from_dict(sk))
                    pes.append(MpPeStats(**payload))
                else:
                    errors.append(f"PE {rank}:\n{payload}")
        except BaseException:
            for p in procs:
                if p.is_alive():
                    p.terminate()
            raise
        wall = time.perf_counter() - t0
        for p in procs:
            p.join(timeout=join_timeout)
            if p.is_alive():
                p.terminate()
                errors.append("PE process failed to exit after reporting")
        if errors:
            raise RuntimeError("mp serve run failed:\n" + "\n".join(errors))

        pes.sort(key=lambda s: s.rank)
        result = MpServeResult(
            impl=impl,
            npes=npes,
            seed=seed,
            created=created.load(),
            completed=heap.ref(ctl["completed"]).load(),
            wall_s=wall,
            pes=pes,
        )
        result.serving = ServingStats(
            emitted=n,
            injected=injected,
            shed=0,
            completed=result.completed,
            slo_ticks=slo_ns,
            slo_attained=slo_attained,
            checksum=result.checksum,
            latency=sketch,
        )
        return result
    finally:
        for p in procs:
            if p.is_alive():
                p.terminate()
        for p in procs:
            p.join(timeout=5)
        heap.close()
        heap.unlink()
