"""Shared symmetric heap of 64-bit words across OS processes.

The multiprocess analogue of the fabric's
:class:`~repro.fabric.memory.SymmetricHeap`: named word regions packed
into one ``multiprocessing.shared_memory`` segment, addressed by the
same ``(region, offset)`` handles the :mod:`repro.shmem` layer uses.
:class:`MpHeap` implements the :class:`repro.shmem.heap.HeapBackend`
seam, so :class:`~repro.shmem.heap.SymmetricAllocator` lays out a
queue's symmetric footprint identically on either substrate.

Two-phase lifecycle: reserve regions (``alloc_words`` — directly or via
an allocator's ``commit``), then :meth:`freeze` to create the backing
segment.  Addressing helpers (:meth:`ref`, :meth:`slice`) are only valid
after the freeze.  All access goes through the striped-lock atomic seam
(:class:`~repro.mp.atomics.ShmWords`); this module never touches raw
buffer bytes.
"""

from __future__ import annotations

from ..shmem.heap import SymArray, SymWord
from .atomics import (
    DEFAULT_LEASE_S,
    DEFAULT_STALL_S,
    DEFAULT_STRIPES,
    ShmWords,
    WordRef,
    WordSlice,
)


class MpHeap:
    """Named word regions in one cross-process shared-memory segment.

    ``lease_s`` / ``stall_s`` tune the word seam's crash tolerance (see
    :class:`~repro.mp.atomics.ShmWords`): how long a dead holder's
    stripe lease lasts before contenders may break it, and the hard
    wall-clock bound before a stuck wait raises
    :class:`~repro.mp.errors.MpStallError`.
    """

    def __init__(
        self,
        nstripes: int = DEFAULT_STRIPES,
        ctx=None,
        lease_s: float = DEFAULT_LEASE_S,
        stall_s: float = DEFAULT_STALL_S,
    ) -> None:
        self.nstripes = nstripes
        self._ctx = ctx
        self._lease_s = lease_s
        self._stall_s = stall_s
        self._regions: dict[str, tuple[int, int]] = {}  # name -> (start, nwords)
        self._cursor = 0
        self.words: ShmWords | None = None

    # -- HeapBackend seam ---------------------------------------------
    def alloc_words(self, name: str, nwords: int) -> None:
        """Reserve a named region of ``nwords`` 64-bit words."""
        if self.words is not None:
            raise RuntimeError("heap already frozen")
        if name in self._regions:
            raise ValueError(f"region {name!r} already allocated")
        if nwords <= 0:
            raise ValueError(f"nwords must be positive, got {nwords}")
        self._regions[name] = (self._cursor, nwords)
        self._cursor += nwords

    def alloc_bytes(self, name: str, nbytes: int) -> None:
        """Unsupported: the mp heap is word-only (tasks live in words)."""
        raise NotImplementedError(
            "MpHeap stores 64-bit words only; pack byte payloads into "
            "words (see repro.mp.driver task codecs)"
        )

    # -- lifecycle -----------------------------------------------------
    def freeze(self) -> "MpHeap":
        """Create the backing segment; no further regions after this."""
        if self.words is not None:
            raise RuntimeError("heap already frozen")
        if not self._cursor:
            raise RuntimeError("freeze() with no regions reserved")
        self.words = ShmWords(
            self._cursor, self.nstripes, ctx=self._ctx,
            lease_s=self._lease_s, stall_s=self._stall_s,
        )
        return self

    def close(self) -> None:
        """Detach this process's mapping."""
        if self.words is not None:
            self.words.close()

    def unlink(self) -> None:
        """Destroy the segment (creator only, after every child exited)."""
        if self.words is not None:
            self.words.unlink()

    @property
    def total_words(self) -> int:
        """Words reserved so far (== segment size once frozen)."""
        return self._cursor

    # -- addressing ----------------------------------------------------
    def _base(self, region: str, offset: int, length: int = 1) -> int:
        if self.words is None:
            raise RuntimeError("heap not frozen yet")
        try:
            start, nwords = self._regions[region]
        except KeyError:
            raise KeyError(f"unknown region {region!r}") from None
        if offset < 0 or offset + length > nwords:
            raise IndexError(
                f"[{offset}, {offset + length}) outside region "
                f"{region!r} of {nwords} words"
            )
        return start + offset

    def index(self, addr: SymWord) -> int:
        """Global word index of a symmetric word handle."""
        return self._base(addr.region, addr.offset)

    def ref(self, addr: SymWord) -> WordRef:
        """Atomic handle on one symmetric word."""
        assert self.words is not None
        return self.words.ref(self._base(addr.region, addr.offset))

    def slice(self, addr: SymArray) -> WordSlice:
        """Atomic handle on a symmetric word array."""
        assert self.words is not None
        return self.words.slice(
            self._base(addr.region, addr.offset, addr.length), addr.length
        )
