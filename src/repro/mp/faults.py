"""Seeded SIGKILL injection for the multiprocess substrate.

The real-process sibling of :mod:`repro.fabric.faults`: where the
simulated fabric fail-stops a PE at a *virtual time*, here a worker
process SIGKILLs **itself** at a seeded *task-count trigger* and at a
chosen *crash point* — the protocol states a fail-stop can actually
land in:

* ``exec`` — between executing tasks, holding only private work (the
  mildest death: queued and in-flight work must be scavenged);
* ``steal`` — mid-steal, after the claiming ``fetch_add`` won a block
  but before the completion signal (the victim's settle wait would wedge
  without claim voiding);
* ``lock`` — while *holding a stripe lock* of the shared-memory word
  seam with the protected word's seqlock shadow left odd (the worst
  case: every PE sharing the stripe would wedge without lease breaking).

Self-SIGKILL (rather than a supervisor kill timer) makes the crash
point exact and deterministic given the trigger count, which the chaos
suite's reproducibility leans on.  Like :class:`~repro.fabric.faults.
FaultPlan`, an inert default plan installs no hooks: the crash-mode
driver paths are only entered when a plan is :attr:`~CrashPlan.active`,
so ordinary runs stay bit-identical.
"""

from __future__ import annotations

import os
import signal
from dataclasses import dataclass

_MASK64 = (1 << 64) - 1

#: The crash points a :class:`CrashKill` can target.
CRASH_POINTS = ("exec", "steal", "lock")


@dataclass(frozen=True)
class CrashKill:
    """One scheduled self-SIGKILL: ``rank`` dies at its ``after``-th
    task execution, at crash point ``point``.

    ``rank`` may be -1, meaning "a seeded-random live rank" resolved by
    :meth:`CrashPlan.resolve` against the job's size.
    """

    rank: int
    after: int
    point: str = "exec"

    def __post_init__(self) -> None:
        if self.rank < -1:
            raise ValueError(f"rank must be >= -1, got {self.rank}")
        if self.after < 0:
            raise ValueError(f"after must be >= 0, got {self.after}")
        if self.point not in CRASH_POINTS:
            raise ValueError(
                f"point must be one of {CRASH_POINTS}, got {self.point!r}"
            )


@dataclass(frozen=True)
class CrashPlan:
    """Declarative, seeded description of worker crashes to inject.

    Attributes
    ----------
    seed:
        Base of the deterministic stream used to resolve ``rank == -1``
        kills to concrete ranks.
    kills:
        Scheduled :class:`CrashKill`\\ s (or bare ``(rank, after)`` /
        ``(rank, after, point)`` tuples, normalized on construction).
    respawn:
        Elastic rejoin: when True the supervisor restarts each crashed
        rank once, rebinding it to a spare queue generation.
    """

    seed: int = 0
    kills: tuple[CrashKill, ...] = ()
    respawn: bool = False

    def __post_init__(self) -> None:
        normalized = tuple(
            k if isinstance(k, CrashKill) else CrashKill(*k)
            for k in self.kills
        )
        object.__setattr__(self, "kills", normalized)

    @property
    def active(self) -> bool:
        """Does this plan kill anyone at all?"""
        return bool(self.kills)

    def resolve(self, npes: int) -> tuple[CrashKill, ...]:
        """Concretize ``rank == -1`` kills against a job of ``npes``.

        Seeded splitmix64 counter hash, so a given (plan, npes) pair
        always kills the same ranks.  Distinct wildcard kills resolve to
        distinct ranks while any remain (a rank can only die once).
        """
        if not self.kills:
            return ()
        used = {k.rank for k in self.kills if k.rank >= 0}
        for k in self.kills:
            if 0 <= k.rank < npes:
                continue
            if k.rank >= npes:
                raise ValueError(
                    f"crash plan kills rank {k.rank} but the job has "
                    f"{npes} PEs"
                )
        out = []
        counter = 0
        for k in self.kills:
            if k.rank >= 0:
                out.append(k)
                continue
            for _ in range(8 * npes):
                counter += 1
                z = (self.seed * 0x9E3779B97F4A7C15
                     + counter * 0xD1B54A32D192ED03) & _MASK64
                z ^= z >> 31
                z = (z * 0x94D049BB133111EB) & _MASK64
                z ^= z >> 29
                rank = z % npes
                if rank not in used or len(used) >= npes:
                    break
            used.add(rank)
            out.append(CrashKill(rank, k.after, k.point))
        return tuple(out)


class CrashInjector:
    """Worker-side arm of a :class:`CrashPlan` for one rank.

    The driver's crash-mode PE loop calls :meth:`maybe_die` once per
    executed task; when the trigger count is reached the process
    SIGKILLs itself at the configured crash point (``exec`` dies right
    here; ``steal`` and ``lock`` are signalled to the caller so the
    death happens inside the targeted protocol window).
    """

    def __init__(self, plan: CrashPlan, rank: int, npes: int) -> None:
        kills = [k for k in plan.resolve(npes) if k.rank == rank]
        if len(kills) > 1:
            raise ValueError(f"rank {rank} scheduled to die twice")
        self._kill = kills[0] if kills else None
        self.rank = rank
        self._executed = 0

    @property
    def armed(self) -> bool:
        return self._kill is not None

    @property
    def point(self) -> str | None:
        return self._kill.point if self._kill else None

    def die(self) -> None:
        """Fail-stop this process, right now.  Never returns."""
        os.kill(os.getpid(), signal.SIGKILL)

    def maybe_die(self) -> str | None:
        """Count one executed task; trigger the scheduled death.

        Returns None (keep running), or — at the trigger — dies
        immediately for the ``exec`` point.  For ``steal`` / ``lock``
        the *point name* is returned instead and the caller must route
        the death into the matching protocol window (die mid-steal
        after the claim, or via ``ShmWords.die_holding``).
        """
        if self._kill is None:
            return None
        self._executed += 1
        if self._executed < self._kill.after:
            return None
        point = self._kill.point
        self._kill = None  # disarm: the caller may execute more tasks
        if point == "exec":
            self.die()
        return point


#: Shared inert plan: kills nobody, keeps the driver on its fast path.
NO_CRASHES = CrashPlan()
