"""OpenSHMEM-like PGAS layer over the simulated fabric."""

from .api import Pe, ShmemCtx
from .collectives import Collectives, CollectiveSystem, REDUCERS
from .heap import HeapBackend, SymArray, SymBytes, SymWord, SymmetricAllocator

__all__ = [
    "Pe",
    "ShmemCtx",
    "HeapBackend",
    "SymWord",
    "SymArray",
    "SymBytes",
    "SymmetricAllocator",
    "Collectives",
    "CollectiveSystem",
    "REDUCERS",
]
