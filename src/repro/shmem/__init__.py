"""OpenSHMEM-like PGAS layer over the simulated fabric."""

from .api import Pe, ShmemCtx
from .collectives import Collectives, CollectiveSystem, REDUCERS
from .heap import SymArray, SymBytes, SymWord, SymmetricAllocator

__all__ = [
    "Pe",
    "ShmemCtx",
    "SymWord",
    "SymArray",
    "SymBytes",
    "SymmetricAllocator",
    "Collectives",
    "CollectiveSystem",
    "REDUCERS",
]
