"""OpenSHMEM-flavoured facade over the simulated fabric.

The paper's implementations (both SDC and SWS) are written against
OpenSHMEM; this module provides the same vocabulary so the queue code in
:mod:`repro.core` reads like its C counterpart.  A :class:`ShmemCtx` owns
the engine, symmetric heap, NIC and topology for one simulated job;
:class:`Pe` binds a PE index so queue code doesn't thread ``me`` through
every call.

All communication methods return *request objects* that a simulated
process must ``yield``; local (own-memory) accessors execute immediately
because a PE touching its own symmetric heap is an ordinary load/store.
"""

from __future__ import annotations

import math
from typing import Any

from ..fabric.engine import Call, Delay, Engine, Process
from ..fabric.faults import FaultInjector, FaultPlan
from ..fabric.latency import EDR_INFINIBAND, LatencyModel
from ..fabric.memory import SymmetricHeap
from ..fabric.metrics import FabricMetrics
from ..fabric.nic import Nic
from ..fabric.scheduler import Scheduler
from ..fabric.topology import Topology


class ShmemCtx:
    """One simulated OpenSHMEM job: engine + heap + NIC + topology.

    ``fault_plan`` attaches a :class:`~repro.fabric.faults.FaultInjector`
    (exposed as ``ctx.faults``) when the plan is active; ``op_timeout``
    bounds every blocking fabric call (see :class:`~repro.fabric.nic.Nic`).
    Both default to off, leaving the fabric perfectly reliable.

    ``scheduler`` attaches a schedule-exploration policy
    (:mod:`repro.fabric.scheduler`) that breaks same-timestamp event
    ties; ``None`` keeps the engine's bit-identical insertion-order
    fast path.

    ``shard`` binds this context to one shard of a conservatively
    parallel run (:mod:`repro.fabric.sharding`): the context still
    constructs the *full* ``npes``-wide heap and topology (construction
    is deterministic, so every shard agrees on the layout), but only the
    bound shard's PEs may run here — remote-shard operations divert
    through the NIC's router and cross at window boundaries.  Sharded
    mode composes only with the fabric the conservative window bound is
    provable for, so faults, op timeouts, schedule exploration and
    ``link_serialize`` are rejected.
    """

    def __init__(
        self,
        npes: int,
        latency: LatencyModel = EDR_INFINIBAND,
        pes_per_node: int = 48,
        trace_comm: bool = False,
        jitter_seed: int = 0,
        fault_plan: FaultPlan | None = None,
        op_timeout: float | None = None,
        scheduler: Scheduler | None = None,
        topology: Topology | None = None,
        shard: Any = None,
    ) -> None:
        if topology is not None and topology.npes != npes:
            raise ValueError(
                f"topology has {topology.npes} PEs but ctx has {npes}"
            )
        if shard is not None:
            if shard.plan.npes != npes:
                raise ValueError(
                    f"shard plan covers {shard.plan.npes} PEs but ctx has {npes}"
                )
            if fault_plan is not None and fault_plan.active:
                raise ValueError(
                    "sharded execution does not compose with fault injection "
                    "(run faults with --shards 1)"
                )
            if op_timeout is not None:
                raise ValueError(
                    "sharded execution does not compose with op_timeout "
                    "(cross-shard descriptors cannot be cancelled "
                    "retroactively)"
                )
            if scheduler is not None:
                raise ValueError(
                    "sharded execution does not compose with schedule "
                    "exploration (tie-breaking must stay insertion-ordered)"
                )
            from ..fabric.sharding import check_shardable

            check_shardable(latency)
        self.npes = npes
        self.engine = Engine(scheduler=scheduler)
        self.heap = SymmetricHeap(npes)
        self.topology = (
            topology
            if topology is not None
            else Topology(npes, pes_per_node=pes_per_node)
        )
        self.metrics = FabricMetrics(npes, trace=trace_comm)
        self.faults: FaultInjector | None = None
        if fault_plan is not None and fault_plan.active:
            self.faults = FaultInjector(fault_plan, npes)
        self.nic = Nic(
            self.engine,
            self.heap,
            self.topology,
            latency,
            self.metrics,
            jitter_seed=jitter_seed,
            faults=self.faults,
            op_timeout=op_timeout,
        )
        self.latency = latency
        self.shard = shard
        if shard is not None:
            from ..fabric.sharding import ShardBarrier, ShardRouter

            self.router = ShardRouter(
                self.nic, shard.plan, shard.shard_id,
                window_ticks=latency.shard_window_ticks(),
            )
            self.barrier = ShardBarrier(
                self.engine,
                local_pes=shard.plan.local_size(shard.shard_id),
            )
            self.router.barrier_release = self.barrier.release
            self._barrier = self.barrier
        else:
            self.router = None
            self._barrier = _Barrier(self)

    def pe(self, rank: int) -> "Pe":
        """Return a handle bound to PE ``rank``."""
        return Pe(self, rank)

    @property
    def now(self) -> float:
        """Current virtual time (seconds)."""
        return self.engine.now

    def run(self, until: float | None = None) -> float:
        """Run the simulation; returns final virtual time."""
        return self.engine.run(until=until)


class Pe:
    """Per-PE view of the shmem context (OpenSHMEM call vocabulary)."""

    __slots__ = ("ctx", "rank")

    def __init__(self, ctx: ShmemCtx, rank: int) -> None:
        ctx.heap._check_pe(rank)
        self.ctx = ctx
        self.rank = rank

    # -- local, immediate -------------------------------------------------
    def local_load(self, region: str, offset: int) -> int:
        """Read a word from this PE's own symmetric memory (no comm)."""
        return self.ctx.heap.load(self.rank, region, offset)

    def local_store(self, region: str, offset: int, value: int) -> None:
        """Write a word to own memory (no comm)."""
        self.ctx.heap.store(self.rank, region, offset, value)

    def local_fetch_add(self, region: str, offset: int, delta: int) -> int:
        """Processor atomic on own memory (no comm; CPU atomics are ~free
        at the fabric's time scale)."""
        return self.ctx.heap.fetch_add(self.rank, region, offset, delta)

    def local_swap(self, region: str, offset: int, value: int) -> int:
        """Processor atomic swap on own memory (no comm)."""
        return self.ctx.heap.swap(self.rank, region, offset, value)

    def local_cas(self, region: str, offset: int, expected: int, desired: int) -> int:
        """Processor compare-and-swap on own memory (no comm)."""
        return self.ctx.heap.compare_swap(self.rank, region, offset, expected, desired)

    def local_read_bytes(self, region: str, offset: int, count: int) -> bytes:
        """Read own payload bytes (no comm)."""
        return self.ctx.heap.read_bytes(self.rank, region, offset, count)

    def local_write_bytes(self, region: str, offset: int, data: bytes) -> None:
        """Write own payload bytes (no comm)."""
        self.ctx.heap.write_bytes(self.rank, region, offset, data)

    # -- remote, yieldable -------------------------------------------------
    def atomic_fetch_add(self, target: int, region: str, offset: int, delta: int) -> Call:
        """``shmem_atomic_fetch_add`` — the SWS claim operation."""
        return self.ctx.nic.amo_fetch_add(self.rank, target, region, offset, delta)

    def atomic_swap(self, target: int, region: str, offset: int, value: int) -> Call:
        """``shmem_atomic_swap`` — SDC lock acquisition."""
        return self.ctx.nic.amo_swap(self.rank, target, region, offset, value)

    def atomic_compare_swap(self, target: int, region: str, offset: int,
                            expected: int, desired: int) -> Call:
        """``shmem_atomic_compare_swap``."""
        return self.ctx.nic.amo_cas(self.rank, target, region, offset, expected, desired)

    def atomic_fetch(self, target: int, region: str, offset: int) -> Call:
        """``shmem_atomic_fetch`` — read-only probe (steal damping)."""
        return self.ctx.nic.amo_fetch(self.rank, target, region, offset)

    def atomic_add_nb(self, target: int, region: str, offset: int, delta: int) -> Call:
        """Non-blocking ``shmem_atomic_add`` — completion signalling."""
        return self.ctx.nic.amo_add_nb(self.rank, target, region, offset, delta)

    def get_word(self, target: int, region: str, offset: int) -> Call:
        """Blocking 8-byte ``shmem_getmem``."""
        return self.ctx.nic.get_word(self.rank, target, region, offset)

    def get_words(self, target: int, region: str, offset: int, count: int) -> Call:
        """Blocking multi-word ``shmem_getmem``."""
        return self.ctx.nic.get_words(self.rank, target, region, offset, count)

    def get_bytes(self, target: int, region: str, offset: int, count: int) -> Call:
        """Blocking ``shmem_getmem`` on payload bytes."""
        return self.ctx.nic.get_bytes(self.rank, target, region, offset, count)

    def put_word(self, target: int, region: str, offset: int, value: int) -> Call:
        """Blocking 8-byte ``shmem_putmem`` (acked)."""
        return self.ctx.nic.put_word(self.rank, target, region, offset, value)

    def put_words(self, target: int, region: str, offset: int, values: list[int]) -> Call:
        """Blocking multi-word put."""
        return self.ctx.nic.put_words(self.rank, target, region, offset, values)

    def put_word_nb(self, target: int, region: str, offset: int, value: int) -> Call:
        """Non-blocking single-word put."""
        return self.ctx.nic.put_word_nb(self.rank, target, region, offset, value)

    def put_bytes_nb(self, target: int, region: str, offset: int, data: bytes) -> Call:
        """Non-blocking payload put."""
        return self.ctx.nic.put_bytes_nb(self.rank, target, region, offset, data)

    def put_signal_nb(
        self,
        target: int,
        region: str,
        offset: int,
        data: bytes,
        sig_region: str,
        sig_offset: int,
        sig_value: int,
    ) -> Call:
        """``shmem_put_signal`` — payload + signal word in one message;
        the signal is ordered after the data at the target."""
        return self.ctx.nic.put_signal_nb(
            self.rank, target, region, offset, data,
            sig_region, sig_offset, sig_value,
        )

    def quiet(self) -> Call:
        """``shmem_quiet`` — fence all outstanding non-blocking ops."""
        return self.ctx.nic.quiet(self.rank)

    def wait_until(self, region: str, offset: int, predicate) -> Call:
        """``shmem_wait_until`` — block until a *local* word satisfies
        ``predicate`` (typically flipped by a remote put/atomic).

        Event-driven: the process is woken by the mutation itself rather
        than polling, paying one injection overhead of wake latency —
        like the hardware wait/wake path OpenSHMEM implementations use.
        Resumes with the word's satisfying value.
        """
        rank = self.rank
        ctx = self.ctx

        def handler(engine, proc) -> None:
            current = ctx.heap.load(rank, region, offset)
            if predicate(current):
                engine.resume(proc, current)
                return

            def waiter(new_value: int) -> bool:
                if predicate(new_value):
                    engine.resume(proc, new_value, delay=ctx.latency.alpha_sw)
                    return True
                return False

            ctx.heap.add_waiter(rank, region, offset, waiter)

        return Call(handler)

    def wait_until_any(self, conditions) -> Call:
        """``shmem_wait_until_any`` — block until any of several local
        words satisfies its predicate.

        ``conditions`` is a list of ``(region, offset, predicate)``.
        Resumes with the index of the first satisfied condition.  Exactly
        one wake fires even if several words change simultaneously.
        """
        if not conditions:
            raise ValueError("wait_until_any needs at least one condition")
        rank = self.rank
        ctx = self.ctx

        def handler(engine, proc) -> None:
            for idx, (region, offset, predicate) in enumerate(conditions):
                if predicate(ctx.heap.load(rank, region, offset)):
                    engine.resume(proc, idx)
                    return

            fired = {"done": False}

            def make_waiter(idx, predicate):
                def waiter(new_value: int) -> bool:
                    if fired["done"]:
                        return True  # deregister stale siblings
                    if predicate(new_value):
                        fired["done"] = True
                        engine.resume(proc, idx, delay=ctx.latency.alpha_sw)
                        return True
                    return False

                return waiter

            for idx, (region, offset, predicate) in enumerate(conditions):
                ctx.heap.add_waiter(
                    rank, region, offset, make_waiter(idx, predicate)
                )

        return Call(handler)

    def barrier_all(self) -> Call:
        """``shmem_barrier_all`` over every PE in the job."""
        return self.ctx._barrier.arrive()

    @staticmethod
    def compute(seconds: float) -> Delay:
        """Local computation for ``seconds`` of virtual time."""
        return Delay(seconds)


class _Barrier:
    """Dissemination-style barrier: all PEs arrive, all release together.

    The release is charged ``ceil(log2(P))`` inter-node hops after the last
    arrival, approximating a dissemination barrier's critical path.
    """

    def __init__(self, ctx: ShmemCtx) -> None:
        self.ctx = ctx
        self._waiting: list[Process] = []

    def arrive(self) -> Call:
        def handler(engine: Engine, proc: Process) -> None:
            self._waiting.append(proc)
            if len(self._waiting) == self.ctx.npes:
                lat = self.ctx.latency
                hops = max(1, math.ceil(math.log2(max(2, self.ctx.npes))))
                cost = hops * (lat.alpha_sw + lat.half_rtt_inter)
                waiters, self._waiting = self._waiting, []
                for p in waiters:
                    engine.resume(p, None, delay=cost)

        return Call(handler)
