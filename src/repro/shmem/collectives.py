"""Tree-based collectives over the fabric (OpenSHMEM team operations).

The runtime itself is deliberately collective-free (work stealing is
point-to-point), but real OpenSHMEM programs — and our examples that
gather per-PE statistics — use broadcasts and reductions.  These are
implemented as binomial trees of one-sided puts with flag words, costing
``O(log P)`` levels of real fabric traffic, so including them in a timed
region charges honest communication.

All collectives are *synchronizing*: every PE must call them in the same
order, like their OpenSHMEM counterparts.
"""

from __future__ import annotations

from typing import Callable, Generator

from ..fabric.errors import ProtocolError
from .api import Pe, ShmemCtx

DATA_REGION = "coll.data"
FLAG_REGION = "coll.flag"

#: Supported reduction operators.
REDUCERS: dict[str, Callable[[int, int], int]] = {
    "sum": lambda a, b: (a + b) & ((1 << 64) - 1),
    "max": max,
    "min": min,
}


#: Maximum binomial-tree depth supported (2^20 PEs is plenty).
MAX_LEVELS = 20


class CollectiveSystem:
    """Allocates the symmetric scratch space for collectives.

    ``width`` is the maximum element count per collective call.  Reduce
    needs one (slot, flag) pair per tree level — children at different
    levels deliver concurrently — while broadcast needs one per row.
    """

    def __init__(self, ctx: ShmemCtx, width: int = 16) -> None:
        if width <= 0:
            raise ValueError(f"width must be positive, got {width}")
        self.ctx = ctx
        self.width = width
        # Rows rotate across back-to-back collectives so a fast PE's next
        # call cannot collide with a laggard's previous one.
        self.rows = 4
        ctx.heap.alloc_words(DATA_REGION, self.rows * MAX_LEVELS * width)
        ctx.heap.alloc_words(FLAG_REGION, self.rows * MAX_LEVELS)

    def handle(self, rank: int) -> "Collectives":
        """Collective operations bound to PE ``rank``."""
        return Collectives(self, rank)


class Collectives:
    """Per-PE collective operations."""

    def __init__(self, system: CollectiveSystem, rank: int) -> None:
        self.system = system
        self.pe: Pe = system.ctx.pe(rank)
        self.rank = rank
        self.npes = system.ctx.npes
        self._generation = 0

    def _row(self) -> int:
        return self._generation % self.system.rows

    def _slot(self, row: int, level: int) -> tuple[int, int]:
        """(data offset, flag offset) for one (row, tree-level) cell."""
        data = (row * MAX_LEVELS + level) * self.system.width
        flag = row * MAX_LEVELS + level
        return data, flag

    def _check(self, values: list[int]) -> None:
        if len(values) > self.system.width:
            raise ProtocolError(
                f"collective of {len(values)} elements exceeds width "
                f"{self.system.width}"
            )

    # ------------------------------------------------------------------
    def broadcast(self, values: list[int] | None, root: int = 0) -> Generator:
        """Binomial-tree broadcast from ``root``; returns the values.

        Non-root PEs pass ``None`` (their argument is ignored anyway).
        Each PE has exactly one parent, so level 0's slot suffices for
        receipt; the flag word carries ``1 + count``.
        """
        row = self._row()
        self._generation += 1
        base, flag_off = self._slot(row, 0)
        me = (self.rank - root) % self.npes

        if me == 0:
            self._check(values or [])
            vals = list(values or [])
            count = len(vals)
        else:
            flag = yield self.pe.wait_until(
                FLAG_REGION, flag_off, lambda v: v != 0
            )
            count = flag - 1
            vals = [
                self.pe.local_load(DATA_REGION, base + i) for i in range(count)
            ]
            self.pe.local_store(FLAG_REGION, flag_off, 0)

        # Forward to children: PE ``me`` owns children me|mask for masks
        # above me's own set bits.
        mask = 1
        while mask < self.npes:
            if me & mask:
                break
            child = me | mask
            if child < self.npes:
                dest = (child + root) % self.npes
                if vals:
                    yield self.pe.put_words(dest, DATA_REGION, base, vals)
                yield self.pe.put_word_nb(dest, FLAG_REGION, flag_off, 1 + count)
            mask <<= 1
        yield self.pe.quiet()
        return vals

    def reduce(
        self, values: list[int], op: str = "sum", root: int = 0
    ) -> Generator:
        """Binomial-tree reduction to ``root``; root returns the result,
        other PEs return ``None``.

        A child at tree level ``k`` delivers into its parent's level-``k``
        slot, so concurrent deliveries from different levels never
        collide.
        """
        try:
            reducer = REDUCERS[op]
        except KeyError:
            raise ProtocolError(
                f"unknown reduction {op!r}; choose from {sorted(REDUCERS)}"
            ) from None
        self._check(values)
        row = self._row()
        self._generation += 1
        me = (self.rank - root) % self.npes
        acc = list(values)
        count = len(acc)

        level = 0
        mask = 1
        while mask < self.npes:
            base, flag_off = self._slot(row, level)
            if me & mask:
                # Deliver my partial into the parent's level slot.
                parent = me & ~mask
                dest = (parent + root) % self.npes
                if acc:
                    yield self.pe.put_words(dest, DATA_REGION, base, acc)
                yield self.pe.put_word_nb(dest, FLAG_REGION, flag_off, 1)
                yield self.pe.quiet()
                return None
            partner = me | mask
            if partner < self.npes:
                yield self.pe.wait_until(FLAG_REGION, flag_off, lambda v: v != 0)
                self.pe.local_store(FLAG_REGION, flag_off, 0)
                for i in range(count):
                    other = self.pe.local_load(DATA_REGION, base + i)
                    acc[i] = reducer(acc[i], other)
            mask <<= 1
            level += 1
        return acc

    def allreduce(self, values: list[int], op: str = "sum") -> Generator:
        """Reduce to PE 0 then broadcast the result to everyone."""
        partial = yield from self.reduce(values, op=op, root=0)
        result = yield from self.broadcast(partial, root=0)
        return result

    def barrier(self) -> Generator:
        """Collective barrier built from an empty allreduce."""
        yield from self.allreduce([0], op="sum")
