"""Symmetric-heap allocation helpers.

OpenSHMEM programs allocate symmetric objects with ``shmem_malloc``; every
PE gets the same object at the same offset.  This module provides a small
allocator that packs named 64-bit variables and arrays into one shared
word region, returning :class:`SymWord` / :class:`SymArray` handles that
carry their ``(region, offset)`` address — the currency the NIC layer
understands.

The allocator is deliberately backend-agnostic: anything satisfying
:class:`HeapBackend` can host the regions.  Two substrates implement it
today — the discrete-event fabric's
:class:`~repro.fabric.memory.SymmetricHeap` (simulated NIC atomics) and
the multiprocess :class:`~repro.mp.heap.MpHeap`
(``multiprocessing.shared_memory`` words behind striped-lock atomics) —
so the same layout code describes a queue's symmetric footprint on
either substrate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable


@runtime_checkable
class HeapBackend(Protocol):
    """The seam a symmetric-heap substrate must provide.

    ``alloc_words`` / ``alloc_bytes`` create a named region sized in
    64-bit words / raw bytes respectively; the allocator addresses into
    regions with plain ``(region, offset)`` pairs afterwards.  A
    word-only backend may raise ``NotImplementedError`` from
    ``alloc_bytes`` — callers that never reserve byte buffers (the mp
    substrate's queues) never trigger it.
    """

    def alloc_words(self, name: str, nwords: int): ...

    def alloc_bytes(self, name: str, nbytes: int): ...


@dataclass(frozen=True)
class SymWord:
    """Address of one symmetric 64-bit word."""

    region: str
    offset: int


@dataclass(frozen=True)
class SymArray:
    """Address of a symmetric array of 64-bit words."""

    region: str
    offset: int
    length: int

    def word(self, index: int) -> SymWord:
        """Address of element ``index``."""
        if not 0 <= index < self.length:
            raise IndexError(f"index {index} out of range [0, {self.length})")
        return SymWord(self.region, self.offset + index)


@dataclass(frozen=True)
class SymBytes:
    """Address of a symmetric byte buffer."""

    region: str
    offset: int
    length: int


class SymmetricAllocator:
    """Packs named symmetric variables into shared heap regions.

    Usage::

        alloc = SymmetricAllocator(heap, prefix="rt")
        flag = alloc.word("term_flag")
        counts = alloc.array("counts", 4)
        alloc.commit()          # actually allocates the backing region

    ``commit`` must be called exactly once, after all reservations.

    ``heap`` is any :class:`HeapBackend` — the fabric's simulated
    symmetric heap or the multiprocess shared-memory heap.
    """

    def __init__(self, heap: HeapBackend, prefix: str) -> None:
        self.heap = heap
        self.prefix = prefix
        self._word_cursor = 0
        self._byte_cursor = 0
        self._committed = False
        self._pending_words: list[tuple[str, int]] = []
        self._pending_bytes: list[tuple[str, int]] = []

    @property
    def word_region(self) -> str:
        """Name of the backing word region."""
        return f"{self.prefix}.words"

    @property
    def byte_region(self) -> str:
        """Name of the backing byte region."""
        return f"{self.prefix}.bytes"

    def _check_open(self) -> None:
        if self._committed:
            raise RuntimeError("allocator already committed")

    def word(self, name: str) -> SymWord:
        """Reserve one 64-bit word."""
        self._check_open()
        addr = SymWord(self.word_region, self._word_cursor)
        self._pending_words.append((name, 1))
        self._word_cursor += 1
        return addr

    def array(self, name: str, length: int) -> SymArray:
        """Reserve an array of ``length`` words."""
        self._check_open()
        if length <= 0:
            raise ValueError(f"array length must be positive, got {length}")
        addr = SymArray(self.word_region, self._word_cursor, length)
        self._pending_words.append((name, length))
        self._word_cursor += length
        return addr

    def buffer(self, name: str, nbytes: int) -> SymBytes:
        """Reserve a byte buffer."""
        self._check_open()
        if nbytes <= 0:
            raise ValueError(f"buffer size must be positive, got {nbytes}")
        addr = SymBytes(self.byte_region, self._byte_cursor, nbytes)
        self._pending_bytes.append((name, nbytes))
        self._byte_cursor += nbytes
        return addr

    def commit(self) -> None:
        """Allocate the backing regions on every PE."""
        self._check_open()
        self._committed = True
        if self._word_cursor:
            self.heap.alloc_words(self.word_region, self._word_cursor)
        if self._byte_cursor:
            self.heap.alloc_bytes(self.byte_region, self._byte_cursor)

    @property
    def words_reserved(self) -> int:
        """Total words reserved so far."""
        return self._word_cursor

    @property
    def bytes_reserved(self) -> int:
        """Total payload bytes reserved so far."""
        return self._byte_cursor
