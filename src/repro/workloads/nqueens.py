"""N-Queens enumeration as a task-pool workload.

The classic irregular-parallelism benchmark (used by the X10/lifeline
line of work the paper cites): each task places one more queen on a
partial board and spawns a child per legal placement.  Subtree sizes
vary wildly with the prefix, making it a natural work-stealing stress.

Payload layout (little-endian): ``n:u8 | row:u8 | cols[row]:u8...`` —
the column of the queen in each filled row.  Solution counting uses a
workload-level counter (the registry is shared by every simulated PE,
so the count is global; a real implementation would allreduce it).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..runtime.registry import TaskContext, TaskOutcome, TaskRegistry
from ..runtime.task import Task

#: Known solution counts for validation.
SOLUTIONS = {1: 1, 2: 0, 3: 0, 4: 2, 5: 10, 6: 4, 7: 40, 8: 92, 9: 352, 10: 724}


@dataclass(frozen=True)
class NQueensParams:
    """Board size and per-node virtual compute time."""

    n: int = 8
    node_time: float = 1e-6

    def __post_init__(self) -> None:
        if not 1 <= self.n <= 16:
            raise ValueError(f"n must be in [1, 16], got {self.n}")
        if self.node_time < 0:
            raise ValueError("node_time must be non-negative")


def _legal(cols: bytes, col: int) -> bool:
    row = len(cols)
    for r, c in enumerate(cols):
        if c == col or abs(c - col) == row - r:
            return False
    return True


class NQueensWorkload:
    """Registers the placement task and tracks the solution count."""

    def __init__(self, registry: TaskRegistry, params: NQueensParams | None = None) -> None:
        self.params = params or NQueensParams()
        self.registry = registry
        self.node_id = registry.register("nqueens.place", self._place)
        self.solutions = 0
        self.nodes_visited = 0

    def seed_task(self) -> Task:
        """The empty-board root task."""
        return Task(self.node_id, bytes([self.params.n, 0]))

    def _place(self, payload: bytes, tc: TaskContext) -> TaskOutcome:
        n, row = payload[0], payload[1]
        cols = payload[2 : 2 + row]
        self.nodes_visited += 1
        if row == n:
            self.solutions += 1
            return TaskOutcome(self.params.node_time)
        children = [
            Task(self.node_id, bytes([n, row + 1]) + cols + bytes([col]))
            for col in range(n)
            if _legal(cols, col)
        ]
        return TaskOutcome(self.params.node_time, children)
