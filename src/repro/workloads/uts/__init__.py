"""Unbalanced Tree Search benchmark (UTS) over SHA-1 splittable trees."""

from .params import (
    BENCH_BIN,
    BENCH_GEO,
    NAMED_TREES,
    SWEEP_GEO,
    T1WL,
    TEST_SMALL,
    TEST_TINY,
    get_tree,
)
from .sequential import TreeStats, enumerate_tree
from .sha1_rng import STATE_BYTES, rand31, root_state, spawn, to_prob
from .tree import GeoShape, TreeType, UtsParams, branching_factor, expand, num_children
from .workload import PAPER_NODE_TIME, PAPER_TASK_SIZE, UtsWorkload, UtsWorkloadParams

__all__ = [
    "UtsParams",
    "UtsWorkload",
    "UtsWorkloadParams",
    "TreeType",
    "GeoShape",
    "branching_factor",
    "num_children",
    "expand",
    "enumerate_tree",
    "TreeStats",
    "root_state",
    "spawn",
    "rand31",
    "to_prob",
    "STATE_BYTES",
    "PAPER_TASK_SIZE",
    "PAPER_NODE_TIME",
    "NAMED_TREES",
    "get_tree",
    "T1WL",
    "TEST_TINY",
    "TEST_SMALL",
    "BENCH_GEO",
    "SWEEP_GEO",
    "BENCH_BIN",
]
