"""Unbalanced-tree node expansion rules (UTS GEO and BIN trees).

A node's child count is a deterministic function of its SHA-1 state and
depth, so the tree is identical no matter which PE expands which node:

* **GEO** (geometric): the child count is geometrically distributed with
  mean ``b(d)``, where the branching factor ``b(d)`` follows a *shape*
  law — ``FIXED`` keeps ``b0`` at every level (depth-limited by
  ``gen_mx``), ``LINEAR`` tapers ``b0`` linearly to zero at ``gen_mx``.
  This is the family the paper's 270 B-node T1WL tree belongs to.
* **BIN** (binomial): the root has exactly ``b0`` children; every other
  node has ``m`` children with probability ``q`` and none otherwise.
  Near-critical ``q*m ≈ 1`` produces the wild subtree-size variance that
  makes UTS hard to balance.
"""

from __future__ import annotations

import hashlib
import math
import struct
from dataclasses import dataclass
from enum import Enum
from functools import lru_cache

from .sha1_rng import root_state, to_prob

_CHILD_PACK = struct.Struct(">I").pack
_SHA1 = hashlib.sha1


class TreeType(Enum):
    """UTS tree families."""

    GEO = "geo"
    BIN = "bin"


class GeoShape(Enum):
    """Branching-factor laws for GEO trees (the UTS reference set)."""

    FIXED = "fixed"    #: b(d) = b0 for d < gen_mx
    LINEAR = "linear"  #: b(d) = b0 * (1 - d / gen_mx)
    EXPDEC = "expdec"  #: b(d) = b0 * d^(-ln(b0)/ln(gen_mx)) — poly decay
    CYCLIC = "cyclic"  #: b(d) = b0^sin(2*pi*d/gen_mx), cut at 5*gen_mx


@dataclass(frozen=True)
class UtsParams:
    """Complete specification of one UTS tree."""

    tree_type: TreeType = TreeType.GEO
    b0: float = 4.0          # root/branching factor
    gen_mx: int = 6          # GEO depth horizon
    shape: GeoShape = GeoShape.LINEAR
    q: float = 15.0 / 121.0  # BIN: child-burst probability
    m: int = 8               # BIN: children per burst
    root_seed: int = 19

    def __post_init__(self) -> None:
        if self.b0 <= 0:
            raise ValueError(f"b0 must be positive, got {self.b0}")
        if self.gen_mx < 1:
            raise ValueError(f"gen_mx must be >= 1, got {self.gen_mx}")
        if not 0.0 <= self.q <= 1.0:
            raise ValueError(f"q must be in [0,1], got {self.q}")
        if self.m < 1:
            raise ValueError(f"m must be >= 1, got {self.m}")
        if self.tree_type is TreeType.BIN and self.q * self.m > 1.0:
            raise ValueError(
                f"supercritical BIN tree (q*m = {self.q * self.m:.4f} > 1) "
                f"has infinite expected size"
            )

    def root(self) -> bytes:
        """State of the tree root."""
        return root_state(self.root_seed)


def branching_factor(params: UtsParams, depth: int) -> float:
    """Expected child count of a GEO node at ``depth``.

    Follows the UTS reference implementation's shape functions; CYCLIC
    trees cut off at ``5 * gen_mx`` instead of ``gen_mx``.
    """
    if params.shape is GeoShape.CYCLIC:
        if depth > 5 * params.gen_mx:
            return 0.0
        return params.b0 ** math.sin(2.0 * math.pi * depth / params.gen_mx)
    if depth >= params.gen_mx:
        return 0.0
    if params.shape is GeoShape.FIXED:
        return params.b0
    if params.shape is GeoShape.EXPDEC:
        if depth == 0:
            return params.b0
        return params.b0 * depth ** (-math.log(params.b0) / math.log(params.gen_mx))
    return params.b0 * (1.0 - depth / params.gen_mx)


@lru_cache(maxsize=4096)
def _geo_log1mp(params: UtsParams, depth: int) -> float:
    """``log(1 - p)`` of the geometric draw at ``depth``; 0.0 = no children.

    The branching factor — and thus ``p`` — is a pure function of
    ``(params, depth)``, so the log is computed once per depth instead of
    once per node (every node at a depth shares it).
    """
    b = branching_factor(params, depth)
    if b <= 0.0:
        return 0.0
    return math.log(1.0 - 1.0 / (1.0 + b))


def num_children(params: UtsParams, state: bytes, depth: int, is_root: bool) -> int:
    """Deterministic child count of one node (the UTS expansion rule)."""
    if params.tree_type is TreeType.GEO:
        # Geometric draw with mean b: reference implementation formula.
        log1mp = _geo_log1mp(params, depth)
        if log1mp == 0.0:
            return 0
        u = to_prob(state)
        if u >= 1.0:  # pragma: no cover - to_prob is < 1 by construction
            u = math.nextafter(1.0, 0.0)
        return int(math.log(1.0 - u) / log1mp)
    # BIN
    if is_root:
        return int(params.b0)
    return params.m if to_prob(state) < params.q else 0


def expand(params: UtsParams, state: bytes, depth: int, is_root: bool = False) -> list[bytes]:
    """Child states of one node."""
    n = num_children(params, state, depth, is_root)
    if n <= 0:
        return []
    # Inlined spawn() loop: num_children already drew from ``state``
    # through the validating rand31 path, so the per-child length check
    # is redundant here.
    sha1 = _SHA1
    pack = _CHILD_PACK
    return [sha1(state + pack(i)).digest() for i in range(n)]
