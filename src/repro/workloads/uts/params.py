"""Named UTS tree configurations.

``T1WL`` is the paper's evaluation tree: 270,751,679,750 nodes at depth
18 — far beyond what any simulation (or indeed most clusters) enumerates
in reasonable time, so scaled GEO trees with the same shape law are
provided for the reproduction, from test-sized to bench-sized.  The
SHA-1 expansion rule is identical at every scale; only ``b0``/``gen_mx``
shrink, preserving the statistical character (geometric branching,
heavy subtree-size variance).

Node counts below were measured with
:func:`repro.workloads.uts.sequential.enumerate_tree` at ``root_seed=19``
(counts are exact — the trees are deterministic).
"""

from __future__ import annotations

from .tree import GeoShape, TreeType, UtsParams

#: The paper's tree (§5.2.2): GEO, 270.75 B nodes, depth 18.  Listed for
#: provenance; do NOT enumerate it.
T1WL = UtsParams(
    tree_type=TreeType.GEO,
    b0=2000.0,
    gen_mx=18,
    shape=GeoShape.LINEAR,
    root_seed=19,
)

#: 85-node tree for unit tests (exact count asserted in tests).
TEST_TINY = UtsParams(
    tree_type=TreeType.GEO, b0=4.0, gen_mx=6, shape=GeoShape.LINEAR, root_seed=19
)

#: Small integration-test tree (3,542 nodes).
TEST_SMALL = UtsParams(
    tree_type=TreeType.GEO, b0=5.0, gen_mx=9, shape=GeoShape.LINEAR, root_seed=19
)

#: Bench-scale GEO tree (68,221 nodes).
BENCH_GEO = UtsParams(
    tree_type=TreeType.GEO, b0=6.0, gen_mx=10, shape=GeoShape.LINEAR, root_seed=19
)

#: Larger GEO tree for scaling sweeps (185,317 nodes).
SWEEP_GEO = UtsParams(
    tree_type=TreeType.GEO, b0=6.0, gen_mx=11, shape=GeoShape.LINEAR, root_seed=19
)

#: Near-critical binomial tree (147,321 nodes, depth 462) — the classic
#: highly-unbalanced stress; subtree sizes vary over five decades.
BENCH_BIN = UtsParams(
    tree_type=TreeType.BIN, b0=64.0, q=0.124875, m=8, root_seed=19
)

NAMED_TREES = {
    "t1wl": T1WL,
    "test_tiny": TEST_TINY,
    "test_small": TEST_SMALL,
    "bench_geo": BENCH_GEO,
    "sweep_geo": SWEEP_GEO,
    "bench_bin": BENCH_BIN,
}


def get_tree(name: str) -> UtsParams:
    """Look up a named tree configuration."""
    try:
        return NAMED_TREES[name]
    except KeyError:
        raise KeyError(
            f"unknown tree {name!r}; choose from {sorted(NAMED_TREES)}"
        ) from None
