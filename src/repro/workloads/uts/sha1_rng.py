"""SHA-1 splittable random stream, as used by the UTS benchmark.

UTS builds a *deterministic but unpredictable* tree by giving every node
a 20-byte SHA-1 digest as its state; a child's state is the digest of its
parent's state concatenated with the child's index (paper §5.2.2:
"children are located by composing the digest of the parent node and the
identifier of the child").  Any process holding a node's descriptor can
therefore expand it with no communication — which is what makes UTS a
pure work-stealing stress test.

This mirrors the reference implementation's ``rng/brg_sha1`` usage: the
random value drawn from a state is its leading 31 bits.
"""

from __future__ import annotations

import hashlib
import struct

#: Size of a node state (one SHA-1 digest).
STATE_BYTES = 20

_CHILD = struct.Struct(">I")
_TWO31 = float(1 << 31)


def root_state(seed: int) -> bytes:
    """State of the tree root for an integer seed.

    The reference implementation hashes the seed's decimal string; the
    exact convention only fixes *which* deterministic tree is searched.
    """
    return hashlib.sha1(str(seed).encode("ascii")).digest()


def spawn(state: bytes, child_index: int) -> bytes:
    """Child state: SHA-1 of parent state + big-endian child index."""
    if len(state) != STATE_BYTES:
        raise ValueError(f"state must be {STATE_BYTES} bytes, got {len(state)}")
    if child_index < 0:
        raise ValueError(f"child index must be non-negative, got {child_index}")
    return hashlib.sha1(state + _CHILD.pack(child_index)).digest()


def rand31(state: bytes) -> int:
    """The node's random draw: leading 31 bits of its state."""
    if len(state) != STATE_BYTES:
        raise ValueError(f"state must be {STATE_BYTES} bytes, got {len(state)}")
    return int.from_bytes(state[:4], "big") & 0x7FFFFFFF

def to_prob(state: bytes) -> float:
    """The node's random draw as a float in [0, 1)."""
    return rand31(state) / _TWO31
