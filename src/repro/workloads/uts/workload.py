"""UTS as a task-pool workload (paper §5.2.2).

Every tree node is one task (Table 2: 48-byte tasks, ~110 ns average
"work" per node).  A node task hashes out its children — real SHA-1
evaluations, so the tree shape is genuine — and spawns one child task
per child node.  Payload layout (little-endian)::

    depth : u32
    flags : u32   (bit 0: is_root)
    state : 20 bytes (SHA-1 digest)
"""

from __future__ import annotations

import hashlib
import math
import struct
from dataclasses import dataclass

from ...runtime.registry import TaskContext, TaskOutcome, TaskRegistry
from ...runtime.task import Task, make_task
from .sha1_rng import _TWO31
from .tree import GeoShape, TreeType, UtsParams, _geo_log1mp, expand

_NODE = struct.Struct("<II20s")
_CHILD_PACK = struct.Struct(">I").pack
_SHA1 = hashlib.sha1
_LOG = math.log

#: Task record size used by the paper for UTS (Table 2).
PAPER_TASK_SIZE = 48

#: Average per-node task duration reported in Table 2 (0.00011 ms).
PAPER_NODE_TIME = 0.00011e-3

_ROOT_FLAG = 1


@dataclass(frozen=True)
class UtsWorkloadParams:
    """Execution-side knobs for the UTS workload."""

    node_time: float = PAPER_NODE_TIME   # seconds of compute per node
    per_child_time: float = 0.0          # extra compute per spawned child

    def __post_init__(self) -> None:
        if self.node_time < 0 or self.per_child_time < 0:
            raise ValueError("node times must be non-negative")


class UtsWorkload:
    """Registers the UTS node task and produces the root seed task."""

    def __init__(
        self,
        registry: TaskRegistry,
        tree: UtsParams,
        params: UtsWorkloadParams | None = None,
    ) -> None:
        self.tree = tree
        self.params = params or UtsWorkloadParams()
        self.registry = registry
        self.node_id = registry.register("uts.node", self._node)
        # Hot-loop hoists: _node runs once per tree node.
        self._node_time = self.params.node_time
        self._per_child = self.params.per_child_time
        # GEO trees: the geometric draw's log(1 - p) is a pure function of
        # depth, so table it once here instead of re-deriving (and hashing
        # the params dataclass through an lru_cache) per node.  Depths past
        # the table are leaves by construction.
        if tree.tree_type is TreeType.GEO:
            horizon = 5 * tree.gen_mx if tree.shape is GeoShape.CYCLIC else tree.gen_mx
            self._log1mp: tuple[float, ...] | None = tuple(
                _geo_log1mp(tree, d) for d in range(horizon + 1)
            )
        else:
            self._log1mp = None

    def seed_task(self) -> Task:
        """The root node's task."""
        return Task(
            self.node_id, _NODE.pack(0, _ROOT_FLAG, self.tree.root())
        )

    def _node(self, payload: bytes, tc: TaskContext) -> TaskOutcome:
        depth, flags, state = _NODE.unpack(payload)
        table = self._log1mp
        if table is not None:
            # Inlined GEO expansion (bit-identical to tree.num_children):
            # the state is a fixed-width struct field, so the validating
            # to_prob/spawn wrappers are skipped.
            log1mp = table[depth] if depth < len(table) else 0.0
            if log1mp == 0.0:
                n = 0
            else:
                u = (int.from_bytes(state[:4], "big") & 0x7FFFFFFF) / _TWO31
                n = int(_LOG(1.0 - u) / log1mp)
            sha1 = _SHA1
            cpack = _CHILD_PACK
            children = [sha1(state + cpack(i)).digest() for i in range(n)]
        else:
            children = expand(self.tree, state, depth, bool(flags & _ROOT_FLAG))
        pack = _NODE.pack
        nid = self.node_id
        d1 = depth + 1
        # make_task: nid is a registry id and the payload a fixed-width
        # struct, so Task's range validation is statically satisfied.
        tasks = [make_task(nid, pack(d1, 0, c)) for c in children]
        duration = self._node_time + self._per_child * len(tasks)
        return TaskOutcome(duration=duration, children=tasks)
