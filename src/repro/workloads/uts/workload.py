"""UTS as a task-pool workload (paper §5.2.2).

Every tree node is one task (Table 2: 48-byte tasks, ~110 ns average
"work" per node).  A node task hashes out its children — real SHA-1
evaluations, so the tree shape is genuine — and spawns one child task
per child node.  Payload layout (little-endian)::

    depth : u32
    flags : u32   (bit 0: is_root)
    state : 20 bytes (SHA-1 digest)
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from ...runtime.registry import TaskContext, TaskOutcome, TaskRegistry
from ...runtime.task import Task
from .tree import UtsParams, expand

_NODE = struct.Struct("<II20s")

#: Task record size used by the paper for UTS (Table 2).
PAPER_TASK_SIZE = 48

#: Average per-node task duration reported in Table 2 (0.00011 ms).
PAPER_NODE_TIME = 0.00011e-3

_ROOT_FLAG = 1


@dataclass(frozen=True)
class UtsWorkloadParams:
    """Execution-side knobs for the UTS workload."""

    node_time: float = PAPER_NODE_TIME   # seconds of compute per node
    per_child_time: float = 0.0          # extra compute per spawned child

    def __post_init__(self) -> None:
        if self.node_time < 0 or self.per_child_time < 0:
            raise ValueError("node times must be non-negative")


class UtsWorkload:
    """Registers the UTS node task and produces the root seed task."""

    def __init__(
        self,
        registry: TaskRegistry,
        tree: UtsParams,
        params: UtsWorkloadParams | None = None,
    ) -> None:
        self.tree = tree
        self.params = params or UtsWorkloadParams()
        self.registry = registry
        self.node_id = registry.register("uts.node", self._node)

    def seed_task(self) -> Task:
        """The root node's task."""
        return Task(
            self.node_id, _NODE.pack(0, _ROOT_FLAG, self.tree.root())
        )

    def _node(self, payload: bytes, tc: TaskContext) -> TaskOutcome:
        depth, flags, state = _NODE.unpack(payload)
        children = expand(self.tree, state, depth, is_root=bool(flags & _ROOT_FLAG))
        tasks = [
            Task(self.node_id, _NODE.pack(depth + 1, 0, c)) for c in children
        ]
        duration = self.params.node_time + self.params.per_child_time * len(tasks)
        return TaskOutcome(duration=duration, children=tasks)
