"""Sequential UTS enumeration — the validation oracle.

A plain depth-first traversal of the tree, independent of every runtime
component.  The parallel search must visit exactly this node multiset;
integration tests compare counts (and depth histograms) against it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .tree import UtsParams, expand


@dataclass
class TreeStats:
    """Shape summary of one enumerated tree."""

    nodes: int = 0
    leaves: int = 0
    max_depth: int = 0
    depth_histogram: dict[int, int] = field(default_factory=dict)

    @property
    def imbalance_hint(self) -> float:
        """Leaves per node — high values mean bushy, unbalanced trees."""
        return self.leaves / self.nodes if self.nodes else 0.0


def enumerate_tree(params: UtsParams, max_nodes: int | None = None) -> TreeStats:
    """Iterative DFS over the whole tree.

    ``max_nodes`` guards against accidentally enumerating a paper-scale
    tree; exceeding it raises ``RuntimeError`` rather than spinning for
    hours.
    """
    stats = TreeStats()
    stack: list[tuple[bytes, int, bool]] = [(params.root(), 0, True)]
    while stack:
        state, depth, is_root = stack.pop()
        stats.nodes += 1
        if max_nodes is not None and stats.nodes > max_nodes:
            raise RuntimeError(
                f"tree exceeded max_nodes={max_nodes}; "
                f"use a smaller configuration"
            )
        stats.max_depth = max(stats.max_depth, depth)
        stats.depth_histogram[depth] = stats.depth_histogram.get(depth, 0) + 1
        children = expand(params, state, depth, is_root)
        if not children:
            stats.leaves += 1
        for c in children:
            stack.append((c, depth + 1, False))
    return stats
