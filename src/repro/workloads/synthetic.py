"""Synthetic steal-latency probe (the Figure-6 microbenchmark).

Figure 6 compares the latency of a *single steal operation* between SDC
and SWS across steal volumes (2–1024 tasks) and task sizes (24 B and
192 B).  This module builds the minimal scenario: a victim PE with a
preloaded, fully released queue, and one thief that performs exactly one
steal while the victim stays passive — isolating protocol latency from
load-balancing dynamics.

To make a single steal-half operation take exactly ``volume`` tasks, the
victim is preloaded with ``4 * volume`` tasks: its release exposes half
(``2 * volume``) and the steal-half thief claims half of that.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.config import QueueConfig
from ..core.results import StealResult
from ..fabric.latency import EDR_INFINIBAND, LatencyModel
from ..shmem.api import ShmemCtx


@dataclass
class StealProbeResult:
    """Outcome of one single-steal measurement."""

    impl: str
    volume: int          # tasks requested (and actually stolen)
    task_size: int       # record bytes
    steal_seconds: float # latency of the steal operation
    comms: dict[str, int]

    @property
    def stolen(self) -> int:
        """Tasks actually stolen (equals the requested volume)."""
        return self.volume


def measure_single_steal(
    impl: str,
    volume: int,
    task_size: int,
    latency: LatencyModel = EDR_INFINIBAND,
    qsize: int | None = None,
) -> StealProbeResult:
    """Measure one steal of ``volume`` tasks of ``task_size`` bytes.

    Builds a fresh two-PE job, preloads PE 0 with ``2 * volume`` released
    tasks, lets PE 1 steal once, and returns the steal's virtual-time
    latency plus the exact communication counts it issued.

    ``impl`` may be any protocol registered in
    :mod:`repro.runtime.protocols`.  The fence-free multiplicity deque
    always moves exactly one task per steal, so its probe requires (and
    reports) ``volume == 1``.
    """
    from ..runtime.protocols import get_protocol

    try:
        protocol = get_protocol(impl)
    except KeyError as exc:
        raise ValueError(str(exc)) from None
    if volume < 1:
        raise ValueError(f"volume must be >= 1, got {volume}")
    if protocol.family == "ffmult" and volume != 1:
        raise ValueError(
            f"the fence-free deque steals exactly one task, got "
            f"volume={volume}"
        )
    preload = 4 * volume
    qsize = qsize or max(256, 1 << (preload - 1).bit_length())
    cfg = QueueConfig(qsize=qsize, task_size=task_size)
    ctx = ShmemCtx(2, latency=latency)
    system = protocol.queue_system(ctx, cfg)
    victim_q = system.handle(0)
    thief_q = system.handle(1)

    record = bytes(task_size)
    out: dict[str, object] = {}

    def victim() -> object:
        for _ in range(preload):
            victim_q.enqueue(record)
        if protocol.family == "sws":
            yield from victim_q.release()
        else:
            victim_q.release()
        out["released"] = True

    def thief() -> object:
        # Wait for the victim's release to land (its process runs first at
        # t=0, so one tick suffices; poll defensively anyway).
        from ..fabric.engine import Delay

        while "released" not in out:
            yield Delay(1e-7)
        before = ctx.metrics.snapshot()
        t0 = ctx.engine.now
        result: StealResult = yield from thief_q.steal(0)
        out["latency"] = ctx.engine.now - t0
        out["comms"] = ctx.metrics.delta(before)
        out["result"] = result

    ctx.engine.spawn(victim(), "victim")
    ctx.engine.spawn(thief(), "thief")
    ctx.run()

    result = out["result"]
    if not result.success or result.ntasks != volume:
        raise RuntimeError(
            f"probe expected to steal {volume}, got {result.status} "
            f"ntasks={result.ntasks}"
        )
    return StealProbeResult(
        impl=impl,
        volume=volume,
        task_size=task_size,
        steal_seconds=float(out["latency"]),
        comms={k: v for k, v in out["comms"].items() if v},
    )


def steal_volume_sweep(
    volumes: list[int] | None = None,
    task_sizes: tuple[int, ...] = (24, 192),
    latency: LatencyModel = EDR_INFINIBAND,
) -> list[StealProbeResult]:
    """The full Figure-6 grid: both impls × task sizes × volumes."""
    volumes = volumes or [2, 4, 8, 16, 32, 64, 128, 256, 512, 1024]
    results = []
    for impl in ("sdc", "sws"):
        for ts in task_sizes:
            for v in volumes:
                results.append(measure_single_steal(impl, v, ts, latency=latency))
    return results
