"""Bouncing Producer-Consumer benchmark (paper §5.2.1).

BPC stresses a load balancer's ability to *locate and disperse* work.
One producer task spawns ``n`` consumer tasks plus the next producer,
down to a set depth.  Because the producer is enqueued first, it sits at
the **tail** of the owner's queue — the first task a thief copies — so
the producer "bounces" between processes, dragging the work front with
it.  Consumers are pure compute.

Paper parameters: n=8192 consumers per producer, depth 500, consumer
5 ms, producer 1 ms, 32-byte tasks → 2,457,901 total tasks (Table 2:
``depth * (n + 1) + 1`` with the final producer spawning nothing).
Scaled defaults keep simulation tractable; ``paper_scale`` restores the
published configuration.

Payload layout (little-endian): ``depth_remaining:u32``.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from ..runtime.registry import TaskContext, TaskOutcome, TaskRegistry
from ..runtime.task import Task

_PRODUCER = struct.Struct("<I")

#: Task record size used by the paper for BPC (Table 2).
PAPER_TASK_SIZE = 32


@dataclass(frozen=True)
class BpcParams:
    """BPC workload configuration.

    ``n_consumers`` consumers per producer, producers chained to
    ``depth``; durations in seconds.
    """

    n_consumers: int = 64
    depth: int = 32
    consumer_time: float = 5.0e-3
    producer_time: float = 1.0e-3

    def __post_init__(self) -> None:
        if self.n_consumers < 0:
            raise ValueError(f"n_consumers must be >= 0, got {self.n_consumers}")
        if self.depth < 1:
            raise ValueError(f"depth must be >= 1, got {self.depth}")
        if self.consumer_time < 0 or self.producer_time < 0:
            raise ValueError("task durations must be non-negative")

    @property
    def total_tasks(self) -> int:
        """Exact task count: each of ``depth`` producers spawns
        ``n_consumers``; the deepest producer spawns nothing further."""
        return self.depth * (self.n_consumers + 1)

    @property
    def total_task_time(self) -> float:
        """Sum of all task compute durations (for efficiency baselines)."""
        return self.depth * (
            self.n_consumers * self.consumer_time + self.producer_time
        )

    @property
    def avg_task_time(self) -> float:
        """Mean task duration (Table 2 reports 5 ms at paper scale)."""
        return self.total_task_time / self.total_tasks


#: The configuration used in the paper's evaluation.
PAPER_PARAMS = BpcParams(
    n_consumers=8192, depth=500, consumer_time=5.0e-3, producer_time=1.0e-3
)


def paper_scale() -> BpcParams:
    """The published configuration (≈2.46 M tasks — heavy to simulate)."""
    return PAPER_PARAMS


class BpcWorkload:
    """Registers BPC task functions and produces the seed task.

    The producer enqueues itself *first* so it lands nearest the queue
    tail and is stolen first — the bounce that gives BPC its name.
    """

    def __init__(self, registry: TaskRegistry, params: BpcParams | None = None) -> None:
        self.params = params or BpcParams()
        self.registry = registry
        self.producer_id = registry.register("bpc.producer", self._producer)
        self.consumer_id = registry.register("bpc.consumer", self._consumer)
        #: (depth, executing rank) per producer, in execution order — the
        #: raw data behind the "bouncing" in the benchmark's name.
        self.producer_hosts: list[tuple[int, int]] = []

    def seed_task(self) -> Task:
        """The root producer task."""
        return Task(self.producer_id, _PRODUCER.pack(self.params.depth))

    @property
    def bounces(self) -> int:
        """How many times the producer chain changed hosts.

        The producers form one serial chain (depth N spawns depth N-1),
        so consecutive entries of ``producer_hosts`` sorted by falling
        depth are consecutive chain links; a rank change between links is
        one bounce.
        """
        chain = sorted(self.producer_hosts, key=lambda dr: -dr[0])
        return sum(
            1 for (_, a), (_, b) in zip(chain, chain[1:]) if a != b
        )

    def _producer(self, payload: bytes, tc: TaskContext) -> TaskOutcome:
        (depth,) = _PRODUCER.unpack(payload)
        self.producer_hosts.append((depth, tc.rank))
        children: list[Task] = []
        if depth > 1:
            # Next producer first: closest to the tail, first to be stolen.
            children.append(Task(self.producer_id, _PRODUCER.pack(depth - 1)))
        children.extend(
            Task(self.consumer_id) for _ in range(self.params.n_consumers)
        )
        return TaskOutcome(duration=self.params.producer_time, children=children)

    def _consumer(self, payload: bytes, tc: TaskContext) -> TaskOutcome:
        return TaskOutcome(duration=self.params.consumer_time)
