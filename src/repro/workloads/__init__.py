"""Benchmark workloads: BPC, UTS, and the Figure-6 steal-latency probe."""

from .bpc import PAPER_PARAMS as BPC_PAPER_PARAMS
from .bpc import PAPER_TASK_SIZE as BPC_PAPER_TASK_SIZE
from .bpc import BpcParams, BpcWorkload, paper_scale
from .fib import FibParams, FibWorkload, fib, task_count
from .nqueens import SOLUTIONS, NQueensParams, NQueensWorkload
from .synthetic import StealProbeResult, measure_single_steal, steal_volume_sweep

__all__ = [
    "BpcParams",
    "BpcWorkload",
    "BPC_PAPER_PARAMS",
    "BPC_PAPER_TASK_SIZE",
    "paper_scale",
    "StealProbeResult",
    "measure_single_steal",
    "steal_volume_sweep",
    "FibParams",
    "FibWorkload",
    "fib",
    "task_count",
    "NQueensParams",
    "NQueensWorkload",
    "SOLUTIONS",
]
