"""Naive Fibonacci — the canonical Cilk spawn benchmark.

``fib(n)`` spawns ``fib(n-1)`` and ``fib(n-2)`` down to the base cases;
the task count equals ``2*fib(n+1) - 1``, giving a predictable, heavily
skewed spawn tree (the n-1 subtree is ~1.6x the n-2 subtree at every
level, so steal-half repeatedly bisects unequal halves).

No value is actually "returned" up the tree — tasks in the Scioto model
are independent — so, like real distributed Fibonacci microbenchmarks,
this measures pure spawn/steal machinery.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from functools import lru_cache

from ..runtime.registry import TaskContext, TaskOutcome, TaskRegistry
from ..runtime.task import Task

_PAYLOAD = struct.Struct("<I")


@lru_cache(maxsize=128)
def fib(n: int) -> int:
    """The Fibonacci number (for validation math)."""
    if n < 2:
        return n
    return fib(n - 1) + fib(n - 2)


def task_count(n: int) -> int:
    """Tasks a run of ``fib(n)`` executes: the call-tree size.

    ``calls(n) = calls(n-1) + calls(n-2) + 1`` with ``calls(0) =
    calls(1) = 1``, which closes to ``2*fib(n+1) - 1``.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    return 2 * fib(n + 1) - 1


@dataclass(frozen=True)
class FibParams:
    """Problem size and per-call virtual compute time."""

    n: int = 16
    call_time: float = 0.5e-6

    def __post_init__(self) -> None:
        if not 0 <= self.n <= 30:
            raise ValueError(f"n must be in [0, 30], got {self.n}")
        if self.call_time < 0:
            raise ValueError("call_time must be non-negative")


class FibWorkload:
    """Registers the fib task function."""

    def __init__(self, registry: TaskRegistry, params: FibParams | None = None) -> None:
        self.params = params or FibParams()
        self.registry = registry
        self.fn_id = registry.register("fib.call", self._call)

    def seed_task(self) -> Task:
        """The root ``fib(n)`` task."""
        return Task(self.fn_id, _PAYLOAD.pack(self.params.n))

    def _call(self, payload: bytes, tc: TaskContext) -> TaskOutcome:
        (n,) = _PAYLOAD.unpack(payload)
        if n < 2:
            return TaskOutcome(self.params.call_time)
        children = [
            Task(self.fn_id, _PAYLOAD.pack(n - 1)),
            Task(self.fn_id, _PAYLOAD.pack(n - 2)),
        ]
        return TaskOutcome(self.params.call_time, children)
