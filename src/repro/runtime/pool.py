"""Task-pool driver: build a simulated job, run it, collect statistics.

:class:`TaskPool` is the library's main entry point.  It wires together
the fabric, a queue implementation (``"sws"`` or ``"sdc"``), termination
detection, and one worker per PE, then runs the discrete-event engine to
global termination and returns :class:`~repro.runtime.stats.RunStats`.

Example::

    from repro import TaskPool, Task, TaskOutcome, TaskRegistry

    reg = TaskRegistry()
    reg.register("leaf", lambda payload, tc: TaskOutcome(duration=5e-3))
    pool = TaskPool(npes=8, registry=reg, impl="sws")
    pool.seed(0, [Task(reg.id_of("leaf")) for _ in range(1000)])
    stats = pool.run()
    print(stats.throughput, stats.parallel_efficiency)
"""

from __future__ import annotations


from ..core.config import QueueConfig
from ..core.damping import DampingTracker
from ..fabric.faults import FaultPlan
from ..fabric.latency import EDR_INFINIBAND, TIERED_EDR, LatencyModel
from ..fabric.scheduler import Scheduler, make_scheduler
from ..fabric.topology import TieredTopology, Topology
from ..shmem.api import ShmemCtx
from .oracle import PoolOracle
from .inbox import InboxSystem
from .lifeline import LifelineConfig, LifelineSystem
from .protocols import get_protocol, protocol_names
from .registry import TaskRegistry
from .stats import RunStats
from .task import Task
from .termination import TerminationSystem, TreeTerminationSystem
from .victim import QuarantineSelector, make_selector
from .worker import QueueDriver, Worker, WorkerConfig

#: The paper's own implementations: ``sws`` is the Figure-4 epoch design;
#: ``sws-v1`` the Figure-3 valid-bit variant (§4.1); ``sdc`` the Scioto
#: baseline.  ``impl`` accepts any protocol registered in
#: :mod:`repro.runtime.protocols` (see :func:`protocol_names`), of which
#: these three are the historical core.
IMPLEMENTATIONS = ("sws", "sws-v1", "sdc")


def resolved_latency(
    impl: str,
    latency: LatencyModel = EDR_INFINIBAND,
    topology: Topology | None = None,
) -> LatencyModel:
    """The latency model a pool with these arguments will actually use.

    Mirrors :class:`TaskPool`'s tiered-protocol defaulting (a tiered
    protocol with the stock EDR preset and no explicit topology swaps in
    ``TIERED_EDR``) so the sharded coordinator can derive the window
    width before any shard pool exists.
    """
    protocol = get_protocol(impl)
    if topology is None and protocol.tiered and latency is EDR_INFINIBAND:
        return TIERED_EDR
    return latency


class TaskPool:
    """A complete simulated work-stealing job."""

    def __init__(
        self,
        npes: int,
        registry: TaskRegistry,
        impl: str = "sws",
        queue_config: QueueConfig | None = None,
        worker_config: WorkerConfig | None = None,
        latency: LatencyModel = EDR_INFINIBAND,
        pes_per_node: int = 48,
        victim: str | None = None,
        seed: int = 0,
        remote_spawn: bool = False,
        inbox_capacity: int = 1024,
        lifelines: bool = False,
        lifeline_config: LifelineConfig | None = None,
        termination: str = "ring",
        fault_plan: FaultPlan | None = None,
        op_timeout: float | None = None,
        token_timeout: float | None = None,
        scheduler: Scheduler | str | None = None,
        oracle: bool | PoolOracle = False,
        topology: Topology | None = None,
        shard=None,
    ) -> None:
        try:
            protocol = get_protocol(impl)
        except KeyError:
            raise ValueError(
                f"impl must be a registered protocol "
                f"{protocol_names()}, got {impl!r}"
            ) from None
        self.npes = npes
        self.impl = impl
        #: The registered steal protocol driving every layer below.
        self.protocol = protocol
        self.registry = registry
        self.queue_config = queue_config or QueueConfig()
        self.worker_config = worker_config or WorkerConfig()
        self.seed_value = seed
        if victim is None:
            victim = protocol.default_victim
        # A tiered protocol wants the socket/node/rack hierarchy; build
        # it (and swap in the tiered latency preset, when the caller
        # kept the default) unless an explicit topology overrides.
        if topology is None and protocol.tiered:
            topology = TieredTopology(npes, pes_per_node=pes_per_node)
            if latency is EDR_INFINIBAND:
                latency = TIERED_EDR
        self.topology_override = topology
        #: ShardBinding in sharded runs (this pool builds the full job but
        #: only runs its shard's PEs); None for the classic single engine.
        self.shard = shard

        faulty = fault_plan is not None and fault_plan.active
        if faulty:
            if not protocol.supports_faults:
                raise ValueError(
                    f"fault injection is not supported for impl={impl!r} "
                    f"(the protocol declares no recovery path)"
                )
            if termination != "ring":
                raise ValueError(
                    "fault injection requires termination='ring' "
                    "(the tree detector has no fault-tolerant variant)"
                )
            if any(f.pe == 0 for f in fault_plan.pe_failures):
                raise ValueError(
                    "PE 0 cannot be in pe_failures: it anchors termination "
                    "detection (token regeneration and the declare broadcast)"
                )
            if op_timeout is None:
                # Must comfortably exceed one serialized round trip, and
                # stay far below any useful quarantine/token timescale.
                rtt = 2.0 * (latency.alpha_sw + latency.half_rtt_inter)
                op_timeout = max(50.0 * rtt, 20e-6)
            if token_timeout is None:
                # A full ring round: one hop + worker service latency per
                # PE, with generous slack for retry/backoff storms.
                token_timeout = 4.0 * npes * max(
                    op_timeout, self.worker_config.steal_backoff_max
                )
        self.fault_plan = fault_plan if faulty else None
        self.op_timeout = op_timeout

        if isinstance(scheduler, str):
            scheduler = make_scheduler(scheduler, seed=seed)
        self.scheduler = scheduler

        self.ctx = ShmemCtx(
            npes,
            latency=latency,
            pes_per_node=pes_per_node,
            fault_plan=fault_plan,
            op_timeout=op_timeout,
            scheduler=scheduler,
            topology=topology,
            shard=shard,
        )
        self.queue_system = protocol.queue_system(self.ctx, self.queue_config)
        if termination == "ring":
            self.term_system = TerminationSystem(
                self.ctx,
                faults=self.ctx.faults,
                token_timeout=token_timeout if token_timeout is not None else 1e-3,
            )
        elif termination == "tree":
            self.term_system = TreeTerminationSystem(self.ctx)
        else:
            raise ValueError(
                f"termination must be 'ring' or 'tree', got {termination!r}"
            )
        # Lifelines deliver work through the inbox, so they imply it.
        self.inbox_system = (
            InboxSystem(self.ctx, inbox_capacity, self.queue_config.task_size)
            if (remote_spawn or lifelines)
            else None
        )
        self.lifeline_system = (
            LifelineSystem(self.ctx, faults=self.ctx.faults) if lifelines else None
        )
        self.lifeline_config = lifeline_config or LifelineConfig()

        self.workers: list[Worker] = []
        for rank in range(npes):
            queue = self.queue_system.handle(rank)
            damping = (
                DampingTracker(
                    npes,
                    threshold=self.queue_config.damping_threshold,
                    enabled=self.worker_config.damping,
                )
                if protocol.supports_damping
                else None
            )
            driver = QueueDriver(queue, damping)
            selector = (
                make_selector(victim, npes, rank, seed, self.ctx.topology)
                if npes > 1
                else None
            )
            if selector is not None and self.ctx.faults is not None:
                selector = QuarantineSelector(
                    selector,
                    clock=lambda: self.ctx.engine.now,
                    quarantine_after=self.worker_config.quarantine_after,
                    quarantine_time=self.worker_config.quarantine_time,
                )
            self.workers.append(
                Worker(
                    rank=rank,
                    npes=npes,
                    driver=driver,
                    registry=registry,
                    selector=selector,
                    termination=self.term_system.handle(rank),
                    config=self.worker_config,
                    task_size=self.queue_config.task_size,
                    inbox=(
                        self.inbox_system.handle(rank)
                        if self.inbox_system
                        else None
                    ),
                    lifeline=(
                        self.lifeline_system.handle(rank, self.lifeline_config)
                        if self.lifeline_system
                        else None
                    ),
                    seed=seed,
                )
            )
        if isinstance(oracle, PoolOracle):
            self.oracle: PoolOracle | None = oracle
        elif oracle:
            # A sharded pool's oracle only watches the PEs it runs:
            # remote-shard heap rows are stale replicas here.
            local = None if shard is None else shard.plan.pes_of(shard.shard_id)
            self.oracle = PoolOracle(self, ranks=local)
        else:
            self.oracle = None
        if self.oracle is not None:
            self.ctx.engine.observers.append(self.oracle.check)
        self._ran = False

    def seed(self, rank: int, tasks: list[Task]) -> None:
        """Seed initial tasks onto PE ``rank`` before running."""
        if self._ran:
            raise RuntimeError("pool already ran")
        self.workers[rank].seed(tasks)

    def seed_round_robin(self, tasks: list[Task]) -> None:
        """Distribute seed tasks cyclically across all PEs."""
        for i, t in enumerate(tasks):
            self.workers[i % self.npes].seed([t])

    def local_ranks(self) -> range:
        """PEs this pool actually runs: all of them, or its shard's block."""
        if self.shard is None:
            return range(self.npes)
        return self.shard.plan.pes_of(self.shard.shard_id)

    def start_workers(self) -> dict:
        """Spawn this pool's workers without running the engine.

        The classic path (:meth:`run`) spawns and runs in one call; the
        sharded window loop needs spawn and stepping decoupled — and a
        sharded pool spawns only the PEs its shard owns.
        """
        if self._ran:
            raise RuntimeError("pool already ran")
        self._ran = True
        procs_by_pe = {}
        for rank in self.local_ranks():
            w = self.workers[rank]
            procs_by_pe[rank] = self.ctx.engine.spawn(w.run(), name=f"pe{rank}")
        faults = self.ctx.faults
        if faults is not None:
            faults.schedule_failures(self.ctx.engine, procs_by_pe)
        return procs_by_pe

    def run(self) -> RunStats:
        """Execute to global termination; returns aggregated statistics."""
        self.start_workers()
        faults = self.ctx.faults
        end = self.ctx.run()
        for w in self.workers:
            if faults is not None and faults.is_dead(w.rank, end):
                continue  # a fail-stopped PE's mid-protocol state is moot
            w.driver.queue.invariants()
        if self.oracle is not None:
            self.oracle.check_final()
        for w in self.workers:
            w.stats.locks_recovered = getattr(w.driver.queue, "locks_recovered", 0)
            if isinstance(w.selector, QuarantineSelector):
                w.stats.quarantines = w.selector.quarantines
        return RunStats(
            npes=self.npes,
            runtime=end,
            workers=[w.stats for w in self.workers],
            comm=self.ctx.metrics.snapshot(),
            faults=faults.snapshot() if faults is not None else {},
        )

    def shard_result(self) -> dict:
        """Collect this shard's end-of-run payload (picklable).

        Called after the window loop completes: checks the local queues'
        structural invariants, then packages the local workers' stats,
        metrics and conservation books for the coordinator to merge
        (:mod:`repro.runtime.sharded`).
        """
        ranks = list(self.local_ranks())
        for r in ranks:
            w = self.workers[r]
            w.driver.queue.invariants()
            w.stats.locks_recovered = getattr(w.driver.queue, "locks_recovered", 0)
        books = {
            "spawned": sum(self.workers[r].stats.tasks_spawned for r in ranks),
            "executed": sum(self.workers[r].stats.tasks_executed for r in ranks),
            "dups": sum(self.workers[r].driver.spawn_credit for r in ranks),
            "resident": sum(
                self.workers[r].driver.local_count
                + self.workers[r].driver.stealable_remaining
                for r in ranks
            ),
        }
        return {
            "end": self.ctx.engine.now,
            "ranks": ranks,
            "workers": [self.workers[r].stats for r in ranks],
            "comm": self.ctx.metrics.snapshot(),
            "books": books,
            "events": self.ctx.engine.events_processed,
            "oracle_checks": (
                self.oracle.checks_passed if self.oracle is not None else 0
            ),
        }


def run_pool(
    npes: int,
    registry: TaskRegistry,
    seeds: list[Task],
    impl: str = "sws",
    **kwargs,
) -> RunStats:
    """One-shot convenience: build a pool, seed PE 0, run it."""
    pool = TaskPool(npes, registry, impl=impl, **kwargs)
    pool.seed(0, seeds)
    return pool.run()
