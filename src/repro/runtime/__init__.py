"""Scioto-model task-parallel runtime over the work-stealing queues."""

from .oracle import PoolOracle
from .pool import IMPLEMENTATIONS, TaskPool, run_pool
from .registry import TaskContext, TaskFn, TaskOutcome, TaskRegistry
from .stats import RunStats, WorkerStats
from .task import HEADER_BYTES, Task
from .termination import (
    TerminationDetector,
    TerminationSystem,
    TreeTerminationDetector,
    TreeTerminationSystem,
)
from .inbox import Inbox, InboxSystem
from .lifeline import (
    LifelineConfig,
    LifelineManager,
    LifelineSystem,
    hypercube_neighbors,
)
from .victim import (
    HierarchicalVictim,
    LocalityVictim,
    RoundRobinVictim,
    UniformVictim,
    VictimSelector,
    make_selector,
)
from .worker import QueueDriver, Worker, WorkerConfig

__all__ = [
    "TaskPool",
    "run_pool",
    "IMPLEMENTATIONS",
    "PoolOracle",
    "TaskRegistry",
    "TaskContext",
    "TaskOutcome",
    "TaskFn",
    "Task",
    "HEADER_BYTES",
    "RunStats",
    "WorkerStats",
    "TerminationSystem",
    "TerminationDetector",
    "TreeTerminationSystem",
    "TreeTerminationDetector",
    "UniformVictim",
    "RoundRobinVictim",
    "LocalityVictim",
    "HierarchicalVictim",
    "VictimSelector",
    "make_selector",
    "Inbox",
    "InboxSystem",
    "LifelineConfig",
    "LifelineManager",
    "LifelineSystem",
    "hypercube_neighbors",
    "QueueDriver",
    "Worker",
    "WorkerConfig",
]
