"""Sharded task-pool runner: conservative parallel execution of one job.

:class:`ShardedTaskPool` is the drop-in parallel counterpart of
:class:`~repro.runtime.pool.TaskPool`: same construction arguments plus
``nshards``/``transport``, same :class:`~repro.runtime.stats.RunStats`
out.  The job's PEs are partitioned into contiguous blocks; each block
runs inside its own :class:`~repro.runtime.pool.TaskPool` bound to a
shard (its own engine + calendar queue), and the shards advance in
conservative lock-step time windows (:mod:`repro.fabric.sharding`).

``nshards=1`` is special-cased to a plain ``TaskPool`` — no router, no
window loop, today's engine loop unchanged — so single-shard runs stay
bit-identical to the classic path.

Transports
----------
``serial``
    All shards in this process, stepped round-robin.  Deterministic and
    dependency-free; what the conformance and property suites use.  No
    wall-clock speedup (same core), but identical virtual-time results.
``fork``
    One OS process per shard over the ``multiprocessing`` fork seam;
    the parent is the exchange coordinator.  Same virtual-time results
    as ``serial`` (the window algebra is transport-independent); wall
    speedup tracks available cores.  POSIX only — falls back to serial
    with a warning where fork is unavailable.
``auto`` (default)
    ``fork`` when it can actually pay for itself — the start method
    exists and the host has more than one CPU to overlap shards on —
    else ``serial``.  On a single-CPU host every fork window round
    still costs two scheduler handoffs plus the exchange encode/decode
    on both sides with *zero* overlap, a strict loss over stepping the
    shards in-process; eliding that IPC is the single biggest win on
    oversubscribed hosts.  The resolved choice is recorded as
    ``effective_transport`` / ``RunStats.sharding["transport"]``
    alongside ``host_cpus``, so every report shows what actually ran.

Every shard constructs the *full* job (all queues, all worker objects)
— construction is deterministic, so all shards agree on the symmetric
heap layout — but spawns only its own PEs.  Remote heap rows are stale
replicas; all access to them routes through the NIC's shard router.
"""

from __future__ import annotations

import os
import sys
from typing import Any, Callable

from ..fabric.latency import EDR_INFINIBAND, LatencyModel
from ..fabric.sharding import (
    ExchangeStats,
    ForkShardHandle,
    SerialShardHandle,
    ShardBinding,
    ShardPlan,
    barrier_cost_ticks,
    check_shardable,
    finish_shards,
    fork_context,
    run_window_loop,
)
from .oracle import check_merged_conservation
from .pool import TaskPool, resolved_latency
from .protocols import get_protocol
from .registry import TaskRegistry
from .stats import RunStats
from .task import Task


class TransportUnavailable(RuntimeError):
    """The explicitly requested shard transport cannot run here."""


class _PoolShardHandle(SerialShardHandle):
    """Window-loop handle over one shard's TaskPool."""

    def __init__(self, pool: TaskPool) -> None:
        pool.start_workers()
        super().__init__(pool.ctx)
        self.pool = pool

    def finish(self) -> dict:
        return self.pool.shard_result()


class ShardedTaskPool:
    """One simulated work-stealing job run across N shard engines."""

    def __init__(
        self,
        npes: int,
        registry: TaskRegistry,
        nshards: int,
        impl: str = "sws",
        transport: str = "auto",
        latency: LatencyModel = EDR_INFINIBAND,
        oracle: bool = False,
        strict_transport: bool = False,
        **pool_kwargs: Any,
    ) -> None:
        if transport not in ("auto", "serial", "fork"):
            raise ValueError(
                f"transport must be 'auto', 'serial' or 'fork', "
                f"got {transport!r}"
            )
        #: With strict_transport, an unavailable fork transport raises
        #: TransportUnavailable instead of silently degrading to serial
        #: (the CLI maps the explicit --shard-transport fork case to
        #: exit code 2).
        self.strict_transport = strict_transport
        self.plan = ShardPlan(npes, nshards)
        self.npes = npes
        self.nshards = nshards
        self.impl = impl
        self.transport = transport
        self.registry = registry
        self.oracle = oracle
        self._pool_kwargs = dict(pool_kwargs)
        self._pool_kwargs["latency"] = latency
        self.protocol = get_protocol(impl)
        #: The window width derives from the latency the pool will
        #: *actually* use (tiered protocols may swap presets in).
        self.latency = resolved_latency(
            impl, latency, pool_kwargs.get("topology")
        )
        if nshards > 1:
            if not self.protocol.shardable:
                raise ValueError(
                    f"protocol {impl!r} cannot run sharded: its steal "
                    f"path relies on shared-memory bookkeeping across "
                    f"PEs (reads remote heap rows without NIC "
                    f"mediation), which stale per-shard replicas break. "
                    f"Use --shards 1 or a shardable protocol."
                )
            self.window_ticks = check_shardable(self.latency)
        else:
            self.window_ticks = 0  # single shard: classic engine loop
        self._seeds: list[tuple[int, list[Task]]] = []
        self._round_robin: list[Task] = []
        self._ran = False
        #: Exchange rounds the window loop performed (0 for nshards=1).
        self.rounds = 0
        #: Full coordinator counters (ExchangeStats) after :meth:`run`.
        self.exchange: ExchangeStats | None = None
        #: The transport the run actually used ("none" for nshards=1;
        #: "serial" after a fork fallback).
        self.effective_transport = "none" if nshards == 1 else transport
        #: Engine events summed across shards, set by :meth:`run`.
        self.events_processed = 0

    # ------------------------------------------------------------------
    def seed(self, rank: int, tasks: list[Task]) -> None:
        """Seed initial tasks onto PE ``rank`` before running."""
        if self._ran:
            raise RuntimeError("pool already ran")
        self._seeds.append((rank, list(tasks)))

    def seed_round_robin(self, tasks: list[Task]) -> None:
        """Distribute seed tasks cyclically across all PEs."""
        if self._ran:
            raise RuntimeError("pool already ran")
        self._round_robin.extend(tasks)

    # ------------------------------------------------------------------
    def _build_pool(self, shard_id: int | None) -> TaskPool:
        """Construct one shard's pool (or the classic pool for None).

        Every shard applies *all* seeds: seeding writes through local
        heap state, which is only authoritative on the owning shard, but
        applying it everywhere keeps construction identical across
        shards (same layout, same initial words).
        """
        shard = (
            None if shard_id is None else ShardBinding(self.plan, shard_id)
        )
        pool = TaskPool(
            self.npes,
            self.registry,
            impl=self.impl,
            oracle=self.oracle,
            shard=shard,
            **self._pool_kwargs,
        )
        for rank, tasks in self._seeds:
            pool.seed(rank, tasks)
        if self._round_robin:
            pool.seed_round_robin(self._round_robin)
        return pool

    def run(self) -> RunStats:
        """Execute to global termination; returns merged statistics."""
        if self._ran:
            raise RuntimeError("pool already ran")
        if self.nshards == 1:
            pool = self._build_pool(None)
            self._ran = True
            stats = pool.run()
            self.events_processed = pool.ctx.engine.events_processed
            stats.sharding = self._sharding_stats()
            return stats
        self._ran = True
        transport = self.transport
        if transport == "auto":
            # Fork only when it can pay for itself: a start method to
            # fork with AND at least one spare CPU to overlap shards on.
            # On a single-CPU host every fork round is two scheduler
            # handoffs plus double-sided encode/decode with no overlap —
            # strictly worse than stepping the shards in-process.
            mp_ctx = fork_context()
            if mp_ctx is not None and (os.cpu_count() or 1) > 1:
                transport = "fork"
            else:
                transport = "serial"
        elif transport == "fork":
            mp_ctx = fork_context()
            if mp_ctx is None:  # pragma: no cover - non-POSIX platforms
                if self.strict_transport:
                    raise TransportUnavailable(
                        "fork transport unavailable on this platform "
                        "(no 'fork' multiprocessing start method)"
                    )
                print(
                    "warning: fork transport unavailable on this platform; "
                    "falling back to serial shards",
                    file=sys.stderr,
                )
                transport = "serial"
        self.effective_transport = transport
        if transport == "fork":
            results = self._run_fork(mp_ctx)
        else:
            results = self._run_serial()
        return self._merge(results)

    def _run_serial(self) -> list[dict]:
        handles = [
            _PoolShardHandle(self._build_pool(s)) for s in range(self.nshards)
        ]
        self.exchange = run_window_loop(
            handles,
            window_ticks=self.window_ticks,
            npes=self.npes,
            barrier_cost=barrier_cost_ticks(self.latency, self.npes),
        )
        self.rounds = self.exchange.rounds
        return [h.finish() for h in handles]

    def _run_fork(self, mp_ctx) -> list[dict]:
        build = self._child_builder()
        handles = [
            ForkShardHandle(mp_ctx, build, s) for s in range(self.nshards)
        ]
        try:
            self.exchange = run_window_loop(
                handles,
                window_ticks=self.window_ticks,
                npes=self.npes,
                barrier_cost=barrier_cost_ticks(self.latency, self.npes),
            )
            self.rounds = self.exchange.rounds
            self.exchange.exchange_bytes = sum(
                h.exchange_bytes for h in handles
            )
            results = finish_shards(handles)
            # The children's engines ran in their own processes; credit
            # their events to this process's sweep tally so events/sec
            # reporting sees the whole job.
            from ..fabric.engine import add_event_tally

            add_event_tally(sum(r["events"] for r in results))
            return results
        except BaseException:
            for h in handles:
                h.abort()
            raise

    def _child_builder(self) -> Callable[[int], _PoolShardHandle]:
        """The closure each forked child runs to build its shard.

        With the fork start method the child inherits ``self`` (registry,
        seeds, kwargs) by memory image — nothing here is pickled.
        """
        def build(shard_id: int) -> _PoolShardHandle:
            return _PoolShardHandle(self._build_pool(shard_id))

        return build

    # ------------------------------------------------------------------
    def _sharding_stats(self) -> dict:
        """The sharding block every RunStats from this pool carries."""
        out = {
            "nshards": self.nshards,
            "transport": self.effective_transport,
            "host_cpus": os.cpu_count() or 1,
        }
        if self.exchange is not None:
            out.update(self.exchange.as_dict())
        return out

    def _merge(self, results: list[dict]) -> RunStats:
        """Fold per-shard payloads into one job-wide RunStats."""
        check_merged_conservation(
            [r["books"] for r in results],
            exactly_once=self.protocol.semantics.exactly_once,
        )
        workers = [w for r in results for w in r["workers"]]
        workers.sort(key=lambda w: w.rank)
        comm: dict[str, int] = {}
        for r in results:
            for key, val in r["comm"].items():
                comm[key] = comm.get(key, 0) + val
        self.events_processed = sum(r["events"] for r in results)
        return RunStats(
            npes=self.npes,
            runtime=max(r["end"] for r in results),
            workers=workers,
            comm=comm,
            faults={},
            sharding=self._sharding_stats(),
        )


def run_sharded_pool(
    npes: int,
    registry: TaskRegistry,
    seeds: list[Task],
    nshards: int,
    impl: str = "sws",
    **kwargs: Any,
) -> RunStats:
    """One-shot convenience: build a sharded pool, seed PE 0, run it."""
    pool = ShardedTaskPool(npes, registry, nshards, impl=impl, **kwargs)
    pool.seed(0, seeds)
    return pool.run()
