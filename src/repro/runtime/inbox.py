"""Remote task spawning via per-PE MPSC inboxes (paper §2.1/§3).

The Scioto model lets a task "spawn tasks onto remote queues, although
with more overhead due to communication".  The owner's task queue cannot
be written by arbitrary remote producers (thieves only *read* the shared
portion), so remote spawns land in a separate symmetric **inbox** — a
multi-producer single-consumer ring:

1. the sender reserves a slot with a remote ``fetch_add`` on the
   reserve counter;
2. writes the task record into the slot (non-blocking put);
3. fences (``quiet``) so the record precedes its flag;
4. raises the slot's commit flag (non-blocking atomic).

The owner polls commit flags from its drain cursor (a local read),
moving committed tasks onto its normal local queue.  Slots are reused
once drained; the ring must be sized for the peak in-flight spawn count
(an overwritten un-drained slot raises :class:`ProtocolError` — the
flow-control discipline real implementations enforce with windowing).
"""

from __future__ import annotations

from typing import Generator

from ..fabric.errors import ProtocolError
from ..shmem.api import ShmemCtx

META_REGION = "inbox.meta"
FLAG_REGION = "inbox.flags"
TASK_REGION = "inbox.tasks"

RESERVE = 0  # meta word: next slot sequence number


class InboxSystem:
    """Allocates the symmetric inbox regions for the job.

    ``use_put_signal`` selects the OpenSHMEM 1.5 fast path: the record
    and its commit flag travel as one ``put_signal`` message (2
    communications per spawn instead of 4).  The classic path (reserve /
    put / quiet / flag) remains for OpenSHMEM 1.4 semantics.
    """

    def __init__(
        self,
        ctx: ShmemCtx,
        capacity: int,
        task_size: int,
        use_put_signal: bool = True,
    ) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if task_size <= 0:
            raise ValueError(f"task_size must be positive, got {task_size}")
        self.ctx = ctx
        self.capacity = capacity
        self.task_size = task_size
        self.use_put_signal = use_put_signal
        ctx.heap.alloc_words(META_REGION, 1)
        ctx.heap.alloc_words(FLAG_REGION, capacity)
        ctx.heap.alloc_bytes(TASK_REGION, capacity * task_size)

    def handle(self, rank: int) -> "Inbox":
        """Per-PE inbox endpoint."""
        return Inbox(self, rank)


class Inbox:
    """Sender + owner operations for one PE's inbox."""

    def __init__(self, system: InboxSystem, rank: int) -> None:
        self.system = system
        self.pe = system.ctx.pe(rank)
        self.rank = rank
        self.drain_cursor = 0  # owner-local: next sequence to drain
        self.sent = 0
        self.received = 0

    # ------------------------------------------------------------------
    # sender side (remote)
    # ------------------------------------------------------------------
    def send(self, target: int, record: bytes) -> Generator:
        """Deposit one task record into ``target``'s inbox.

        Classic path: reserve fetch-add (blocking), record put
        (non-blocking), quiet, commit-flag atomic (non-blocking) — four
        communications, the 'more overhead' the paper attributes to
        remote spawns.  With ``use_put_signal`` the record and flag fuse
        into one message: two communications total.
        """
        if target == self.rank:
            raise ProtocolError("use the local queue, not the inbox, for self-spawns")
        if len(record) != self.system.task_size:
            raise ProtocolError(
                f"record of {len(record)} bytes; inbox expects "
                f"{self.system.task_size}"
            )
        cap = self.system.capacity
        seq = yield self.pe.atomic_fetch_add(target, META_REGION, RESERVE, 1)
        slot = seq % cap
        if self.system.use_put_signal:
            # Overrun detection needs flag increments, not stores; encode
            # the lap count so a clobbered slot is still detectable.
            lap = seq // cap + 1
            yield self.pe.put_signal_nb(
                target,
                TASK_REGION,
                slot * self.system.task_size,
                record,
                FLAG_REGION,
                slot,
                lap,
            )
        else:
            yield self.pe.put_bytes_nb(
                target, TASK_REGION, slot * self.system.task_size, record
            )
            # Fence: the record must be visible before its commit flag.
            yield self.pe.quiet()
            yield self.pe.atomic_add_nb(target, FLAG_REGION, slot, 1)
        self.sent += 1

    # ------------------------------------------------------------------
    # owner side (local)
    # ------------------------------------------------------------------
    def drain(self, limit: int | None = None) -> list[bytes]:
        """Collect committed records in arrival sequence (local reads).

        Commit flags carry the *lap count* (pass number over the ring):
        slot ``seq`` is ready when its flag equals ``seq // cap + 1``.
        A higher flag means a producer lapped an undrained slot and
        clobbered it — the ring was undersized.  Flags are never cleared;
        the lap discipline makes reuse unambiguous on both send paths.
        """
        out: list[bytes] = []
        cap = self.system.capacity
        ts = self.system.task_size
        while limit is None or len(out) < limit:
            slot = self.drain_cursor % cap
            expected_lap = self.drain_cursor // cap + 1
            flag = self.pe.local_load(FLAG_REGION, slot)
            if flag < expected_lap:
                break
            if flag > expected_lap:
                raise ProtocolError(
                    f"PE {self.rank}: inbox overrun at slot {slot} "
                    f"(flag={flag}, expected lap {expected_lap}); "
                    f"increase inbox capacity"
                )
            out.append(self.pe.local_read_bytes(TASK_REGION, slot * ts, ts))
            self.drain_cursor += 1
        self.received += len(out)
        return out

    @property
    def pending_hint(self) -> bool:
        """Cheap check: is the next slot committed? (one local read)"""
        slot = self.drain_cursor % self.system.capacity
        expected_lap = self.drain_cursor // self.system.capacity + 1
        return self.pe.local_load(FLAG_REGION, slot) >= expected_lap

    def wake_condition(self) -> tuple[str, int, object]:
        """``wait_until_any`` triple firing when the next slot commits."""
        slot = self.drain_cursor % self.system.capacity
        expected_lap = self.drain_cursor // self.system.capacity + 1
        return (FLAG_REGION, slot, lambda v: v >= expected_lap)
