"""Cross-PE invariant oracles for schedule exploration.

A :class:`PoolOracle` attaches to a :class:`~repro.runtime.pool.TaskPool`
as an engine *observer*: after **every** discrete event it re-checks the
protocol invariants whose violation would mean the steal protocol lost,
duplicated, or corrupted work — exactly the failure modes a racy
interleaving of the paper's fused fetch-add window would produce:

* **per-PE structural sanity** — each queue's ``oracle_check`` hook:
  index ordering, capacity, stealval field ranges, stealval/record
  agreement, epoch accounting (``folded <= claims <= schedule length``);
* **completion-array discipline** — every completion word may only make
  the transitions ``0 -> volume`` (one thief's notification, where the
  steal-half schedule fixes the legal volume), ``volume -> 0`` (owner
  reclaim/turnover) or stay put.  Two thieves claiming the same block
  both add into the same slot, so a **double-claim** surfaces as a
  nonzero-to-different-nonzero transition the instant the second
  notification lands;
* **attempted-steal monotonicity** — within one stealval publication the
  asteals counter may only grow (a shrink means a lost increment);
* **task conservation** — parameterized on the protocol's declared
  semantics contract (:mod:`repro.runtime.protocols`).  Exactly-once
  protocols: tasks resident in queues never exceed ``spawned - executed``
  globally (each event), and at termination the books balance exactly —
  every spawned task executed exactly once and every queue drained.
  At-least-once protocols (the fence-free multiplicity deque): a stale
  tail store may legally re-expose consumed tasks mid-run, so the
  per-event resident bound would false-positive; instead every duplicate
  handout is tallied by the queue *at handout time* and the final books
  must close as ``spawned + dup_handouts == executed`` — a genuinely
  lost task still fails (the sum cannot balance), while a legal
  duplicate cannot.

All checks are read-only; the oracle never perturbs the simulation, so a
clean run under the oracle is bit-identical to the same run without it.
Violations raise :class:`~repro.fabric.errors.OracleViolation`, which the
exploration driver (:mod:`repro.analysis.explore`) pairs with the
scheduler's recorded choice sequence into a replayable failure trace.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..fabric.errors import OracleViolation

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .pool import TaskPool


class PoolOracle:
    """Invariant oracle over every PE of one task pool.

    Construct with the pool, then register :meth:`check` as an engine
    observer (``TaskPool(oracle=True)`` does both).  ``stride`` checks
    every N-th event for long runs; the default checks every event.
    """

    def __init__(self, pool: "TaskPool", stride: int = 1,
                 ranks=None) -> None:
        if stride < 1:
            raise ValueError(f"stride must be >= 1, got {stride}")
        self.pool = pool
        self.stride = stride
        # ``ranks`` restricts the oracle to one shard's PEs: remote-shard
        # heap rows are stale replicas there, so structural checks only
        # see authoritative state, and the cross-PE conservation checks
        # are deferred to the merged end-of-run pass
        # (:func:`check_merged_conservation`).
        self._global = ranks is None
        if self._global:
            self.workers = pool.workers
        else:
            rankset = set(ranks)
            self.workers = [w for w in pool.workers if w.rank in rankset]
        self.queues = [w.driver.queue for w in self.workers]
        # Semantics contract: pools built outside the protocol registry
        # (or bare test harnesses) default to strict exactly-once.
        protocol = getattr(pool, "protocol", None)
        self.exactly_once = (
            protocol.semantics.exactly_once if protocol is not None else True
        )
        #: Violations would raise before incrementing, so this counts
        #: clean sweeps — a cheap "the oracle really ran" signal.
        self.checks_passed = 0
        self._events = 0
        # Cross-event tracking state, per PE.
        self._prev_comp: list[list[int] | None] = [None] * pool.npes
        self._prev_sv: list[tuple | None] = [None] * pool.npes

    # ------------------------------------------------------------------
    def check(self) -> None:
        """Run after one engine event; raises :class:`OracleViolation`."""
        self._events += 1
        if self._events % self.stride:
            return
        faults = self.pool.ctx.faults
        now = self.pool.ctx.engine.now
        for q in self.queues:
            if faults is not None and faults.is_dead(q.rank, now):
                continue  # a fail-stopped PE's memory is moot
            q.oracle_check()
            self._check_comp_transitions(q)
            self._check_asteals_monotone(q)
        if faults is None and self.exactly_once and self._global:
            self._check_conservation()
        self.checks_passed += 1

    def check_final(self) -> None:
        """End-of-run books: conservation per the semantics contract,
        drained queues."""
        if not self._global:
            return  # sharded runs balance via check_merged_conservation
        if self.pool.ctx.faults is not None:
            return  # abandoned steals legitimately break conservation
        spawned = sum(w.stats.tasks_spawned for w in self.workers)
        executed = sum(w.stats.tasks_executed for w in self.workers)
        dups = sum(w.driver.spawn_credit for w in self.workers)
        if self.exactly_once:
            if spawned != executed:
                raise OracleViolation(
                    "conservation-final",
                    f"{spawned} tasks spawned but {executed} executed "
                    f"({spawned - executed} lost or duplicated)",
                )
        elif spawned + dups != executed:
            raise OracleViolation(
                "conservation-final",
                f"{spawned} tasks spawned + {dups} duplicate handouts "
                f"but {executed} executed "
                f"({spawned + dups - executed} lost or unaccounted)",
            )
        for w in self.workers:
            drv = w.driver
            if drv.local_count or drv.stealable_remaining:
                raise OracleViolation(
                    "drain-final",
                    f"queue not empty at termination: local={drv.local_count} "
                    f"stealable={drv.stealable_remaining}",
                    pe=w.rank,
                )

    # ------------------------------------------------------------------
    def _check_comp_transitions(self, q) -> None:
        """Completion words: written once per steal, with the legal volume."""
        words = q.oracle_comp_words()
        prev = self._prev_comp[q.rank]
        expected = q.oracle_comp_expected()
        qsize = q.cfg.qsize
        for off, val in enumerate(words):
            old = prev[off] if prev is not None else 0
            if val == old:
                continue
            if val == 0:
                continue  # owner reclaim / epoch turnover
            if old != 0:
                raise OracleViolation(
                    "double-claim",
                    f"completion word {off} jumped {old} -> {val}: two "
                    f"thieves notified the same steal slot",
                    pe=q.rank,
                )
            if expected is None:
                if not 1 <= val <= qsize:
                    raise OracleViolation(
                        "comp-volume-range",
                        f"completion word {off} holds {val}, outside "
                        f"[1, {qsize}]",
                        pe=q.rank,
                    )
            elif expected.get(off) != val:
                raise OracleViolation(
                    "comp-volume",
                    f"completion word {off} holds {val}; the steal-half "
                    f"schedule allows {expected.get(off, 'nothing')}",
                    pe=q.rank,
                )
        self._prev_comp[q.rank] = words

    def _check_asteals_monotone(self, q) -> None:
        """asteals only grows within one stealval publication."""
        sv = self._stealval_view(q)
        if sv is None:
            return
        key, asteals = sv
        prev = self._prev_sv[q.rank]
        if prev is not None and prev[0] == key and asteals < prev[1]:
            raise OracleViolation(
                "asteals-monotone",
                f"attempted-steal counter shrank {prev[1]} -> {asteals} "
                f"within publication {key}",
                pe=q.rank,
            )
        self._prev_sv[q.rank] = (key, asteals)

    @staticmethod
    def _stealval_view(q) -> tuple | None:
        """(publication key, asteals) for the SWS family; None for SDC.

        The key includes the owner's monotone publication counter, so two
        different allotments that happen to advertise identical
        (epoch, itasks, tail) fields are never conflated — without it, an
        asteals reset across such a re-publication would look like a lost
        increment.
        """
        from ..core.stealval import StealValEpoch, StealValV1
        from ..core.sws_queue import SwsQueue
        from ..core.sws_v1_queue import SwsV1Queue

        if isinstance(q, SwsQueue):
            v = StealValEpoch.unpack(q._load_stealval())
            if v.locked:
                return None
            return ("epoch", q.publications), v.asteals
        if isinstance(q, SwsV1Queue):
            from ..core.sws_v1_queue import META_REGION, STEALVAL

            v = StealValV1.unpack(q.pe.local_load(META_REGION, STEALVAL))
            if not v.valid:
                return None
            return ("v1", q.publications), v.asteals
        return None

    def shard_books(self) -> dict:
        """This shard's contribution to the merged conservation pass."""
        return {
            "spawned": sum(w.stats.tasks_spawned for w in self.workers),
            "executed": sum(w.stats.tasks_executed for w in self.workers),
            "dups": sum(w.driver.spawn_credit for w in self.workers),
            "resident": sum(
                w.driver.local_count + w.driver.stealable_remaining
                for w in self.workers
            ),
        }

    def _check_conservation(self) -> None:
        """Resident tasks can never exceed spawned - executed."""
        spawned = sum(w.stats.tasks_spawned for w in self.workers)
        executed = sum(w.stats.tasks_executed for w in self.workers)
        resident = sum(
            w.driver.local_count + w.driver.stealable_remaining
            for w in self.workers
        )
        if resident > spawned - executed:
            raise OracleViolation(
                "conservation",
                f"{resident} tasks resident in queues but only "
                f"{spawned - executed} unexecuted exist "
                f"(spawned={spawned}, executed={executed}): work was "
                f"duplicated",
            )


def check_serving_conservation(books: dict) -> None:
    """Open-system conservation at the end of a serving run.

    ``books`` carries the serving frontend's ledger (``emitted`` from the
    arrival process's own trace, ``injected``/``shed`` counted by the
    injection path) and the pool's closed-system sums (``spawned``
    includes injections, ``executed``, ``resident``).  Two identities
    must hold:

    * every emitted arrival was either injected or shed —
      ``emitted == injected + shed``.  A silently dropped arrival is
      neither, so it is caught here;
    * the generalized four-counter books balance —
      ``(spawned - injected) + emitted == executed + resident + shed``,
      i.e. internal spawns plus the full arrival stream are accounted
      for by executions, queue residue, and shedding.
    """
    emitted = books["emitted"]
    injected = books["injected"]
    shed = books["shed"]
    spawned = books["spawned"]
    executed = books["executed"]
    resident = books["resident"]
    if emitted != injected + shed:
        raise OracleViolation(
            "conservation-open",
            f"{emitted} arrivals emitted but only {injected} injected + "
            f"{shed} shed ({emitted - injected - shed} arrival(s) silently "
            f"dropped)",
        )
    internal = spawned - injected
    if internal + emitted != executed + resident + shed:
        raise OracleViolation(
            "conservation-open",
            f"open-system books unbalanced: {internal} internal spawns + "
            f"{emitted} arrivals != {executed} executed + {resident} "
            f"resident + {shed} shed",
        )


def check_merged_conservation(books: list[dict], exactly_once: bool) -> None:
    """Merged end-of-run conservation over every shard of a sharded run.

    Each entry of ``books`` is one shard's :meth:`PoolOracle.shard_books`
    (or an equivalent dict).  The same contract as
    :meth:`PoolOracle.check_final`, applied to the job-wide sums — a task
    stolen across a shard boundary counts as spawned on one shard and
    executed on another, so only the merged books can balance.
    """
    spawned = sum(b["spawned"] for b in books)
    executed = sum(b["executed"] for b in books)
    dups = sum(b["dups"] for b in books)
    resident = sum(b["resident"] for b in books)
    if exactly_once:
        if spawned != executed:
            raise OracleViolation(
                "conservation-final",
                f"{spawned} tasks spawned but {executed} executed across "
                f"{len(books)} shard(s) "
                f"({spawned - executed} lost or duplicated)",
            )
    elif spawned + dups != executed:
        raise OracleViolation(
            "conservation-final",
            f"{spawned} tasks spawned + {dups} duplicate handouts but "
            f"{executed} executed across {len(books)} shard(s) "
            f"({spawned + dups - executed} lost or unaccounted)",
        )
    if resident:
        raise OracleViolation(
            "drain-final",
            f"{resident} task(s) resident in queues at termination "
            f"across {len(books)} shard(s)",
        )
