"""Per-worker and per-run statistics.

The paper's evaluation (Figs. 7e/7f/8e/8f) splits load-balancer overhead
into *steal time* — time spent in successful steal operations — and
*search time* — time spent looking for work, including failed steal
attempts.  Workers accumulate both, along with task counts and queue-
management overheads, and :class:`RunStats` aggregates them into the
series the figures plot.
"""

from __future__ import annotations

import json
import math
from dataclasses import asdict, dataclass, field


class QuantileSketch:
    """Streaming quantile sketch with bounded *relative* rank error.

    DDSketch-style logarithmic bucketing: value ``v > 0`` lands in
    bucket ``ceil(log_base(v))`` with ``base = (1+γ)/(1-γ)``, so every
    value in a bucket is within relative error γ of the bucket's
    midpoint estimate.  Inserts and quantile queries are O(1)-ish;
    sketches **merge exactly** (bucket-count addition), so per-PE
    latency sketches combine into the run-wide sketch with zero loss —
    ``merge(a, b).quantile(q) == sketch(a ++ b).quantile(q)`` for every
    q, which the property suite pins.

    Latencies here are integer ticks (or nanoseconds on the real
    backends); non-positive values collapse into a dedicated zero
    bucket.
    """

    __slots__ = ("gamma", "_log_base", "buckets", "zero_count", "count",
                 "min_value", "max_value", "total")

    def __init__(self, rel_err: float = 0.01) -> None:
        if not 0 < rel_err < 1:
            raise ValueError(f"rel_err must be in (0, 1), got {rel_err}")
        self.gamma = rel_err
        self._log_base = math.log((1 + rel_err) / (1 - rel_err))
        self.buckets: dict[int, int] = {}
        self.zero_count = 0
        self.count = 0
        self.min_value = math.inf
        self.max_value = -math.inf
        self.total = 0.0

    def add(self, value: float, count: int = 1) -> None:
        """Insert ``value`` (``count`` times) into the sketch."""
        if count <= 0:
            return
        self.count += count
        self.total += value * count
        if value < self.min_value:
            self.min_value = value
        if value > self.max_value:
            self.max_value = value
        if value <= 0:
            self.zero_count += count
            return
        idx = math.ceil(math.log(value) / self._log_base)
        self.buckets[idx] = self.buckets.get(idx, 0) + count

    def _estimate(self, idx: int) -> float:
        # Midpoint of bucket (base^(i-1), base^i] in the relative sense.
        base = math.exp(self._log_base)
        return 2.0 * base ** idx / (base + 1.0)

    def quantile(self, q: float) -> float:
        """Value at quantile ``q`` (0 ≤ q ≤ 1), within relative error γ."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        # 0-based rank of the order statistic we want.
        rank = min(self.count - 1, max(0, math.ceil(q * self.count) - 1))
        if rank < self.zero_count:
            return 0.0
        seen = self.zero_count
        for idx in sorted(self.buckets):
            seen += self.buckets[idx]
            if rank < seen:
                return self._estimate(idx)
        return self._estimate(max(self.buckets))  # pragma: no cover

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def merge(self, other: "QuantileSketch") -> None:
        """Fold ``other`` into this sketch (lossless for equal γ)."""
        if abs(other.gamma - self.gamma) > 1e-12:
            raise ValueError(
                f"cannot merge sketches with different rel_err "
                f"({self.gamma} vs {other.gamma})"
            )
        for idx, n in other.buckets.items():
            self.buckets[idx] = self.buckets.get(idx, 0) + n
        self.zero_count += other.zero_count
        self.count += other.count
        self.total += other.total
        self.min_value = min(self.min_value, other.min_value)
        self.max_value = max(self.max_value, other.max_value)

    def percentiles(self) -> dict[str, float]:
        """The serving headline trio: p50 / p99 / p999."""
        return {
            "p50": self.quantile(0.50),
            "p99": self.quantile(0.99),
            "p999": self.quantile(0.999),
        }

    def to_dict(self) -> dict:
        """JSON/queue-safe form (mp workers ship sketches this way)."""
        return {
            "gamma": self.gamma,
            "buckets": {str(k): v for k, v in self.buckets.items()},
            "zero_count": self.zero_count,
            "count": self.count,
            "min": self.min_value if self.count else None,
            "max": self.max_value if self.count else None,
            "total": self.total,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "QuantileSketch":
        sk = cls(rel_err=payload["gamma"])
        sk.buckets = {int(k): v for k, v in payload["buckets"].items()}
        sk.zero_count = payload["zero_count"]
        sk.count = payload["count"]
        sk.min_value = (
            payload["min"] if payload.get("min") is not None else math.inf
        )
        sk.max_value = (
            payload["max"] if payload.get("max") is not None else -math.inf
        )
        sk.total = payload["total"]
        return sk


@dataclass
class ServingStats:
    """Open-system results of one ``serve`` run.

    ``emitted`` is the arrival process's ledger; ``injected`` + ``shed``
    must equal it (the open-system conservation oracle).  ``latency``
    holds completion latencies — enqueue→complete ticks on the fabric,
    release→claim / post→execute nanoseconds on the real backends — and
    ``slo_attained`` counts completions within ``slo_ticks``.
    """

    emitted: int = 0
    injected: int = 0
    shed: int = 0
    completed: int = 0
    handoffs: int = 0               # elastic leave residue re-homed
    leaves: int = 0                 # elastic membership changes applied
    joins: int = 0
    slo_ticks: int = 0              # 0 = no SLO configured
    slo_attained: int = 0
    checksum: int = 0               # xor-mix64 over completed seqs
    latency: QuantileSketch = field(default_factory=QuantileSketch)

    @property
    def slo_fraction(self) -> float:
        """Fraction of completed tasks inside the SLO (1.0 if no SLO)."""
        if not self.slo_ticks or not self.completed:
            return 1.0
        return self.slo_attained / self.completed

    @property
    def shed_fraction(self) -> float:
        return self.shed / self.emitted if self.emitted else 0.0

    def to_dict(self) -> dict:
        return {
            "emitted": self.emitted,
            "injected": self.injected,
            "shed": self.shed,
            "completed": self.completed,
            "handoffs": self.handoffs,
            "leaves": self.leaves,
            "joins": self.joins,
            "slo_ticks": self.slo_ticks,
            "slo_attained": self.slo_attained,
            "checksum": self.checksum,
            "latency": self.latency.to_dict(),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ServingStats":
        payload = dict(payload)
        latency = QuantileSketch.from_dict(payload.pop("latency"))
        return cls(latency=latency, **payload)


@dataclass
class WorkerStats:
    """Counters accumulated by one worker PE."""

    rank: int = 0
    tasks_executed: int = 0
    tasks_spawned: int = 0
    task_time: float = 0.0          # virtual seconds inside task bodies
    steal_time: float = 0.0         # successful steal operations (Figs. 7e/8e)
    search_time: float = 0.0        # failed attempts + victim hunting (7f/8f)
    acquire_time: float = 0.0
    release_time: float = 0.0
    steals_ok: int = 0
    steals_failed: int = 0
    releases: int = 0               # split-point exposures performed
    acquires: int = 0               # split-point reclaims performed
    tasks_stolen: int = 0           # tasks this PE stole from others
    probes: int = 0                 # damping probe count
    termination_time: float = 0.0   # token handling + final drain
    #: Histogram of successful steal volumes: {block size: count}.  The
    #: steal-half schedule makes this roughly geometric.
    steal_volumes: dict[int, int] = field(default_factory=dict)
    #: Virtual time this PE executed its first task (-1.0 if it never did)
    #: — the per-PE work-dispersal latency.
    first_task_time: float = -1.0
    # -- fault/recovery counters (all zero on a reliable fabric) --------
    steal_timeouts: int = 0         # steal ops that raised FabricTimeoutError
    steal_retries: int = 0          # same-victim retries after a timeout
    steals_abandoned: int = 0       # claimed blocks given up (victim died)
    quarantines: int = 0            # victims this PE quarantined
    locks_recovered: int = 0        # expired SDC lock leases broken open

    def note_steal_volume(self, ntasks: int) -> None:
        """Record one successful steal's block size."""
        self.steal_volumes[ntasks] = self.steal_volumes.get(ntasks, 0) + 1

    @property
    def steal_attempts(self) -> int:
        """All claiming steal attempts, successful or not."""
        return self.steals_ok + self.steals_failed

    @property
    def overhead_time(self) -> float:
        """Total load-balancer overhead this worker accumulated."""
        return (
            self.steal_time
            + self.search_time
            + self.acquire_time
            + self.release_time
        )


@dataclass
class RunStats:
    """Aggregated results of one pool execution."""

    npes: int
    runtime: float                      # virtual wall-clock of the run
    workers: list[WorkerStats] = field(default_factory=list)
    comm: dict[str, int] = field(default_factory=dict)
    #: Fabric-level fault counters (``FaultInjector.snapshot()``); empty
    #: when the run used a reliable fabric.
    faults: dict[str, int] = field(default_factory=dict)
    #: Open-system serving results (``ServingStats``); ``None`` for the
    #: classic closed-batch runs.
    serving: ServingStats | None = None
    #: Shard-execution record (``ShardedTaskPool._sharding_stats()``):
    #: shard count, effective transport, host CPU count, and — for
    #: multi-shard runs — the coordinator's round/grant/byte counters.
    #: ``None`` for pools that never touched the sharding layer.
    sharding: dict | None = None

    @property
    def total_tasks(self) -> int:
        """Tasks executed across all PEs."""
        return sum(w.tasks_executed for w in self.workers)

    @property
    def total_spawned(self) -> int:
        """Tasks ever enqueued (seeds + dynamic spawns)."""
        return sum(w.tasks_spawned for w in self.workers)

    @property
    def throughput(self) -> float:
        """Tasks completed per second of virtual time (Figs. 7a/8a)."""
        return self.total_tasks / self.runtime if self.runtime > 0 else 0.0

    @property
    def total_task_time(self) -> float:
        """Sum of task compute time across PEs."""
        return sum(w.task_time for w in self.workers)

    @property
    def parallel_efficiency(self) -> float:
        """Measured vs ideal runtime (Figs. 7c/8c).

        Ideal execution spreads total task compute time perfectly over
        all PEs with zero balancing overhead.
        """
        if self.runtime <= 0:
            return 0.0
        ideal = self.total_task_time / self.npes
        return ideal / self.runtime

    @property
    def total_steal_time(self) -> float:
        """Aggregate successful-steal time (Figs. 7e/8e)."""
        return sum(w.steal_time for w in self.workers)

    @property
    def total_search_time(self) -> float:
        """Aggregate work-search time (Figs. 7f/8f)."""
        return sum(w.search_time for w in self.workers)

    @property
    def total_steals(self) -> int:
        """Successful steal operations across the run."""
        return sum(w.steals_ok for w in self.workers)

    @property
    def total_failed_steals(self) -> int:
        """Failed steal attempts across the run."""
        return sum(w.steals_failed for w in self.workers)

    @property
    def total_steal_timeouts(self) -> int:
        """Timed-out steal operations across the run."""
        return sum(w.steal_timeouts for w in self.workers)

    @property
    def total_steal_retries(self) -> int:
        """Post-timeout same-victim retries across the run."""
        return sum(w.steal_retries for w in self.workers)

    @property
    def total_quarantines(self) -> int:
        """Victim quarantine events across the run."""
        return sum(w.quarantines for w in self.workers)

    @property
    def total_locks_recovered(self) -> int:
        """Expired SDC lock leases broken open across the run."""
        return sum(w.locks_recovered for w in self.workers)

    @property
    def total_steals_abandoned(self) -> int:
        """Claimed-then-abandoned steal blocks across the run."""
        return sum(w.steals_abandoned for w in self.workers)

    def steal_volume_histogram(self) -> dict[int, int]:
        """Merged histogram of successful steal block sizes."""
        out: dict[int, int] = {}
        for w in self.workers:
            for size, count in w.steal_volumes.items():
                out[size] = out.get(size, 0) + count
        return out

    @property
    def dispersal_time(self) -> float:
        """Time until the *last* participating PE got its first task.

        The work-dispersal latency the BPC benchmark stresses — how long
        the load balancer takes to put everyone to work.  0.0 when no PE
        executed anything.
        """
        times = [w.first_task_time for w in self.workers if w.first_task_time >= 0]
        return max(times) if times else 0.0

    def balance_ratio(self) -> float:
        """max/mean of per-PE executed task counts (1.0 = perfect)."""
        counts = [w.tasks_executed for w in self.workers]
        mean = sum(counts) / len(counts) if counts else 0.0
        return max(counts) / mean if mean > 0 else 0.0

    @property
    def idle_fraction(self) -> float:
        """Fraction of total PE-time not spent computing or balancing.

        ``1 - (task time + balancing overhead) / (P * runtime)`` — the
        share of machine time lost to waiting (work droughts, backoff,
        termination detection).
        """
        if self.runtime <= 0 or self.npes == 0:
            return 0.0
        busy = sum(w.task_time + w.overhead_time for w in self.workers)
        frac = 1.0 - busy / (self.npes * self.runtime)
        return max(0.0, min(1.0, frac))

    def to_json(self) -> str:
        """Serialize the full run record (for archiving raw results).

        The ``faults`` key is omitted for reliable-fabric runs so their
        archives stay byte-identical to pre-fault-support ones.
        """
        payload = {
            "npes": self.npes,
            "runtime": self.runtime,
            "workers": [asdict(w) for w in self.workers],
            "comm": self.comm,
        }
        if self.faults:
            payload["faults"] = self.faults
        if self.serving is not None:
            payload["serving"] = self.serving.to_dict()
        if self.sharding is not None:
            payload["sharding"] = self.sharding
        return json.dumps(payload)

    @classmethod
    def from_json(cls, text: str) -> "RunStats":
        """Inverse of :meth:`to_json`."""
        payload = json.loads(text)
        workers = []
        for w in payload["workers"]:
            # JSON stringifies histogram keys; restore them.
            w["steal_volumes"] = {
                int(k): v for k, v in w.get("steal_volumes", {}).items()
            }
            workers.append(WorkerStats(**w))
        return cls(
            npes=payload["npes"],
            runtime=payload["runtime"],
            workers=workers,
            comm=payload.get("comm", {}),
            faults=payload.get("faults", {}),
            serving=(
                ServingStats.from_dict(payload["serving"])
                if "serving" in payload
                else None
            ),
            sharding=payload.get("sharding"),
        )

    def summary(self) -> dict[str, float]:
        """Flat dict of the headline numbers (for reports and CSV)."""
        out = self._summary_base()
        if self.serving is not None:
            pct = self.serving.latency.percentiles()
            out.update(
                {
                    "arrivals_emitted": self.serving.emitted,
                    "arrivals_injected": self.serving.injected,
                    "arrivals_shed": self.serving.shed,
                    "serving_completed": self.serving.completed,
                    "latency_p50": pct["p50"],
                    "latency_p99": pct["p99"],
                    "latency_p999": pct["p999"],
                    "slo_fraction": self.serving.slo_fraction,
                }
            )
        if self.sharding is not None:
            out.update(
                {
                    "nshards": self.sharding.get("nshards", 1),
                    "shard_rounds": self.sharding.get("rounds", 0),
                    "shard_grants": self.sharding.get("grants", 0),
                    "exchange_bytes": self.sharding.get("exchange_bytes", 0),
                    "host_cpus": self.sharding.get("host_cpus", 0),
                }
            )
        return out

    def _summary_base(self) -> dict[str, float]:
        return {
            "npes": self.npes,
            "runtime": self.runtime,
            "tasks": self.total_tasks,
            "throughput": self.throughput,
            "efficiency": self.parallel_efficiency,
            "steal_time": self.total_steal_time,
            "search_time": self.total_search_time,
            "steals_ok": self.total_steals,
            "steals_failed": self.total_failed_steals,
            "comm_total": self.comm.get("total", 0),
            "comm_blocking": self.comm.get("blocking", 0),
            "comm_bytes": self.comm.get("bytes", 0),
            "steal_timeouts": self.total_steal_timeouts,
            "steal_retries": self.total_steal_retries,
            "quarantines": self.total_quarantines,
            "locks_recovered": self.total_locks_recovered,
            "steals_abandoned": self.total_steals_abandoned,
            "dropped_ops": self.faults.get("dropped_ops", 0),
            "pes_killed": self.faults.get("pes_killed", 0),
        }
