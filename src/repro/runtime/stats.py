"""Per-worker and per-run statistics.

The paper's evaluation (Figs. 7e/7f/8e/8f) splits load-balancer overhead
into *steal time* — time spent in successful steal operations — and
*search time* — time spent looking for work, including failed steal
attempts.  Workers accumulate both, along with task counts and queue-
management overheads, and :class:`RunStats` aggregates them into the
series the figures plot.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field


@dataclass
class WorkerStats:
    """Counters accumulated by one worker PE."""

    rank: int = 0
    tasks_executed: int = 0
    tasks_spawned: int = 0
    task_time: float = 0.0          # virtual seconds inside task bodies
    steal_time: float = 0.0         # successful steal operations (Figs. 7e/8e)
    search_time: float = 0.0        # failed attempts + victim hunting (7f/8f)
    acquire_time: float = 0.0
    release_time: float = 0.0
    steals_ok: int = 0
    steals_failed: int = 0
    releases: int = 0               # split-point exposures performed
    acquires: int = 0               # split-point reclaims performed
    tasks_stolen: int = 0           # tasks this PE stole from others
    probes: int = 0                 # damping probe count
    termination_time: float = 0.0   # token handling + final drain
    #: Histogram of successful steal volumes: {block size: count}.  The
    #: steal-half schedule makes this roughly geometric.
    steal_volumes: dict[int, int] = field(default_factory=dict)
    #: Virtual time this PE executed its first task (-1.0 if it never did)
    #: — the per-PE work-dispersal latency.
    first_task_time: float = -1.0
    # -- fault/recovery counters (all zero on a reliable fabric) --------
    steal_timeouts: int = 0         # steal ops that raised FabricTimeoutError
    steal_retries: int = 0          # same-victim retries after a timeout
    steals_abandoned: int = 0       # claimed blocks given up (victim died)
    quarantines: int = 0            # victims this PE quarantined
    locks_recovered: int = 0        # expired SDC lock leases broken open

    def note_steal_volume(self, ntasks: int) -> None:
        """Record one successful steal's block size."""
        self.steal_volumes[ntasks] = self.steal_volumes.get(ntasks, 0) + 1

    @property
    def steal_attempts(self) -> int:
        """All claiming steal attempts, successful or not."""
        return self.steals_ok + self.steals_failed

    @property
    def overhead_time(self) -> float:
        """Total load-balancer overhead this worker accumulated."""
        return (
            self.steal_time
            + self.search_time
            + self.acquire_time
            + self.release_time
        )


@dataclass
class RunStats:
    """Aggregated results of one pool execution."""

    npes: int
    runtime: float                      # virtual wall-clock of the run
    workers: list[WorkerStats] = field(default_factory=list)
    comm: dict[str, int] = field(default_factory=dict)
    #: Fabric-level fault counters (``FaultInjector.snapshot()``); empty
    #: when the run used a reliable fabric.
    faults: dict[str, int] = field(default_factory=dict)

    @property
    def total_tasks(self) -> int:
        """Tasks executed across all PEs."""
        return sum(w.tasks_executed for w in self.workers)

    @property
    def total_spawned(self) -> int:
        """Tasks ever enqueued (seeds + dynamic spawns)."""
        return sum(w.tasks_spawned for w in self.workers)

    @property
    def throughput(self) -> float:
        """Tasks completed per second of virtual time (Figs. 7a/8a)."""
        return self.total_tasks / self.runtime if self.runtime > 0 else 0.0

    @property
    def total_task_time(self) -> float:
        """Sum of task compute time across PEs."""
        return sum(w.task_time for w in self.workers)

    @property
    def parallel_efficiency(self) -> float:
        """Measured vs ideal runtime (Figs. 7c/8c).

        Ideal execution spreads total task compute time perfectly over
        all PEs with zero balancing overhead.
        """
        if self.runtime <= 0:
            return 0.0
        ideal = self.total_task_time / self.npes
        return ideal / self.runtime

    @property
    def total_steal_time(self) -> float:
        """Aggregate successful-steal time (Figs. 7e/8e)."""
        return sum(w.steal_time for w in self.workers)

    @property
    def total_search_time(self) -> float:
        """Aggregate work-search time (Figs. 7f/8f)."""
        return sum(w.search_time for w in self.workers)

    @property
    def total_steals(self) -> int:
        """Successful steal operations across the run."""
        return sum(w.steals_ok for w in self.workers)

    @property
    def total_failed_steals(self) -> int:
        """Failed steal attempts across the run."""
        return sum(w.steals_failed for w in self.workers)

    @property
    def total_steal_timeouts(self) -> int:
        """Timed-out steal operations across the run."""
        return sum(w.steal_timeouts for w in self.workers)

    @property
    def total_steal_retries(self) -> int:
        """Post-timeout same-victim retries across the run."""
        return sum(w.steal_retries for w in self.workers)

    @property
    def total_quarantines(self) -> int:
        """Victim quarantine events across the run."""
        return sum(w.quarantines for w in self.workers)

    @property
    def total_locks_recovered(self) -> int:
        """Expired SDC lock leases broken open across the run."""
        return sum(w.locks_recovered for w in self.workers)

    @property
    def total_steals_abandoned(self) -> int:
        """Claimed-then-abandoned steal blocks across the run."""
        return sum(w.steals_abandoned for w in self.workers)

    def steal_volume_histogram(self) -> dict[int, int]:
        """Merged histogram of successful steal block sizes."""
        out: dict[int, int] = {}
        for w in self.workers:
            for size, count in w.steal_volumes.items():
                out[size] = out.get(size, 0) + count
        return out

    @property
    def dispersal_time(self) -> float:
        """Time until the *last* participating PE got its first task.

        The work-dispersal latency the BPC benchmark stresses — how long
        the load balancer takes to put everyone to work.  0.0 when no PE
        executed anything.
        """
        times = [w.first_task_time for w in self.workers if w.first_task_time >= 0]
        return max(times) if times else 0.0

    def balance_ratio(self) -> float:
        """max/mean of per-PE executed task counts (1.0 = perfect)."""
        counts = [w.tasks_executed for w in self.workers]
        mean = sum(counts) / len(counts) if counts else 0.0
        return max(counts) / mean if mean > 0 else 0.0

    @property
    def idle_fraction(self) -> float:
        """Fraction of total PE-time not spent computing or balancing.

        ``1 - (task time + balancing overhead) / (P * runtime)`` — the
        share of machine time lost to waiting (work droughts, backoff,
        termination detection).
        """
        if self.runtime <= 0 or self.npes == 0:
            return 0.0
        busy = sum(w.task_time + w.overhead_time for w in self.workers)
        frac = 1.0 - busy / (self.npes * self.runtime)
        return max(0.0, min(1.0, frac))

    def to_json(self) -> str:
        """Serialize the full run record (for archiving raw results).

        The ``faults`` key is omitted for reliable-fabric runs so their
        archives stay byte-identical to pre-fault-support ones.
        """
        payload = {
            "npes": self.npes,
            "runtime": self.runtime,
            "workers": [asdict(w) for w in self.workers],
            "comm": self.comm,
        }
        if self.faults:
            payload["faults"] = self.faults
        return json.dumps(payload)

    @classmethod
    def from_json(cls, text: str) -> "RunStats":
        """Inverse of :meth:`to_json`."""
        payload = json.loads(text)
        workers = []
        for w in payload["workers"]:
            # JSON stringifies histogram keys; restore them.
            w["steal_volumes"] = {
                int(k): v for k, v in w.get("steal_volumes", {}).items()
            }
            workers.append(WorkerStats(**w))
        return cls(
            npes=payload["npes"],
            runtime=payload["runtime"],
            workers=workers,
            comm=payload.get("comm", {}),
            faults=payload.get("faults", {}),
        )

    def summary(self) -> dict[str, float]:
        """Flat dict of the headline numbers (for reports and CSV)."""
        return {
            "npes": self.npes,
            "runtime": self.runtime,
            "tasks": self.total_tasks,
            "throughput": self.throughput,
            "efficiency": self.parallel_efficiency,
            "steal_time": self.total_steal_time,
            "search_time": self.total_search_time,
            "steals_ok": self.total_steals,
            "steals_failed": self.total_failed_steals,
            "comm_total": self.comm.get("total", 0),
            "comm_blocking": self.comm.get("blocking", 0),
            "comm_bytes": self.comm.get("bytes", 0),
            "steal_timeouts": self.total_steal_timeouts,
            "steal_retries": self.total_steal_retries,
            "quarantines": self.total_quarantines,
            "locks_recovered": self.total_locks_recovered,
            "steals_abandoned": self.total_steals_abandoned,
            "dropped_ops": self.faults.get("dropped_ops", 0),
            "pes_killed": self.faults.get("pes_killed", 0),
        }
