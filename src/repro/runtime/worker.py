"""Worker processing-element main loop (paper §2.1, §3, §4).

Each PE runs the Scioto-style work-first loop:

1. execute tasks LIFO from the local queue portion (batched between
   management checkpoints, the way a real owner only inspects shared
   state periodically);
2. when the shared portion is empty but local work remains, *release*
   half to thieves; when local is empty but the shared portion still has
   unclaimed tasks, *acquire* half back;
3. when the whole queue is empty, *search*: pick a random victim and
   attempt a steal — successful attempts count toward steal time,
   failed ones toward search time (Figs. 7e/f, 8e/f);
4. service termination detection every iteration.

The loop is queue-implementation agnostic: both :class:`SdcQueue` and
:class:`SwsQueue` are driven through the small adapter below, which also
hosts SWS steal damping (probe-first empty-mode, §4.3).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Generator

from ..core.damping import DampingTracker, TargetMode
from ..core.results import StealResult, StealStatus
from ..core.sdc_queue import SdcQueue
from ..core.sws_queue import SwsQueue
from ..fabric.engine import Delay
from ..fabric.errors import FabricTimeoutError, ProtocolError
from .inbox import Inbox
from .lifeline import LifelineManager
from .registry import TaskContext, TaskRegistry
from .stats import WorkerStats
from .task import Task, parse_record
from .termination import TerminationDetector
from .victim import VictimSelector


@dataclass(frozen=True)
class WorkerConfig:
    """Tunables of the worker loop.

    Attributes
    ----------
    batch_max:
        Upper bound on tasks executed between management checkpoints.
    task_overhead:
        Per-task local queue manipulation cost (seconds) added to each
        task's compute time — dequeue, spawn enqueues, bookkeeping.
    steal_backoff:
        Initial pause after a failed steal attempt before trying the next
        victim.  Consecutive failures back off exponentially up to
        ``steal_backoff_max``; any success (or local work) resets it.
    release_min_local:
        Minimum local tasks required before releasing half to thieves
        (releasing the last task would immediately starve the owner).
    damping:
        Enable SWS steal damping (ignored for SDC).
    progress_every:
        Run the space-reclaim progress scan every N batches.
    spawn_policy:
        ``"work_first"`` (default, Cilk-style: keep executing, share at
        management checkpoints) or ``"help_first"`` (SLAW-style: break
        the batch after any spawn so fresh work is released to thieves
        as early as possible — faster dispersal, more release churn).
    sample_queue:
        Record a (virtual time, local count, stealable count) sample at
        every management checkpoint into ``Worker.samples`` — occupancy
        traces for analysis/visualization.  Off by default (memory).
    idle_wait:
        With lifelines active, a quiescent non-zero PE blocks on
        ``wait_until_any`` (inbox delivery / token / termination flag)
        instead of backoff polling — zero idle events, hardware-style
        wait/wake.  PE 0 keeps polling (it initiates detection rounds).
    steal_timeout_retries:
        Fault mode: same-victim retries after a steal op raises
        :class:`~repro.fabric.errors.FabricTimeoutError`, before the
        victim is reported to the selector for quarantine.
    retry_jitter:
        Fault mode: retry backoff is stretched by a uniform draw in
        ``[0, retry_jitter]`` of itself, decorrelating thieves that
        timed out against the same victim simultaneously.
    quarantine_after:
        Fault mode: consecutive retry-exhausted steals against one victim
        before the pool's :class:`~repro.runtime.victim.QuarantineSelector`
        excludes it.
    quarantine_time:
        Fault mode: base quarantine duration (virtual seconds); doubles on
        each repeat offence and decays to a re-probe on expiry.
    """

    batch_max: int = 64
    task_overhead: float = 0.15e-6
    steal_backoff: float = 1.0e-6
    steal_backoff_max: float = 64.0e-6
    release_min_local: int = 2
    damping: bool = True
    progress_every: int = 4
    spawn_policy: str = "work_first"
    sample_queue: bool = False
    idle_wait: bool = False
    steal_timeout_retries: int = 2
    retry_jitter: float = 0.5
    quarantine_after: int = 2
    quarantine_time: float = 200e-6

    def __post_init__(self) -> None:
        if self.batch_max < 1:
            raise ValueError(f"batch_max must be >= 1, got {self.batch_max}")
        if self.task_overhead < 0 or self.steal_backoff < 0:
            raise ValueError("overheads must be non-negative")
        if self.steal_backoff_max < self.steal_backoff:
            raise ValueError("steal_backoff_max must be >= steal_backoff")
        if self.release_min_local < 1:
            raise ValueError("release_min_local must be >= 1")
        if self.progress_every < 1:
            raise ValueError("progress_every must be >= 1")
        if self.spawn_policy not in ("work_first", "help_first"):
            raise ValueError(
                f"spawn_policy must be work_first|help_first, "
                f"got {self.spawn_policy!r}"
            )
        if self.steal_timeout_retries < 0:
            raise ValueError("steal_timeout_retries must be non-negative")
        if self.retry_jitter < 0:
            raise ValueError("retry_jitter must be non-negative")
        if self.quarantine_after < 1:
            raise ValueError("quarantine_after must be >= 1")
        if self.quarantine_time <= 0:
            raise ValueError("quarantine_time must be positive")


class QueueDriver:
    """Uniform owner/thief interface over the queue implementations.

    Dispatches on the queue's ``driver_family`` vocabulary: ``"sws"``
    (:class:`SwsQueue` and the Figure-3 variant — stealval/probe,
    generator release, steal damping), ``"sdc"`` (:class:`SdcQueue` —
    plain release, locked acquire) or ``"ffmult"`` (the fence-free
    multiplicity deque — plain release/acquire, duplicate accounting).
    """

    def __init__(self, queue, damping: DampingTracker | None) -> None:
        self.queue = queue
        family = getattr(queue, "driver_family", None)
        if family is None:
            family = "sdc" if isinstance(queue, SdcQueue) else "sws"
        self.family = family
        self.is_sdc = family == "sdc"
        self.is_sws = family == "sws"
        self.damping = damping if self.is_sws else None

    @property
    def local_count(self) -> int:
        """Tasks in the owner-only portion."""
        return self.queue.local_count

    @property
    def stealable_remaining(self) -> int:
        """Unclaimed tasks advertised to thieves."""
        if self.is_sws:
            return self.queue.shared_remaining
        return self.queue.shared_count

    @property
    def spawn_credit(self) -> int:
        """Duplicate handouts charged to this queue (at-least-once
        protocols only; exactly-once queues report 0).

        Termination detection needs every execution matched by a
        production: a duplicated task executes twice against one spawn,
        so the owner reports ``spawned + spawn_credit``.  The queue
        tallies each duplicate *at handout time* — before the duplicate
        can execute — which keeps the count monotone-safe for the
        four-counter detector.
        """
        return getattr(self.queue, "dup_handouts", 0)

    def enqueue(self, record: bytes) -> None:
        """Append a serialized task locally."""
        self.queue.enqueue(record)

    def dequeue(self) -> bytes | None:
        """Pop the newest local task, or None."""
        return self.queue.dequeue()

    def progress(self) -> int:
        """Reclaim completed-steal space; returns slots freed."""
        return self.queue.progress()

    def release_op(self) -> Generator:
        """Expose half the local portion; generator, returns task count."""
        if self.is_sws:
            n = yield from self.queue.release()
            return n
        return self.queue.release()

    def acquire_op(self) -> Generator:
        """Reclaim half the shared portion; generator, returns task count."""
        n = yield from self.queue.acquire()
        return n

    def steal_op(self, victim: int, stats: WorkerStats) -> Generator:
        """One steal attempt against ``victim``, damping-aware for SWS."""
        if self.damping is not None:
            if self.damping.mode(victim) is TargetMode.EMPTY:
                view = yield from self.queue.probe(victim)
                stats.probes += 1
                has_work = self.damping.view_has_work(view)
                self.damping.note_probe(victim, has_work)
                if not has_work:
                    return StealResult(StealStatus.EMPTY, victim)
            result = yield from self.queue.steal(victim)
            if result.success:
                self.damping.note_success(victim)
            elif result.status is StealStatus.EMPTY:
                # Re-decode the failure for the damping heuristic.
                view = yield from self.queue.probe(victim)
                stats.probes += 1
                self.damping.note_failed_claim(victim, view)
            return result
        result = yield from self.queue.steal(victim)
        return result


class Worker:
    """One simulated PE executing the task-pool loop."""

    def __init__(
        self,
        rank: int,
        npes: int,
        driver: QueueDriver,
        registry: TaskRegistry,
        selector: VictimSelector | None,
        termination: TerminationDetector,
        config: WorkerConfig,
        task_size: int,
        inbox: Inbox | None = None,
        lifeline: LifelineManager | None = None,
        seed: int = 0,
    ) -> None:
        self.rank = rank
        self.npes = npes
        self.driver = driver
        self.registry = registry
        self.selector = selector
        self.term = termination
        self.cfg = config
        self.task_size = task_size
        self.stats = WorkerStats(rank=rank)
        self.tc = TaskContext(rank=rank, npes=npes)
        self.inbox = inbox
        self.lifeline = lifeline
        if lifeline is not None and inbox is None:
            raise ProtocolError("lifelines require the remote-spawn inbox")
        self._engine = driver.queue.system.ctx.engine
        # Fault mode: timed-out steals are retried with jittered backoff.
        # The jitter RNG is drawn from ONLY on fault paths, so reliable
        # runs stay bit-identical regardless of seed.
        self._fault_mode = driver.queue.system.ctx.faults is not None
        self._retry_rng = random.Random((seed << 16) ^ (rank * 0x9E3779B1) ^ 0xFA117)
        self._batches = 0
        self._backoff = config.steal_backoff
        self._remote_spawns: list[tuple[int, Task]] = []
        #: Elastic membership directory (serving mode); ``None`` keeps
        #: the classic always-on behaviour.  Set by the serving layer
        #: after construction, together with an inbox requirement.
        self.elastic = None
        self._parked = False
        self.elastic_handoffs = 0
        #: (virtual time, local count, stealable count) samples, when
        #: ``sample_queue`` is enabled.
        self.samples: list[tuple[float, int, int]] = []

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._engine.now

    def seed(self, tasks: list[Task]) -> None:
        """Place initial tasks on this PE's queue (pre-run, untimed)."""
        for t in tasks:
            self.driver.enqueue(t.serialize(self.task_size))
        self.stats.tasks_spawned += len(tasks)

    # ------------------------------------------------------------------
    def run(self) -> Generator:
        """The PE's process body; finishes at global termination."""
        pe = self.driver.queue.pe
        yield pe.barrier_all()
        while True:
            idle = self.driver.local_count == 0
            if self._fault_mode:
                # Quiescent = holds no live work at all: nothing local,
                # nothing advertised to thieves, inbox drained.  Feeds
                # the fault-mode termination test's all-quiescent bit.
                quiescent = (
                    idle
                    and self.driver.stealable_remaining == 0
                    and (self.inbox is None or not self.inbox.pending_hint)
                )
                done = yield from self.term.service(
                    self.stats.tasks_spawned + self.driver.spawn_credit,
                    self.stats.tasks_executed,
                    idle,
                    quiescent=quiescent,
                )
            else:
                done = yield from self.term.service(
                    self.stats.tasks_spawned + self.driver.spawn_credit,
                    self.stats.tasks_executed,
                    idle,
                )
            if done or self.term.terminated:
                break

            if self.inbox is not None:
                self._drain_inbox()

            if self.elastic is not None:
                if not self.elastic.is_active(self.rank):
                    yield from self._elastic_park()
                    continue
                if self._parked:
                    # Rejoined: resume stealing with a fresh backoff.
                    self._parked = False
                    self._backoff = self.cfg.steal_backoff

            if (
                self.lifeline is not None
                and self.lifeline.active
                and self.driver.local_count > 0
            ):
                # A lifeline delivery arrived: withdraw the others.
                yield from self.lifeline.retract()

            if self.driver.local_count > 0:
                self._backoff = self.cfg.steal_backoff
                yield from self._execute_batch()
                yield from self._manage()
                continue

            if self.driver.stealable_remaining > 0:
                t0 = self.now
                got = yield from self.driver.acquire_op()
                self.stats.acquire_time += self.now - t0
                self.stats.acquires += 1
                if got:
                    continue

            # Fully idle: reclaim space, then hunt for work.
            self.driver.progress()
            if self.npes == 1 or self.selector is None:
                yield Delay(self.cfg.steal_backoff)
                continue
            if self.lifeline is not None:
                if self.lifeline.active:
                    # Quiescent: no steal traffic; wait for a delivery.
                    if self.cfg.idle_wait and self.rank != 0:
                        conds = list(self.term.wake_conditions())
                        conds.append(self.inbox.wake_condition())
                        yield self.driver.queue.pe.wait_until_any(conds)
                    else:
                        yield Delay(self._backoff)
                        self._backoff = min(
                            self.cfg.steal_backoff_max, self._backoff * 2
                        )
                    continue
                if self.lifeline.should_activate:
                    yield from self.lifeline.activate()
                    continue
            victim = self.selector.next_victim()
            t0 = self.now
            result = yield from self._attempt_steal(victim)
            dt = self.now - t0
            if self.lifeline is not None:
                self.lifeline.note_steal(result.success)
            noter = getattr(self.selector, "note", None)
            if noter is not None:
                noter(result.success)
            if result.success:
                self.stats.steal_time += dt
                self.stats.steals_ok += 1
                self.stats.tasks_stolen += result.ntasks
                self.stats.note_steal_volume(result.ntasks)
                self._backoff = self.cfg.steal_backoff
                for rec in result.records:
                    self.driver.enqueue(rec)
            else:
                self.stats.search_time += dt
                self.stats.steals_failed += 1
                yield Delay(self._backoff)
                self._backoff = min(self.cfg.steal_backoff_max, self._backoff * 2)
        # Drain any passive completion notifications before exiting.
        if self._fault_mode:
            try:
                yield pe.quiet()
            except FabricTimeoutError:
                pass  # stragglers drain in background events after exit
        else:
            yield pe.quiet()

    def _attempt_steal(self, victim: int) -> Generator:
        """One steal, with bounded retry + jittered backoff on timeouts.

        On a reliable fabric this is exactly ``driver.steal_op`` (no
        timeouts can occur, nothing extra yields).  Under faults, a
        :class:`FabricTimeoutError` is retried against the same victim up
        to ``steal_timeout_retries`` times with exponential backoff and a
        jitter stretch; exhaustion reports the victim to the selector
        (quarantine) and surfaces as a failed :class:`StealResult`.
        """
        retries = 0
        while True:
            try:
                result = yield from self.driver.steal_op(victim, self.stats)
            except FabricTimeoutError:
                self.stats.steal_timeouts += 1
                if retries >= self.cfg.steal_timeout_retries:
                    note_timeout = getattr(self.selector, "note_timeout", None)
                    if note_timeout is not None:
                        note_timeout(victim)
                    return StealResult(StealStatus.TIMEOUT, victim)
                retries += 1
                self.stats.steal_retries += 1
                pause = min(
                    self.cfg.steal_backoff * (2 ** (retries - 1)),
                    self.cfg.steal_backoff_max,
                )
                pause *= 1.0 + self.cfg.retry_jitter * self._retry_rng.random()
                yield Delay(pause)
                continue
            if result.status is StealStatus.ABANDONED:
                self.stats.steals_abandoned += 1
            note_steal = getattr(self.selector, "note_steal", None)
            if note_steal is not None:
                note_steal(victim, result.success)
            return result

    # ------------------------------------------------------------------
    def _execute_batch(self) -> Generator:
        """Run up to ``batch_max`` local tasks as one compute segment."""
        drv = self.driver
        queue = drv.queue
        stats = self.stats
        budget = min(self.cfg.batch_max, queue.local_count)
        if stats.tasks_executed == 0 and budget > 0:
            stats.first_task_time = self.now
        # Loop-invariant hoists.  The loop body never yields, so no engine
        # event can interleave with it: the advertised shared portion —
        # mutated only by remote atomics (fabric events) or the owner's
        # own release/acquire (not called here) — is constant for the
        # whole batch, so its emptiness check is evaluated once.
        dequeue = queue.dequeue
        enqueue = queue.enqueue
        fns = self.registry.dispatch_table()
        nfns = len(fns)
        tc = self.tc
        task_size = self.task_size
        overhead = self.cfg.task_overhead
        help_first = self.cfg.spawn_policy == "help_first"
        multi = self.npes > 1
        release_min = self.cfg.release_min_local
        shared_empty = multi and drv.stealable_remaining == 0
        executed = 0
        duration = 0.0
        spawned = 0
        task_time = 0.0
        while executed < budget:
            rec = dequeue()
            if rec is None:
                break
            fn_id, payload = parse_record(rec)
            if fn_id >= nfns:
                raise ProtocolError(f"task references unregistered fn_id {fn_id}")
            outcome = fns[fn_id](payload, tc)
            children = outcome.children
            for child in children:
                enqueue(child.serialize(task_size))
            if outcome.remote_children:
                if self.inbox is None:
                    raise ProtocolError(
                        "remote_children require TaskPool(remote_spawn=True)"
                    )
                # Counted as spawned now (before any receiver can run
                # them), sent after the batch's compute segment.
                self._remote_spawns.extend(outcome.remote_children)
                spawned += len(outcome.remote_children)
            spawned += len(children)
            task_time += outcome.duration
            duration += outcome.duration + overhead
            executed += 1
            if (
                multi
                and ((help_first and children) or shared_empty)
                and queue.local_count >= release_min
            ):
                # Break the batch so _manage can release promptly.
                break
        stats.tasks_spawned += spawned
        stats.task_time += task_time
        stats.tasks_executed += executed
        if duration > 0:
            yield Delay(duration)
        if self._remote_spawns:
            spawns, self._remote_spawns = self._remote_spawns, []
            for target, task in spawns:
                yield from self.inbox.send(target, task.serialize(self.task_size))

    def _drain_inbox(self) -> None:
        """Move committed remote spawns onto the local queue (local ops)."""
        for record in self.inbox.drain():
            self.driver.enqueue(record)

    def _elastic_park(self) -> Generator:
        """Graceful leave: drain the queue, hand off residue, go passive.

        Mirrors the fail-stop plumbing but loses nothing: everything
        advertised to thieves is reclaimed (acquire), then the whole
        local portion is handed to the lowest active rank through the
        remote-spawn inbox.  Handoffs do NOT bump ``tasks_spawned`` —
        the producer already counted these tasks, and the receiver's
        inbox drain enqueues without a bump, so the four-counter books
        and the conservation oracle stay exact.  While parked the PE
        keeps servicing termination and its inbox (late steals or
        handoff races can still deliver work, which is re-homed), so
        the ring token always flows.
        """
        drv = self.driver
        if self.inbox is None:
            raise ProtocolError("elastic membership requires the inbox")
        while drv.stealable_remaining > 0:
            got = yield from drv.acquire_op()
            self.stats.acquires += 1
            if not got:
                break  # a thief holds a claim; retry next iteration
        if drv.stealable_remaining == 0:
            target = self.elastic.handoff_target(self.rank)
            while True:
                rec = drv.dequeue()
                if rec is None:
                    break
                yield from self.inbox.send(target, rec)
                self.elastic_handoffs += 1
            drv.progress()
            self._parked = True
        yield Delay(self._backoff)
        self._backoff = min(self.cfg.steal_backoff_max, self._backoff * 2)

    def _manage(self) -> Generator:
        """Post-batch queue management: release + periodic progress."""
        drv = self.driver
        self._batches += 1
        if self.cfg.sample_queue:
            self.samples.append(
                (self.now, drv.local_count, drv.stealable_remaining)
            )
        if self._batches % self.cfg.progress_every == 0:
            drv.progress()
        shared = drv.stealable_remaining
        want_release = shared == 0
        if (
            self.cfg.spawn_policy == "help_first"
            and drv.is_sws
            and shared < drv.local_count // 2
        ):
            # Help-first: keep the shared portion topped up; SWS release
            # merges the unclaimed remainder so this is safe mid-allotment
            # (SDC release requires an empty shared portion, so the SDC
            # help-first policy degenerates to eager batch breaking only).
            want_release = True
        if (
            self.npes > 1
            and want_release
            and drv.local_count >= self.cfg.release_min_local
        ):
            t0 = self.now
            yield from drv.release_op()
            self.stats.release_time += self.now - t0
            self.stats.releases += 1
        if self.lifeline is not None:
            yield from self._fulfill_lifelines()

    def _fulfill_lifelines(self) -> Generator:
        """Donor side: push surplus local tasks to quiescent buddies."""
        ll = self.lifeline
        drv = self.driver
        if drv.local_count <= ll.cfg.donor_min_local:
            return
        for requester in ll.pending_requests():
            donated: list[bytes] = []
            while (
                len(donated) < ll.cfg.donate_max
                and drv.local_count > ll.cfg.donor_min_local
            ):
                rec = drv.dequeue()
                if rec is None:
                    break
                donated.append(rec)
            if not donated:
                break
            ll.clear_request(requester)
            for rec in donated:
                yield from self.inbox.send(requester, rec)
            ll.note_donation(len(donated))
