"""Open-system serving mode on the fabric backend.

The classic :class:`~repro.runtime.pool.TaskPool` run is closed-batch.
This module layers the streaming frontend on top: a
:class:`ServingController` pre-schedules every tick of a seeded
:class:`~repro.runtime.arrivals.ArrivalProcess` as engine events, injects
each arrival into the least-loaded active PE (round-robin with an
optional shed threshold), stamps enqueue→complete latencies into a
:class:`~repro.runtime.stats.QuantileSketch`, and drives the seeded
:class:`~repro.runtime.arrivals.ElasticPlan` membership changes.

Termination still comes from the unmodified ring/tree detectors: the
controller registers itself as the termination system's
``arrival_source``, so the detectors refuse to declare quiescence while
future injections are scheduled — the run ends by draining *after* the
arrival horizon, which makes every closed-system oracle (conservation,
drain, exactly-once checksums) apply unchanged, plus the open-system
ledger checked by
:func:`~repro.runtime.oracle.check_serving_conservation`.

Elasticity reuses the fail-stop plumbing in its graceful form: a leave
drains the PE's shared portion, hands the local residue through the
remote-spawn inbox to the lowest active rank, and parks the worker (it
keeps forwarding the termination token); a join flips the directory flag
and the worker unparks on its next loop iteration.  Thieves dodge parked
victims via :class:`~repro.runtime.victim.ElasticMembership`.
"""

from __future__ import annotations

import struct

from ..fabric.engine import to_ticks
from ..fabric.errors import ProtocolError
from .arrivals import (
    ArrivalProcess,
    ElasticPlan,
    mix64,
    parse_arrival_spec,
    parse_elastic_spec,
)
from .pool import TaskPool
from .oracle import check_serving_conservation
from .registry import TaskOutcome, TaskRegistry
from .stats import QuantileSketch, RunStats, ServingStats
from .task import Task
from .victim import ElasticMembership
from .worker import WorkerConfig


class ElasticDirectory:
    """Live membership flags for one serving run.

    Engine callbacks from the :class:`ElasticPlan` mutate it; workers and
    victim selectors read it.  PE 0 is always active (it anchors
    termination detection), which the plan validator already enforces.
    """

    def __init__(self, npes: int) -> None:
        self.npes = npes
        self._active = [True] * npes
        self.leaves = 0
        self.joins = 0

    def is_active(self, rank: int) -> bool:
        return self._active[rank]

    @property
    def nactive(self) -> int:
        return sum(self._active)

    def active_ranks(self) -> list[int]:
        return [r for r in range(self.npes) if self._active[r]]

    def set_active(self, rank: int, active: bool) -> None:
        if self._active[rank] == active:
            return
        self._active[rank] = active
        if active:
            self.joins += 1
        else:
            self.leaves += 1

    def handoff_target(self, rank: int) -> int:
        """Lowest active rank other than ``rank`` (PE 0 is always there)."""
        for r in range(self.npes):
            if r != rank and self._active[r]:
                return r
        raise ProtocolError("no active PE left to hand work to")


class ServingController:
    """Injects one arrival trace into a running pool and keeps the books.

    The controller is also the pool's ``arrival_source`` (its
    :meth:`pending` gates termination) and the completion sink (the
    ``serve`` task function reports back through :meth:`complete`).
    """

    def __init__(
        self,
        pool: TaskPool,
        process: ArrivalProcess,
        fn_id: int,
        slo_s: float = 0.0,
        shed_threshold: int | None = None,
        directory: ElasticDirectory | None = None,
        latency_rel_err: float = 0.01,
    ) -> None:
        if pool.shard is not None:
            raise ProtocolError("serving mode is single-engine (no shards)")
        self.pool = pool
        self.process = process
        self.fn_id = fn_id
        self.slo_ticks = to_ticks(slo_s) if slo_s > 0 else 0
        self.shed_threshold = shed_threshold
        self.directory = directory
        self.task_size = pool.queue_config.task_size
        self.engine = pool.ctx.engine
        self.metrics = pool.ctx.metrics
        self.sketch = QuantileSketch(rel_err=latency_rel_err)
        self.injected = 0
        self.shed = 0
        self.completed = 0
        self.slo_attained = 0
        self.checksum = 0
        self._fired = 0
        self._total = 0
        self._next_rank = 0
        self._enqueue_tick: dict[int, int] = {}

    # -- termination gate ----------------------------------------------
    def pending(self) -> int:
        """Arrival events still scheduled (monotone non-increasing)."""
        return self._total - self._fired

    # -- setup ----------------------------------------------------------
    def attach(self) -> None:
        """Pre-schedule the whole trace and hook the termination gate."""
        trace = self.process.trace()
        self._total = len(trace)
        for seq, tick in enumerate(trace):
            self.engine.at_ticks(
                tick, self._make_arrival(seq), actor="arrivals"
            )
        self.pool.term_system.arrival_source = self

    def _make_arrival(self, seq: int):
        def fire() -> None:
            self._fired += 1
            self._inject(seq)
        return fire

    # -- injection -------------------------------------------------------
    def _pick_target(self) -> int | None:
        """Round-robin over active PEs, skipping overloaded queues.

        One full sweep; ``None`` means every active queue is at or over
        the shed threshold (the overload signal).  Without a threshold
        the first active PE in rotation wins — pure round-robin spread.
        """
        npes = self.pool.npes
        for _ in range(npes):
            rank = self._next_rank
            self._next_rank = (self._next_rank + 1) % npes
            if self.directory is not None and not self.directory.is_active(rank):
                continue
            if self.shed_threshold is not None:
                drv = self.pool.workers[rank].driver
                if drv.local_count + drv.stealable_remaining >= self.shed_threshold:
                    continue
            return rank
        return None

    def _inject(self, seq: int) -> None:
        target = self._pick_target()
        if target is None:
            self.shed += 1
            self.metrics.record_serving("shed")
            return
        worker = self.pool.workers[target]
        record = Task(self.fn_id, struct.pack("<I", seq)).serialize(
            self.task_size
        )
        worker.driver.enqueue(record)
        # The injection is the spawn: counting it on the target keeps the
        # four-counter termination books and the conservation oracle
        # exact (executed can never outrun spawned + injected).
        worker.stats.tasks_spawned += 1
        self.injected += 1
        self._enqueue_tick[seq] = self.engine.now_ticks
        self.metrics.record_serving("injected")

    # -- completion sink -------------------------------------------------
    def complete(self, payload: bytes) -> None:
        """Called by the serve task fn: stamp latency, SLO, checksum."""
        (seq,) = struct.unpack_from("<I", payload)
        latency = self.engine.now_ticks - self._enqueue_tick.pop(seq)
        self.sketch.add(latency)
        self.completed += 1
        if self.slo_ticks and latency <= self.slo_ticks:
            self.slo_attained += 1
        self.checksum ^= mix64(seq)

    # -- results ----------------------------------------------------------
    def serving_stats(self) -> ServingStats:
        handoffs = sum(w.elastic_handoffs for w in self.pool.workers)
        return ServingStats(
            emitted=self.process.emitted,
            injected=self.injected,
            shed=self.shed,
            completed=self.completed,
            handoffs=handoffs,
            leaves=self.directory.leaves if self.directory else 0,
            joins=self.directory.joins if self.directory else 0,
            slo_ticks=self.slo_ticks,
            slo_attained=self.slo_attained,
            checksum=self.checksum,
            latency=self.sketch,
        )

    def books(self) -> dict:
        """The open-system ledger for the conservation oracle."""
        workers = self.pool.workers
        return {
            "emitted": self.process.emitted,
            "injected": self.injected,
            "shed": self.shed,
            "spawned": sum(w.stats.tasks_spawned for w in workers),
            "executed": sum(w.stats.tasks_executed for w in workers),
            "resident": sum(
                w.driver.local_count + w.driver.stealable_remaining
                for w in workers
            ),
        }


def build_serving_registry(task_s: float) -> tuple[TaskRegistry, list]:
    """Registry with one ``serve`` fn reporting into a late-bound sink.

    The controller does not exist yet when the pool (and thus the
    registry) is built, so the fn closes over a one-slot cell the caller
    fills in afterwards.
    """
    cell: list = [None]
    registry = TaskRegistry()

    def serve_fn(payload: bytes, tc) -> TaskOutcome:
        cell[0].complete(payload)
        return TaskOutcome(duration=task_s)

    registry.register("serve", serve_fn)
    return registry, cell


def run_serve(
    npes: int,
    impl: str = "sws",
    arrival: str | ArrivalProcess = "poisson:50000",
    duration_s: float = 2e-3,
    slo_s: float = 0.0,
    seed: int = 0,
    task_s: float = 2e-6,
    shed_threshold: int | None = None,
    elastic: str | ElasticPlan | None = None,
    oracle: bool = True,
    controller_factory=ServingController,
    worker_config: WorkerConfig | None = None,
    **pool_kwargs,
) -> RunStats:
    """One open-system serving run on the fabric backend.

    The run ends when the arrival horizon passes *and* the pool drains —
    the virtual deadline is ``duration_s`` for the arrival stream, after
    which the unmodified termination detectors (gated on the controller's
    ``pending()``) declare as usual.  Returns :class:`RunStats` with the
    ``serving`` field populated; seeded runs are bit-reproducible.
    """
    if isinstance(arrival, str):
        process = parse_arrival_spec(arrival, duration_s, seed)
    else:
        process = arrival
    if elastic == "seeded":
        plan: ElasticPlan | None = ElasticPlan.seeded(seed, npes, duration_s)
    elif isinstance(elastic, str):
        plan = parse_elastic_spec(elastic)
    else:
        plan = elastic
    if plan is not None and not plan.active:
        plan = None
    if plan is not None:
        plan.validate(npes)

    registry, cell = build_serving_registry(task_s)
    pool = TaskPool(
        npes,
        registry,
        impl=impl,
        seed=seed,
        remote_spawn=plan is not None,
        oracle=oracle,
        worker_config=worker_config,
        **pool_kwargs,
    )

    directory = None
    if plan is not None:
        directory = ElasticDirectory(npes)
        engine = pool.ctx.engine
        for ev in plan.events:
            engine.at(
                ev.time_s,
                _make_membership_event(pool, directory, ev),
                actor="elastic",
            )
        for w in pool.workers:
            w.elastic = directory
            if w.selector is not None:
                w.selector = ElasticMembership(w.selector, directory)

    controller = controller_factory(
        pool,
        process,
        fn_id=registry.id_of("serve"),
        slo_s=slo_s,
        shed_threshold=shed_threshold,
        directory=directory,
    )
    cell[0] = controller
    controller.attach()

    stats = pool.run()
    if oracle:
        check_serving_conservation(controller.books())
    stats.serving = controller.serving_stats()
    return stats


def _make_membership_event(pool: TaskPool, directory: ElasticDirectory, ev):
    def fire() -> None:
        directory.set_active(ev.rank, ev.action == "join")
        pool.ctx.metrics.record_serving(ev.action)
    return fire
