"""Distributed termination detection (paper §2.1).

The pool "is processed until there are no more tasks remaining"; detecting
that moment without a coordinator is the classic termination-detection
problem.  Two four-counter (Mattern) detectors are provided:

* **ring** (default) — a token circulates the ring accumulating every
  PE's monotone ``(tasks_created, tasks_executed)`` counters; PE 0
  declares termination after two consecutive complete rounds with
  identical, balanced totals.  An in-flight steal always leaves a
  created task unexecuted, so the sums cannot balance early.  O(P)
  messages and hops per round.
* **tree** — the same four-counter test evaluated over a binary
  reduction tree (Scioto's approach): children push their subtree sums
  up; the root broadcasts round-advance or terminate back down.  O(P)
  messages but O(log P) latency per round — noticeably faster detection
  at scale.

Both ride the same fabric as everything else (counted puts applied
atomically at arrival), so detection cost is part of measured runtime,
as in the paper.

Fault mode (ring only): when the system is built with a
:class:`~repro.fabric.faults.FaultInjector`, the ring routes the token
around fail-stopped PEs (the injector's static schedule acts as a perfect
failure detector — an idealization, documented in ``docs/simulator.md``),
token puts are retried on timeout and re-routed if the successor died,
PE 0 regenerates a token lost with a dead holder after ``token_timeout``,
and the declare broadcast uses acked puts with bounded retry.  Because a
dead PE's counter contributions are lost (and abandoned steals lose
tasks), the exact ``created == executed`` test can never fire; instead the
token additionally accumulates an all-quiescent bit (packed into the round
word, so the token stays 4 words) and PE 0 declares once two consecutive
complete rounds carry identical sums *and* the all-quiescent bit — no PE
held or could still receive live work across both rounds.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator

from ..fabric.errors import FabricTimeoutError
from ..shmem.api import ShmemCtx

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..fabric.faults import FaultInjector

REGION = "term"
TOKEN_FLAG = 0
TOKEN_ROUND = 1
TOKEN_CREATED = 2
TOKEN_EXECUTED = 3
TERM_FLAG = 4
WORDS = 5

#: Per-hop put retries before giving up on a token (PE 0 regenerates).
_TOKEN_PUT_RETRIES = 5
#: Per-target retries of the termination broadcast.
_DECLARE_RETRIES = 3


class TerminationSystem:
    """Allocates the symmetric token/flag words for the job.

    ``faults`` switches every detector into fault-aware mode;
    ``token_timeout`` is how long PE 0 waits for a missing token before
    regenerating it (only meaningful in fault mode).
    """

    def __init__(
        self,
        ctx: ShmemCtx,
        faults: "FaultInjector | None" = None,
        token_timeout: float = 1e-3,
    ) -> None:
        self.ctx = ctx
        self.faults = faults
        self.token_timeout = token_timeout
        #: Open-system arrival source (anything with ``pending() -> int``).
        #: While it still has future injections scheduled, ``created ==
        #: executed`` is a transient coincidence, not quiescence — the
        #: detectors refuse to declare until the source is exhausted.
        self.arrival_source = None
        ctx.heap.alloc_words(REGION, WORDS)

    @property
    def fault_aware(self) -> bool:
        """Is the ring running the fault-tolerant protocol variant?"""
        return self.faults is not None

    def handle(self, rank: int) -> "TerminationDetector":
        """Detector bound to PE ``rank``."""
        return TerminationDetector(self, rank)


class TerminationDetector:
    """Per-PE participant in the token ring."""

    def __init__(self, system: TerminationSystem, rank: int) -> None:
        self.system = system
        self.pe = system.ctx.pe(rank)
        self.rank = rank
        self.npes = system.ctx.npes
        # PE 0 starts holding the (conceptual) token.
        self._holding = rank == 0
        self._round = 0
        self._prev: tuple[int, int] | None = None
        # Fault-mode state: previous round's all-quiescent bit, the last
        # time PE 0 saw token activity, and how many tokens it regrew.
        self._prev_q = False
        self._last_token = 0.0
        self.regenerations = 0

    @property
    def terminated(self) -> bool:
        """Has global termination been declared?"""
        return self.pe.local_load(REGION, TERM_FLAG) == 1

    def _arrivals_pending(self) -> bool:
        """Does an attached open-system source still owe injections?

        Pending counts are monotone non-increasing, so a ``False`` here
        is stable: once the source is drained it stays drained, and the
        classic drain-only declare logic applies unchanged.
        """
        src = self.system.arrival_source
        return src is not None and src.pending() > 0

    def wake_conditions(self) -> list[tuple[int, str, int]]:
        """Local words whose mutation requires servicing this detector.

        Returned as ``(region, offset, predicate)`` triples for
        ``wait_until_any``: a blocked-idle PE must wake when the token
        arrives or termination is declared.
        """
        nonzero = lambda v: v != 0  # noqa: E731 - tiny local predicate
        return [
            (REGION, TERM_FLAG, nonzero),
            (REGION, TOKEN_FLAG, nonzero),
        ]

    def service(
        self,
        created: int,
        executed: int,
        idle: bool,
        quiescent: bool | None = None,
    ) -> Generator:
        """Advance the protocol; call on every worker-loop iteration.

        ``created``/``executed`` are this PE's cumulative counters;
        ``idle`` signals the caller found no local work (PE 0 only starts
        rounds while idle, so detection traffic appears exactly when work
        is scarce).  ``quiescent`` (fault mode only) asserts the PE holds
        no live work at all — no local tasks, nothing stealable, inbox
        drained; it defaults to ``idle``.  Returns True once termination
        has been declared.
        """
        if self.terminated:
            return True
        if self.system.fault_aware and self.npes > 1:
            done = yield from self._service_fault(
                created, executed, idle, idle if quiescent is None else quiescent
            )
            return done
        if self.npes == 1:
            if idle and created == executed and not self._arrivals_pending():
                self.pe.local_store(REGION, TERM_FLAG, 1)
                return True
            return False

        if self.rank == 0:
            if self._holding and idle:
                self._round += 1
                self._holding = False
                yield from self._forward(self._round, created, executed)
            elif self.pe.local_load(REGION, TOKEN_FLAG) == 1:
                # A round completed: totals exclude PE 0's share only if
                # counters moved since launch; PE 0's counts were folded
                # in at round start, so re-reading here is unnecessary.
                c = self.pe.local_load(REGION, TOKEN_CREATED)
                e = self.pe.local_load(REGION, TOKEN_EXECUTED)
                self.pe.local_store(REGION, TOKEN_FLAG, 0)
                self._holding = True
                if (
                    c == e
                    and self._prev == (c, e)
                    and not self._arrivals_pending()
                ):
                    yield from self._declare()
                    return True
                self._prev = (c, e)
            return False

        # Non-zero ranks forward immediately, busy or not, adding counts.
        if self.pe.local_load(REGION, TOKEN_FLAG) == 1:
            rnd = self.pe.local_load(REGION, TOKEN_ROUND)
            c = self.pe.local_load(REGION, TOKEN_CREATED) + created
            e = self.pe.local_load(REGION, TOKEN_EXECUTED) + executed
            self.pe.local_store(REGION, TOKEN_FLAG, 0)
            yield from self._forward(rnd, c, e)
        return False

    def _forward(self, rnd: int, created: int, executed: int) -> Generator:
        """One token hop: a single 4-word put to the ring successor."""
        nxt = (self.rank + 1) % self.npes
        yield self.pe.put_words(
            nxt, REGION, TOKEN_FLAG, [1, rnd, created, executed]
        )

    def _declare(self) -> Generator:
        """PE 0 broadcasts the termination flag to every PE."""
        for p in range(1, self.npes):
            yield self.pe.put_word_nb(p, REGION, TERM_FLAG, 1)
        self.pe.local_store(REGION, TERM_FLAG, 1)
        yield self.pe.quiet()

    # ------------------------------------------------------------------
    # fault-aware ring variant
    # ------------------------------------------------------------------
    def _dead(self, pe: int) -> bool:
        return self.system.faults.is_dead(pe, self.system.ctx.now)

    def _next_live(self) -> int:
        """Ring successor, skipping fail-stopped PEs (self if sole survivor)."""
        for k in range(1, self.npes):
            cand = (self.rank + k) % self.npes
            if not self._dead(cand):
                return cand
        return self.rank

    def _service_fault(
        self, created: int, executed: int, idle: bool, quiescent: bool
    ) -> Generator:
        """One fault-mode protocol step (see module docstring)."""
        pe = self.pe
        now = self.system.ctx.now
        if self.rank == 0:
            if pe.local_load(REGION, TOKEN_FLAG) == 1:
                word = pe.local_load(REGION, TOKEN_ROUND)
                rnd, qbit = word >> 1, bool(word & 1)
                c = pe.local_load(REGION, TOKEN_CREATED)
                e = pe.local_load(REGION, TOKEN_EXECUTED)
                pe.local_store(REGION, TOKEN_FLAG, 0)
                self._last_token = now
                if rnd == self._round:
                    # Stale rounds (duplicates of a regenerated token)
                    # are dropped; only the expected round counts.
                    self._holding = True
                    if (
                        self._prev == (c, e)
                        and (c == e or (qbit and self._prev_q))
                        and not self._arrivals_pending()
                    ):
                        yield from self._declare_fault()
                        return True
                    self._prev = (c, e)
                    self._prev_q = qbit
            elif not self._holding and (
                now - self._last_token > self.system.token_timeout
            ):
                # The token vanished with a dead holder: regrow it.
                self._holding = True
                self.regenerations += 1
            if self._holding and idle:
                self._round += 1
                self._holding = False
                self._last_token = now
                yield from self._forward_fault(self._round, created, executed, quiescent)
            return False

        if pe.local_load(REGION, TOKEN_FLAG) == 1:
            word = pe.local_load(REGION, TOKEN_ROUND)
            rnd, qbit = word >> 1, bool(word & 1)
            c = pe.local_load(REGION, TOKEN_CREATED) + created
            e = pe.local_load(REGION, TOKEN_EXECUTED) + executed
            pe.local_store(REGION, TOKEN_FLAG, 0)
            yield from self._forward_fault(rnd, c, e, qbit and quiescent)
        return False

    def _forward_fault(
        self, rnd: int, created: int, executed: int, qbit: bool
    ) -> Generator:
        """Reliable token hop: retry timed-out puts, re-route around the
        dead, deliver to self when sole survivor."""
        word = (rnd << 1) | int(qbit)
        nxt = self._next_live()
        tried = 0
        while True:
            if nxt == self.rank:
                # Everyone else is dead; the round completes in place.
                pe = self.pe
                pe.local_store(REGION, TOKEN_ROUND, word)
                pe.local_store(REGION, TOKEN_CREATED, created)
                pe.local_store(REGION, TOKEN_EXECUTED, executed)
                pe.local_store(REGION, TOKEN_FLAG, 1)
                return
            try:
                yield self.pe.put_words(
                    nxt, REGION, TOKEN_FLAG, [1, word, created, executed]
                )
                return
            except FabricTimeoutError:
                tried += 1
                cand = self._next_live()
                if cand != nxt:
                    nxt, tried = cand, 0  # successor died: re-route
                elif tried >= _TOKEN_PUT_RETRIES:
                    return  # drop the token; PE 0 regenerates it

    def _declare_fault(self) -> Generator:
        """Reliable termination broadcast: acked puts, retried, dead skipped."""
        for p in range(1, self.npes):
            if self._dead(p):
                continue
            for _attempt in range(_DECLARE_RETRIES + 1):
                try:
                    yield self.pe.put_word(p, REGION, TERM_FLAG, 1)
                    break
                except FabricTimeoutError:
                    if self._dead(p):
                        break
        self.pe.local_store(REGION, TERM_FLAG, 1)


# ----------------------------------------------------------------------
# tree variant
# ----------------------------------------------------------------------
TREE_REGION = "term.tree"
# Per-PE words: child reports (round, created, executed) x 2 + down word.
T_CHILD0 = 0   # round of child 0's report
T_CHILD0_C = 1
T_CHILD0_E = 2
T_CHILD1 = 3
T_CHILD1_C = 4
T_CHILD1_E = 5
T_DOWN = 6     # (round << 1) | terminate, broadcast down the tree
T_WORDS = 7

_CHILD_BASE = {0: T_CHILD0, 1: T_CHILD1}


class TreeTerminationSystem:
    """Allocates the symmetric tree-reduction words for the job."""

    def __init__(self, ctx: ShmemCtx) -> None:
        self.ctx = ctx
        #: Open-system arrival source; see :class:`TerminationSystem`.
        self.arrival_source = None
        ctx.heap.alloc_words(TREE_REGION, T_WORDS)
        # TERM flag shares the ring detector's region layout.
        ctx.heap.alloc_words(REGION, WORDS)

    def handle(self, rank: int) -> "TreeTerminationDetector":
        """Detector bound to PE ``rank``."""
        return TreeTerminationDetector(self, rank)


class TreeTerminationDetector:
    """Per-PE participant in the binary-tree four-counter protocol."""

    def __init__(self, system: TreeTerminationSystem, rank: int) -> None:
        self.system = system
        self.pe = system.ctx.pe(rank)
        self.rank = rank
        self.npes = system.ctx.npes
        self.children = [
            c for c in (2 * rank + 1, 2 * rank + 2) if c < self.npes
        ]
        self.parent = (rank - 1) // 2 if rank > 0 else None
        self._round = 1       # round currently being collected
        self._reported = 0    # highest round this PE pushed up
        self._prev: tuple[int, int] | None = None

    @property
    def terminated(self) -> bool:
        """Has global termination been declared?"""
        return self.pe.local_load(REGION, TERM_FLAG) == 1

    def _arrivals_pending(self) -> bool:
        """Open-system gate; see ``TerminationDetector._arrivals_pending``."""
        src = self.system.arrival_source
        return src is not None and src.pending() > 0

    def _down_pending(self, word: int) -> bool:
        """Is there an unserviced down-wave word?"""
        return word != 0 and ((word & 1) == 1 or (word >> 1) > self._round)

    def _push_pending(self) -> bool:
        """Do we owe the parent a report we can now assemble?"""
        return self._reported < self._round and self._children_ready() is not None

    def wake_conditions(self) -> list[tuple[int, str, int]]:
        """Local words whose mutation requires servicing this detector:
        the termination flag, round advances from the parent, and child
        reports (interior nodes must forward subtree sums).

        Tree words are not cleared after servicing, so the predicates
        consult the detector's *live* state: they are true exactly while
        an unserviced event exists — no lost wakeups (an event landing
        just before blocking fires at registration) and no zero-time spin
        (after servicing, the predicates go false).
        """
        conds = [(REGION, TERM_FLAG, lambda v: v != 0)]
        conds.append((TREE_REGION, T_DOWN, lambda v: self._down_pending(v)))
        for idx in range(len(self.children)):
            conds.append(
                (TREE_REGION, _CHILD_BASE[idx], lambda v: self._push_pending())
            )
        return conds

    def _children_ready(self) -> tuple[int, int] | None:
        """Sum of children's reports for the current round, if complete."""
        c_sum = e_sum = 0
        for idx, _child in enumerate(self.children):
            base = _CHILD_BASE[idx]
            if self.pe.local_load(TREE_REGION, base) != self._round:
                return None
            c_sum += self.pe.local_load(TREE_REGION, base + 1)
            e_sum += self.pe.local_load(TREE_REGION, base + 2)
        return c_sum, e_sum

    def service(self, created: int, executed: int, idle: bool) -> Generator:
        """Advance the protocol; call on every worker-loop iteration."""
        if self.terminated:
            return True
        if self.npes == 1:
            if idle and created == executed and not self._arrivals_pending():
                self.pe.local_store(REGION, TERM_FLAG, 1)
                return True
            return False

        # Down-wave: adopt round advances from the parent.
        down = self.pe.local_load(TREE_REGION, T_DOWN)
        if down:
            rnd, term = down >> 1, down & 1
            if term:
                yield from self._broadcast_down(rnd, True)
                self.pe.local_store(REGION, TERM_FLAG, 1)
                return True
            if rnd > self._round:
                self._round = rnd
                yield from self._broadcast_down(rnd, False)

        # Up-wave: once all children reported this round, push our sums.
        if self._reported >= self._round:
            return False
        sums = self._children_ready()
        if sums is None:
            return False
        c_sum, e_sum = sums[0] + created, sums[1] + executed

        if self.parent is not None:
            base = _CHILD_BASE[(self.rank - 1) % 2]
            yield self.pe.put_words(
                self.parent, TREE_REGION, base, [self._round, c_sum, e_sum]
            )
            self._reported = self._round
            return False

        # Root: evaluate the four-counter test (only start rounds while
        # idle so detection traffic appears when work is scarce).
        if not idle:
            return False
        self._reported = self._round
        if (
            c_sum == e_sum
            and self._prev == (c_sum, e_sum)
            and not self._arrivals_pending()
        ):
            yield from self._broadcast_down(self._round, True)
            self.pe.local_store(REGION, TERM_FLAG, 1)
            return True
        self._prev = (c_sum, e_sum)
        self._round += 1
        yield from self._broadcast_down(self._round, False)
        return False

    def _broadcast_down(self, rnd: int, terminate: bool) -> Generator:
        word = (rnd << 1) | int(terminate)
        for child in self.children:
            yield self.pe.put_word_nb(child, TREE_REGION, T_DOWN, word)
        yield self.pe.quiet()
