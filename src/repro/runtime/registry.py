"""Task-function registry.

Task descriptors are portable across PEs, so the mapping from ``fn_id``
to executable code must be identical everywhere — exactly like function
pointers registered at startup in the C implementation.  A
:class:`TaskRegistry` is built once, before the pool runs, and shared by
every worker.

A task function has the signature::

    fn(payload: bytes, tc: TaskContext) -> TaskOutcome

returning the task's (virtual) compute duration and any child tasks to
spawn.  Child tasks are enqueued LIFO on the executing PE's local queue,
giving the depth-first traversal the Scioto model prescribes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..fabric.errors import ProtocolError
from .task import Task


@dataclass(frozen=True)
class TaskContext:
    """Execution context handed to task functions."""

    rank: int
    npes: int


class TaskOutcome:
    """What executing one task produced.

    ``children`` are enqueued LIFO on the executing PE; each
    ``remote_children`` entry ``(target_pe, task)`` is deposited into the
    target's inbox instead (requires the pool's remote-spawn support;
    paper §2.1: spawning onto remote queues costs extra communication).

    A ``__slots__`` class: one outcome is built per executed task, which
    makes construction cost part of the simulator's per-task overhead.
    """

    __slots__ = ("duration", "children", "remote_children")

    def __init__(
        self,
        duration: float,
        children: list[Task] | None = None,
        remote_children: list[tuple[int, Task]] | None = None,
    ) -> None:
        if duration < 0:
            raise ValueError(f"negative task duration: {duration}")
        self.duration = duration
        self.children = [] if children is None else children
        self.remote_children = [] if remote_children is None else remote_children

    def __repr__(self) -> str:
        return (
            f"TaskOutcome(duration={self.duration!r}, "
            f"children={self.children!r}, remote_children={self.remote_children!r})"
        )


TaskFn = Callable[[bytes, TaskContext], TaskOutcome]


class TaskRegistry:
    """Bidirectional name/id registry of task functions."""

    def __init__(self) -> None:
        self._fns: list[TaskFn] = []
        self._names: dict[str, int] = {}

    def register(self, name: str, fn: TaskFn) -> int:
        """Register ``fn`` under ``name``; returns its ``fn_id``."""
        if name in self._names:
            raise ProtocolError(f"task function {name!r} already registered")
        fn_id = len(self._fns)
        if fn_id >= (1 << 16):
            raise ProtocolError("task-function registry full")
        self._fns.append(fn)
        self._names[name] = fn_id
        return fn_id

    def id_of(self, name: str) -> int:
        """Look up a registered function's id."""
        try:
            return self._names[name]
        except KeyError:
            raise ProtocolError(f"no task function named {name!r}") from None

    def execute(self, task: Task, tc: TaskContext) -> TaskOutcome:
        """Run ``task``'s function; returns its outcome."""
        if not 0 <= task.fn_id < len(self._fns):
            raise ProtocolError(f"task references unregistered fn_id {task.fn_id}")
        return self._fns[task.fn_id](task.payload, tc)

    def dispatch_table(self) -> list[TaskFn]:
        """The live fn_id-indexed function list (read-only by contract).

        Hot executors index this directly — with their own bounds check —
        instead of paying a method call per task."""
        return self._fns

    def __len__(self) -> int:
        return len(self._fns)
