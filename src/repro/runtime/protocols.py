"""Pluggable steal-protocol registry.

The paper compares exactly two protocols — Scioto's lock-based SDC
baseline and the fused-atomic SWS design — but the surrounding machinery
(fabric simulator, thread shim, multiprocess substrate, conformance
suite, invariant oracles, schedule explorers) is protocol-agnostic.  This
module gives every steal protocol one registered description so
``--protocol`` composes with every backend, workload, scheduler, and
oracle:

* **queue layout + owner/thief cores** — a factory for the fabric queue
  system, plus lazy factories for the threads-shim queue and the name the
  multiprocess hammer knows the protocol by;
* **semantics contract** — *exactly-once* (every spawned task executes
  exactly once; checksums and partitions must match bit-for-bit across
  backends) or *at-least-once-with-multiplicity* (duplicates are legal
  and accounted; conservation holds over the deduplicated set with
  ``executed == spawned + dup_handouts``);
* **composition hints** — the default victim selector, whether SWS-style
  steal damping applies, whether the fault-injection fabric is
  supported, and whether the protocol wants the tiered
  (socket/node/rack) topology and latency model;
* **comm counts** — the one-sided operation budget of a successful
  steal, extending the paper's Figure-2 comparison across the zoo.

Registered protocols:

``sws``
    The paper's Figure-4 epoch design: fused discover+claim via a single
    fetch-add on the packed stealval (3 comms, 2 blocking).
``sws-v1``
    The Figure-3 valid-bit variant (§4.1), kept for ablations.
``sdc``
    The Scioto split-queue/deferred-copy baseline (6 comms, 5 blocking).
``ff-mult``
    Fence-free work-stealing deque with multiplicity (Castañeda & Piña):
    plain reads + a plain tail store, no atomics on the steal path, so a
    task may be handed out more than once — at-least-once semantics with
    duplicate-aware accounting (3 comms, all blocking).
``localized``
    Localized work stealing (Suksompong, Leiserson & Schardl): the SWS
    steal core unchanged, but victims drawn tier-by-tier from a
    socket/node/rack hierarchy over the tiered latency model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..core.ffmult_queue import FfMultQueueSystem
from ..core.sdc_queue import SdcQueueSystem
from ..core.sws_queue import SwsQueueSystem
from ..core.sws_v1_queue import SwsV1QueueSystem


@dataclass(frozen=True)
class SemanticsContract:
    """The correctness contract a protocol declares and oracles enforce.

    ``exactly_once`` protocols promise every spawned task executes exactly
    once; the oracles check strict conservation and the conformance suite
    demands bit-identical stolen/kept partitions across backends.
    At-least-once protocols may duplicate a task (never lose one); they
    must report every duplicate handout through the queue's
    ``dup_handouts`` counter *before* the duplicate can execute, and the
    books close as ``executed == spawned + dup_handouts``.
    """

    name: str
    exactly_once: bool
    description: str = ""


EXACTLY_ONCE = SemanticsContract(
    "exactly-once",
    True,
    "every spawned task executes exactly once; strict conservation",
)

AT_LEAST_ONCE = SemanticsContract(
    "at-least-once",
    False,
    "tasks may duplicate (multiplicity >= 1), never vanish; "
    "executed == spawned + dup_handouts",
)


@dataclass(frozen=True)
class Protocol:
    """One registered steal protocol.

    Attributes
    ----------
    name:
        CLI identity (``--protocol NAME``).
    title:
        One-line human description for tables and ``--help``.
    semantics:
        The :class:`SemanticsContract` the oracles enforce.
    family:
        Owner/thief driver vocabulary: ``"sws"`` (stealval + probe +
        generator release), ``"sdc"`` (plain release, locked acquire) or
        ``"ffmult"`` (plain release/acquire, duplicate accounting).
    queue_system:
        Factory ``(ctx, queue_config) -> queue system`` for the fabric
        simulator backend.
    default_victim:
        Victim-selector kind when the caller does not pick one.
    supports_damping:
        Whether SWS steal damping (probe-first empty mode) applies.
    supports_faults:
        Whether the fault-injection fabric has a recovery path.
    tiered:
        Protocol wants the socket/node/rack tiered topology + latency
        model by default (localized stealing).
    shardable:
        Whether the protocol works under the sharded conservative-window
        simulator (:mod:`repro.runtime.sharded`).  Requires every
        cross-PE access to route through the NIC; protocols with
        zero-cost shared-memory bookkeeping across PEs (the fence-free
        deque's reclaim-floor registry reads the victim's tail directly)
        cannot run against stale per-shard heap replicas.
    comms_total / comms_blocking:
        One-sided fabric operations per successful steal (Fig. 2 style).
    threads_queue:
        Lazy factory ``(tasks, **kw) -> shim queue`` for the real-thread
        backend, or ``None`` when the protocol has no thread shim.
    mp_impl:
        The name :func:`repro.mp.queue.hammer_mp` runs this protocol
        under, or ``None`` when it has no multiprocess substrate.
    notes:
        Free-form remarks for docs/tables.
    """

    name: str
    title: str
    semantics: SemanticsContract
    family: str
    queue_system: Callable
    default_victim: str = "uniform"
    supports_damping: bool = False
    supports_faults: bool = False
    tiered: bool = False
    shardable: bool = True
    comms_total: int = 0
    comms_blocking: int = 0
    threads_queue: Callable | None = None
    mp_impl: str | None = None
    notes: str = ""

    def __post_init__(self) -> None:
        if self.family not in ("sws", "sdc", "ffmult"):
            raise ValueError(f"unknown protocol family {self.family!r}")


_REGISTRY: dict[str, Protocol] = {}


def register_protocol(protocol: Protocol) -> Protocol:
    """Add ``protocol`` to the registry (name must be unused)."""
    if protocol.name in _REGISTRY:
        raise ValueError(f"protocol {protocol.name!r} already registered")
    _REGISTRY[protocol.name] = protocol
    return protocol


def get_protocol(name: str) -> Protocol:
    """Look up a registered protocol by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown protocol {name!r}; choose from {sorted(_REGISTRY)}"
        ) from None


def protocol_names() -> tuple[str, ...]:
    """Registered protocol names, in registration order."""
    return tuple(_REGISTRY)


def all_protocols() -> tuple[Protocol, ...]:
    """Every registered protocol, in registration order."""
    return tuple(_REGISTRY.values())


# ----------------------------------------------------------------------
# Lazy backend factories.  Imports happen inside the callables so that
# merely importing the registry never drags in threading/multiprocessing
# machinery (the fabric simulator is the default backend).
# ----------------------------------------------------------------------
def _threads_sws(tasks, **kw):
    from ..threads.queue_shim import ThreadSwsQueue

    return ThreadSwsQueue(tasks, **kw)


def _threads_sdc(tasks, **kw):
    from ..threads.sdc_shim import ThreadSdcQueue

    return ThreadSdcQueue(tasks, **kw)


def _threads_ffmult(tasks, **kw):
    from ..threads.ffmult_shim import ThreadFfMultQueue

    return ThreadFfMultQueue(tasks, **kw)


register_protocol(
    Protocol(
        name="sws",
        title="Structured work stealing: fused fetch-add discover+claim (Fig. 4)",
        semantics=EXACTLY_ONCE,
        family="sws",
        queue_system=SwsQueueSystem,
        supports_damping=True,
        supports_faults=True,
        comms_total=3,
        comms_blocking=2,
        threads_queue=_threads_sws,
        mp_impl="sws",
        notes="paper's protocol; epoch-sliced completion array",
    )
)

register_protocol(
    Protocol(
        name="sws-v1",
        title="SWS valid-bit variant (Fig. 3, §4.1)",
        semantics=EXACTLY_ONCE,
        family="sws",
        queue_system=SwsV1QueueSystem,
        supports_damping=True,
        supports_faults=False,
        comms_total=3,
        comms_blocking=2,
        notes="ablation only: no epoch turnover, no fault recovery",
    )
)

register_protocol(
    Protocol(
        name="sdc",
        title="Scioto SDC baseline: split queue, deferred copies (Fig. 2)",
        semantics=EXACTLY_ONCE,
        family="sdc",
        queue_system=SdcQueueSystem,
        supports_faults=True,
        comms_total=6,
        comms_blocking=5,
        threads_queue=_threads_sdc,
        mp_impl="sdc",
        notes="lock-based; aborting steals; per-seq completion ring",
    )
)

register_protocol(
    Protocol(
        name="ff-mult",
        title="Fence-free deque with multiplicity (Castañeda & Piña)",
        semantics=AT_LEAST_ONCE,
        family="ffmult",
        queue_system=FfMultQueueSystem,
        supports_faults=False,
        shardable=False,
        comms_total=3,
        comms_blocking=3,
        threads_queue=_threads_ffmult,
        mp_impl="ff-mult",
        notes="no atomics on the steal path; duplicates legal, accounted",
    )
)

register_protocol(
    Protocol(
        name="localized",
        title="Localized work stealing (Suksompong, Leiserson & Schardl)",
        semantics=EXACTLY_ONCE,
        family="sws",
        queue_system=SwsQueueSystem,
        default_victim="tiered",
        supports_damping=True,
        supports_faults=True,
        tiered=True,
        comms_total=3,
        comms_blocking=2,
        threads_queue=_threads_sws,
        mp_impl="sws",
        notes="SWS steal core + tier-biased victims over socket/node/rack",
    )
)
