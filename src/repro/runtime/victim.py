"""Victim selection policies.

The paper follows Cilk-style randomized stealing: "available work is
discovered by selecting a target at random".  The uniform selector is the
default; round-robin and locality-biased selectors are provided for
ablations (hierarchical victim selection is the optimization several
related works layer on top — the paper notes SWS composes with them).
"""

from __future__ import annotations

import random
from typing import Protocol

from ..fabric.topology import Topology


class VictimSelector(Protocol):
    """Strategy interface: yields the next victim to try."""

    def next_victim(self) -> int:
        """Return a PE index to target (never the selector's own rank)."""
        ...


class UniformVictim:
    """Uniformly random victim, excluding self (Cilk's strategy)."""

    def __init__(self, npes: int, rank: int, seed: int = 0) -> None:
        if npes < 2:
            raise ValueError("uniform victim selection needs at least 2 PEs")
        self.npes = npes
        self.rank = rank
        self._rng = random.Random((seed << 20) ^ (rank * 0x9E3779B1))

    def next_victim(self) -> int:
        """A uniformly random PE other than self."""
        v = self._rng.randrange(self.npes - 1)
        return v if v < self.rank else v + 1


class RoundRobinVictim:
    """Deterministic cyclic sweep starting after own rank."""

    def __init__(self, npes: int, rank: int) -> None:
        if npes < 2:
            raise ValueError("round-robin victim selection needs at least 2 PEs")
        self.npes = npes
        self.rank = rank
        self._next = (rank + 1) % npes

    def next_victim(self) -> int:
        """The next PE in cyclic order, skipping self."""
        v = self._next
        self._next = (self._next + 1) % self.npes
        if v == self.rank:
            v = self._next
            self._next = (self._next + 1) % self.npes
        return v


class LocalityVictim:
    """Prefer same-node victims with probability ``local_bias``.

    Models the hierarchical/locality-aware strategies of SLAW/HotSLAW as
    an ablation: intra-node steals are cheaper on the fabric's latency
    model, so biasing toward them trades discovery breadth for latency.
    """

    def __init__(
        self,
        topology: Topology,
        rank: int,
        seed: int = 0,
        local_bias: float = 0.75,
    ) -> None:
        if not 0.0 <= local_bias <= 1.0:
            raise ValueError(f"local_bias must be in [0,1], got {local_bias}")
        self.topology = topology
        self.rank = rank
        self.local_bias = local_bias
        self._rng = random.Random((seed << 20) ^ (rank * 0x9E3779B1) ^ 0x5F5F)
        self._peers = topology.local_peers(rank)
        self._remote = [
            p for p in range(topology.npes)
            if p != rank and not topology.same_node(p, rank)
        ]

    def next_victim(self) -> int:
        """A biased draw: same-node peer with probability ``local_bias``."""
        if self._peers and (not self._remote or self._rng.random() < self.local_bias):
            return self._rng.choice(self._peers)
        if not self._remote:
            return self._rng.choice(self._peers)
        return self._rng.choice(self._remote)


class HierarchicalVictim:
    """Two-level adaptive selection (Habanero/CHARM++-style hierarchy).

    Steals target same-node peers first — intra-node hops are several
    times cheaper on the fabric — and escalate to remote nodes only after
    ``escalate_after`` consecutive local failures.  Any success resets to
    the local level.  The caller reports outcomes via :meth:`note`.
    """

    def __init__(
        self,
        topology: Topology,
        rank: int,
        seed: int = 0,
        escalate_after: int = 2,
    ) -> None:
        if escalate_after < 1:
            raise ValueError("escalate_after must be >= 1")
        self.topology = topology
        self.rank = rank
        self.escalate_after = escalate_after
        self._rng = random.Random((seed << 20) ^ (rank * 0x9E3779B1) ^ 0xA5A5)
        self._peers = topology.local_peers(rank)
        self._remote = [
            p for p in range(topology.npes)
            if p != rank and not topology.same_node(p, rank)
        ]
        self._local_failures = 0

    @property
    def remote_mode(self) -> bool:
        """Currently escalated to inter-node stealing?"""
        return (
            not self._peers
            or (self._remote and self._local_failures >= self.escalate_after)
        )

    def next_victim(self) -> int:
        """A same-node peer, or a remote PE once escalated."""
        if self.remote_mode and self._remote:
            return self._rng.choice(self._remote)
        return self._rng.choice(self._peers)

    def note(self, success: bool) -> None:
        """Report the last attempt's outcome (drives escalation)."""
        if success:
            self._local_failures = 0
        else:
            self._local_failures += 1


class TieredVictim:
    """Tier-biased draw over a socket/node/rack hierarchy.

    The localized work-stealing policy (Suksompong, Leiserson & Schardl):
    each steal attempt first picks a hierarchy tier by weight, then a
    uniform victim within that tier.  With a
    :class:`~repro.fabric.topology.TieredTopology` the four tiers are
    same-socket / same-node / same-rack / cross-rack; a plain
    :class:`Topology` degrades to two populated tiers (same-node at
    tier 1, remote at tier 2).  Weights of *empty* tiers are
    redistributed proportionally over the populated ones, so the
    selector is well defined for any job shape; the effective
    distribution is exposed via :meth:`tier_weights` for the property
    suite.
    """

    #: Default draw probability per tier 0..3, nearest first.
    DEFAULT_WEIGHTS = (0.50, 0.25, 0.15, 0.10)

    def __init__(
        self,
        topology: Topology,
        rank: int,
        seed: int = 0,
        weights: tuple[float, float, float, float] | None = None,
    ) -> None:
        if topology.npes < 2:
            raise ValueError("tiered victim selection needs at least 2 PEs")
        weights = tuple(weights) if weights is not None else self.DEFAULT_WEIGHTS
        if len(weights) != 4 or any(w < 0 for w in weights):
            raise ValueError(f"weights must be 4 non-negative values, got {weights}")
        self.topology = topology
        self.rank = rank
        self._rng = random.Random((seed << 20) ^ (rank * 0x9E3779B1) ^ 0x71E7)
        tier_of = getattr(topology, "tier", None)
        buckets: list[list[int]] = [[], [], [], []]
        self._tier_by_pe: dict[int, int] = {}
        for p in range(topology.npes):
            if p == rank:
                continue
            if tier_of is not None:
                t = tier_of(rank, p)
            else:
                t = 1 if topology.same_node(rank, p) else 2
            buckets[t].append(p)
            self._tier_by_pe[p] = t
        self._buckets = buckets
        total = sum(w for w, b in zip(weights, buckets) if b)
        if total <= 0:
            raise ValueError(
                f"every populated tier has zero weight: weights={weights}"
            )
        self._weights = tuple(
            (w / total if b else 0.0) for w, b in zip(weights, buckets)
        )

    def tier_weights(self) -> tuple[float, float, float, float]:
        """Effective per-tier draw probabilities (zero for empty tiers)."""
        return self._weights

    def tier_of(self, victim: int) -> int:
        """The hierarchy tier ``victim`` occupies relative to this rank."""
        return self._tier_by_pe[victim]

    def next_victim(self) -> int:
        """Pick a tier by weight, then a uniform victim within it."""
        u = self._rng.random()
        acc = 0.0
        for t in range(4):
            w = self._weights[t]
            if not w:
                continue
            acc += w
            if u < acc:
                return self._rng.choice(self._buckets[t])
        # Float round-off landed past the last band: farthest populated tier.
        for t in (3, 2, 1, 0):
            if self._weights[t]:
                return self._rng.choice(self._buckets[t])
        raise AssertionError("unreachable: no populated tier")


class QuarantineSelector:
    """Fault-aware wrapper: quarantine victims that keep timing out.

    Wraps any :class:`VictimSelector`.  The worker reports steal timeouts
    via :meth:`note_timeout`; after ``quarantine_after`` consecutive
    timeouts against one victim, that victim is excluded from selection
    for ``quarantine_time`` virtual seconds, doubling on each repeat
    offence (a fail-stopped PE ends up effectively removed, while a
    transiently slow one gets re-probed after the quarantine decays).
    A successful steal clears the victim's record entirely.

    Selection redraws from the inner selector up to ``max_redraws`` times
    to dodge quarantined victims; if every draw is quarantined the last
    draw is returned anyway — a forced re-probe, so a worker can never
    livelock with the whole job quarantined.
    """

    def __init__(
        self,
        inner: VictimSelector,
        clock,
        quarantine_after: int = 2,
        quarantine_time: float = 200e-6,
        max_redraws: int = 8,
    ) -> None:
        if quarantine_after < 1:
            raise ValueError("quarantine_after must be >= 1")
        if quarantine_time <= 0:
            raise ValueError("quarantine_time must be positive")
        self.inner = inner
        self.clock = clock
        self.quarantine_after = quarantine_after
        self.quarantine_time = quarantine_time
        self.max_redraws = max_redraws
        self._strikes: dict[int, int] = {}
        self._until: dict[int, float] = {}
        self._episodes: dict[int, int] = {}
        self._dead: set[int] = set()
        #: Total quarantine events (reported into WorkerStats).
        self.quarantines = 0

    def mark_dead(self, victim: int) -> None:
        """Permanently quarantine ``victim``: a supervisor confirmed the
        fail-stop, so no decay timer should ever re-probe it."""
        self._dead.add(victim)
        self._strikes.pop(victim, None)
        self._until.pop(victim, None)

    def revive(self, victim: int) -> None:
        """Lift a permanent quarantine (elastic rejoin after respawn);
        the victim's strike/episode history is forgiven entirely."""
        self._dead.discard(victim)
        self._strikes.pop(victim, None)
        self._until.pop(victim, None)
        self._episodes.pop(victim, None)

    @property
    def dead(self) -> frozenset[int]:
        """Victims currently under permanent quarantine."""
        return frozenset(self._dead)

    def is_quarantined(self, victim: int) -> bool:
        """Is ``victim`` currently excluded (decays automatically)?"""
        if victim in self._dead:
            return True
        until = self._until.get(victim)
        if until is None:
            return False
        if self.clock() >= until:
            # Quarantine expired: re-probe, but keep the episode history
            # so a still-dead victim re-quarantines for longer.
            del self._until[victim]
            return False
        return True

    def next_victim(self) -> int:
        """A victim from the inner policy, dodging quarantined PEs."""
        victim = self.inner.next_victim()
        for _ in range(self.max_redraws):
            if not self.is_quarantined(victim):
                return victim
            victim = self.inner.next_victim()
        return victim  # everyone looks dead: force a re-probe

    def note_timeout(self, victim: int) -> None:
        """One steal against ``victim`` exhausted its retries."""
        strikes = self._strikes.get(victim, 0) + 1
        if strikes < self.quarantine_after:
            self._strikes[victim] = strikes
            return
        self._strikes[victim] = 0
        episode = self._episodes.get(victim, 0)
        self._episodes[victim] = episode + 1
        self._until[victim] = self.clock() + self.quarantine_time * (2 ** episode)
        self.quarantines += 1

    def note_steal(self, victim: int, success: bool) -> None:
        """A steal attempt actually completed (no timeout)."""
        if success:
            self._strikes.pop(victim, None)
            self._until.pop(victim, None)
            self._episodes.pop(victim, None)
        else:
            # Any response at all proves the victim is alive.
            self._strikes.pop(victim, None)

    def note(self, success: bool) -> None:
        """Forward outcome notes to an adaptive inner selector."""
        note = getattr(self.inner, "note", None)
        if note is not None:
            note(success)


class ElasticMembership:
    """Serving-mode wrapper: never target a PE that has left the pool.

    Wraps any :class:`VictimSelector` over a membership *directory*
    (anything with ``is_active(rank) -> bool``, in practice the serving
    layer's ``ElasticDirectory``).  Selection redraws from the inner
    policy up to ``max_redraws`` times to dodge inactive PEs; when
    everything drawn is inactive the last draw is returned anyway — a
    parked victim simply has an empty queue, so the steal fails cleanly
    rather than the thief livelocking.  Mirrors
    :class:`QuarantineSelector`'s shape so the two compose with the
    same worker plumbing.
    """

    def __init__(self, inner: VictimSelector, directory, max_redraws: int = 8) -> None:
        self.inner = inner
        self.directory = directory
        self.max_redraws = max_redraws

    def next_victim(self) -> int:
        """A victim from the inner policy, dodging inactive PEs."""
        victim = self.inner.next_victim()
        for _ in range(self.max_redraws):
            if self.directory.is_active(victim):
                return victim
            victim = self.inner.next_victim()
        return victim

    def note(self, success: bool) -> None:
        """Forward outcome notes to an adaptive inner selector."""
        note = getattr(self.inner, "note", None)
        if note is not None:
            note(success)

    def note_timeout(self, victim: int) -> None:
        """Forward timeout reports (inner may be a QuarantineSelector)."""
        note_timeout = getattr(self.inner, "note_timeout", None)
        if note_timeout is not None:
            note_timeout(victim)

    def note_steal(self, victim: int, success: bool) -> None:
        """Forward completion reports likewise."""
        note_steal = getattr(self.inner, "note_steal", None)
        if note_steal is not None:
            note_steal(victim, success)


def make_selector(
    kind: str, npes: int, rank: int, seed: int = 0, topology: Topology | None = None
) -> VictimSelector:
    """Factory: ``uniform`` (default), ``roundrobin``, ``locality``,
    ``hierarchical``, or ``tiered``."""
    if kind == "uniform":
        return UniformVictim(npes, rank, seed)
    if kind == "roundrobin":
        return RoundRobinVictim(npes, rank)
    if kind == "locality":
        if topology is None:
            raise ValueError("locality selector needs a topology")
        return LocalityVictim(topology, rank, seed)
    if kind == "hierarchical":
        if topology is None:
            raise ValueError("hierarchical selector needs a topology")
        return HierarchicalVictim(topology, rank, seed)
    if kind == "tiered":
        if topology is None:
            raise ValueError("tiered selector needs a topology")
        return TieredVictim(topology, rank, seed)
    raise ValueError(f"unknown victim selector {kind!r}")
