"""Lifeline-based work distribution (Saraswat et al., PPoPP'11).

The paper's related work (§2.2) cites lifelines as a complementary
technique: "Lifelines have been proposed to improve quiescence detection
and eliminate unproductive stealing traffic."  SWS accelerates each steal;
lifelines reduce how many *failed* steals an idle PE issues.  This module
composes the two.

Mechanism: after ``z`` consecutive failed random steals, an idle PE goes
quiescent and instead *registers lifelines* with a fixed set of buddies
(its hypercube neighbours).  A buddy that later has surplus work pushes
tasks directly to the registered PE through the remote-spawn inbox, at
which point the PE retracts its outstanding lifelines and resumes
stealing normally.

Fabric footprint per PE: one symmetric word array ``lifeline.req`` of
``npes`` request flags (buddy ``r`` sets word ``r`` on the donor with a
non-blocking put; the donor reads its own flags locally).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

from ..shmem.api import ShmemCtx

REQ_REGION = "lifeline.req"


def hypercube_neighbors(rank: int, npes: int) -> list[int]:
    """Lifeline buddies: ranks differing in one bit (classic lifeline
    graph).  Falls back to the ring successor when a flipped bit lands
    outside the job."""
    if npes <= 1:
        return []
    out = []
    bit = 1
    while bit < npes:
        buddy = rank ^ bit
        if buddy < npes:
            out.append(buddy)
        bit <<= 1
    if not out:  # pragma: no cover - npes>1 always yields at least one
        out.append((rank + 1) % npes)
    return out


@dataclass(frozen=True)
class LifelineConfig:
    """Tunables for the lifeline scheme."""

    z_failures: int = 4     # consecutive failed steals before quiescing
    donate_max: int = 8     # tasks pushed per fulfilled lifeline
    donor_min_local: int = 4  # donor keeps at least this many tasks

    def __post_init__(self) -> None:
        if self.z_failures < 1:
            raise ValueError("z_failures must be >= 1")
        if self.donate_max < 1:
            raise ValueError("donate_max must be >= 1")
        if self.donor_min_local < 1:
            raise ValueError("donor_min_local must be >= 1")


class LifelineSystem:
    """Allocates the symmetric request flags for the job.

    ``faults`` (a :class:`~repro.fabric.faults.FaultInjector`) makes every
    manager route around fail-stopped PEs: dead buddies are not registered
    with, and a dead requester's lifeline is dropped rather than fulfilled
    — tasks pushed at a dead inbox would be lost.
    """

    def __init__(self, ctx: ShmemCtx, faults=None) -> None:
        self.ctx = ctx
        self.faults = faults
        ctx.heap.alloc_words(REQ_REGION, ctx.npes)

    def handle(self, rank: int, config: LifelineConfig | None = None) -> "LifelineManager":
        """Per-PE lifeline manager bound to ``rank``."""
        return LifelineManager(self, rank, config or LifelineConfig())


class LifelineManager:
    """Per-PE lifeline state machine."""

    def __init__(self, system: LifelineSystem, rank: int, config: LifelineConfig) -> None:
        self.system = system
        self.pe = system.ctx.pe(rank)
        self.rank = rank
        self.npes = system.ctx.npes
        self.cfg = config
        self.buddies = hypercube_neighbors(rank, self.npes)
        self.active = False
        self.consecutive_failures = 0
        # stats
        self.activations = 0
        self.donations = 0
        self.tasks_donated = 0
        self.tasks_received_hint = 0

    # ------------------------------------------------------------------
    # idle side
    # ------------------------------------------------------------------
    def note_steal(self, success: bool) -> None:
        """Track consecutive failures (reset on success)."""
        if success:
            self.consecutive_failures = 0
        else:
            self.consecutive_failures += 1

    @property
    def should_activate(self) -> bool:
        """Quiesce once the failure budget is exhausted."""
        return (
            not self.active
            and self.consecutive_failures >= self.cfg.z_failures
        )

    def _alive(self, pe: int) -> bool:
        faults = self.system.faults
        return faults is None or not faults.is_dead(pe, self.system.ctx.now)

    def activate(self) -> Generator:
        """Register lifelines with every (live) buddy (non-blocking puts)."""
        self.active = True
        self.activations += 1
        for buddy in self.buddies:
            if self._alive(buddy):
                yield self.pe.put_word_nb(buddy, REQ_REGION, self.rank, 1)
        yield self.pe.quiet()

    def retract(self) -> Generator:
        """Work arrived: withdraw outstanding lifeline requests."""
        self.active = False
        self.consecutive_failures = 0
        for buddy in self.buddies:
            if self._alive(buddy):
                yield self.pe.put_word_nb(buddy, REQ_REGION, self.rank, 0)
        yield self.pe.quiet()

    # ------------------------------------------------------------------
    # donor side
    # ------------------------------------------------------------------
    def pending_requests(self) -> list[int]:
        """Ranks currently holding a lifeline into this PE (local reads).

        Fault mode: requesters that have since fail-stopped are dropped
        (their flag cleared) — donating into a dead inbox loses tasks.
        """
        out = []
        for r in range(self.npes):
            if r == self.rank or self.pe.local_load(REQ_REGION, r) != 1:
                continue
            if not self._alive(r):
                self.pe.local_store(REQ_REGION, r, 0)
                continue
            out.append(r)
        return out

    def clear_request(self, requester: int) -> None:
        """Mark a lifeline fulfilled (local write to own flag word)."""
        self.pe.local_store(REQ_REGION, requester, 0)

    def note_donation(self, ntasks: int) -> None:
        """Record one fulfilled lifeline of ``ntasks`` tasks."""
        self.donations += 1
        self.tasks_donated += ntasks
