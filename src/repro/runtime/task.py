"""Portable task descriptors (paper §2.1).

A task is "the fundamental unit of work": a descriptor naming the function
to execute plus the portable state that function needs.  Descriptors
serialize to fixed-size records — the byte currency of the task queues —
with a tiny header::

    fn_id : u16   registered task-function identifier
    plen  : u16   payload length in bytes
    payload, zero-padded to the queue's task_size

Payloads must be position-independent (global addresses or plain values),
matching the Scioto execution model's portability requirement.
"""

from __future__ import annotations

import struct

from ..fabric.errors import ProtocolError

_HEADER = struct.Struct("<HH")
_unpack_header = _HEADER.unpack_from
HEADER_BYTES = _HEADER.size


class Task:
    """One unit of work: a function id and its serialized arguments.

    A ``__slots__`` value class (tasks are created per spawn and per
    dequeue — the hottest object in the runtime layer).  Instances are
    immutable by convention; equality and hashing follow the
    ``(fn_id, payload)`` pair.
    """

    __slots__ = ("fn_id", "payload")

    def __init__(self, fn_id: int, payload: bytes = b"") -> None:
        if not 0 <= fn_id < (1 << 16):
            raise ProtocolError(f"fn_id {fn_id} does not fit in 16 bits")
        if len(payload) >= (1 << 16):
            raise ProtocolError(f"payload of {len(payload)} bytes too large")
        self.fn_id = fn_id
        self.payload = payload

    def __repr__(self) -> str:
        return f"Task(fn_id={self.fn_id}, payload={self.payload!r})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Task):
            return NotImplemented
        return self.fn_id == other.fn_id and self.payload == other.payload

    def __hash__(self) -> int:
        return hash((self.fn_id, self.payload))

    def serialize(self, task_size: int) -> bytes:
        """Encode to a fixed-size record of ``task_size`` bytes."""
        payload = self.payload
        if HEADER_BYTES + len(payload) > task_size:
            raise ProtocolError(
                f"task needs {HEADER_BYTES + len(payload)} bytes; "
                f"record size is {task_size}"
            )
        body = _HEADER.pack(self.fn_id, len(payload)) + payload
        return body.ljust(task_size, b"\0")

    @classmethod
    def deserialize(cls, record: bytes) -> "Task":
        """Decode a fixed-size record back into a task."""
        if len(record) < HEADER_BYTES:
            raise ProtocolError(f"record of {len(record)} bytes has no header")
        fn_id, plen = _unpack_header(record)
        if HEADER_BYTES + plen > len(record):
            raise ProtocolError(
                f"record declares {plen} payload bytes but holds "
                f"{len(record) - HEADER_BYTES}"
            )
        # Field ranges are guaranteed by the u16 header — skip __init__'s
        # re-validation on this hot path.
        task = cls.__new__(cls)
        task.fn_id = fn_id
        task.payload = bytes(record[HEADER_BYTES : HEADER_BYTES + plen])
        return task

    def size_on_wire(self, task_size: int) -> int:
        """Bytes this task occupies in a queue of the given record size."""
        return task_size


def parse_record(record: bytes) -> tuple[int, bytes]:
    """Decode a record to ``(fn_id, payload)`` without building a Task.

    Same validation as :meth:`Task.deserialize`; used by the worker's
    batch loop, which only needs the two fields.
    """
    if len(record) < HEADER_BYTES:
        raise ProtocolError(f"record of {len(record)} bytes has no header")
    fn_id, plen = _unpack_header(record)
    if HEADER_BYTES + plen > len(record):
        raise ProtocolError(
            f"record declares {plen} payload bytes but holds "
            f"{len(record) - HEADER_BYTES}"
        )
    return fn_id, bytes(record[HEADER_BYTES : HEADER_BYTES + plen])


def make_task(fn_id: int, payload: bytes) -> Task:
    """Unvalidated fast constructor for hot spawn loops.

    The caller must guarantee ``fn_id`` fits in 16 bits (e.g. a registry
    id) and ``len(payload) < 65536`` (e.g. a fixed-width struct field).
    """
    task = Task.__new__(Task)
    task.fn_id = fn_id
    task.payload = payload
    return task
