"""Portable task descriptors (paper §2.1).

A task is "the fundamental unit of work": a descriptor naming the function
to execute plus the portable state that function needs.  Descriptors
serialize to fixed-size records — the byte currency of the task queues —
with a tiny header::

    fn_id : u16   registered task-function identifier
    plen  : u16   payload length in bytes
    payload, zero-padded to the queue's task_size

Payloads must be position-independent (global addresses or plain values),
matching the Scioto execution model's portability requirement.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from ..fabric.errors import ProtocolError

_HEADER = struct.Struct("<HH")
HEADER_BYTES = _HEADER.size


@dataclass(frozen=True)
class Task:
    """One unit of work: a function id and its serialized arguments."""

    fn_id: int
    payload: bytes = b""

    def __post_init__(self) -> None:
        if not 0 <= self.fn_id < (1 << 16):
            raise ProtocolError(f"fn_id {self.fn_id} does not fit in 16 bits")
        if len(self.payload) >= (1 << 16):
            raise ProtocolError(f"payload of {len(self.payload)} bytes too large")

    def serialize(self, task_size: int) -> bytes:
        """Encode to a fixed-size record of ``task_size`` bytes."""
        if HEADER_BYTES + len(self.payload) > task_size:
            raise ProtocolError(
                f"task needs {HEADER_BYTES + len(self.payload)} bytes; "
                f"record size is {task_size}"
            )
        body = _HEADER.pack(self.fn_id, len(self.payload)) + self.payload
        return body.ljust(task_size, b"\0")

    @classmethod
    def deserialize(cls, record: bytes) -> "Task":
        """Decode a fixed-size record back into a task."""
        if len(record) < HEADER_BYTES:
            raise ProtocolError(f"record of {len(record)} bytes has no header")
        fn_id, plen = _HEADER.unpack_from(record)
        if HEADER_BYTES + plen > len(record):
            raise ProtocolError(
                f"record declares {plen} payload bytes but holds "
                f"{len(record) - HEADER_BYTES}"
            )
        return cls(fn_id, bytes(record[HEADER_BYTES : HEADER_BYTES + plen]))

    def size_on_wire(self, task_size: int) -> int:
        """Bytes this task occupies in a queue of the given record size."""
        return task_size
