"""``python -m repro`` — demo, schedule exploration, and trace replay.

With no arguments: a 10-second sanity demonstration (package version,
the Figure-2 communication counts, pointers to the full harness).

Subcommands::

    python -m repro --protocol P [--backend fabric|threads|mp|all]
                    [--shards N [--shard-transport auto|serial|fork]]
    python -m repro explore [--workload W] [--impl I] [--policy P]
                            [--seeds N] [--dfs-depth D] [--out DIR]
    python -m repro replay TRACE.json [--strict] [--shrink]
    python -m repro sweep [--scenarios S] [--jobs N] [--out FILE]
                          [--baseline FILE] [--matrix ...]
    python -m repro mp [--workload synthetic|uts] [--impl sws|sdc]
                       [--npes N] [--ntasks N | --tree NAME] [--verify]
    python -m repro serve --arrival poisson:RATE --duration T [--slo MS]
                          [--backend fabric|threads|mp|all] [--impl I]
                          [--npes N] [--shed-threshold K] [--elastic PLAN]

``--protocol`` runs one registered steal protocol (``sws``, ``sws-v1``,
``sdc``, ``ff-mult``, ``localized`` — see docs/protocols.md) across the
chosen substrates, verifying its declared semantics contract on each.
``--shards N`` partitions the fabric run across N shard engines advancing
in conservative lock-step time windows (docs/sharding.md); requires
``--backend fabric`` and ``N <= --npes``.

``explore`` sweeps same-timestamp event orderings under the invariant
oracle and writes every failing schedule as a replayable JSON trace;
``replay`` re-executes such a trace bit-identically (the local half of
the CI-artifact-to-repro workflow; see docs/testing.md); ``sweep`` fans
deterministic bench scenarios / matrix cells across a process pool with
an on-disk result cache and emits ``BENCH_fabric.json`` (see
docs/performance.md); ``mp`` runs a workload end-to-end on the
multiprocess substrate — real OS processes over shared memory (see
docs/backends.md); ``serve`` runs the open-system serving mode —
streaming arrivals, tail-latency SLOs, shedding and elastic PE
membership across any of the three substrates (see docs/serving.md).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from . import __version__
from .analysis.explore import WORKLOADS, explore, replay_trace, shrink_trace
from .fabric.scheduler import POLICIES, ScheduleTrace
from .runtime.protocols import get_protocol, protocol_names


def _demo() -> int:
    """Print the version, the Figure-2 headline, and pointers."""
    from .analysis.experiments import run_experiment

    print(f"repro {__version__} — SWS structured-atomic work stealing "
          f"(ICPP 2021 reproduction)\n")
    print(run_experiment("fig2").render())
    print("full harness: python -m repro.analysis.cli --exp all")
    print("schedule fuzzing: python -m repro explore --help")
    print("docs: README.md, DESIGN.md, EXPERIMENTS.md, docs/")
    return 0


def _run_protocol_fabric(
    proto, npes: int, ntasks: int, shards: int = 1,
    transport: str = "serial",
) -> bool:
    from .runtime.registry import TaskOutcome, TaskRegistry
    from .runtime.task import Task

    reg = TaskRegistry()
    reg.register("leaf", lambda payload, tc: TaskOutcome(duration=5e-6))
    seeds = [Task(reg.id_of("leaf")) for _ in range(ntasks)]
    if shards == 1:
        from .runtime.pool import run_pool

        stats = run_pool(npes, reg, seeds, impl=proto.name, oracle=True)
        where = f"{npes} PEs"
    else:
        from .runtime.sharded import run_sharded_pool

        # The argparse default is "auto", so transport == "fork" means
        # the user asked for it explicitly: refuse to degrade silently.
        stats = run_sharded_pool(
            npes, reg, seeds, shards, impl=proto.name, oracle=True,
            transport=transport, strict_transport=(transport == "fork"),
        )
        sh = stats.sharding or {}
        where = (
            f"{npes} PEs / {shards} shards "
            f"({sh.get('transport', transport)} transport, "
            f"{sh.get('host_cpus', '?')} host cpu(s))"
        )
    executed = sum(w.tasks_executed for w in stats.workers)
    steals = sum(w.tasks_stolen for w in stats.workers)
    print(
        f"  fabric:  {where}, {executed} executed "
        f"({executed - ntasks} duplicate(s)), {steals} tasks stolen, "
        f"virtual runtime {stats.runtime * 1e3:.3f} ms — oracle clean"
    )
    if shards != 1 and stats.sharding:
        sh = stats.sharding
        print(
            f"           exchange: {sh.get('rounds', 0)} round(s), "
            f"{sh.get('grants', 0)} grant(s), "
            f"{sh.get('elisions', 0)} elision(s), "
            f"{sh.get('messages', 0)} message(s), "
            f"{sh.get('exchange_bytes', 0)} ring byte(s)"
        )
    return True


def _run_protocol_threads(proto, ntasks: int) -> bool:
    if proto.threads_queue is None:
        print("  threads: (no thread shim for this protocol)")
        return True
    if proto.family == "ffmult":
        from .threads.ffmult_shim import hammer_ffmult

        loot, kept, mult = hammer_ffmult(list(range(ntasks)))
        stolen = [t for lane in loot for t in lane]
        ok = set(stolen) | set(kept) == set(range(ntasks))
        dups = sum(1 for c in mult.values() if c > 1)
        print(
            f"  threads: {len(stolen)} stolen + {len(kept)} kept covers "
            f"all {ntasks} tasks: {ok} ({dups} duplicated index(es))"
        )
        return ok
    if proto.family == "sdc":
        from .threads.sdc_shim import hammer_sdc as hammer_fn
    else:
        from .threads.queue_shim import hammer as hammer_fn
    loot, kept = hammer_fn(list(range(ntasks)))
    stolen = [t for lane in loot for t in lane]
    ok = sorted(stolen + kept) == list(range(ntasks))
    print(
        f"  threads: {len(stolen)} stolen + {len(kept)} kept "
        f"partitions all {ntasks} tasks exactly: {ok}"
    )
    return ok


def _run_protocol_mp(proto, ntasks: int) -> bool:
    if proto.mp_impl is None:
        print("  mp:      (no multiprocess substrate for this protocol)")
        return True
    from .mp.queue import hammer_mp

    loot, kept = hammer_mp(list(range(ntasks)), impl=proto.mp_impl)
    stolen = [t for lane in loot for t in lane]
    if proto.semantics.exactly_once:
        ok = sorted(stolen + kept) == list(range(ntasks))
        print(
            f"  mp:      {len(stolen)} stolen + {len(kept)} kept "
            f"partitions all {ntasks} tasks exactly: {ok}"
        )
    else:
        ok = set(stolen) | set(kept) == set(range(ntasks))
        print(
            f"  mp:      {len(stolen)} stolen + {len(kept)} kept covers "
            f"all {ntasks} tasks: {ok}"
        )
    return ok


def _cmd_protocol(args: argparse.Namespace) -> int:
    """Run one registered protocol across the requested backends."""
    proto = get_protocol(args.protocol)
    # Validate the shard request up front, before any backend runs, so a
    # bad --shards/--npes combination fails fast with one clear message.
    if args.shards != 1:
        from .fabric.sharding import validate_shards

        try:
            validate_shards(args.npes, args.shards)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if args.backend != "fabric":
            print(
                "error: --shards applies to the fabric simulator only; "
                "add --backend fabric (threads/mp substrates are real "
                "parallelism already)",
                file=sys.stderr,
            )
            return 2
        if not proto.shardable:
            print(
                f"error: protocol {proto.name!r} cannot run sharded "
                f"(its steal path reads remote heap rows without NIC "
                f"mediation); use --shards 1",
                file=sys.stderr,
            )
            return 2
    backends = (
        ("fabric", "threads", "mp")
        if args.backend == "all"
        else (args.backend,)
    )
    print(
        f"{proto.name}: {proto.title}\n"
        f"  semantics: {proto.semantics.name} "
        f"({proto.semantics.description})\n"
        f"  steal cost: {proto.comms_total} comms "
        f"({proto.comms_blocking} blocking), "
        f"victims: {proto.default_victim}"
    )
    ok = True
    for backend in backends:
        if backend == "fabric":
            from .runtime.sharded import TransportUnavailable

            try:
                ok &= _run_protocol_fabric(
                    proto, args.npes, args.ntasks,
                    shards=args.shards, transport=args.shard_transport,
                )
            except TransportUnavailable as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
        elif backend == "threads":
            ok &= _run_protocol_threads(proto, args.ntasks)
        else:
            ok &= _run_protocol_mp(proto, args.ntasks)
    if not ok:
        print("FAIL: a backend violated the protocol's semantics contract")
        return 1
    return 0


def _cmd_explore(args: argparse.Namespace) -> int:
    if args.replay is not None:
        # `explore --replay T` == `replay T`: reproduce a recorded trace.
        args.trace = args.replay
        return _cmd_replay(args)
    workloads = WORKLOADS if args.workload == "all" else (args.workload,)
    impls = protocol_names() if args.impl == "all" else (args.impl,)
    out = Path(args.out) if args.out else None
    failures = 0
    written = []
    for wl in workloads:
        for impl in impls:
            report = explore(
                wl,
                impl,
                policy=args.policy,
                seeds=range(args.seed_base, args.seed_base + args.seeds),
                dfs_depth=args.dfs_depth,
                max_runs=args.max_runs,
                npes=args.npes,
            )
            print(report.render())
            for i, fail in enumerate(report.failures):
                failures += 1
                trace = fail.trace
                if args.shrink:
                    trace, runs = shrink_trace(trace)
                    print(f"  shrunk to {len(trace.choices)} choices "
                          f"({runs} replays)")
                if out is not None:
                    out.mkdir(parents=True, exist_ok=True)
                    path = out / f"{wl}-{impl}-{args.policy}-{fail.trace.seed}-{i}.json"
                    path.write_text(trace.to_json())
                    written.append(path)
    if written:
        print(f"\n{len(written)} failing trace(s) written to {args.out}:")
        for p in written:
            print(f"  {p}")
    if failures:
        print(f"\nFAIL: {failures} schedule(s) violated the protocol oracle")
        return 1
    print("\nall explored schedules oracle-clean")
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    trace = ScheduleTrace.from_json(Path(args.trace).read_text())
    meta = trace.meta
    print(f"replaying {args.trace}: workload={meta.get('workload')} "
          f"impl={meta.get('impl')} choices={len(trace.choices)}")
    if args.shrink:
        trace, runs = shrink_trace(trace)
        print(f"shrunk to {len(trace.choices)} choices ({runs} replays)")
        if args.out:
            Path(args.out).write_text(trace.to_json())
            print(f"wrote {args.out}")
    result = replay_trace(trace, strict=args.strict)
    if result.ok:
        print(f"run is clean: {result.events} events, "
              f"virtual runtime {result.runtime:.6g}s")
        return 0
    print(f"reproduced [{result.check}] after {result.events} events:")
    print(f"  {result.detail}")
    return 1


def _cmd_sweep(args: argparse.Namespace) -> int:
    import json

    from .analysis.sweep import (
        BENCH_SCENARIOS,
        MP_SCENARIOS,
        ResultCache,
        SweepJob,
        bench_report,
        check_regressions,
        run_jobs,
    )

    jobs: list[SweepJob] = []
    if args.matrix:
        impls = args.impls.split(",")
        trees = args.workloads.split(",")
        npes_list = [int(n) for n in args.npes.split(",")]
        for tree in trees:
            for impl in impls:
                for npes in npes_list:
                    for seed in range(args.seed_base, args.seed_base + args.seeds):
                        jobs.append(SweepJob.cell(tree, impl, npes, seed))
    else:
        names = (
            BENCH_SCENARIOS if args.scenarios == "all"
            else tuple(args.scenarios.split(","))
        )
        jobs = [SweepJob.bench(name, args.scale) for name in names]
        if args.scenarios == "all":
            # Multiprocess-substrate scenarios ride along in the report
            # and gate against their committed baseline entries like the
            # simulator scenarios do.
            jobs += [SweepJob.mp(*mp) for mp in MP_SCENARIOS]

    cache = None if args.no_cache else ResultCache(args.cache)
    outcome = run_jobs(
        jobs,
        workers=args.jobs,
        cache=cache,
        refresh=args.refresh,
        progress=print if not args.quiet else None,
    )
    print(
        f"\n{len(jobs)} job(s): {outcome.hits} cached, "
        f"{len(jobs) - outcome.hits} ran ({outcome.mode}, "
        f"{outcome.workers} worker(s)), {outcome.wall_s:.2f}s wall, "
        f"code {outcome.code_version}"
    )

    if not args.matrix:
        report = bench_report(outcome)
        for name, s in sorted(report["scenarios"].items()):
            tag = " (cached)" if s["cached"] else ""
            print(
                f"  {name:8s} {s['wall_s']:8.3f}s  {s['events']:>9d} events"
                f"  {s['events_per_sec']:>12,.0f} ev/s{tag}"
            )
        if args.out:
            Path(args.out).write_text(json.dumps(report, indent=2, sort_keys=True))
            print(f"wrote {args.out}")
        if args.baseline:
            baseline = json.loads(Path(args.baseline).read_text())
            problems = check_regressions(report, baseline, args.gate_threshold)
            if problems:
                print(f"\nFAIL: {len(problems)} perf regression(s) "
                      f"vs {args.baseline}:")
                for p in problems:
                    print(f"  {p}")
                return 1
            print(f"regression gate clean vs {args.baseline} "
                  f"(threshold {args.gate_threshold:.0%})")
    return 0


def _parse_crash(specs, point, respawn, seed):
    """``--crash RANK@N`` strings -> a CrashPlan (None when no kills)."""
    from .mp.faults import CrashKill, CrashPlan

    if not specs:
        return None
    kills = []
    for spec in specs:
        try:
            rank_s, after_s = spec.split("@", 1)
            rank = -1 if rank_s in ("any", "*") else int(rank_s)
            kills.append(CrashKill(rank, int(after_s), point))
        except ValueError as exc:
            raise SystemExit(
                f"bad --crash spec {spec!r} (want RANK@N or any@N): {exc}"
            ) from None
    return CrashPlan(seed=seed, kills=tuple(kills), respawn=respawn)


def _cmd_mp(args: argparse.Namespace) -> int:
    from .core.results import StealStatus
    from .mp.driver import run_mp

    crash = _parse_crash(
        args.crash, args.crash_point, args.respawn, args.seed
    )
    result = run_mp(
        args.workload,
        args.impl,
        args.npes,
        ntasks=args.ntasks,
        tree=args.tree,
        seed=args.seed,
        damping=not args.no_damping,
        verify=args.verify,
        crash=crash,
    )
    s = result.summary()
    print(
        f"mp/{s['impl']} {s['workload']} on {s['npes']} processes: "
        f"{s['executed']} tasks in {s['wall_s']:.3f}s wall"
    )
    print(
        f"  created={s['created']} completed={s['completed']} "
        f"steals={s['steals']} tasks_stolen={s['tasks_stolen']}"
    )
    hist = result.steal_volume_histogram()
    if hist:
        print("  steal volumes: "
              + ", ".join(f"{v}x{n}" for v, n in hist.items()))
    for p in result.pes:
        stolen = p.steals.get(StealStatus.STOLEN.value, 0)
        print(
            f"  PE {p.rank}: executed={p.executed} steals={stolen} "
            f"releases={p.releases} probes={p.probes} "
            f"demotions={p.demotions}"
        )
    if result.at_least_once:
        print(
            f"  crash recovery: killed ranks {s['crashed_ranks']} "
            f"(respawned {s['respawned_ranks']}), "
            f"{s['duplicates']} duplicate executions, "
            f"{s['lease_breaks']} lease breaks, scavenged "
            + ", ".join(f"{k}={v}" for k, v in s["scavenged"].items())
            + f", recovery {s['recovery_wall_s']:.3f}s"
        )
        if not result.conserved:
            print(
                f"FAIL: at-least-once accounting violated — "
                f"{s['executed_unique']} distinct tasks executed "
                f"(expected {result.expected_executed}), unique checksum "
                f"{result.unique_checksum:#x} (expected "
                f"{result.expected_checksum:#x})"
            )
            return 1
        print(
            f"verified: all {result.expected_executed} tasks ran at "
            f"least once, none lost (unique checksum "
            f"{result.unique_checksum:#018x})"
        )
        return 0
    if args.verify:
        if not result.conserved:
            print(
                f"FAIL: conservation violated — executed {s['executed']} "
                f"(expected {result.expected_executed}), checksum "
                f"{result.checksum:#x} (expected "
                f"{result.expected_checksum:#x})"
            )
            return 1
        print(
            f"verified: {result.expected_executed} tasks, zero "
            f"lost/duplicated (checksum {result.checksum:#018x})"
        )
    return 0


def _serve_fabric(args: argparse.Namespace, slo_s: float) -> tuple[int, int]:
    """One fabric serving run; returns (checksum, shed)."""
    from .runtime.serving import run_serve

    stats = run_serve(
        args.npes,
        impl=args.impl,
        arrival=args.arrival,
        duration_s=args.duration,
        slo_s=slo_s,
        seed=args.seed,
        task_s=args.task_s,
        shed_threshold=args.shed_threshold,
        elastic=args.elastic,
    )
    s = stats.serving
    pct = s.latency.percentiles()
    to_us = 1e6 / 1e15  # virtual latency is in ticks (1 fs)
    print(
        f"  fabric:  {args.npes} PEs, {s.emitted} arrivals -> "
        f"{s.injected} injected + {s.shed} shed, {s.completed} completed"
    )
    print(
        f"           p50={pct['p50'] * to_us:.2f}us "
        f"p99={pct['p99'] * to_us:.2f}us "
        f"p999={pct['p999'] * to_us:.2f}us (virtual)"
        + (f", SLO attained {s.slo_fraction:.1%}" if s.slo_ticks else "")
    )
    if s.leaves or s.joins:
        print(
            f"           elastic: {s.leaves} leave(s), {s.joins} join(s), "
            f"{s.handoffs} residue task(s) handed off"
        )
    print(f"           checksum {s.checksum:#018x} — oracle clean")
    return s.checksum, s.shed


def _serve_threads(args: argparse.Namespace, slo_s: float) -> int:
    from .threads.serving import run_serve_threads

    res = run_serve_threads(
        args.arrival,
        args.duration,
        seed=args.seed,
        impl=args.impl,
        nthieves=max(1, args.npes - 1),
        slo_s=slo_s,
    )
    s = res.serving
    pct = s.latency.percentiles()
    print(
        f"  threads: 1 owner + {max(1, args.npes - 1)} thieves, "
        f"{s.emitted} arrivals, {s.completed} claimed "
        f"(p50={pct['p50'] / 1e3:.1f}us p99={pct['p99'] / 1e3:.1f}us "
        f"claim latency)"
        + (f", SLO {s.slo_fraction:.1%}" if s.slo_ticks else "")
    )
    print(f"           checksum {s.checksum:#018x}")
    return s.checksum


def _serve_mp(args: argparse.Namespace, slo_s: float) -> int:
    from .mp.driver import run_mp_serve

    res = run_mp_serve(
        args.arrival,
        args.duration,
        impl=args.impl,
        npes=args.npes,
        seed=args.seed,
        slo_s=slo_s,
    )
    s = res.serving
    pct = s.latency.percentiles()
    print(
        f"  mp:      {args.npes} processes, {s.emitted} arrivals, "
        f"{s.completed} completed in {res.wall_s:.3f}s wall "
        f"(p50={pct['p50'] / 1e3:.1f}us p99={pct['p99'] / 1e3:.1f}us)"
        + (f", SLO {s.slo_fraction:.1%}" if s.slo_ticks else "")
    )
    print(f"           checksum {s.checksum:#018x}")
    return s.checksum


def _cmd_serve(args: argparse.Namespace) -> int:
    backends = (
        ("fabric", "threads", "mp")
        if args.backend == "all"
        else (args.backend,)
    )
    if args.backend != "fabric" and (args.shed_threshold or args.elastic):
        if args.backend == "all":
            print("note: --shed-threshold/--elastic apply to the fabric "
                  "run only")
        else:
            print("error: --shed-threshold/--elastic need --backend fabric",
                  file=sys.stderr)
            return 2
    slo_s = args.slo * 1e-3 if args.slo else 0.0
    print(
        f"serve/{args.impl}: {args.arrival} over {args.duration * 1e3:g}ms"
        + (f", SLO {args.slo:g}ms" if args.slo else "")
        + (f", elastic {args.elastic}" if args.elastic else "")
    )
    checksums = {}
    shed = 0
    for backend in backends:
        if backend == "fabric":
            checksums["fabric"], shed = _serve_fabric(args, slo_s)
        elif backend == "threads":
            checksums["threads"] = _serve_threads(args, slo_s)
        else:
            checksums["mp"] = _serve_mp(args, slo_s)
    if len(checksums) > 1:
        if shed:
            print("(fabric shed arrivals; cross-backend checksum "
                  "comparison skipped)")
        elif len(set(checksums.values())) == 1:
            print(f"all {len(checksums)} backends completed the identical "
                  f"task set (checksum {checksums['fabric']:#018x})")
        else:
            print("FAIL: backends completed different task sets: "
                  + ", ".join(f"{b}={c:#x}" for b, c in checksums.items()))
            return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("--protocol", default=None, choices=protocol_names(),
                        help="run one registered steal protocol across "
                             "backends (see docs/protocols.md)")
    parser.add_argument("--backend", default="all",
                        choices=("fabric", "threads", "mp", "all"),
                        help="with --protocol: which substrate(s) to run")
    parser.add_argument("--npes", type=int, default=8,
                        help="with --protocol: fabric PE count")
    parser.add_argument("--ntasks", type=int, default=300,
                        help="with --protocol: tasks per backend run")
    parser.add_argument("--shards", type=int, default=1,
                        help="with --protocol: partition the fabric run "
                             "across N shard engines in conservative "
                             "lock-step time windows (fabric backend "
                             "only; see docs/sharding.md)")
    parser.add_argument("--shard-transport", default="auto",
                        choices=("auto", "serial", "fork"),
                        help="with --shards > 1: run shards in-process "
                             "(serial, deterministic), as forked OS "
                             "processes (fork), or pick per host (auto: "
                             "fork only with >1 CPU to overlap on)")
    sub = parser.add_subparsers(dest="cmd")

    p_ex = sub.add_parser("explore", help="sweep event schedules under the oracle")
    p_ex.add_argument("--workload", default="all", choices=(*WORKLOADS, "all"))
    p_ex.add_argument("--impl", default="all",
                      choices=(*protocol_names(), "all"))
    p_ex.add_argument("--policy", default="random",
                      choices=[p for p in POLICIES if p != "replay"])
    p_ex.add_argument("--seeds", type=int, default=20,
                      help="number of seeds (random/pct)")
    p_ex.add_argument("--seed-base", type=int, default=0,
                      help="first seed (nightly CI shards by this)")
    p_ex.add_argument("--dfs-depth", type=int, default=6,
                      help="decision points enumerated exhaustively (dfs)")
    p_ex.add_argument("--max-runs", type=int, default=512,
                      help="branch cap for dfs")
    p_ex.add_argument("--npes", type=int, default=4)
    p_ex.add_argument("--shrink", action="store_true",
                      help="shrink failing traces before writing them")
    p_ex.add_argument("--out", default=None,
                      help="directory for failing-trace JSON files")
    p_ex.add_argument("--replay", metavar="TRACE", default=None,
                      help="re-execute a recorded trace instead of sweeping")
    p_ex.add_argument("--strict", action="store_true",
                      help="with --replay: verify recorded ready-set widths")
    p_ex.set_defaults(fn=_cmd_explore)

    p_rp = sub.add_parser("replay", help="re-execute a recorded schedule trace")
    p_rp.add_argument("trace", help="trace JSON written by explore")
    p_rp.add_argument("--strict", action="store_true",
                      help="verify ready-set widths against the recording")
    p_rp.add_argument("--shrink", action="store_true",
                      help="shrink the trace before replaying")
    p_rp.add_argument("--out", default=None,
                      help="write the shrunk trace here")
    p_rp.set_defaults(fn=_cmd_replay)

    p_sw = sub.add_parser(
        "sweep", help="fan deterministic runs across processes, with caching"
    )
    p_sw.add_argument("--scenarios", default="all",
                      help="comma-separated experiment ids, or 'all' "
                           "(the bench_fig* set)")
    p_sw.add_argument("--scale", default="quick", choices=("quick", "full"))
    p_sw.add_argument("--jobs", type=int, default=None,
                      help="worker processes (default: nproc, capped at 2 "
                           "under CI; REPRO_SWEEP_SERIAL=1 forces serial)")
    p_sw.add_argument("--cache", default="results/sweep-cache",
                      help="result-cache directory")
    p_sw.add_argument("--no-cache", action="store_true",
                      help="neither read nor write the cache")
    p_sw.add_argument("--refresh", action="store_true",
                      help="ignore cached results but still store fresh ones")
    p_sw.add_argument("--out", default=None, metavar="FILE",
                      help="write the BENCH_fabric.json report here")
    p_sw.add_argument("--baseline", default=None, metavar="FILE",
                      help="committed baseline report to gate against")
    p_sw.add_argument("--gate-threshold", type=float, default=0.20,
                      help="relative events/sec drop that fails the gate")
    p_sw.add_argument("--quiet", action="store_true",
                      help="suppress per-job progress lines")
    p_sw.add_argument("--matrix", action="store_true",
                      help="run a seed×impl×workload matrix instead of "
                           "bench scenarios")
    p_sw.add_argument("--workloads", default="test_tiny",
                      help="matrix: comma-separated named UTS trees")
    p_sw.add_argument("--impls", default="sdc,sws",
                      help="matrix: comma-separated queue impls")
    p_sw.add_argument("--npes", default="4",
                      help="matrix: comma-separated PE counts")
    p_sw.add_argument("--seeds", type=int, default=3,
                      help="matrix: seeds per cell")
    p_sw.add_argument("--seed-base", type=int, default=100)
    p_sw.set_defaults(fn=_cmd_sweep)

    p_mp = sub.add_parser(
        "mp", help="run a workload on the multiprocess shared-memory substrate"
    )
    p_mp.add_argument("--workload", default="synthetic",
                      choices=("synthetic", "uts"))
    p_mp.add_argument("--impl", default="sws", choices=("sws", "sdc"))
    p_mp.add_argument("--npes", type=int, default=4,
                      help="worker processes (PEs)")
    p_mp.add_argument("--ntasks", type=int, default=2000,
                      help="synthetic: tasks seeded on PE 0")
    p_mp.add_argument("--tree", default="test_tiny",
                      help="uts: named tree (test_tiny, test_small, ...)")
    p_mp.add_argument("--seed", type=int, default=0)
    p_mp.add_argument("--no-damping", action="store_true",
                      help="disable the §4.3 damping state machine")
    p_mp.add_argument("--verify", action="store_true",
                      help="check count + checksum against the sequential "
                           "oracle; nonzero exit on mismatch")
    p_mp.add_argument("--crash", action="append", metavar="RANK@N",
                      help="SIGKILL RANK after its N-th task (repeatable; "
                           "rank 'any' draws a seeded random rank); "
                           "switches the run to at-least-once accounting")
    p_mp.add_argument("--crash-point", default="exec",
                      choices=("exec", "steal", "lock"),
                      help="where the kill lands: between tasks, mid-steal "
                           "after the claim, or holding a stripe lock")
    p_mp.add_argument("--respawn", action="store_true",
                      help="supervisor restarts each crashed rank once")
    p_mp.set_defaults(fn=_cmd_mp)

    p_sv = sub.add_parser(
        "serve", help="open-system serving: streaming arrivals with "
                      "tail-latency SLOs (docs/serving.md)"
    )
    p_sv.add_argument("--arrival", default="poisson:50000",
                      metavar="KIND:ARGS",
                      help="arrival process: poisson:RATE, fixed:RATE, "
                           "bursty:LO,HI[,DLO,DHI], diurnal:BASE,PEAK"
                           "[,PERIOD] (rates in tasks/s)")
    p_sv.add_argument("--duration", type=float, default=2e-3,
                      help="arrival horizon in seconds (virtual on fabric, "
                           "trace length elsewhere)")
    p_sv.add_argument("--slo", type=float, default=0.0, metavar="MS",
                      help="latency SLO in milliseconds (0 = no SLO "
                           "accounting)")
    p_sv.add_argument("--impl", default="sws", choices=("sws", "sdc"))
    p_sv.add_argument("--backend", default="fabric",
                      choices=("fabric", "threads", "mp", "all"))
    p_sv.add_argument("--npes", type=int, default=4)
    p_sv.add_argument("--seed", type=int, default=0)
    p_sv.add_argument("--task-s", type=float, default=2e-6,
                      help="fabric: virtual service time per task")
    p_sv.add_argument("--shed-threshold", type=int, default=None,
                      metavar="K",
                      help="fabric: shed arrivals when every active queue "
                           "holds >= K tasks")
    p_sv.add_argument("--elastic", default=None, metavar="PLAN",
                      help="fabric: membership plan "
                           "('leave:RANK@T,join:RANK@T' or 'seeded')")
    p_sv.set_defaults(fn=_cmd_serve)

    # main() with no argv is the library entry point (and the historic
    # behaviour): run the demo, never read sys.argv.
    args = parser.parse_args(argv if argv is not None else [])
    if args.cmd is None:
        if args.protocol is not None:
            return _cmd_protocol(args)
        return _demo()
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
