"""``python -m repro`` — a 10-second sanity demonstration.

Prints the package version, the Figure-2 communication counts (the
paper's headline), and a pointer to the full experiment CLI.
"""

from __future__ import annotations

from . import __version__
from .analysis.experiments import run_experiment


def main() -> int:
    """Print the version, the Figure-2 headline, and pointers."""
    print(f"repro {__version__} — SWS structured-atomic work stealing "
          f"(ICPP 2021 reproduction)\n")
    print(run_experiment("fig2").render())
    print("full harness: python -m repro.analysis.cli --exp all")
    print("docs: README.md, DESIGN.md, EXPERIMENTS.md, docs/")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
