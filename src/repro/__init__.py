"""repro — reproduction of *Optimizing Work Stealing Communication with
Structured Atomic Operations* (Cartier, Dinan, Larkins; ICPP 2021).

The package implements the paper's SWS work-stealing system and its
Scioto-SDC baseline over a simulated RDMA/PGAS fabric:

* :mod:`repro.fabric` — discrete-event RDMA fabric (engine, symmetric
  heap, NIC with a calibrated latency model);
* :mod:`repro.shmem` — OpenSHMEM-flavoured one-sided API;
* :mod:`repro.core` — the stealval codecs, steal-half schedule, steal
  damping, and the SDC / SWS task queues;
* :mod:`repro.runtime` — Scioto-model task pool: workers, termination
  detection, statistics;
* :mod:`repro.workloads` — BPC, UTS, and the Figure-6 steal probe;
* :mod:`repro.analysis` — the experiment harness regenerating every
  table and figure of the paper's evaluation.

Quickstart::

    from repro import TaskPool, Task, TaskOutcome, TaskRegistry

    reg = TaskRegistry()
    leaf = reg.register("leaf", lambda payload, tc: TaskOutcome(5e-3))
    pool = TaskPool(npes=16, registry=reg, impl="sws")
    pool.seed(0, [Task(leaf) for _ in range(10_000)])
    stats = pool.run()
    print(f"{stats.throughput:.0f} tasks/s at efficiency "
          f"{stats.parallel_efficiency:.2%}")
"""

from .core import (
    DampingTracker,
    QueueConfig,
    SdcQueue,
    SdcQueueSystem,
    StealResult,
    StealStatus,
    StealValEpoch,
    StealValV1,
    SwsQueue,
    SwsQueueSystem,
)
from .fabric import (
    EDR_INFINIBAND,
    SLOW_ETHERNET,
    ZERO_LATENCY,
    FabricTimeoutError,
    FaultPlan,
    LatencyModel,
    OracleViolation,
    PEFailure,
    ScheduleTrace,
    Scheduler,
    make_scheduler,
)
from .runtime import (
    PoolOracle,
    RunStats,
    Task,
    TaskOutcome,
    TaskPool,
    TaskRegistry,
    WorkerConfig,
    WorkerStats,
    run_pool,
)
from .shmem import Pe, ShmemCtx

__version__ = "1.0.0"

__all__ = [
    "TaskPool",
    "run_pool",
    "TaskRegistry",
    "Task",
    "TaskOutcome",
    "RunStats",
    "WorkerStats",
    "WorkerConfig",
    "QueueConfig",
    "SwsQueue",
    "SwsQueueSystem",
    "SdcQueue",
    "SdcQueueSystem",
    "StealResult",
    "StealStatus",
    "StealValV1",
    "StealValEpoch",
    "DampingTracker",
    "LatencyModel",
    "EDR_INFINIBAND",
    "SLOW_ETHERNET",
    "ZERO_LATENCY",
    "FaultPlan",
    "PEFailure",
    "FabricTimeoutError",
    "Scheduler",
    "ScheduleTrace",
    "make_scheduler",
    "PoolOracle",
    "OracleViolation",
    "ShmemCtx",
    "Pe",
    "__version__",
]
