"""Experiment registry: one entry per table/figure of the paper.

Each experiment function returns an :class:`ExperimentResult` holding the
series the paper's artifact plots (as table rows) plus free-form notes
recording what to compare against the publication.  The registry drives
both the CLI (``python -m repro.analysis.cli``) and the benchmark suite
under ``benchmarks/``.

Scales:

* ``quick`` — seconds; used by the test/benchmark suites;
* ``full``  — minutes; the defaults for EXPERIMENTS.md numbers;
* paper-scale parameters are documented in the workload modules but not
  wired to a scale knob (enumerating a 270 B-node tree is not a thing a
  simulator does).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..core.config import QueueConfig
from ..core.damping import DampingTracker
from ..core.steal_half import schedule, steal_displacement, steal_volume
from ..core.stealval import StealValEpoch, StealValV1
from ..core.task_state import TaskStateTracker
from ..fabric.latency import EDR_INFINIBAND
from ..runtime.registry import TaskRegistry
from ..runtime.worker import WorkerConfig
from ..workloads.bpc import PAPER_PARAMS as BPC_PAPER
from ..workloads.bpc import BpcParams, BpcWorkload
from ..workloads.synthetic import measure_single_steal
from ..workloads.uts import (
    BENCH_GEO,
    TEST_SMALL,
    UtsWorkload,
    UtsWorkloadParams,
    enumerate_tree,
)
from ..workloads.uts.workload import PAPER_NODE_TIME, PAPER_TASK_SIZE
from .report import ascii_table
from .series import (
    CellSummary,
    relative_improvement,
    speedup_factor,
    summarize_cells,
)
from .sweep import SweepConfig, run_sweep


@dataclass
class ExperimentResult:
    """Rendered outcome of one experiment."""

    exp_id: str
    title: str
    headers: list[str]
    rows: list[list]
    notes: list[str] = field(default_factory=list)
    charts: list[str] = field(default_factory=list)
    #: Work units performed by experiments that never touch the fabric
    #: engine (pure encode/decode arithmetic); the bench runner falls
    #: back to this when the engine's event tally is zero, so their
    #: throughput row is not reported as ``events: 0``.
    ops: int = 0

    def render(self, with_charts: bool = False) -> str:
        """Human-readable report block."""
        out = [f"== {self.exp_id}: {self.title} ==", ""]
        out.append(ascii_table(self.headers, self.rows))
        if with_charts:
            out.extend(self.charts)
        for n in self.notes:
            out.append(f"note: {n}")
        return "\n".join(out) + "\n"


# ----------------------------------------------------------------------
# Figure 2 — steal communication counts
# ----------------------------------------------------------------------
def exp_fig2(scale: str = "quick") -> ExperimentResult:
    """Count the one-sided communications of a single successful steal."""
    rows = []
    for impl in ("sdc", "sws"):
        probe = measure_single_steal(impl, volume=8, task_size=24)
        total = sum(probe.comms.get(k, 0) for k in probe.comms if k not in ("total", "blocking", "bytes"))
        blocking = probe.comms.get("blocking", 0)
        rows.append(
            [impl.upper(), probe.comms.get("total", total), blocking,
             probe.comms.get("total", total) - blocking]
        )
    return ExperimentResult(
        exp_id="fig2",
        title="Steal communication counts (SDC vs SWS)",
        headers=["impl", "total comms", "blocking", "non-blocking"],
        rows=rows,
        notes=[
            "paper: SDC = 6 communications (5 blocking), SWS = 3 (2 blocking)",
            "counts are exact fabric-op tallies around one non-wrapped steal",
        ],
    )


# ----------------------------------------------------------------------
# Table 1 — shared-task state machine
# ----------------------------------------------------------------------
def exp_tab1(scale: str = "quick") -> ExperimentResult:
    """Exercise the A/C/F/I lifecycle on a 3-block allotment."""
    tracker = TaskStateTracker(3)
    trace = [("init", "".join(s.value for s in tracker.states))]
    tracker.claim(0)
    trace.append(("steal 0 claimed", "".join(s.value for s in tracker.states)))
    tracker.claim(1)
    tracker.finish(1)
    trace.append(("steal 1 claimed+finished", "".join(s.value for s in tracker.states)))
    tracker.finish(0)
    tracker.invalidate(0)
    tracker.invalidate(1)
    tracker.invalidate(2)  # unclaimed block re-acquired by owner
    trace.append(("owner reclaimed", "".join(s.value for s in tracker.states)))
    rows = [[step, states] for step, states in trace]
    return ExperimentResult(
        exp_id="tab1",
        title="Shared task states (Available/Claimed/Finished/Invalid)",
        headers=["event", "block states"],
        rows=rows,
        notes=["transition legality is enforced; see tests/test_task_state.py"],
    )


# ----------------------------------------------------------------------
# Figures 3 & 4 — stealval layouts
# ----------------------------------------------------------------------
def exp_fig34(scale: str = "quick") -> ExperimentResult:
    """Show both packed layouts on the paper's worked example."""
    # Fig. 3 example: 2 attempted steals, valid, 150 initial tasks, tail 500.
    v1 = StealValV1.pack(2, True, 150, 500)
    view1 = StealValV1.unpack(v1)
    ve = StealValEpoch.pack(2, 1, 150, 500)
    viewe = StealValEpoch.unpack(ve)
    # 2 packs + 2 unpacks + schedule/volume/displacement evaluations:
    # the "events" of this engine-free experiment.
    ops = 7
    rows = [
        ["fig3 (V1)", f"0x{v1:016x}", view1.asteals, int(view1.valid), view1.itasks, view1.tail],
        ["fig4 (epoch)", f"0x{ve:016x}", viewe.asteals, viewe.epoch, viewe.itasks, viewe.tail],
    ]
    sched = schedule(150)
    next_vol = steal_volume(150, 2)
    disp = steal_displacement(150, 2)
    return ExperimentResult(
        exp_id="fig34",
        title="Packed stealval layouts (Figures 3 and 4)",
        headers=["layout", "word", "asteals", "valid/epoch", "itasks", "tail"],
        rows=rows,
        notes=[
            f"steal-half schedule for 150 tasks: {sched} (paper: "
            "{75,37,19,9,5,2,1,1,1})",
            f"with asteals=2 the next steal takes {next_vol} tasks starting at "
            f"tail+{disp} = {500 + disp} (paper: 19 tasks at index 612)",
        ],
        ops=ops,
    )


# ----------------------------------------------------------------------
# Figure 5 — acquire with completion epochs
# ----------------------------------------------------------------------
def exp_fig5(scale: str = "quick") -> ExperimentResult:
    """Measure acquire-time stalls with 1 vs 2 completion epochs.

    A thief with a slow task copy keeps a steal in flight while the owner
    performs release/acquire cycles; with a single epoch the owner must
    poll for the in-flight steal, with two it proceeds immediately.
    """
    from ..core.sws_queue import SwsQueueSystem
    from ..fabric.engine import Delay
    from ..fabric.latency import SLOW_ETHERNET
    from ..shmem.api import ShmemCtx

    rows = []
    for epochs in (1, 2):
        cfg = QueueConfig(qsize=4096, task_size=192, max_epochs=epochs)
        # One PE per node: every hop pays the full inter-node latency.
        ctx = ShmemCtx(2, latency=SLOW_ETHERNET, pes_per_node=1)
        system = SwsQueueSystem(ctx, cfg)
        owner_q, thief_q = system.handle(0), system.handle(1)

        def owner():
            for _ in range(2048):
                owner_q.enqueue(bytes(192))
            yield from owner_q.release()
            # The thief claims 512 tasks at ~18 us; its ~100 us task copy
            # and the passive completion are still in flight when the
            # owner acquires at 40 us (the Figure-5 snapshot).
            yield Delay(40e-6)
            yield from owner_q.acquire()
            yield Delay(5e-3)
            owner_q.progress()

        def thief():
            yield Delay(5e-6)
            res = yield from thief_q.steal(0)
            assert res.success, res.status

        ctx.engine.spawn(owner(), "owner")
        ctx.engine.spawn(thief(), "thief")
        ctx.run()
        rows.append([epochs, owner_q.epoch_wait_time * 1e6])
    return ExperimentResult(
        exp_id="fig5",
        title="Acquire behaviour with completion epochs",
        headers=["epochs", "owner epoch-wait time (us)"],
        rows=rows,
        notes=[
            "paper §4.2: two epochs sufficed to avoid acquire-time polling",
            "expect epochs=2 wait ≈ 0, epochs=1 wait > 0",
        ],
    )


# ----------------------------------------------------------------------
# Figure 6 — steal time vs steal volume
# ----------------------------------------------------------------------
def exp_fig6(scale: str = "quick") -> ExperimentResult:
    """Single-steal latency across volumes and task sizes."""
    volumes = [2, 4, 8, 16, 32, 64, 128, 256, 512, 1024]
    if scale == "quick":
        volumes = [2, 8, 32, 128, 512, 1024]
    rows = []
    ratio_notes = {}
    for ts in (24, 192):
        for volume in volumes:
            lat = {}
            for impl in ("sdc", "sws"):
                probe = measure_single_steal(impl, volume, ts, latency=EDR_INFINIBAND)
                lat[impl] = probe.steal_seconds
            rows.append(
                [ts, volume, lat["sdc"] * 1e6, lat["sws"] * 1e6,
                 lat["sdc"] / lat["sws"]]
            )
            ratio_notes[(ts, volume)] = lat["sdc"] / lat["sws"]
    small_ratio = ratio_notes[(24, min(volumes))]
    big_ratio = ratio_notes[(24, max(volumes))]
    from .plots import AsciiChart

    charts = []
    for ts in (24, 192):
        ts_rows = [r for r in rows if r[0] == ts]
        chart = AsciiChart(
            xs=[float(r[1]) for r in ts_rows],
            title=f"fig6: steal time (us), {ts} B tasks",
            log_x=True,
            log_y=True,
            ylabel="us",
        )
        chart.add("sdc", [r[2] for r in ts_rows])
        chart.add("sws", [r[3] for r in ts_rows])
        charts.append(chart.render())
    return ExperimentResult(
        exp_id="fig6",
        title="Steal operation time vs steal volume",
        headers=["task bytes", "volume", "SDC (us)", "SWS (us)", "SDC/SWS"],
        rows=rows,
        charts=charts,
        notes=[
            "paper: SWS ≈ half SDC at small volumes; curves converge as the "
            "task copy dominates",
            f"measured ratio at volume {min(volumes)}: {small_ratio:.2f}x; "
            f"at {max(volumes)}: {big_ratio:.2f}x",
        ],
    )


# ----------------------------------------------------------------------
# Table 2 — workload characteristics
# ----------------------------------------------------------------------
def exp_tab2(scale: str = "quick") -> ExperimentResult:
    """Workload characteristics of the evaluation benchmarks."""
    bpc_scaled = _bpc_params(scale)
    uts_tree = _uts_tree(scale)
    uts_stats = enumerate_tree(uts_tree, max_nodes=2_000_000)
    rows = [
        ["BPC (paper)", BPC_PAPER.total_tasks, BPC_PAPER.avg_task_time * 1e3, 32],
        ["UTS (paper, T1WL)", 270_751_679_750, PAPER_NODE_TIME * 1e3, PAPER_TASK_SIZE],
        ["BPC (this repro)", bpc_scaled.total_tasks, bpc_scaled.avg_task_time * 1e3, 32],
        ["UTS (this repro)", uts_stats.nodes, PAPER_NODE_TIME * 1e3, PAPER_TASK_SIZE],
    ]
    return ExperimentResult(
        exp_id="tab2",
        title="Benchmark workload characteristics",
        headers=["benchmark", "total tasks", "avg task time (ms)", "task bytes"],
        rows=rows,
        notes=[
            "paper Table 2 reports BPC=2,457,901 tasks (n=8192, depth 500 per "
            "the text gives 4,096,500; the table matches depth≈300 — the "
            "discrepancy is the paper's, recorded here verbatim)",
            "repro workloads are scaled; shape (coarse BPC vs fine UTS) is "
            "preserved",
        ],
    )


# ----------------------------------------------------------------------
# Figures 7 & 8 — the six-panel sweeps
# ----------------------------------------------------------------------
def _bpc_params(scale: str) -> BpcParams:
    if scale == "full":
        return BpcParams(n_consumers=128, depth=64, consumer_time=5e-3, producer_time=1e-3)
    return BpcParams(n_consumers=32, depth=16, consumer_time=5e-3, producer_time=1e-3)


def _uts_tree(scale: str):
    return BENCH_GEO if scale == "full" else TEST_SMALL


def _sweep_config(scale: str, task_size: int, qsize: int) -> SweepConfig:
    if scale == "full":
        npes = (2, 4, 8, 16, 32, 64)
        reps = 5
    else:
        npes = (2, 4, 8, 16)
        reps = 3
    return SweepConfig(
        npes_list=npes,
        reps=reps,
        queue_config=QueueConfig(qsize=qsize, task_size=task_size),
        worker_config=WorkerConfig(),
    )


def _panel_rows(cells: list[CellSummary]) -> list[list]:
    rows = []
    improvement = relative_improvement(cells)
    for c in sorted(cells, key=lambda c: (c.npes, c.impl)):
        rows.append(
            [
                c.impl.upper(),
                c.npes,
                c.runtime_mean * 1e3,
                c.throughput,
                improvement.get(c.npes, float("nan")) if c.impl == "sws" else 100.0,
                c.efficiency * 100.0,
                c.rel_sd_pct,
                c.rel_range_pct,
                c.steal_time * 1e3,
                c.search_time * 1e3,
            ]
        )
    return rows


_PANEL_HEADERS = [
    "impl", "npes", "runtime(ms)", "tasks/s", "rel. perf %",
    "efficiency %", "SD %", "range %", "steal time(ms)", "search time(ms)",
]


def exp_fig7(scale: str = "quick") -> ExperimentResult:
    """BPC: all six panels of Figure 7 from one sweep."""
    params = _bpc_params(scale)

    def factory():
        reg = TaskRegistry()
        wl = BpcWorkload(reg, params)
        return reg, [wl.seed_task()]

    cfg = _sweep_config(scale, task_size=32, qsize=4096)
    points = run_sweep(factory, cfg)
    cells = summarize_cells(points)
    steal_factor = speedup_factor(cells, "steal_time")
    search_factor = speedup_factor(cells, "search_time")
    from .plots import chart_cells

    return ExperimentResult(
        exp_id="fig7",
        title=f"BPC sweep (n={params.n_consumers}, depth={params.depth})",
        headers=_PANEL_HEADERS,
        rows=_panel_rows(cells),
        charts=[
            chart_cells(cells, "throughput", "fig7a: BPC tasks/s vs PEs"),
            chart_cells(cells, "steal_time", "fig7e: steal time vs PEs", log_y=True),
            chart_cells(cells, "search_time", "fig7f: search time vs PEs", log_y=True),
        ],
        notes=[
            "panels: (a)=tasks/s, (b)=rel. perf %, (c)=efficiency, "
            "(d)=SD/range %, (e)=steal time, (f)=search time",
            f"steal-time factor SDC/SWS by npes: "
            + ", ".join(f"{k}:{v:.2f}x" for k, v in sorted(steal_factor.items())),
            f"search-time factor SDC/SWS by npes: "
            + ", ".join(f"{k}:{v:.2f}x" for k, v in sorted(search_factor.items())),
            "paper: runtimes near parity at small scale, SWS edging ahead as "
            "PEs grow; SWS steal time flat vs SDC growth",
        ],
    )


def exp_fig8(scale: str = "quick") -> ExperimentResult:
    """UTS: all six panels of Figure 8 from one sweep."""
    tree = _uts_tree(scale)

    def factory():
        reg = TaskRegistry()
        wl = UtsWorkload(reg, tree, UtsWorkloadParams(node_time=PAPER_NODE_TIME))
        return reg, [wl.seed_task()]

    cfg = _sweep_config(scale, task_size=48, qsize=8192)
    points = run_sweep(factory, cfg)
    cells = summarize_cells(points)
    steal_factor = speedup_factor(cells, "steal_time")
    improvement = relative_improvement(cells)
    from .plots import chart_cells

    return ExperimentResult(
        exp_id="fig8",
        title=f"UTS sweep ({'BENCH_GEO' if tree is BENCH_GEO else 'TEST_SMALL'})",
        headers=_PANEL_HEADERS,
        rows=_panel_rows(cells),
        charts=[
            chart_cells(cells, "throughput", "fig8a: UTS tasks/s vs PEs"),
            chart_cells(cells, "steal_time", "fig8e: steal time vs PEs", log_y=True),
            chart_cells(cells, "search_time", "fig8f: search time vs PEs", log_y=True),
        ],
        notes=[
            "panels as fig7; UTS tasks are ~110 ns, so steal overheads "
            "dominate and the SWS gap is larger than BPC's",
            f"steal-time factor SDC/SWS by npes: "
            + ", ".join(f"{k}:{v:.2f}x" for k, v in sorted(steal_factor.items())),
            f"relative improvement by npes: "
            + ", ".join(f"{k}:{v:.1f}%" for k, v in sorted(improvement.items())),
            "paper: ~9% runtime improvement, 3-4x lower steal time, low flat "
            "search time",
        ],
    )


# ----------------------------------------------------------------------
# Protocol zoo — the registry measured side by side
# ----------------------------------------------------------------------
def exp_protocols(scale: str = "quick") -> ExperimentResult:
    """Every registered steal protocol under one flat workload.

    Extends the Figure 2/6/7 comparisons across the protocol zoo
    (:mod:`repro.runtime.protocols`): measured per-steal communication
    counts (single-steal probe) next to the registry's declared budget,
    plus an 8-PE flat-workload run per protocol with the semantics-aware
    oracle attached — duplicate handouts reported for the at-least-once
    entry, zero for the exactly-once ones.
    """
    from ..runtime.pool import run_pool
    from ..runtime.protocols import all_protocols
    from ..runtime.registry import TaskOutcome
    from ..runtime.task import Task

    ntasks = 600 if scale == "quick" else 4000
    npes = 8
    rows = []
    for proto in all_protocols():
        probe = measure_single_steal(
            proto.name, volume=1 if proto.family == "ffmult" else 8,
            task_size=24,
        )
        reg = TaskRegistry()
        reg.register("leaf", lambda payload, tc: TaskOutcome(duration=5e-6))
        stats = run_pool(
            npes, reg,
            [Task(reg.id_of("leaf")) for _ in range(ntasks)],
            impl=proto.name,
            queue_config=QueueConfig(qsize=4096, task_size=24),
            oracle=True,
            seed=42,
        )
        executed = sum(w.tasks_executed for w in stats.workers)
        rows.append(
            [
                proto.name,
                proto.semantics.name,
                probe.comms.get("total", 0),
                probe.comms.get("blocking", 0),
                probe.steal_seconds * 1e6,
                stats.runtime * 1e3,
                sum(w.tasks_stolen for w in stats.workers),
                executed - ntasks,
            ]
        )
    return ExperimentResult(
        exp_id="protocols",
        title=f"Protocol zoo: steal cost and {ntasks}-task flat run ({npes} PEs)",
        headers=["protocol", "semantics", "comms", "blocking",
                 "steal (us)", "runtime (ms)", "stolen", "dups"],
        rows=rows,
        notes=[
            "comm counts are exact fabric-op tallies around one steal; "
            "paper Fig. 2 gives SDC=6(5 blocking), SWS=3(2); the "
            "fence-free deque needs 3 (no atomics, all blocking)",
            "dups > 0 is legal only for at-least-once semantics; the "
            "attached oracle enforces executed == spawned + dups",
            "localized = SWS steal core + tier-biased victims over the "
            "tiered (socket/node/rack) latency model",
        ],
    )


# ----------------------------------------------------------------------
# Ablations (DESIGN.md §5)
# ----------------------------------------------------------------------
def exp_ablation_damping(scale: str = "quick") -> ExperimentResult:
    """Steal damping on/off: AMO traffic on drained queues."""
    tree = TEST_SMALL

    def factory():
        reg = TaskRegistry()
        wl = UtsWorkload(reg, tree)
        return reg, [wl.seed_task()]

    rows = []
    for damping in (False, True):
        cfg = SweepConfig(
            npes_list=(8,),
            impls=("sws",),
            reps=3,
            queue_config=QueueConfig(qsize=4096, task_size=48),
            worker_config=WorkerConfig(damping=damping),
        )
        points = run_sweep(factory, cfg)
        cells = summarize_cells(points)
        c = cells[0]
        rows.append(
            [damping, c.runtime_mean * 1e3, c.comm_total, c.steals_failed]
        )
    return ExperimentResult(
        exp_id="ablate-damping",
        title="Steal damping ablation (SWS, 8 PEs, UTS)",
        headers=["damping", "runtime(ms)", "total comms", "failed claims"],
        rows=rows,
        notes=["paper §4.3: damping costs nothing measurable; probe mode "
               "trades claiming AMOs for read-only fetches on empty targets"],
    )


def exp_ablation_epochs(scale: str = "quick") -> ExperimentResult:
    """1 vs 2 completion epochs under a real workload."""
    tree = TEST_SMALL

    rows = []
    for epochs in (1, 2):
        def factory():
            reg = TaskRegistry()
            wl = UtsWorkload(reg, tree)
            return reg, [wl.seed_task()]

        cfg = SweepConfig(
            npes_list=(8,),
            impls=("sws",),
            reps=3,
            queue_config=QueueConfig(qsize=4096, task_size=48, max_epochs=epochs),
        )
        points = run_sweep(factory, cfg)
        cells = summarize_cells(points)
        c = cells[0]
        rows.append([epochs, c.runtime_mean * 1e3, c.steal_time * 1e3])
    return ExperimentResult(
        exp_id="ablate-epochs",
        title="Completion-epoch count ablation (SWS, 8 PEs, UTS)",
        headers=["epochs", "runtime(ms)", "steal time(ms)"],
        rows=rows,
        notes=["single-epoch queues must wait out in-flight steals at every "
               "acquire/release; two epochs overlap them (§4.2)"],
    )


def exp_ablation_contention(scale: str = "quick") -> ExperimentResult:
    """Many thieves hitting one victim: protocol behaviour under contention."""
    from ..core.sdc_queue import SdcQueueSystem
    from ..core.sws_queue import SwsQueueSystem
    from ..fabric.engine import Delay
    from ..shmem.api import ShmemCtx

    nthieves = 8 if scale == "quick" else 16
    rows = []
    for impl in ("sdc", "sws"):
        cfg = QueueConfig(qsize=2048, task_size=24)
        ctx = ShmemCtx(nthieves + 1)
        system = (SwsQueueSystem if impl == "sws" else SdcQueueSystem)(ctx, cfg)
        victim_q = system.handle(0)
        done: list[float] = []

        def owner():
            for _ in range(1024):
                victim_q.enqueue(bytes(24))
            if impl == "sws":
                yield from victim_q.release()
            else:
                victim_q.release()

        def thief(rank):
            q = system.handle(rank)
            yield Delay(1e-6)
            t0 = ctx.engine.now
            res = yield from q.steal(0)
            if res.success:
                done.append(ctx.engine.now - t0)

        ctx.engine.spawn(owner(), "owner")
        for r in range(1, nthieves + 1):
            ctx.engine.spawn(thief(r), f"t{r}")
        ctx.run()
        mean = sum(done) / len(done) if done else 0.0
        rows.append(
            [impl.upper(), len(done), mean * 1e6, max(done) * 1e6 if done else 0.0]
        )
    return ExperimentResult(
        exp_id="ablate-contention",
        title=f"Simultaneous steals from one victim ({nthieves} thieves)",
        headers=["impl", "successful", "mean steal (us)", "max steal (us)"],
        rows=rows,
        notes=["SDC thieves serialize behind the queue lock; SWS claims "
               "pipeline through the NIC atomic unit (paper §6: 'better "
               "properties when a target is contended')"],
    )


def exp_ablation_granularity(scale: str = "quick") -> ExperimentResult:
    """Task-granularity sweep (paper §2).

    "An application with short-lived, fine grained tasks (~10us) will be
    easier to balance, but will be more sensitive to overheads in the
    load balancing system" — so the SWS advantage should shrink as tasks
    coarsen.  Fixed task count and PE count; only the task duration moves.
    """
    from ..runtime.registry import TaskOutcome
    from ..runtime.task import Task

    durations = (1e-6, 10e-6, 100e-6, 1e-3)
    if scale == "full":
        durations = (1e-6, 10e-6, 100e-6, 1e-3, 10e-3)
    ntasks = 2000
    rows = []
    for dur in durations:
        runtimes = {}
        overheads = {}

        def factory(d=dur):
            reg = TaskRegistry()
            reg.register(
                "root",
                lambda p, tc: TaskOutcome(1e-6, [Task(1)] * ntasks),
            )
            reg.register("leaf", lambda p, tc, d=d: TaskOutcome(d))
            return reg, [Task(0)]

        for impl in ("sdc", "sws"):
            cfg = SweepConfig(
                npes_list=(8,),
                impls=(impl,),
                reps=5,
                queue_config=QueueConfig(qsize=4096, task_size=24),
            )
            cells = summarize_cells(run_sweep(factory, cfg))
            runtimes[impl] = cells[0].runtime_mean
            overheads[impl] = cells[0].steal_time + cells[0].search_time
        rows.append(
            [
                dur * 1e6,
                runtimes["sdc"] * 1e3,
                runtimes["sws"] * 1e3,
                100.0 * runtimes["sdc"] / runtimes["sws"],
                overheads["sdc"] * 1e6,
                overheads["sws"] * 1e6,
            ]
        )
    return ExperimentResult(
        exp_id="ablate-granularity",
        title=f"Task-granularity sweep ({ntasks} tasks, 8 PEs)",
        headers=["task (us)", "SDC ms", "SWS ms", "rel. perf %",
                 "SDC overhead (us)", "SWS overhead (us)"],
        rows=rows,
        notes=[
            "paper §2: fine-grained tasks are sensitive to steal latency, "
            "coarse tasks tolerate it — the SWS relative advantage should "
            "decay toward 100% as tasks coarsen",
        ],
    )


def exp_ablation_latency(scale: str = "quick") -> ExperimentResult:
    """Network-latency sensitivity: scale all fabric latencies.

    The SWS win is a round-trip-count argument, so slower wires should
    widen the absolute steal-time gap.
    """
    factors = (0.25, 1.0, 4.0) if scale == "quick" else (0.25, 1.0, 4.0, 16.0)
    rows = []
    for f in factors:
        lat = EDR_INFINIBAND.scaled(f)
        times = {}
        for impl in ("sdc", "sws"):
            probe = measure_single_steal(impl, 8, 48, latency=lat)
            times[impl] = probe.steal_seconds
        rows.append(
            [f, times["sdc"] * 1e6, times["sws"] * 1e6,
             times["sdc"] / times["sws"],
             (times["sdc"] - times["sws"]) * 1e6]
        )
    return ExperimentResult(
        exp_id="ablate-latency",
        title="Fabric-latency sensitivity (single 8-task steal)",
        headers=["latency x", "SDC (us)", "SWS (us)", "ratio", "gap (us)"],
        rows=rows,
        notes=[
            "the absolute SDC-SWS gap grows linearly with wire latency — "
            "three fewer blocking messages each pay the round trip",
        ],
    )


def exp_ablation_v1(scale: str = "quick") -> ExperimentResult:
    """Figure-3 (valid-bit) vs Figure-4 (epoch) stealval under churn."""
    def factory():
        reg = TaskRegistry()
        wl = UtsWorkload(reg, TEST_SMALL)
        return reg, [wl.seed_task()]

    rows = []
    for impl in ("sws-v1", "sws"):
        cfg = SweepConfig(
            npes_list=(8,),
            impls=(impl,),
            reps=3,
            queue_config=QueueConfig(qsize=4096, task_size=48),
        )
        cells = summarize_cells(run_sweep(factory, cfg))
        c = cells[0]
        rows.append(
            [impl, c.runtime_mean * 1e3, c.steal_time * 1e3,
             c.steals_ok, c.comm_total]
        )
    return ExperimentResult(
        exp_id="ablate-v1",
        title="Initial (Fig. 3) vs epoch (Fig. 4) stealval, UTS at 8 PEs",
        headers=["impl", "runtime(ms)", "steal time(ms)", "steals", "comms"],
        rows=rows,
        notes=[
            "the steal protocol is identical; the epoch variant avoids the "
            "§4.1 management stall on in-flight steals",
        ],
    )


def exp_ablation_termination(scale: str = "quick") -> ExperimentResult:
    """Ring vs tree termination: pure detection latency.

    A pool seeded with zero tasks measures nothing but detection — the
    virtual runtime is the time for the detector to notice the empty
    system.  Ring rounds cost O(P) hops; tree rounds O(log P).
    """
    from ..runtime.pool import TaskPool

    npes_list = (8, 32, 64) if scale == "quick" else (8, 32, 64, 128, 256)
    rows = []
    for npes in npes_list:
        times = {}
        for kind in ("ring", "tree"):
            reg = TaskRegistry()
            reg.register("noop", lambda p, tc: None)
            pool = TaskPool(
                npes,
                reg,
                impl="sws",
                queue_config=QueueConfig(qsize=128, task_size=16),
                termination=kind,
            )
            times[kind] = pool.run().runtime
        rows.append(
            [npes, times["ring"] * 1e6, times["tree"] * 1e6,
             times["ring"] / times["tree"]]
        )
    return ExperimentResult(
        exp_id="ablate-termination",
        title="Termination detection latency: ring vs tree",
        headers=["npes", "ring (us)", "tree (us)", "ring/tree"],
        rows=rows,
        notes=[
            "empty-pool runtime is pure detection time; the tree's "
            "O(log P) rounds pull ahead as the ring grows",
        ],
    )


def exp_ablation_victims(scale: str = "quick") -> ExperimentResult:
    """Victim-selection policies on a multi-node layout.

    Locality-aware selection (SLAW/HotSLAW, §2.2) trades discovery
    breadth for cheap intra-node steals; the hierarchical variant
    escalates adaptively.  SWS composes with all of them — the paper's
    'can be used in conjunction with enhancements to the work stealing
    algorithm' claim, measured.
    """
    from ..runtime.registry import TaskOutcome
    from ..runtime.task import Task

    def factory():
        reg = TaskRegistry()
        reg.register(
            "root", lambda p, tc: TaskOutcome(1e-5, [Task(1)] * 800)
        )
        reg.register("leaf", lambda p, tc: TaskOutcome(2e-4))
        return reg, [Task(0)]

    rows = []
    for victim in ("uniform", "locality", "hierarchical"):
        runtimes, steal_times = [], []
        for rep in range(3):
            from ..runtime.pool import TaskPool

            registry, seeds = factory()
            pool = TaskPool(
                16,
                registry,
                impl="sws",
                queue_config=QueueConfig(qsize=4096, task_size=24),
                pes_per_node=4,
                victim=victim,
                seed=200 + rep,
            )
            pool.seed(0, seeds)
            st = pool.run()
            runtimes.append(st.runtime)
            steal_times.append(st.total_steal_time)
        n = len(runtimes)
        rows.append(
            [victim, sum(runtimes) / n * 1e3, sum(steal_times) / n * 1e6]
        )
    return ExperimentResult(
        exp_id="ablate-victims",
        title="Victim policies on 4 nodes x 4 PEs (SWS)",
        headers=["policy", "runtime(ms)", "steal time(us)"],
        rows=rows,
        notes=[
            "intra-node steals cost ~1/4 of inter-node on the EDR model; "
            "locality-aware policies shave steal time, at some dispersal "
            "risk on drought-heavy workloads",
        ],
    )


def exp_ablation_bandwidth(scale: str = "quick") -> ExperimentResult:
    """Concurrent bulk steals under link serialization.

    With per-PE link occupancy on, N thieves copying large blocks from
    one victim queue behind its egress engine — the regime where Fig. 6's
    convergence argument (copies dominate) turns into outright contention.
    """
    from dataclasses import replace

    from ..core.sws_queue import SwsQueueSystem
    from ..fabric.engine import Delay
    from ..shmem.api import ShmemCtx

    nthieves = 4
    rows = []
    for link_serialize in (False, True):
        lat = replace(EDR_INFINIBAND, link_serialize=link_serialize)
        ctx = ShmemCtx(nthieves + 1, latency=lat, pes_per_node=1)
        system = SwsQueueSystem(ctx, QueueConfig(qsize=16384, task_size=192))
        victim = system.handle(0)
        lats: list[float] = []

        def owner():
            for _ in range(8192):
                victim.enqueue(bytes(192))
            yield from victim.release()

        def thief(rank):
            q = system.handle(rank)
            yield Delay(1e-6)
            t0 = ctx.engine.now
            r = yield from q.steal(0)
            assert r.success
            lats.append(ctx.engine.now - t0)

        ctx.engine.spawn(owner(), "o")
        for r in range(1, nthieves + 1):
            ctx.engine.spawn(thief(r), f"t{r}")
        ctx.run()
        rows.append(
            [link_serialize, min(lats) * 1e6, max(lats) * 1e6,
             sum(lats) / len(lats) * 1e6]
        )
    return ExperimentResult(
        exp_id="ablate-bandwidth",
        title=f"{nthieves} concurrent bulk steals, link serialization on/off",
        headers=["link serialize", "min steal (us)", "max steal (us)",
                 "mean steal (us)"],
        rows=rows,
        notes=[
            "with link serialization the victim's egress engine is a "
            "shared resource: tail steal latency stretches by the queued "
            "copies ahead of it",
        ],
    )


def exp_ablation_steal_volume(scale: str = "quick") -> ExperimentResult:
    """Steal-half vs steal-one on the SDC baseline (§2 cites
    Hendler-Shavit: stealing half balances with fewer operations)."""
    from ..runtime.registry import TaskOutcome
    from ..runtime.task import Task

    def factory():
        reg = TaskRegistry()
        reg.register(
            "root", lambda p, tc: TaskOutcome(1e-5, [Task(1)] * 600)
        )
        reg.register("leaf", lambda p, tc: TaskOutcome(3e-4))
        return reg, [Task(0)]

    rows = []
    for policy in ("one", "half"):
        cfg = SweepConfig(
            npes_list=(8,),
            impls=("sdc",),
            reps=3,
            queue_config=QueueConfig(qsize=2048, task_size=24, sdc_steal=policy),
        )
        cells = summarize_cells(run_sweep(factory, cfg))
        c = cells[0]
        rows.append(
            [policy, c.runtime_mean * 1e3, c.steals_ok, c.steal_time * 1e3,
             c.comm_total]
        )
    return ExperimentResult(
        exp_id="ablate-steal-volume",
        title="Steal-one vs steal-half (SDC, 8 PEs, 601 tasks)",
        headers=["policy", "runtime(ms)", "steals", "steal time(ms)", "comms"],
        rows=rows,
        notes=[
            "steal-half moves the same work in far fewer operations "
            "(Hendler-Shavit); steal-one pays a full 6-comm protocol per "
            "task moved",
        ],
    )


def exp_ablation_lifelines(scale: str = "quick") -> ExperimentResult:
    """Lifelines (Saraswat'11, cited §2.2) composed with SWS: idle PEs
    quiesce instead of hammering empty queues."""
    from ..runtime.registry import TaskOutcome
    from ..runtime.task import Task

    def factory():
        reg = TaskRegistry()
        reg.register(
            "root", lambda p, tc: TaskOutcome(1e-5, [Task(1)] * 400)
        )
        reg.register("leaf", lambda p, tc: TaskOutcome(2e-3))
        return reg, [Task(0)]

    rows = []
    for lifelines in (False, True):
        runtimes, failed, comms = [], [], []
        for rep in range(3):
            registry, seeds = factory()
            from ..runtime.pool import TaskPool

            pool = TaskPool(
                16,
                registry,
                impl="sws",
                queue_config=QueueConfig(qsize=2048, task_size=24),
                lifelines=lifelines,
                seed=100 + rep,
            )
            pool.seed(0, seeds)
            st = pool.run()
            runtimes.append(st.runtime)
            failed.append(st.total_failed_steals)
            comms.append(st.comm["total"])
        n = len(runtimes)
        rows.append(
            [lifelines, sum(runtimes) / n * 1e3, sum(failed) / n,
             sum(comms) / n]
        )
    return ExperimentResult(
        exp_id="ablate-lifelines",
        title="Lifelines composed with SWS (16 PEs, coarse tasks)",
        headers=["lifelines", "runtime(ms)", "failed steals", "total comms"],
        rows=rows,
        notes=[
            "§2.2: lifelines 'eliminate unproductive stealing traffic'; "
            "SWS composes with them — failed-steal counts collapse while "
            "runtime holds",
        ],
    )


# ----------------------------------------------------------------------
# Sharded simulator: speedup-vs-shards and the >2048-PE jumbo smoke
# ----------------------------------------------------------------------
def _sharded_bpc_row(
    npes: int,
    nshards: int,
    transport: str,
    params: BpcParams,
    qsize: int,
    **pool_kwargs,
) -> tuple[list, float]:
    """One sharded BPC run; returns (table row, wall seconds)."""
    import time as _time

    from ..runtime.sharded import ShardedTaskPool

    reg = TaskRegistry()
    wl = BpcWorkload(reg, params)
    pool = ShardedTaskPool(
        npes,
        reg,
        nshards,
        impl="sws",
        transport=transport,
        queue_config=QueueConfig(qsize=qsize, task_size=32),
        **pool_kwargs,
    )
    pool.seed(0, [wl.seed_task()])
    t0 = _time.perf_counter()
    stats = pool.run()
    wall = _time.perf_counter() - t0
    executed = sum(w.tasks_executed for w in stats.workers)
    stolen = sum(w.tasks_stolen for w in stats.workers)
    sh = stats.sharding or {}
    # Report what actually ran, not what was requested: "auto" resolves
    # per host, and an unavailable fork degrades to serial — the row
    # records the effective transport plus the host CPU count the
    # decision was made against.
    row = [
        nshards, sh.get("transport", transport), npes, round(wall, 3),
        stats.runtime * 1e3, executed, stolen,
        pool.events_processed, pool.rounds,
        sh.get("grants", 0), sh.get("exchange_bytes", 0),
        sh.get("host_cpus", 0),
    ]
    return row, wall


_SHARDED_HEADERS = [
    "shards", "transport", "npes", "wall(s)", "virtual(ms)",
    "executed", "stolen", "events", "rounds", "grants", "xbytes",
    "host_cpus",
]


def exp_fig7_sharded(scale: str = "quick") -> ExperimentResult:
    """Fig-7-class BPC under the sharded simulator: wall vs shard count.

    The same job runs at 1, 2 and 4 shards (1 shard = the classic
    single-engine loop; 2/4 shards = the ``auto`` transport, which
    forks one OS process per shard when the host has cores to overlap
    them on and steps the shards in-process otherwise) and the
    *measured wall* per shard count is the payload.  Unlike every other
    experiment the interesting output here is host wall time, so cached
    rows record the walls measured when the scenario last actually ran
    (``--refresh``/``--no-cache`` re-measure).

    Honesty note: window width is the latency model's lookahead (~270 ns
    for EDR), and the per-shard conservative bounds leapfrog the shards
    one cross-shard message at a time, so a run with M cross-shard
    messages takes ~M exchange rounds.  Under fork each round is a
    two-way scheduler handoff; on a single-CPU host that cost buys no
    overlap, which is exactly why ``auto`` elides the IPC there — the
    ``transport`` and ``host_cpus`` columns record the choice.  Speedup
    above 1 requires real cores backing forked shards.
    """
    if scale == "full":
        params = BpcParams(n_consumers=32, depth=16,
                           consumer_time=1e-3, producer_time=200e-6)
    else:
        params = BpcParams(n_consumers=32, depth=8,
                           consumer_time=500e-6, producer_time=100e-6)
    rows = []
    walls = {}
    for nshards in (1, 2, 4):
        transport = "serial" if nshards == 1 else "auto"
        row, wall = _sharded_bpc_row(64, nshards, transport, params, 4096)
        walls[nshards] = wall
        rows.append(row)
    for row in rows:
        row.insert(4, round(walls[1] / max(walls[row[0]], 1e-9), 3))
    headers = list(_SHARDED_HEADERS)
    headers.insert(4, "speedup")
    return ExperimentResult(
        exp_id="fig7_sharded_s4",
        title=f"BPC (n=32, depth={params.depth}) wall vs shard count, 64 PEs",
        headers=headers,
        rows=rows,
        notes=[
            "1 shard = classic single-engine loop (bit-identical path); "
            "2/4 shards = conservative per-shard time windows, transport "
            "resolved per host (fork with >1 CPU, else in-process)",
            "identical virtual(ms) across shard counts is the "
            "determinism check; speedup is measured host wall",
            "rounds/grants/xbytes are the exchange counters: grants < "
            "rounds*shards shows round-elision, xbytes the ring traffic "
            "(0 = no wire; see docs/sharding.md)",
        ],
    )


def exp_fig7_jumbo(scale: str = "quick") -> ExperimentResult:
    """Fig-7-class smoke beyond 2048 PEs: 2112 PEs across 4 shards.

    2112 = 44 nodes x 48 PEs, split 528 PEs/shard.  The point is that
    the sharded simulator *completes* a beyond-fig7-scale job with the
    oracle-checked books balancing; per-event speed at this scale is
    tracked by the events/sec column of the bench report.  Serial
    transport keeps the event tally exact and the payload deterministic.
    """
    import time as _time

    from ..runtime.registry import TaskOutcome
    from ..runtime.sharded import ShardedTaskPool
    from ..runtime.task import Task

    npes = 2112
    nshards = 4
    ntasks_per_seed = 4 if scale == "quick" else 8
    reg = TaskRegistry()
    reg.register("leaf", lambda payload, tc: TaskOutcome(duration=5e-6))
    pool = ShardedTaskPool(
        npes,
        reg,
        nshards,
        impl="sws",
        transport="serial",
        queue_config=QueueConfig(qsize=256, task_size=32),
        termination="tree",
    )
    # Seed every even PE only: half the machine must steal, so the run
    # exercises cross-PE (and cross-shard) traffic at full width without
    # the long one-seed spread phase.
    for rank in range(0, npes, 2):
        pool.seed(rank, [Task(reg.id_of("leaf"))
                         for _ in range(ntasks_per_seed)])
    t0 = _time.perf_counter()
    stats = pool.run()
    wall = _time.perf_counter() - t0
    executed = sum(w.tasks_executed for w in stats.workers)
    stolen = sum(w.tasks_stolen for w in stats.workers)
    sh = stats.sharding or {}
    row = [
        nshards, sh.get("transport", "serial"), npes, round(wall, 3),
        stats.runtime * 1e3, executed, stolen,
        pool.events_processed, pool.rounds,
        sh.get("grants", 0), sh.get("exchange_bytes", 0),
        sh.get("host_cpus", 0),
    ]
    return ExperimentResult(
        exp_id="fig7_jumbo",
        title=f"{npes} PEs / {nshards} shards smoke (tree termination)",
        headers=list(_SHARDED_HEADERS),
        rows=[row],
        notes=[
            f"{npes * (ntasks_per_seed // 2)} leaf tasks on even PEs; "
            "odd PEs acquire work by stealing",
            "completes beyond the paper's 2048-PE fig7 x-axis; "
            "merged conservation checked by ShardedTaskPool",
        ],
    )


# ----------------------------------------------------------------------
# Serving — open-system SDC vs SWS rate sweep (docs/serving.md)
# ----------------------------------------------------------------------
def exp_serving(scale: str = "quick") -> ExperimentResult:
    """Tail latency and SLO attainment vs offered load, SDC vs SWS.

    A Poisson arrival stream is served by a 4-PE pool at three offered
    loads relative to the pool's service capacity (npes / task_s):
    underloaded, near saturation, and overloaded.  The overloaded rate
    runs with a shed threshold, so the shed column is the overload
    signal; the latency percentiles come from the virtual-clock
    enqueue-to-completion distribution of the same seeded trace for both
    protocols.
    """
    from ..runtime.serving import run_serve

    npes = 4
    task_s = 2e-6
    duration = 1e-3 if scale == "quick" else 4e-3
    slo_s = 5e-5  # 50us virtual SLO
    capacity = npes / task_s  # tasks/s the pool can absorb
    loads = [
        ("0.25x", 0.25, None),
        ("0.90x", 0.90, None),
        ("1.50x", 1.50, 64),
    ]
    rows = []
    for impl in ("sdc", "sws"):
        for label, factor, shed_threshold in loads:
            rate = int(capacity * factor)
            stats = run_serve(
                npes,
                impl=impl,
                arrival=f"poisson:{rate}",
                duration_s=duration,
                slo_s=slo_s,
                seed=11,
                task_s=task_s,
                shed_threshold=shed_threshold,
            )
            s = stats.serving
            pct = s.latency.percentiles()
            to_us = 1e6 / 1e15  # ticks -> microseconds
            rows.append([
                impl.upper(),
                label,
                s.emitted,
                s.injected,
                s.shed,
                round(pct["p50"] * to_us, 2),
                round(pct["p99"] * to_us, 2),
                round(pct["p999"] * to_us, 2),
                f"{s.slo_fraction:.1%}",
            ])
    return ExperimentResult(
        exp_id="serving",
        title="Open-system serving: tail latency vs offered load "
              f"({npes} PEs, {slo_s * 1e6:.0f}us SLO)",
        headers=["impl", "load", "emitted", "injected", "shed",
                 "p50 us", "p99 us", "p999 us", "SLO"],
        rows=rows,
        notes=[
            f"capacity = npes/task_s = {capacity:,.0f} tasks/s; the 1.50x "
            f"row runs with shed threshold 64 (overload signal)",
            "same seeded Poisson trace for both impls at each rate; "
            "latency is virtual enqueue-to-completion time",
        ],
    )


def _serving_bench(impl: str, scale: str) -> ExperimentResult:
    """One near-saturation serving run — the bench row for one impl.

    Single rate, single seed: the sweep runner measures the wall of the
    whole open-system machinery (arrival events, latency sketch,
    termination gating) per protocol, and the deterministic payload row
    (counts, percentiles, checksum) doubles as a change detector.
    """
    from ..runtime.serving import run_serve

    npes = 4
    task_s = 2e-6
    duration = 1e-3 if scale == "quick" else 4e-3
    rate = int(0.9 * npes / task_s)
    stats = run_serve(
        npes,
        impl=impl,
        arrival=f"poisson:{rate}",
        duration_s=duration,
        slo_s=5e-5,
        seed=11,
        task_s=task_s,
    )
    s = stats.serving
    pct = s.latency.percentiles()
    to_us = 1e6 / 1e15
    row = [
        impl.upper(), rate, s.emitted, s.injected, s.completed,
        round(pct["p50"] * to_us, 2), round(pct["p99"] * to_us, 2),
        round(pct["p999"] * to_us, 2), f"{s.slo_fraction:.1%}",
        f"{s.checksum:#018x}",
    ]
    return ExperimentResult(
        exp_id=f"serving_{impl}",
        title=f"Serving bench: {impl.upper()} at 0.9x capacity "
              f"({npes} PEs, Poisson)",
        headers=["impl", "rate", "emitted", "injected", "completed",
                 "p50 us", "p99 us", "p999 us", "SLO", "checksum"],
        rows=[row],
        notes=["near-saturation open-system run; see `serving` for the "
               "full rate sweep"],
    )


def exp_serving_sws(scale: str = "quick") -> ExperimentResult:
    return _serving_bench("sws", scale)


def exp_serving_sdc(scale: str = "quick") -> ExperimentResult:
    return _serving_bench("sdc", scale)


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
EXPERIMENTS: dict[str, Callable[[str], ExperimentResult]] = {
    "fig2": exp_fig2,
    "tab1": exp_tab1,
    "fig34": exp_fig34,
    "fig5": exp_fig5,
    "fig6": exp_fig6,
    "tab2": exp_tab2,
    "fig7": exp_fig7,
    "fig7_sharded_s4": exp_fig7_sharded,
    "fig7_jumbo": exp_fig7_jumbo,
    "fig8": exp_fig8,
    "protocols": exp_protocols,
    "serving": exp_serving,
    "serving_sws": exp_serving_sws,
    "serving_sdc": exp_serving_sdc,
    "ablate-damping": exp_ablation_damping,
    "ablate-epochs": exp_ablation_epochs,
    "ablate-contention": exp_ablation_contention,
    "ablate-granularity": exp_ablation_granularity,
    "ablate-latency": exp_ablation_latency,
    "ablate-v1": exp_ablation_v1,
    "ablate-steal-volume": exp_ablation_steal_volume,
    "ablate-lifelines": exp_ablation_lifelines,
    "ablate-bandwidth": exp_ablation_bandwidth,
    "ablate-termination": exp_ablation_termination,
    "ablate-victims": exp_ablation_victims,
}


def run_experiment(exp_id: str, scale: str = "quick") -> ExperimentResult:
    """Run one registered experiment by id."""
    try:
        fn = EXPERIMENTS[exp_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {exp_id!r}; choose from {sorted(EXPERIMENTS)}"
        ) from None
    return fn(scale)
