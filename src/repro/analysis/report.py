"""Plain-text tables and CSV output for experiment results.

No plotting dependency is available offline, so every figure is rendered
as the table of the series it would plot, plus a crude ASCII sparkline
for eyeballing trends.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Any, Sequence


def format_value(v: Any) -> str:
    """Human-oriented scalar formatting."""
    if isinstance(v, bool):
        return str(v)
    if isinstance(v, int):
        return str(v)
    if isinstance(v, float):
        if v == 0:
            return "0"
        a = abs(v)
        if a >= 1e5 or a < 1e-3:
            return f"{v:.3e}"
        if a >= 100:
            return f"{v:.1f}"
        return f"{v:.4g}"
    return str(v)


def ascii_table(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    """Render an aligned monospace table."""
    cells = [[format_value(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, c in enumerate(row):
            widths[i] = max(widths[i], len(c))
    out = io.StringIO()
    line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    out.write(line.rstrip() + "\n")
    out.write("  ".join("-" * w for w in widths) + "\n")
    for row in cells:
        out.write("  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip() + "\n")
    return out.getvalue()


def sparkline(values: Sequence[float]) -> str:
    """Eight-level unicode sparkline of a series."""
    if not values:
        return ""
    blocks = "▁▂▃▄▅▆▇█"
    lo, hi = min(values), max(values)
    if hi == lo:
        return blocks[0] * len(values)
    return "".join(
        blocks[min(7, int(8 * (v - lo) / (hi - lo)))] for v in values
    )


def write_csv(path: str | Path, headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> Path:
    """Write rows to ``path`` as CSV; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as f:
        writer = csv.writer(f)
        writer.writerow(headers)
        writer.writerows(rows)
    return path
