"""Command-line experiment runner.

Usage::

    python -m repro.analysis.cli --exp fig6
    python -m repro.analysis.cli --exp all --scale full --csv-dir results/

Each experiment prints the table its paper artifact plots; ``--csv-dir``
additionally writes one CSV per experiment.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from .experiments import EXPERIMENTS, run_experiment
from .report import write_csv


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro.analysis.cli",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "--exp",
        default="all",
        help=f"experiment id or 'all' (ids: {', '.join(sorted(EXPERIMENTS))})",
    )
    parser.add_argument(
        "--scale",
        default="quick",
        choices=("quick", "full"),
        help="quick = seconds per experiment; full = the EXPERIMENTS.md runs",
    )
    parser.add_argument(
        "--csv-dir",
        default=None,
        help="directory to write one CSV per experiment",
    )
    parser.add_argument(
        "--chart",
        action="store_true",
        help="render ASCII charts for experiments that provide them",
    )
    parser.add_argument(
        "--save",
        default=None,
        metavar="RUN_LABEL",
        help="persist results under results/<label>/ for later diffing "
             "(see repro.analysis.ResultStore)",
    )
    parser.add_argument(
        "--results-dir",
        default="results",
        help="root directory for --save (default: results/)",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        help="list experiment ids with their descriptions and exit",
    )
    args = parser.parse_args(argv)

    if args.list:
        for exp_id in sorted(EXPERIMENTS):
            doc = (EXPERIMENTS[exp_id].__doc__ or "").strip().splitlines()
            sys.stdout.write(f"{exp_id:<22} {doc[0] if doc else ''}\n")
        return 0

    ids = sorted(EXPERIMENTS) if args.exp == "all" else [args.exp]
    for exp_id in ids:
        if exp_id not in EXPERIMENTS:
            parser.error(
                f"unknown experiment {exp_id!r}; ids: {', '.join(sorted(EXPERIMENTS))}"
            )

    for exp_id in ids:
        t0 = time.perf_counter()
        result = run_experiment(exp_id, scale=args.scale)
        wall = time.perf_counter() - t0
        sys.stdout.write(result.render(with_charts=args.chart))
        sys.stdout.write(f"({wall:.1f}s)\n\n")
        if args.csv_dir:
            path = Path(args.csv_dir) / f"{exp_id}.csv"
            write_csv(path, result.headers, result.rows)
            sys.stdout.write(f"wrote {path}\n\n")
        if args.save:
            from .store import ResultStore

            store = ResultStore(args.results_dir)
            path = store.save(args.save, result)
            sys.stdout.write(f"saved {path}\n\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
