"""ASCII line charts for experiment series.

No plotting library exists offline, so the CLI renders figures as
monospace charts: multiple named series over a shared x axis, log or
linear scaling, distinct glyphs per series.  Good enough to eyeball the
crossovers the paper's figures show.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

#: Series glyphs, assigned in order.
SERIES_GLYPHS = "ox+*#@%&"


@dataclass
class Series:
    """One named line: y values aligned with the chart's x values."""

    name: str
    ys: list[float]


@dataclass
class AsciiChart:
    """A multi-series scatter/line chart rendered in monospace."""

    xs: list[float]
    series: list[Series] = field(default_factory=list)
    title: str = ""
    ylabel: str = ""
    height: int = 14
    width: int = 64
    log_y: bool = False
    log_x: bool = False

    def add(self, name: str, ys: list[float]) -> "AsciiChart":
        """Add one series (must align with ``xs``)."""
        if len(ys) != len(self.xs):
            raise ValueError(
                f"series {name!r} has {len(ys)} points for {len(self.xs)} xs"
            )
        self.series.append(Series(name, ys))
        return self

    # ------------------------------------------------------------------
    def _tx(self, x: float) -> float:
        return math.log10(x) if self.log_x else x

    def _ty(self, y: float) -> float:
        return math.log10(y) if self.log_y else y

    def render(self) -> str:
        """Render the chart to a string."""
        if not self.series:
            return "(no series)\n"
        pts = [
            (self._tx(x), self._ty(y))
            for s in self.series
            for x, y in zip(self.xs, s.ys)
            if not (self.log_y and y <= 0) and not (self.log_x and x <= 0)
        ]
        if not pts:
            return "(no drawable points)\n"
        x_lo = min(p[0] for p in pts)
        x_hi = max(p[0] for p in pts)
        y_lo = min(p[1] for p in pts)
        y_hi = max(p[1] for p in pts)
        x_span = (x_hi - x_lo) or 1.0
        y_span = (y_hi - y_lo) or 1.0

        grid = [[" "] * self.width for _ in range(self.height)]
        for si, s in enumerate(self.series):
            glyph = SERIES_GLYPHS[si % len(SERIES_GLYPHS)]
            for x, y in zip(self.xs, s.ys):
                if (self.log_y and y <= 0) or (self.log_x and x <= 0):
                    continue
                col = int((self._tx(x) - x_lo) / x_span * (self.width - 1))
                row = int((self._ty(y) - y_lo) / y_span * (self.height - 1))
                grid[self.height - 1 - row][col] = glyph

        lines = []
        if self.title:
            lines.append(self.title)
        top_label = f"{10 ** y_hi if self.log_y else y_hi:.3g}"
        bot_label = f"{10 ** y_lo if self.log_y else y_lo:.3g}"
        pad = max(len(top_label), len(bot_label))
        for i, row in enumerate(grid):
            label = top_label if i == 0 else bot_label if i == self.height - 1 else ""
            lines.append(f"{label:>{pad}} |{''.join(row)}|")
        x_left = f"{10 ** x_lo if self.log_x else x_lo:.3g}"
        x_right = f"{10 ** x_hi if self.log_x else x_hi:.3g}"
        axis = f"{'':>{pad}} +{'-' * self.width}+"
        xlab = f"{'':>{pad}}  {x_left}{' ' * max(1, self.width - len(x_left) - len(x_right))}{x_right}"
        lines.append(axis)
        lines.append(xlab)
        legend = "  ".join(
            f"{SERIES_GLYPHS[i % len(SERIES_GLYPHS)]}={s.name}"
            for i, s in enumerate(self.series)
        )
        lines.append(f"{'':>{pad}}  {legend}"
                     + (f"  [{self.ylabel}]" if self.ylabel else ""))
        return "\n".join(lines) + "\n"


def chart_cells(cells, metric: str, title: str, log_y: bool = False) -> str:
    """Convenience: chart a CellSummary metric by npes, one series per impl."""
    from .series import by_impl

    idx = by_impl(cells)
    xs = sorted({c.npes for c in cells})
    chart = AsciiChart(xs=[float(x) for x in xs], title=title,
                       log_x=True, log_y=log_y, ylabel=metric)
    for impl in sorted(idx):
        chart.add(impl, [getattr(idx[impl][x], metric) for x in xs])
    return chart.render()
