"""Self-contained HTML reports with inline SVG charts.

No plotting or templating dependencies: the report is a single HTML
string — tables for every experiment, SVG line charts for the sweep
figures — suitable for checking into CI artifacts or opening locally.

Usage::

    python -m repro.analysis.html_report --out report.html --exp fig6 fig2
"""

from __future__ import annotations

import argparse
import datetime
import html
import sys
from pathlib import Path

from .experiments import EXPERIMENTS, ExperimentResult, run_experiment
from .report import format_value

#: Chart line colours (colour-blind-safe pairing).
COLORS = ["#0072b2", "#d55e00", "#009e73", "#cc79a7", "#e69f00", "#56b4e9"]

_CSS = """
body { font-family: -apple-system, 'Segoe UI', sans-serif; margin: 2em auto;
       max-width: 70em; color: #1a1a1a; }
h1 { border-bottom: 2px solid #0072b2; padding-bottom: .2em; }
h2 { margin-top: 2em; }
table { border-collapse: collapse; margin: 1em 0; font-size: .9em; }
th, td { border: 1px solid #ccc; padding: .3em .7em; text-align: right; }
th { background: #f0f4f8; }
td:first-child, th:first-child { text-align: left; }
.note { color: #555; font-size: .85em; margin: .2em 0; }
svg { background: #fafafa; border: 1px solid #ddd; margin: 1em 0; }
"""


def svg_line_chart(
    xs: list[float],
    series: dict[str, list[float]],
    title: str,
    width: int = 460,
    height: int = 260,
) -> str:
    """Render a multi-series line chart as an SVG string (linear axes)."""
    pad = 45
    pts = [v for ys in series.values() for v in ys] or [0.0]
    y_lo, y_hi = min(pts), max(pts)
    x_lo, x_hi = (min(xs), max(xs)) if xs else (0.0, 1.0)
    y_span = (y_hi - y_lo) or 1.0
    x_span = (x_hi - x_lo) or 1.0

    def sx(x: float) -> float:
        return pad + (x - x_lo) / x_span * (width - 2 * pad)

    def sy(y: float) -> float:
        return height - pad - (y - y_lo) / y_span * (height - 2 * pad)

    parts = [
        f'<svg width="{width}" height="{height}" role="img" '
        f'xmlns="http://www.w3.org/2000/svg">',
        f'<text x="{width / 2}" y="16" text-anchor="middle" '
        f'font-size="13" font-weight="bold">{html.escape(title)}</text>',
        # axes
        f'<line x1="{pad}" y1="{height - pad}" x2="{width - pad}" '
        f'y2="{height - pad}" stroke="#888"/>',
        f'<line x1="{pad}" y1="{pad}" x2="{pad}" y2="{height - pad}" '
        f'stroke="#888"/>',
        f'<text x="{pad}" y="{height - pad + 16}" font-size="10">'
        f"{format_value(x_lo)}</text>",
        f'<text x="{width - pad}" y="{height - pad + 16}" font-size="10" '
        f'text-anchor="end">{format_value(x_hi)}</text>',
        f'<text x="{pad - 4}" y="{height - pad}" font-size="10" '
        f'text-anchor="end">{format_value(y_lo)}</text>',
        f'<text x="{pad - 4}" y="{pad + 4}" font-size="10" '
        f'text-anchor="end">{format_value(y_hi)}</text>',
    ]
    for i, (name, ys) in enumerate(series.items()):
        color = COLORS[i % len(COLORS)]
        path = " ".join(
            f"{'M' if j == 0 else 'L'}{sx(x):.1f},{sy(y):.1f}"
            for j, (x, y) in enumerate(zip(xs, ys))
        )
        parts.append(
            f'<path d="{path}" fill="none" stroke="{color}" stroke-width="2"/>'
        )
        for x, y in zip(xs, ys):
            parts.append(
                f'<circle cx="{sx(x):.1f}" cy="{sy(y):.1f}" r="3" '
                f'fill="{color}"/>'
            )
        parts.append(
            f'<text x="{width - pad + 4}" y="{pad + 14 * i + 10}" '
            f'font-size="11" fill="{color}">{html.escape(name)}</text>'
        )
    parts.append("</svg>")
    return "".join(parts)


def _sweep_charts(result: ExperimentResult) -> list[str]:
    """Build SVG charts from a fig7/fig8-shaped panel table."""
    rows = result.rows
    impls = sorted({r[0] for r in rows})
    xs = sorted({r[1] for r in rows})
    cells = {(r[0], r[1]): r for r in rows}
    charts = []
    for col, label in ((3, "tasks per second"), (8, "steal time (ms)"),
                       (9, "search time (ms)")):
        series = {
            impl: [cells[(impl, x)][col] for x in xs] for impl in impls
        }
        charts.append(
            svg_line_chart([float(x) for x in xs], series,
                           f"{result.exp_id}: {label}")
        )
    return charts


def _fig6_charts(result: ExperimentResult) -> list[str]:
    charts = []
    for ts in sorted({r[0] for r in result.rows}):
        rows = [r for r in result.rows if r[0] == ts]
        xs = [float(r[1]) for r in rows]
        series = {"SDC": [r[2] for r in rows], "SWS": [r[3] for r in rows]}
        charts.append(
            svg_line_chart(xs, series, f"fig6: steal time (us), {ts} B tasks")
        )
    return charts


def result_to_html(result: ExperimentResult) -> str:
    """One experiment's report section."""
    out = [f"<h2>{html.escape(result.exp_id)}: {html.escape(result.title)}</h2>"]
    if result.exp_id in ("fig7", "fig8"):
        out.extend(_sweep_charts(result))
    elif result.exp_id == "fig6":
        out.extend(_fig6_charts(result))
    out.append("<table><tr>")
    out.extend(f"<th>{html.escape(str(h))}</th>" for h in result.headers)
    out.append("</tr>")
    for row in result.rows:
        out.append(
            "<tr>"
            + "".join(f"<td>{html.escape(format_value(v))}</td>" for v in row)
            + "</tr>"
        )
    out.append("</table>")
    for note in result.notes:
        out.append(f'<p class="note">• {html.escape(note)}</p>')
    return "\n".join(out)


def build_report(exp_ids: list[str], scale: str = "quick") -> str:
    """Run the experiments and assemble the full HTML document."""
    sections = []
    for exp_id in exp_ids:
        sections.append(result_to_html(run_experiment(exp_id, scale=scale)))
    body = "\n".join(sections)
    return (
        "<!DOCTYPE html><html><head><meta charset='utf-8'>"
        "<title>SWS reproduction report</title>"
        f"<style>{_CSS}</style></head><body>"
        "<h1>SWS reproduction report</h1>"
        f"<p>Generated {datetime.date.today().isoformat()} at scale "
        f"<code>{html.escape(scale)}</code>.  Shapes, not absolute numbers, "
        "are the comparison target — see EXPERIMENTS.md.</p>"
        f"{body}</body></html>"
    )


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(prog="repro.analysis.html_report")
    parser.add_argument("--out", default="report.html")
    parser.add_argument("--scale", default="quick", choices=("quick", "full"))
    parser.add_argument(
        "--exp", nargs="*", default=["fig2", "fig6", "fig7", "fig8"],
        help="experiment ids to include",
    )
    args = parser.parse_args(argv)
    for exp_id in args.exp:
        if exp_id not in EXPERIMENTS:
            parser.error(f"unknown experiment {exp_id!r}")
    Path(args.out).write_text(build_report(args.exp, args.scale))
    sys.stdout.write(f"wrote {args.out}\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
