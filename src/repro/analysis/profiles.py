"""Per-PE time-breakdown profiles from run statistics.

Turns a :class:`~repro.runtime.stats.RunStats` into the view performance
engineers actually read: for each PE, what fraction of the run went to
task compute, stealing, searching, queue management, and idling — as a
table and as horizontal stacked ASCII bars.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..runtime.stats import RunStats, WorkerStats

#: Profile categories, in display order, with bar glyphs.
CATEGORIES = (
    ("task", "#"),
    ("steal", "S"),
    ("search", "?"),
    ("manage", "m"),
    ("idle", "."),
)


@dataclass(frozen=True)
class PeProfile:
    """One PE's time shares (fractions of the run duration)."""

    rank: int
    task: float
    steal: float
    search: float
    manage: float
    idle: float

    def share(self, name: str) -> float:
        """Share of one category by name (``task``, ``idle``, ...)."""
        return getattr(self, name)


def profile_worker(w: WorkerStats, runtime: float) -> PeProfile:
    """Compute one PE's breakdown; shares are clamped to [0, 1]."""
    if runtime <= 0:
        return PeProfile(w.rank, 0.0, 0.0, 0.0, 0.0, 1.0)
    task = w.task_time / runtime
    steal = w.steal_time / runtime
    search = w.search_time / runtime
    manage = (w.acquire_time + w.release_time) / runtime
    idle = max(0.0, 1.0 - task - steal - search - manage)
    return PeProfile(w.rank, task, steal, search, manage, idle)


def profile_run(stats: RunStats) -> list[PeProfile]:
    """Breakdowns for every PE of a run."""
    return [profile_worker(w, stats.runtime) for w in stats.workers]


def render_profiles(stats: RunStats, width: int = 50) -> str:
    """Stacked ASCII bars, one row per PE, plus a totals row."""
    profiles = profile_run(stats)
    lines = ["per-PE time breakdown "
             + " ".join(f"{g}={name}" for name, g in CATEGORIES)]
    for p in profiles:
        bar = []
        for name, glyph in CATEGORIES:
            bar.append(glyph * round(p.share(name) * width))
        bar_str = "".join(bar)[:width].ljust(width, ".")
        lines.append(
            f"pe{p.rank:<3}|{bar_str}| task {p.task:5.1%} idle {p.idle:5.1%}"
        )
    mean_task = sum(p.task for p in profiles) / len(profiles) if profiles else 0
    mean_idle = sum(p.idle for p in profiles) / len(profiles) if profiles else 0
    lines.append(
        f"mean task share {mean_task:.1%}, mean idle {mean_idle:.1%}, "
        f"efficiency {stats.parallel_efficiency:.1%}"
    )
    return "\n".join(lines) + "\n"


def imbalance_report(stats: RunStats) -> dict[str, float]:
    """Scalar imbalance indicators for quick assertions."""
    counts = [w.tasks_executed for w in stats.workers]
    if not counts or sum(counts) == 0:
        return {"max_over_mean": 0.0, "min_over_mean": 0.0, "gini": 0.0}
    mean = sum(counts) / len(counts)
    # Gini coefficient of the per-PE task distribution.
    sorted_c = sorted(counts)
    n = len(sorted_c)
    cum = sum((i + 1) * c for i, c in enumerate(sorted_c))
    gini = (2 * cum) / (n * sum(sorted_c)) - (n + 1) / n
    return {
        "max_over_mean": max(counts) / mean,
        "min_over_mean": min(counts) / mean,
        "gini": gini,
    }
