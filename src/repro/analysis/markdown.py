"""EXPERIMENTS.md generator: paper-vs-measured for every artifact.

Runs every registered experiment and renders a Markdown report with the
measured series, the paper's reported shape, and a PASS/FAIL shape
verdict.  The checked-in ``EXPERIMENTS.md`` is produced by::

    python -m repro.analysis.markdown --scale full --out EXPERIMENTS.md
"""

from __future__ import annotations

import argparse
import datetime
import sys
import time
from pathlib import Path

from .experiments import EXPERIMENTS, ExperimentResult, run_experiment

#: What the paper reports for each artifact, and how we judge the shape.
PAPER_EXPECTATIONS: dict[str, str] = {
    "fig2": "SDC = 6 communications (5 blocking); SWS = 3 (2 blocking).",
    "tab1": "Shared tasks move A → C → F → I; A → I when re-acquired.",
    "fig34": "64-bit stealval packs asteals/valid-epoch/itasks/tail; "
             "worked example: 150 tasks, steal #2 takes 19 at index 612.",
    "fig5": "With 2 completion epochs the owner's acquire never polls for "
            "in-flight steals; with 1 epoch it must.",
    "fig6": "SWS steal time ≈ half of SDC at small volumes; curves "
            "converge as the task copy dominates.",
    "tab2": "BPC: coarse ~5 ms tasks; UTS: ~110 ns tasks — five orders of "
            "magnitude apart in granularity.",
    "fig7": "BPC runtimes near parity (compute-bound); SWS steal and "
            "search time visibly lower, gap growing with PEs; efficiency "
            "high for both; run variation well under 1%% of the mean on "
            "the paper's testbed (larger here at reduced workload scale).",
    "fig8": "UTS: SWS ahead in throughput (~9%% at scale in the paper), "
            "steal time lower by 3-4x, search time low and flat.",
    "ablate-damping": "Damping has no measurable cost and trims AMO "
                      "traffic on drained queues (paper §4.3).",
    "ablate-epochs": "Both settings correct; epochs pay off under "
                     "acquire churn with in-flight steals (§4.2).",
    "ablate-contention": "SWS 'has significantly better properties when "
                         "a target is contended' (§6).",
    "ablate-granularity": "Fine tasks are sensitive to steal latency; "
                          "coarse tasks tolerate it (§2) — the SWS "
                          "advantage decays toward parity as tasks coarsen.",
    "ablate-latency": "The SDC-SWS absolute gap scales with wire latency "
                      "(three fewer blocking messages per steal).",
    "ablate-v1": "Both stealval layouts steal identically; the epoch "
                 "variant removes the §4.1 management stall.",
    "ablate-steal-volume": "Steal-half balances with far fewer steal "
                           "operations than steal-one (§2, Hendler-Shavit).",
    "ablate-lifelines": "Lifelines eliminate unproductive steal traffic "
                        "(§2.2, Saraswat'11) and compose with SWS.",
    "ablate-bandwidth": "When copies share a victim's link, tail steal "
                        "latency stretches by queued streaming time.",
    "ablate-termination": "Tree detection beats the ring's O(P) rounds, "
                          "increasingly so at scale.",
    "ablate-victims": "Locality-aware victim policies (§2.2) compose "
                      "with SWS and trim steal time on multi-node layouts.",
}


def shape_verdict(exp_id: str, result: ExperimentResult) -> str:
    """Judge the measured rows against the paper's qualitative shape."""
    rows = result.rows
    try:
        if exp_id == "fig2":
            counts = {r[0]: r[1:] for r in rows}
            ok = counts["SDC"] == [6, 5, 1] and counts["SWS"] == [3, 2, 1]
        elif exp_id == "tab1":
            ok = rows[0][1] == "AAA" and rows[-1][1] == "III"
        elif exp_id == "fig34":
            ok = rows[0][2:] == [2, 1, 150, 500]
        elif exp_id == "fig5":
            wait = {r[0]: r[1] for r in rows}
            ok = wait[1] > 0 and wait[2] == 0
        elif exp_id == "fig6":
            small = [r for r in rows if r[0] == 24][0]
            ok = small[4] > 1.6 and rows[-1][4] < small[4]
        elif exp_id == "tab2":
            ok = len(rows) == 4
        elif exp_id in ("fig7", "fig8"):
            cells = {(r[0], r[1]): r for r in rows}
            npes = sorted({k[1] for k in cells})
            steal_ok = all(
                cells[("SWS", n)][8] < cells[("SDC", n)][8] for n in npes
            )
            search_ok = sum(
                cells[("SWS", n)][9] < cells[("SDC", n)][9] for n in npes
            ) >= len(npes) - 1
            ok = steal_ok and search_ok
        elif exp_id == "ablate-damping":
            off, on = rows[0], rows[1]
            ok = on[1] < off[1] * 1.25
        elif exp_id == "ablate-epochs":
            ok = all(r[1] > 0 for r in rows)
        elif exp_id == "ablate-contention":
            by = {r[0]: r for r in rows}
            ok = by["SWS"][2] < by["SDC"][2]
        elif exp_id == "ablate-granularity":
            # Overheads halve throughout; relative advantage ends near parity.
            ok = all(r[5] < r[4] for r in rows) and abs(rows[-1][3] - 100) < 3
        elif exp_id == "ablate-latency":
            gaps = [r[4] for r in rows]
            ok = gaps == sorted(gaps) and rows[-1][3] > 1.5
        elif exp_id == "ablate-v1":
            ok = all(r[1] > 0 for r in rows)
        elif exp_id == "ablate-steal-volume":
            by = {r[0]: r for r in rows}
            ok = by["half"][2] < by["one"][2] and by["half"][1] <= by["one"][1]
        elif exp_id == "ablate-lifelines":
            by = {bool(r[0]): r for r in rows}
            ok = by[True][2] < by[False][2] * 0.5
        elif exp_id == "ablate-bandwidth":
            by = {bool(r[0]): r for r in rows}
            ok = by[True][2] > by[False][2]  # max latency stretches
        elif exp_id == "ablate-termination":
            ok = rows[-1][3] > rows[0][3] > 1.0  # tree advantage grows
        elif exp_id == "ablate-victims":
            by = {r[0]: r for r in rows}
            ok = by["locality"][2] < by["uniform"][2]
        else:
            return "UNJUDGED"
    except (KeyError, IndexError):
        return "UNJUDGED"
    return "PASS" if ok else "FAIL"


def markdown_table(result: ExperimentResult) -> str:
    """Render an experiment's rows as a GitHub-flavoured Markdown table."""
    from .report import format_value

    head = "| " + " | ".join(result.headers) + " |"
    sep = "|" + "|".join("---" for _ in result.headers) + "|"
    body = "\n".join(
        "| " + " | ".join(format_value(v) for v in row) + " |"
        for row in result.rows
    )
    return "\n".join([head, sep, body])


def generate(scale: str = "quick", stream=sys.stdout) -> dict[str, str]:
    """Run all experiments; write the Markdown report; return verdicts."""
    verdicts: dict[str, str] = {}
    stream.write("# EXPERIMENTS — paper vs. measured\n\n")
    stream.write(
        "Generated by `python -m repro.analysis.markdown --scale "
        f"{scale}` on {datetime.date.today().isoformat()}.\n\n"
        "Absolute numbers come from the simulated fabric (calibrated to "
        "EDR InfiniBand; see `repro.fabric.latency`), so only *shapes* are "
        "compared against the paper: who wins, by roughly what factor, "
        "and where trends bend.  Each section records the paper's claim, "
        "the regenerated series, and a shape verdict.\n\n"
    )
    for exp_id in sorted(EXPERIMENTS):
        t0 = time.perf_counter()
        result = run_experiment(exp_id, scale=scale)
        wall = time.perf_counter() - t0
        verdict = shape_verdict(exp_id, result)
        verdicts[exp_id] = verdict
        stream.write(f"## {exp_id}: {result.title}\n\n")
        stream.write(f"**Paper:** {PAPER_EXPECTATIONS.get(exp_id, 'n/a')}\n\n")
        stream.write(f"**Shape verdict:** {verdict}  \n")
        stream.write(f"**Harness:** `benchmarks/` target for `{exp_id}`; "
                     f"regenerated in {wall:.1f}s.\n\n")
        stream.write(markdown_table(result) + "\n\n")
        for note in result.notes:
            stream.write(f"- {note}\n")
        stream.write("\n")
    return verdicts


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; exits non-zero on any shape FAIL."""
    parser = argparse.ArgumentParser(prog="repro.analysis.markdown")
    parser.add_argument("--scale", default="quick", choices=("quick", "full"))
    parser.add_argument("--out", default=None, help="output path (default stdout)")
    args = parser.parse_args(argv)
    if args.out:
        with Path(args.out).open("w") as f:
            verdicts = generate(args.scale, stream=f)
    else:
        verdicts = generate(args.scale)
    fails = [k for k, v in verdicts.items() if v == "FAIL"]
    if fails:
        sys.stderr.write(f"shape FAIL: {fails}\n")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
