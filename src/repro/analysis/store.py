"""Result persistence and run-to-run comparison.

Experiment outputs are plain rows, so they serialize naturally to JSON.
The store keeps one file per experiment per labelled run, enabling the
regression workflow::

    store = ResultStore("results/")
    store.save("baseline", result)           # before a change
    ...
    diff = store.compare("baseline", "tuned", "fig8", key_cols=2)
    print(render_diff(diff))

``compare`` aligns rows by their leading key columns and reports
per-column relative deltas — the quickest way to see whether a change
moved steal time or throughput.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from .experiments import ExperimentResult

SCHEMA_VERSION = 1


@dataclass
class RowDiff:
    """Delta of one aligned row between two runs."""

    key: tuple
    columns: list[str]
    before: list[float]
    after: list[float]

    def rel_change(self, i: int) -> float | None:
        """Relative change of numeric column ``i`` (None if not numeric
        or the baseline is zero)."""
        b, a = self.before[i], self.after[i]
        if not isinstance(b, (int, float)) or not isinstance(a, (int, float)):
            return None
        if b == 0:
            return None
        return (a - b) / b


class ResultStore:
    """Directory-backed store of experiment results."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _path(self, run: str, exp_id: str) -> Path:
        return self.root / run / f"{exp_id}.json"

    def save(self, run: str, result: ExperimentResult) -> Path:
        """Persist one experiment result under a run label."""
        path = self._path(run, result.exp_id)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "schema": SCHEMA_VERSION,
            "exp_id": result.exp_id,
            "title": result.title,
            "headers": result.headers,
            "rows": result.rows,
            "notes": result.notes,
        }
        path.write_text(json.dumps(payload, indent=2))
        return path

    def load(self, run: str, exp_id: str) -> ExperimentResult:
        """Load one stored result."""
        path = self._path(run, exp_id)
        if not path.exists():
            raise FileNotFoundError(f"no stored result {run}/{exp_id}")
        payload = json.loads(path.read_text())
        if payload.get("schema") != SCHEMA_VERSION:
            raise ValueError(
                f"{path} has schema {payload.get('schema')}, "
                f"expected {SCHEMA_VERSION}"
            )
        return ExperimentResult(
            exp_id=payload["exp_id"],
            title=payload["title"],
            headers=payload["headers"],
            rows=payload["rows"],
            notes=payload.get("notes", []),
        )

    def runs(self) -> list[str]:
        """Labels of all stored runs."""
        return sorted(p.name for p in self.root.iterdir() if p.is_dir())

    def experiments(self, run: str) -> list[str]:
        """Experiment ids stored under a run label."""
        d = self.root / run
        if not d.is_dir():
            return []
        return sorted(p.stem for p in d.glob("*.json"))

    def compare(
        self, run_a: str, run_b: str, exp_id: str, key_cols: int = 1
    ) -> list[RowDiff]:
        """Align two stored results on their leading key columns."""
        a = self.load(run_a, exp_id)
        b = self.load(run_b, exp_id)
        if a.headers != b.headers:
            raise ValueError(
                f"{exp_id}: header mismatch between {run_a} and {run_b}"
            )
        index_b = {tuple(r[:key_cols]): r for r in b.rows}
        diffs = []
        for row in a.rows:
            key = tuple(row[:key_cols])
            other = index_b.get(key)
            if other is None:
                continue
            diffs.append(
                RowDiff(
                    key=key,
                    columns=a.headers[key_cols:],
                    before=row[key_cols:],
                    after=other[key_cols:],
                )
            )
        return diffs


def render_diff(diffs: list[RowDiff], threshold: float = 0.02) -> str:
    """Human-readable diff: one line per changed cell above ``threshold``."""
    lines = []
    for d in diffs:
        for i, col in enumerate(d.columns):
            rel = d.rel_change(i)
            if rel is None or abs(rel) < threshold:
                continue
            arrow = "+" if rel > 0 else ""
            lines.append(
                f"{'/'.join(str(k) for k in d.key)} {col}: "
                f"{d.before[i]:.6g} -> {d.after[i]:.6g} ({arrow}{rel:.1%})"
            )
    return "\n".join(lines) + ("\n" if lines else "(no significant changes)\n")
