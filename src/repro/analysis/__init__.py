"""Experiment harness: regenerate every table and figure of the paper."""

from .experiments import EXPERIMENTS, ExperimentResult, run_experiment
from .plots import AsciiChart, chart_cells
from .profiles import imbalance_report, profile_run, render_profiles
from .report import ascii_table, sparkline, write_csv
from .store import ResultStore, RowDiff, render_diff
from .series import (
    CellSummary,
    by_impl,
    relative_improvement,
    speedup_factor,
    summarize_cells,
)
from .sweep import SweepConfig, SweepPoint, run_point, run_sweep

__all__ = [
    "EXPERIMENTS",
    "ExperimentResult",
    "run_experiment",
    "AsciiChart",
    "chart_cells",
    "profile_run",
    "render_profiles",
    "imbalance_report",
    "ResultStore",
    "RowDiff",
    "render_diff",
    "ascii_table",
    "sparkline",
    "write_csv",
    "CellSummary",
    "by_impl",
    "relative_improvement",
    "speedup_factor",
    "summarize_cells",
    "SweepConfig",
    "SweepPoint",
    "run_point",
    "run_sweep",
]
