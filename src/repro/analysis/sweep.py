"""Process-count sweeps with repetitions — the engine behind Figs. 7 & 8.

A sweep runs one workload under both queue implementations across a list
of PE counts, repeating each cell with different seeds (the paper
averages 10 runs per point; seeds here perturb victim selection, the
physical source of run-to-run variance on the real cluster).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..core.config import QueueConfig
from ..fabric.latency import EDR_INFINIBAND, LatencyModel
from ..runtime.pool import TaskPool
from ..runtime.registry import TaskRegistry
from ..runtime.stats import RunStats
from ..runtime.task import Task
from ..runtime.worker import WorkerConfig

#: A workload factory builds (registry, seed tasks) for one run.
WorkloadFactory = Callable[[], tuple[TaskRegistry, list[Task]]]


@dataclass
class SweepPoint:
    """One completed run within a sweep."""

    impl: str
    npes: int
    rep: int
    seed: int
    stats: RunStats

    def row(self) -> dict[str, float]:
        """Flat record for tables/CSV."""
        out = {"impl": self.impl, "rep": self.rep, "seed": self.seed}
        out.update(self.stats.summary())
        return out


@dataclass
class SweepConfig:
    """Shape of a sweep."""

    npes_list: tuple[int, ...] = (2, 4, 8, 16, 32)
    impls: tuple[str, ...] = ("sdc", "sws")
    reps: int = 3
    base_seed: int = 100
    queue_config: QueueConfig = field(default_factory=QueueConfig)
    worker_config: WorkerConfig = field(default_factory=WorkerConfig)
    latency: LatencyModel = EDR_INFINIBAND
    pes_per_node: int = 48


def run_point(
    factory: WorkloadFactory,
    impl: str,
    npes: int,
    seed: int,
    cfg: SweepConfig,
) -> RunStats:
    """Build and run one pool for one sweep cell."""
    registry, seeds = factory()
    pool = TaskPool(
        npes,
        registry,
        impl=impl,
        queue_config=cfg.queue_config,
        worker_config=cfg.worker_config,
        latency=cfg.latency,
        pes_per_node=cfg.pes_per_node,
        seed=seed,
    )
    pool.seed(0, seeds)
    return pool.run()


def run_sweep(factory: WorkloadFactory, cfg: SweepConfig | None = None) -> list[SweepPoint]:
    """Run the full grid: impls × PE counts × repetitions."""
    cfg = cfg or SweepConfig()
    points: list[SweepPoint] = []
    for impl in cfg.impls:
        for npes in cfg.npes_list:
            for rep in range(cfg.reps):
                seed = cfg.base_seed + rep
                stats = run_point(factory, impl, npes, seed, cfg)
                points.append(SweepPoint(impl, npes, rep, seed, stats))
    return points
