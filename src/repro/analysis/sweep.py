"""Process-count sweeps with repetitions — the engine behind Figs. 7 & 8.

A sweep runs one workload under both queue implementations across a list
of PE counts, repeating each cell with different seeds (the paper
averages 10 runs per point; seeds here perturb victim selection, the
physical source of run-to-run variance on the real cluster).

The second half of this module is the **fan-out runner** behind
``python -m repro sweep``: every run in this simulator is deterministic
and independent, so bench scenarios and seed×impl×workload matrix cells
fan out across a :class:`~concurrent.futures.ProcessPoolExecutor` and
land in a content-addressed on-disk cache keyed by
``(job spec, code version)`` — a job re-runs only when its inputs or the
simulator sources change.  See ``docs/performance.md``.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from ..core.config import QueueConfig
from ..fabric.latency import EDR_INFINIBAND, LatencyModel
from ..runtime.pool import TaskPool
from ..runtime.registry import TaskRegistry
from ..runtime.stats import RunStats
from ..runtime.task import Task
from ..runtime.worker import WorkerConfig

#: A workload factory builds (registry, seed tasks) for one run.
WorkloadFactory = Callable[[], tuple[TaskRegistry, list[Task]]]


@dataclass
class SweepPoint:
    """One completed run within a sweep."""

    impl: str
    npes: int
    rep: int
    seed: int
    stats: RunStats

    def row(self) -> dict[str, float]:
        """Flat record for tables/CSV."""
        out = {"impl": self.impl, "rep": self.rep, "seed": self.seed}
        out.update(self.stats.summary())
        return out


@dataclass
class SweepConfig:
    """Shape of a sweep."""

    npes_list: tuple[int, ...] = (2, 4, 8, 16, 32)
    impls: tuple[str, ...] = ("sdc", "sws")
    reps: int = 3
    base_seed: int = 100
    queue_config: QueueConfig = field(default_factory=QueueConfig)
    worker_config: WorkerConfig = field(default_factory=WorkerConfig)
    latency: LatencyModel = EDR_INFINIBAND
    pes_per_node: int = 48


def run_point(
    factory: WorkloadFactory,
    impl: str,
    npes: int,
    seed: int,
    cfg: SweepConfig,
) -> RunStats:
    """Build and run one pool for one sweep cell."""
    registry, seeds = factory()
    pool = TaskPool(
        npes,
        registry,
        impl=impl,
        queue_config=cfg.queue_config,
        worker_config=cfg.worker_config,
        latency=cfg.latency,
        pes_per_node=cfg.pes_per_node,
        seed=seed,
    )
    pool.seed(0, seeds)
    return pool.run()


def run_sweep(factory: WorkloadFactory, cfg: SweepConfig | None = None) -> list[SweepPoint]:
    """Run the full grid: impls × PE counts × repetitions."""
    cfg = cfg or SweepConfig()
    points: list[SweepPoint] = []
    for impl in cfg.impls:
        for npes in cfg.npes_list:
            for rep in range(cfg.reps):
                seed = cfg.base_seed + rep
                stats = run_point(factory, impl, npes, seed, cfg)
                points.append(SweepPoint(impl, npes, rep, seed, stats))
    return points


# ======================================================================
# Fan-out runner: parallel deterministic jobs + content-addressed cache
# ======================================================================

#: The bench scenarios ``repro sweep`` measures by default — one per
#: ``benchmarks/bench_fig*.py`` figure regeneration, plus the protocol
#: zoo cross-comparison (new rows stay ungated until a committed
#: baseline carries them; see ``check_regressions``).
BENCH_SCENARIOS: tuple[str, ...] = (
    "fig2", "fig34", "fig5", "fig6", "fig7", "fig8", "protocols",
    "fig7_sharded_s4", "fig7_jumbo", "serving_sws", "serving_sdc",
)

#: Multiprocess-substrate scenarios measured alongside the bench set:
#: (workload, impl, npes, size) — size is ntasks for synthetic, a named
#: UTS tree otherwise.  Small on purpose: CI runners have 2 cores.
MP_SCENARIOS: tuple[tuple, ...] = (
    ("synthetic", "sws", 4, 1200),
    ("uts", "sws", 4, "test_tiny"),
    # Chaos row: rank 1 SIGKILLed holding a stripe lock after its 6th
    # task.  The reported wall is the *recovery* wall (death detection +
    # lease break + scavenge + re-inject), so BENCH_fabric.json tracks
    # recovery latency over time.  Ungated until a baseline carries it.
    ("synthetic", "sws", 4, 1200, "1@6:lock"),
)

#: Default on-disk cache location (relative to the invoking directory).
DEFAULT_CACHE_DIR = "results/sweep-cache"

#: Environment switch forcing serial execution regardless of ``--jobs``.
SERIAL_ENV = "REPRO_SWEEP_SERIAL"


def code_version() -> str:
    """Content hash of the simulator sources (12 hex chars).

    Hashes every ``.py`` file under ``src/repro`` (path + bytes), so any
    source change — even whitespace — invalidates all cached results.
    Deliberately coarse: correctness over cleverness.
    """
    root = Path(__file__).resolve().parent.parent
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(str(path.relative_to(root)).encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()[:12]


@dataclass(frozen=True)
class SweepJob:
    """One deterministic, independently executable unit of work.

    ``kind`` is ``"bench"`` (regenerate one experiment scenario),
    ``"cell"`` (one TaskPool run of a named UTS tree) or ``"mp"`` (one
    end-to-end run on the multiprocess shared-memory substrate).  The
    frozen spec is the cache identity — two jobs with equal specs are
    the same job.
    """

    kind: str
    name: str
    params: tuple[tuple[str, object], ...] = ()

    @classmethod
    def bench(cls, exp_id: str, scale: str = "quick") -> "SweepJob":
        """A bench scenario: run one registered experiment."""
        return cls("bench", exp_id, (("scale", scale),))

    @classmethod
    def cell(cls, tree: str, impl: str, npes: int, seed: int) -> "SweepJob":
        """One matrix cell: a named UTS tree under one impl/npes/seed."""
        return cls(
            "cell", tree, (("impl", impl), ("npes", npes), ("seed", seed))
        )

    @classmethod
    def mp(cls, workload: str, impl: str, npes: int, size,
           crash: str | None = None) -> "SweepJob":
        """One multiprocess-substrate run (``size``: ntasks or tree).

        ``crash`` is an optional ``"RANK@N:POINT"`` kill spec; a crash
        job measures recovery wall instead of throughput wall and is
        named ``mp_crash_recovery``.
        """
        if crash is None:
            name = f"mp_{workload}_{impl}_n{npes}"
            return cls(
                "mp", name,
                (("workload", workload), ("impl", impl), ("npes", npes),
                 ("size", size)),
            )
        return cls(
            "mp", "mp_crash_recovery",
            (("workload", workload), ("impl", impl), ("npes", npes),
             ("size", size), ("crash", crash)),
        )

    def spec(self) -> dict:
        """JSON-ready canonical description."""
        out = {"kind": self.kind, "name": self.name}
        out.update(self.params)
        return out

    def key(self, version: str) -> str:
        """Content address: hash of the canonical spec + code version."""
        blob = json.dumps(self.spec(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(f"{version}|{blob}".encode()).hexdigest()[:32]

    def label(self) -> str:
        """Short human-readable name for progress lines."""
        if self.kind in ("bench", "mp"):
            return self.name
        p = dict(self.params)
        return f"{self.name}/{p.get('impl')}/n{p.get('npes')}/s{p.get('seed')}"


def _json_safe(value):
    """Coerce experiment row values to JSON-stable primitives."""
    if isinstance(value, float):
        return value
    if isinstance(value, (int, str, bool)) or value is None:
        return value
    return str(value)


#: Repetitions per bench job; the best wall is reported.  Experiment
#: payloads are deterministic, so repeating only re-measures the wall —
#: and the *best* of a few reps is the measurement least polluted by a
#: transient host stall (GC pause, hypervisor neighbor, cold caches).
#: The regression gate compares best-of-N against a best-of-N baseline,
#: which keeps its 20% threshold meaningful on noisy shared machines.
BENCH_REPS = 3

#: Scenarios measured once instead of :data:`BENCH_REPS` times: the
#: sharded scenarios are multi-second wall-clock measurements (the
#: speedup series forks shard processes; the jumbo row simulates 2112
#: PEs), so best-of-3 would triple the sweep's dominant cost for noise
#: reduction those rows do not need.
BENCH_REPS_OVERRIDE: dict[str, int] = {
    "fig7_sharded_s4": 1,
    "fig7_jumbo": 1,
    # Serving rows are open-system single runs; their payload is a change
    # detector (deterministic checksum) more than a timing row, so one
    # rep suffices.
    "serving_sws": 1,
    "serving_sdc": 1,
}


def run_job(spec: dict) -> dict:
    """Execute one job spec; returns ``{"payload": ..., "meta": ...}``.

    Module-level (picklable) so :class:`ProcessPoolExecutor` workers can
    run it.  The *payload* is a pure function of the spec and the code
    version — byte-identical whether the job ran serially, in a pool
    worker, or was replayed from cache.  Wall time and events/sec live
    in *meta* and are measurement metadata, not identity.
    """
    import gc

    from ..fabric import engine as fabric_engine

    # Measurement hygiene: settle the previous job's garbage *before*
    # this job's clock starts, so a big scenario's collection debt is
    # not billed to whichever scenario happens to run next (serial mode
    # runs many scenarios in one process).
    gc.collect()
    fabric_engine.reset_event_tally()
    events = None
    wall_override = None
    t0 = time.perf_counter()
    if spec["kind"] == "bench":
        from .experiments import run_experiment

        reps = BENCH_REPS_OVERRIDE.get(spec["name"], BENCH_REPS)
        for _ in range(reps):
            fabric_engine.reset_event_tally()
            r0 = time.perf_counter()
            result = run_experiment(spec["name"], spec.get("scale", "quick"))
            rep_wall = time.perf_counter() - r0
            if wall_override is None or rep_wall < wall_override:
                wall_override = rep_wall
        payload = {
            "exp_id": result.exp_id,
            "headers": list(result.headers),
            "rows": [[_json_safe(v) for v in row] for row in result.rows],
        }
        # Engine-free experiments (pure encode/decode arithmetic, e.g.
        # fig34) report their op count so the bench row is not "events: 0".
        events = fabric_engine.events_tally() or result.ops
    elif spec["kind"] == "cell":
        stats = _run_cell(spec)
        payload = {
            "summary": {k: _json_safe(v) for k, v in sorted(stats.summary().items())}
        }
    elif spec["kind"] == "mp":
        payload, events, wall_override = _run_mp_job(spec)
    else:
        raise ValueError(f"unknown job kind {spec['kind']!r}")
    wall = time.perf_counter() - t0
    if wall_override is not None:
        wall = wall_override
    if events is None:
        events = fabric_engine.events_tally()
    return {
        "payload": payload,
        "meta": {
            "wall_s": wall,
            "events": events,
            # Sub-0.1ms walls (engine-free experiments on a fast box)
            # would explode the ratio into timer noise; clamp the
            # denominator instead of dividing by ~0.
            "events_per_sec": events / max(wall, 1e-4),
        },
    }


def _run_cell(spec: dict) -> "RunStats":
    """One matrix cell: a named UTS tree through :func:`run_point`."""
    from ..runtime.registry import TaskRegistry
    from ..workloads.uts import UtsWorkload, get_tree

    tree = get_tree(spec["name"])

    def factory() -> tuple[TaskRegistry, list[Task]]:
        reg = TaskRegistry()
        wl = UtsWorkload(reg, tree)
        return reg, [wl.seed_task()]

    return run_point(
        factory, spec["impl"], int(spec["npes"]), int(spec["seed"]), SweepConfig()
    )


#: Repetitions per mp bench job; the best wall is reported, as for the
#: simulator jobs (:data:`BENCH_REPS`).  A single ~30 ms real-process
#: run is dominated by fork/scheduler noise (the first fork after a
#: heavy simulator job pays cold page-fault costs), so the timing
#: signal is the best of a few warm runs.
MP_BENCH_REPS = 5


def _run_mp_job(spec: dict) -> tuple[dict, int, float]:
    """One multiprocess-substrate job → (payload, events, wall).

    The payload keeps only fields that are a pure function of the spec
    (task counts and conservation) so the content-addressed cache stays
    honest; racy per-run observables (steal counts, volumes) are
    measurement metadata and live in the bench report's meta instead.
    ``events`` is the completed-task count, so the report's events/sec
    column reads as tasks/sec for mp scenarios.  ``wall`` is the best
    per-run wall (process start to all results in) over
    :data:`MP_BENCH_REPS` repetitions; every repetition must conserve.
    """
    from ..mp.driver import run_mp

    workload, size = spec["workload"], spec["size"]
    kwargs = {"verify": True}
    if workload == "synthetic":
        kwargs["ntasks"] = int(size)
    else:
        kwargs["tree"] = str(size)
    crash_spec = spec.get("crash")
    if crash_spec:
        from ..mp.faults import CrashKill, CrashPlan

        kill, point = crash_spec.split(":", 1)
        rank_s, after_s = kill.split("@", 1)
        kwargs["crash"] = CrashPlan(
            kills=(CrashKill(int(rank_s), int(after_s), point),)
        )
    wall = None
    conserved = True
    for _ in range(MP_BENCH_REPS):
        result = run_mp(workload, spec["impl"], int(spec["npes"]), **kwargs)
        conserved = conserved and bool(result.conserved)
        # Crash jobs report the recovery wall (detect + repair + scavenge
        # + re-inject); throughput jobs report the end-to-end run wall.
        rep_wall = result.recovery_wall_s if crash_spec else result.wall_s
        wall = rep_wall if wall is None else min(wall, rep_wall)
    s = result.summary()
    if crash_spec:
        # Duplicate totals are racy run to run; the payload keeps only
        # the spec-determined invariants so the cache stays honest.
        payload = {
            "workload": workload,
            "impl": spec["impl"],
            "npes": int(spec["npes"]),
            "crash": crash_spec,
            "executed_unique": s["executed_unique"],
            "conserved": conserved,
        }
        return payload, s["executed_unique"], wall
    payload = {
        "workload": workload,
        "impl": spec["impl"],
        "npes": int(spec["npes"]),
        "created": s["created"],
        "completed": s["completed"],
        "executed": s["executed"],
        "conserved": conserved,
    }
    return payload, s["completed"], wall


class ResultCache:
    """Content-addressed store of completed job records.

    One JSON file per key under ``root``; writes are atomic (tmp file +
    rename) so a killed run never leaves a truncated record, and corrupt
    or unreadable entries degrade to cache misses.
    """

    def __init__(self, root: str | Path = DEFAULT_CACHE_DIR) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def get(self, key: str) -> dict | None:
        """The stored record for ``key``, or None on miss/corruption."""
        path = self._path(key)
        try:
            return json.loads(path.read_text())
        except (OSError, ValueError):
            return None

    def put(self, key: str, record: dict) -> Path:
        """Atomically persist one record."""
        path = self._path(key)
        tmp = path.with_suffix(".tmp")
        tmp.write_text(json.dumps(record, sort_keys=True, indent=1))
        tmp.replace(path)
        return path

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.json"))


def resolve_jobs(requested: int | None = None) -> int:
    """Worker-count policy for the fan-out pool.

    Priority: ``REPRO_SWEEP_SERIAL=1`` forces 1; an explicit request
    wins next; under ``CI`` default to at most 2 (shared runners); else
    use the machine's core count.
    """
    if os.environ.get(SERIAL_ENV, "") not in ("", "0"):
        return 1
    ncpu = os.cpu_count() or 1
    if requested is not None:
        return max(1, requested)
    if os.environ.get("CI", "") not in ("", "0", "false"):
        return min(2, ncpu)
    return ncpu


@dataclass
class SweepOutcome:
    """Everything one fan-out run produced."""

    records: list[dict]      # aligned with the submitted jobs
    code_version: str
    mode: str                # "serial" | "pool"
    workers: int             # workers actually used
    hits: int                # jobs served from cache
    wall_s: float            # whole fan-out wall time


def run_jobs(
    jobs: list[SweepJob],
    *,
    workers: int | None = None,
    cache: ResultCache | None = None,
    refresh: bool = False,
    progress: Callable[[str], None] | None = None,
) -> SweepOutcome:
    """Run every job, fanning across processes and consulting the cache.

    Cache hits (matching key *and* code version) are returned without
    re-execution.  The pool degrades gracefully: if the executor cannot
    start or dies (sandboxes without semaphores, single-core boxes, a
    killed worker), remaining jobs fall back to in-process serial
    execution — the payloads are identical either way.
    """
    t_start = time.perf_counter()
    version = code_version()
    say = progress or (lambda _msg: None)
    records: list[dict | None] = [None] * len(jobs)
    keys = [job.key(version) for job in jobs]
    hits = 0
    pending: list[int] = []
    for i, job in enumerate(jobs):
        hit = None if (cache is None or refresh) else cache.get(keys[i])
        if hit is not None and hit.get("code_version") == version:
            hit = dict(hit)
            hit["cached"] = True
            records[i] = hit
            hits += 1
            say(f"cached  {job.label()}")
        else:
            pending.append(i)

    nworkers = min(resolve_jobs(workers), max(1, len(pending)))
    mode = "serial"
    if nworkers > 1 and pending:
        try:
            from concurrent.futures import ProcessPoolExecutor, as_completed

            with ProcessPoolExecutor(max_workers=nworkers) as pool:
                futures = {
                    pool.submit(run_job, jobs[i].spec()): i for i in pending
                }
                for fut in as_completed(futures):
                    i = futures[fut]
                    records[i] = _finish(jobs[i], keys[i], fut.result(), version)
                    say(f"ran     {jobs[i].label()} [pool]")
            mode = "pool"
        except (ImportError, OSError, PermissionError, RuntimeError) as exc:
            # Executor unavailable (no sem_open, fork refused, worker
            # died): finish whatever is left serially.
            say(f"pool unavailable ({exc.__class__.__name__}); running serially")
    for i in pending:
        if records[i] is None:
            records[i] = _finish(jobs[i], keys[i], run_job(jobs[i].spec()), version)
            say(f"ran     {jobs[i].label()} [serial]")

    if cache is not None:
        for i in pending:
            rec = records[i]
            if rec is not None and not rec.get("cached"):
                cache.put(keys[i], {k: v for k, v in rec.items() if k != "cached"})

    return SweepOutcome(
        records=records,  # type: ignore[arg-type]
        code_version=version,
        mode=mode,
        workers=nworkers if mode == "pool" else 1,
        hits=hits,
        wall_s=time.perf_counter() - t_start,
    )


def _finish(job: SweepJob, key: str, result: dict, version: str) -> dict:
    """Assemble the stored/returned record for one executed job."""
    return {
        "key": key,
        "code_version": version,
        "spec": job.spec(),
        "payload": result["payload"],
        "meta": result["meta"],
        "cached": False,
    }


# ----------------------------------------------------------------------
# BENCH_fabric.json: the perf-observability report + regression gate
# ----------------------------------------------------------------------
def bench_report(outcome: SweepOutcome) -> dict:
    """Shape a bench-mode outcome into the ``BENCH_fabric.json`` schema."""
    scenarios = {}
    for rec in outcome.records:
        spec = rec["spec"]
        if spec["kind"] not in ("bench", "mp"):
            continue
        meta = rec["meta"]
        entry = {
            "wall_s": round(meta["wall_s"], 4),
            "events": meta["events"],
            "events_per_sec": round(meta["events_per_sec"], 1),
            "cached": bool(rec.get("cached")),
        }
        # Sharded scenarios carry exchange counters in their rows;
        # surface the totals (and the per-row effective transports) at
        # the scenario level so the coordination cost is a first-class
        # bench observable, not buried in a table.
        payload = rec.get("payload") or {}
        headers = payload.get("headers")
        if headers and "rounds" in headers:
            idx = {h: i for i, h in enumerate(headers)}
            rows = payload.get("rows", [])
            entry["rounds"] = sum(r[idx["rounds"]] for r in rows)
            if "xbytes" in idx:
                entry["exchange_bytes"] = sum(r[idx["xbytes"]] for r in rows)
            if "transport" in idx:
                entry["transports"] = [r[idx["transport"]] for r in rows]
        if spec["kind"] == "mp":
            # events == completed tasks here, so the gate's events/sec
            # reads as tasks/sec; mp scenarios gate like any other once
            # the committed baseline carries their entries.
            entry["conserved"] = bool(rec["payload"].get("conserved"))
        scenarios[spec["name"]] = entry
    return {
        "schema": 1,
        "code_version": outcome.code_version,
        "mode": outcome.mode,
        "workers": outcome.workers,
        "host_cpus": os.cpu_count() or 1,
        "cache_hits": outcome.hits,
        "total_wall_s": round(outcome.wall_s, 4),
        "scenarios": scenarios,
    }


def check_regressions(
    current: dict, baseline: dict, threshold: float = 0.20
) -> list[str]:
    """Compare two bench reports; returns one message per regression.

    A scenario regresses when its events/sec drops more than
    ``threshold`` below the baseline's.  Scenarios present on only one
    side are reported (coverage must not silently shrink) but a brand
    new scenario is not a failure.
    """
    problems: list[str] = []
    base = baseline.get("scenarios", {})
    cur = current.get("scenarios", {})
    for name, b in sorted(base.items()):
        c = cur.get(name)
        if c is None:
            problems.append(f"{name}: present in baseline but not measured")
            continue
        floor = b["events_per_sec"] * (1.0 - threshold)
        if c["events_per_sec"] < floor:
            problems.append(
                f"{name}: {c['events_per_sec']:.0f} events/s is more than "
                f"{threshold:.0%} below baseline {b['events_per_sec']:.0f}"
            )
    return problems
