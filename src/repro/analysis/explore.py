"""Schedule exploration: sweep, record, replay, and shrink interleavings.

The engine's same-timestamp tie-break is pluggable
(:mod:`repro.fabric.scheduler`); this module drives it systematically:

* :func:`explore` runs a workload under many schedules (seeded random,
  PCT, or bounded-exhaustive DFS), with the invariant oracle
  (:mod:`repro.runtime.oracle`) armed, and collects every failure as a
  replayable :class:`~repro.fabric.scheduler.ScheduleTrace`;
* :func:`replay_trace` re-executes a recorded trace bit-identically —
  the local half of the CI-artifact-to-repro workflow;
* :func:`shrink_trace` greedily reduces a failing trace to a minimal
  failing prefix (then zeroes interior choices), so the surviving
  decision points *are* the race.

Failures here are protocol failures: an :class:`OracleViolation` (work
lost/duplicated/corrupted), a :class:`DeadlockError`, or any
:class:`ProtocolError` from the end-of-run invariant audit.

Exposed on the command line as ``python -m repro explore`` / ``replay``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from ..core.config import QueueConfig
from ..fabric.errors import DeadlockError, OracleViolation, ProtocolError
from ..fabric.scheduler import (
    DfsScheduler,
    ScheduleTrace,
    Scheduler,
    dfs_successor,
    make_scheduler,
)
from ..runtime.pool import TaskPool
from ..runtime.registry import TaskOutcome, TaskRegistry
from ..runtime.task import Task

#: Workload names accepted by :func:`build_pool` (all small on purpose:
#: exploration multiplies runs, so each run must be cheap).
WORKLOADS = ("flat", "tree", "churn")


def build_pool(
    workload: str,
    impl: str,
    scheduler: Scheduler | None = None,
    oracle: bool = True,
    npes: int = 4,
) -> TaskPool:
    """Build one oracle-armed pool for a named exploration workload.

    ``flat``
        All tasks seeded on PE 0: maximal initial steal contention, the
        window where every thief races the owner's first release.
    ``tree``
        One root spawning a binary tree (depth 6, 127 tasks): dynamic
        release/steal churn as subtrees migrate.
    ``churn``
        A deep spawn chain with a tiny queue (qsize 32): drives ring
        wraparound and epoch turnover, the reclamation-heavy paths.
    """
    reg = TaskRegistry()
    cfg = QueueConfig()
    seeds: list[Task] = []
    if workload == "flat":
        reg.register("leaf", lambda payload, tc: TaskOutcome(duration=2e-6))
        seeds = [Task(reg.id_of("leaf")) for _ in range(96)]
    elif workload == "tree":
        def node(payload: bytes, tc) -> TaskOutcome:
            depth = payload[0]
            kids = (
                [Task(reg.id_of("node"), bytes([depth - 1])) for _ in range(2)]
                if depth > 0
                else []
            )
            return TaskOutcome(duration=1e-6, children=kids)

        reg.register("node", node)
        seeds = [Task(reg.id_of("node"), bytes([6]))]
    elif workload == "churn":
        cfg = QueueConfig(qsize=32)

        def chain(payload: bytes, tc) -> TaskOutcome:
            left = payload[0]
            kids = (
                [
                    Task(reg.id_of("chain"), bytes([left - 1])),
                    Task(reg.id_of("leaf")),
                    Task(reg.id_of("leaf")),
                ]
                if left > 0
                else []
            )
            return TaskOutcome(duration=1e-6, children=kids)

        reg.register("chain", chain)
        reg.register("leaf", lambda payload, tc: TaskOutcome(duration=1e-6))
        seeds = [Task(reg.id_of("chain"), bytes([40]))]
    else:
        raise ValueError(f"workload must be one of {WORKLOADS}, got {workload!r}")
    pool = TaskPool(
        npes,
        reg,
        impl=impl,
        queue_config=cfg,
        scheduler=scheduler,
        oracle=oracle,
    )
    pool.seed(0, seeds)
    return pool


#: Builds a ready-to-run pool from a scheduler (captures workload/impl).
PoolFactory = Callable[[Scheduler | None], TaskPool]


def pool_factory(
    workload: str, impl: str, oracle: bool = True, npes: int = 4
) -> PoolFactory:
    """Close :func:`build_pool` over everything but the scheduler."""
    return lambda scheduler: build_pool(
        workload, impl, scheduler=scheduler, oracle=oracle, npes=npes
    )


@dataclass
class RunResult:
    """Outcome of one explored run."""

    ok: bool
    check: str | None        # violation class ("deadlock", "double-claim", ...)
    detail: str              # human-readable failure description
    trace: ScheduleTrace     # the schedule that produced it (always recorded)
    events: int              # engine events processed
    runtime: float | None    # virtual end time (clean runs only)


def run_once(factory: PoolFactory, scheduler: Scheduler) -> RunResult:
    """One run under ``scheduler``; failures become results, not raises."""
    pool = factory(scheduler)
    sched = pool.ctx.engine.scheduler
    assert sched is not None, "exploration requires an attached scheduler"
    try:
        stats = pool.run()
    except OracleViolation as exc:
        return RunResult(False, exc.check, str(exc), sched.trace(),
                         pool.ctx.engine.events_processed, None)
    except DeadlockError as exc:
        return RunResult(False, "deadlock", str(exc), sched.trace(),
                         pool.ctx.engine.events_processed, None)
    except ProtocolError as exc:
        return RunResult(False, "protocol", str(exc), sched.trace(),
                         pool.ctx.engine.events_processed, None)
    return RunResult(True, None, "", sched.trace(),
                     pool.ctx.engine.events_processed, stats.runtime)


@dataclass
class ExploreReport:
    """Aggregate of one exploration sweep."""

    workload: str
    impl: str
    policy: str
    runs: int = 0
    events: int = 0
    decision_points: int = 0
    failures: list[RunResult] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.failures

    def render(self) -> str:
        lines = [
            f"explore {self.workload}/{self.impl} policy={self.policy}: "
            f"{self.runs} runs, {self.events} events, "
            f"{self.decision_points} decision points, "
            f"{len(self.failures)} failures",
        ]
        for f in self.failures:
            lines.append(f"  FAIL [{f.check}] after {f.events} events: "
                         f"{f.detail.splitlines()[0]}")
        return "\n".join(lines)


def explore(
    workload: str,
    impl: str,
    policy: str = "random",
    seeds: Iterable[int] = range(20),
    dfs_depth: int = 8,
    max_runs: int = 512,
    npes: int = 4,
    factory: PoolFactory | None = None,
    stop_on_failure: bool = False,
) -> ExploreReport:
    """Sweep schedules for one workload/impl under one policy.

    ``random``/``pct`` run one schedule per seed; ``fixed`` runs once;
    ``dfs`` enumerates every same-time ordering over the first
    ``dfs_depth`` decision points (capped at ``max_runs`` branches).
    ``factory`` overrides the built-in workloads (used by the mutation
    smoke test to explore a deliberately broken queue).
    """
    factory = factory or pool_factory(workload, impl, npes=npes)
    report = ExploreReport(workload=workload, impl=impl, policy=policy)

    def record(result: RunResult, sched: Scheduler) -> None:
        report.runs += 1
        report.events += result.events
        report.decision_points += sched.decisions
        if not result.ok:
            result.trace.meta.update(
                workload=workload, impl=impl, npes=npes,
                check=result.check, detail=result.detail.splitlines()[0],
            )
            report.failures.append(result)

    if policy == "dfs":
        prefix: list[int] | None = []
        while prefix is not None and report.runs < max_runs:
            sched = DfsScheduler(prefix, max_depth=dfs_depth)
            record(run_once(factory, sched), sched)
            if report.failures and stop_on_failure:
                break
            prefix = dfs_successor(sched.choices, dfs_depth)
    else:
        seed_list = [0] if policy == "fixed" else list(seeds)
        for seed in seed_list[:max_runs]:
            sched = make_scheduler(policy, seed=seed)
            record(run_once(factory, sched), sched)
            if report.failures and stop_on_failure:
                break
    return report


def replay_trace(
    trace: ScheduleTrace,
    factory: PoolFactory | None = None,
    strict: bool = False,
) -> RunResult:
    """Re-execute a recorded trace (workload/impl come from its meta)."""
    if factory is None:
        meta = trace.meta
        if "workload" not in meta or "impl" not in meta:
            raise ValueError(
                "trace has no workload/impl metadata; pass factory= explicitly"
            )
        factory = pool_factory(
            meta["workload"], meta["impl"], npes=int(meta.get("npes", 4))
        )
    return run_once(factory, trace.replayer(strict=strict))


def shrink_trace(
    trace: ScheduleTrace,
    factory: PoolFactory | None = None,
    max_attempts: int = 128,
) -> tuple[ScheduleTrace, int]:
    """Greedily shrink a failing trace; returns (minimal trace, runs used).

    Two passes, both bounded by ``max_attempts`` replays:

    1. **prefix** — binary search for the shortest choice prefix that
       still fails (replay falls back to default order past the prefix);
    2. **zeroing** — left to right, replace each surviving nonzero
       choice with 0 (default order) and keep the substitution when the
       run still fails.

    The result reproduces the *same class* of failure (same oracle
    check); a trace that no longer fails at full length is returned
    unchanged.
    """
    if factory is None:
        meta = trace.meta
        factory = pool_factory(
            meta["workload"], meta["impl"], npes=int(meta.get("npes", 4))
        )
    attempts = 0
    want = trace.meta.get("check")

    def fails(choices: Sequence[int]) -> bool:
        nonlocal attempts
        attempts += 1
        probe = ScheduleTrace(policy="replay", seed=trace.seed,
                              choices=list(choices), meta=dict(trace.meta))
        result = run_once(factory, probe.replayer())
        return (not result.ok) and (want is None or result.check == want)

    choices = list(trace.choices)
    if not fails(choices):
        return trace, attempts  # not reproducible under replay: keep as-is

    # Pass 1: shortest failing prefix (binary search, then verify).
    lo, hi = 0, len(choices)
    while lo < hi and attempts < max_attempts:
        mid = (lo + hi) // 2
        if fails(choices[:mid]):
            hi = mid
        else:
            lo = mid + 1
    if fails(choices[:hi]):
        choices = choices[:hi]

    # Pass 2: zero out interior choices that don't matter.
    for i, c in enumerate(choices):
        if attempts >= max_attempts:
            break
        if c == 0:
            continue
        candidate = choices[:i] + [0] + choices[i + 1:]
        if fails(candidate):
            choices = candidate

    shrunk = ScheduleTrace(
        policy="replay",
        seed=trace.seed,
        choices=choices,
        meta={**trace.meta, "shrunk_from": len(trace.choices)},
    )
    return shrunk, attempts
