"""Derived data series: the exact quantities the paper's figures plot.

Figures 7 and 8 share six panels; given the raw sweep points these
helpers compute each panel's series:

* (a) throughput — tasks/second vs PE count;
* (b) relative runtime improvement — ``100 * t_sdc / t_sws`` per PE count
  (values above 100 mean SWS is faster);
* (c) parallel efficiency vs ideal execution;
* (d) run variation — relative standard deviation and relative range of
  runtime across repetitions, as percentages of the mean;
* (e) total steal time; (f) total search time.
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass

from .sweep import SweepPoint


@dataclass(frozen=True)
class CellSummary:
    """Statistics of one (impl, npes) sweep cell across repetitions."""

    impl: str
    npes: int
    reps: int
    runtime_mean: float
    runtime_sd: float
    runtime_min: float
    runtime_max: float
    throughput: float
    efficiency: float
    steal_time: float
    search_time: float
    steals_ok: float
    steals_failed: float
    comm_total: float
    comm_blocking: float

    @property
    def rel_sd_pct(self) -> float:
        """Relative standard deviation of runtime, percent (Fig. 7d/8d)."""
        return 100.0 * self.runtime_sd / self.runtime_mean if self.runtime_mean else 0.0

    @property
    def rel_range_pct(self) -> float:
        """Relative max-min range of runtime, percent (Fig. 7d/8d)."""
        if not self.runtime_mean:
            return 0.0
        return 100.0 * (self.runtime_max - self.runtime_min) / self.runtime_mean


def summarize_cells(points: list[SweepPoint]) -> list[CellSummary]:
    """Collapse repetitions into per-(impl, npes) summaries."""
    groups: dict[tuple[str, int], list[SweepPoint]] = defaultdict(list)
    for p in points:
        groups[(p.impl, p.npes)].append(p)
    cells = []
    for (impl, npes), pts in sorted(groups.items()):
        runtimes = [p.stats.runtime for p in pts]
        n = len(runtimes)
        mean = sum(runtimes) / n
        sd = math.sqrt(sum((r - mean) ** 2 for r in runtimes) / n) if n > 1 else 0.0
        cells.append(
            CellSummary(
                impl=impl,
                npes=npes,
                reps=n,
                runtime_mean=mean,
                runtime_sd=sd,
                runtime_min=min(runtimes),
                runtime_max=max(runtimes),
                throughput=sum(p.stats.throughput for p in pts) / n,
                efficiency=sum(p.stats.parallel_efficiency for p in pts) / n,
                steal_time=sum(p.stats.total_steal_time for p in pts) / n,
                search_time=sum(p.stats.total_search_time for p in pts) / n,
                steals_ok=sum(p.stats.total_steals for p in pts) / n,
                steals_failed=sum(p.stats.total_failed_steals for p in pts) / n,
                comm_total=sum(p.stats.comm.get("total", 0) for p in pts) / n,
                comm_blocking=sum(p.stats.comm.get("blocking", 0) for p in pts) / n,
            )
        )
    return cells


def by_impl(cells: list[CellSummary]) -> dict[str, dict[int, CellSummary]]:
    """Index summaries as ``{impl: {npes: cell}}``."""
    out: dict[str, dict[int, CellSummary]] = defaultdict(dict)
    for c in cells:
        out[c.impl][c.npes] = c
    return out


def relative_improvement(cells: list[CellSummary]) -> dict[int, float]:
    """Figure 7b/8b series: ``100 * runtime_sdc / runtime_sws`` per npes.

    100 means parity; the paper reports ~100-112% for UTS.
    """
    idx = by_impl(cells)
    out = {}
    for npes, sws_cell in idx.get("sws", {}).items():
        sdc_cell = idx.get("sdc", {}).get(npes)
        if sdc_cell is None or sws_cell.runtime_mean == 0:
            continue
        out[npes] = 100.0 * sdc_cell.runtime_mean / sws_cell.runtime_mean
    return out


def crossover_point(
    xs: list[float], ratio: list[float], threshold: float = 1.0
) -> float | None:
    """First x where a ratio series crosses down through ``threshold``.

    Linear interpolation between the bracketing samples; ``None`` when
    the series never crosses.  Used to locate where the SDC/SWS latency
    ratio approaches parity in the Figure-6 curves.
    """
    if len(xs) != len(ratio):
        raise ValueError("xs and ratio must align")
    for (x0, r0), (x1, r1) in zip(zip(xs, ratio), zip(xs[1:], ratio[1:])):
        if r0 > threshold >= r1:
            if r0 == r1:
                return x1
            frac = (r0 - threshold) / (r0 - r1)
            return x0 + frac * (x1 - x0)
    return None


def speedup_factor(
    cells: list[CellSummary], metric: str = "steal_time"
) -> dict[int, float]:
    """Per-npes ratio ``sdc_metric / sws_metric`` (e.g. steal-time factor;
    the paper reports 3-4x for UTS steal time)."""
    idx = by_impl(cells)
    out = {}
    for npes, sws_cell in idx.get("sws", {}).items():
        sdc_cell = idx.get("sdc", {}).get(npes)
        if sdc_cell is None:
            continue
        sws_v = getattr(sws_cell, metric)
        sdc_v = getattr(sdc_cell, metric)
        if sws_v > 0:
            out[npes] = sdc_v / sws_v
    return out
