"""Core contribution: stealval codecs, steal-half math, and both queues."""

from .config import QueueConfig
from .damping import DampingStats, DampingTracker, TargetMode
from .results import StealResult, StealStatus
from .sdc_queue import SdcQueue, SdcQueueSystem
from .steal_half import (
    max_steals,
    schedule,
    share_half,
    steal_displacement,
    steal_volume,
)
from .stealval import (
    StealValEpoch,
    StealValV1,
    StealViewEpoch,
    StealViewV1,
    max_initial_tasks,
)
from .sws_queue import EpochRecord, SwsQueue, SwsQueueSystem
from .sws_v1_queue import SwsV1Queue, SwsV1QueueSystem
from .task_state import (
    ALLOWED_TRANSITIONS,
    IllegalTransition,
    TaskState,
    TaskStateTracker,
)

__all__ = [
    "QueueConfig",
    "DampingTracker",
    "DampingStats",
    "TargetMode",
    "StealResult",
    "StealStatus",
    "SdcQueue",
    "SdcQueueSystem",
    "SwsQueue",
    "SwsQueueSystem",
    "SwsV1Queue",
    "SwsV1QueueSystem",
    "EpochRecord",
    "StealValV1",
    "StealValEpoch",
    "StealViewV1",
    "StealViewEpoch",
    "max_initial_tasks",
    "steal_volume",
    "steal_displacement",
    "max_steals",
    "schedule",
    "share_half",
    "TaskState",
    "TaskStateTracker",
    "IllegalTransition",
    "ALLOWED_TRANSITIONS",
]
