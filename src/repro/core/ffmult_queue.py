"""Fence-free work-stealing deque with multiplicity (Castañeda & Piña).

The relaxed protocol from PAPERS.md: the steal path uses **no atomic
operations at all** — a thief discovers work with a plain metadata read,
copies exactly one task with a plain get, and advances the tail with a
plain (non-atomic) store.  Racing thieves, or a thief racing the owner's
``acquire``, can hand the same task out more than once; the deque's
contract is *at-least-once with multiplicity*: a task may execute k >= 1
times, but can never be lost.

Layout mirrors the SDC split queue: a circular buffer with a local
portion ``[split, head)`` (owner only) and a shared window
``[tail, split)``.  A successful steal is three one-sided communications,
all blocking:

1. get — fetch the ``[TAIL, SPLIT]`` metadata pair (one get; the words
   are contiguous);
2. get — copy the single task record at index ``tail``;
3. put — plain store of ``tail + 1`` (racy by design: a stale store may
   *regress* the tail and re-expose consumed tasks — duplicates, not
   losses).

**Why nothing is ever lost.**  The tail only moves past an index ``i``
when (a) a thief that copied task ``i`` stores ``i + 1``, or (b) the
owner repairs an overshoot by moving the tail *down* to ``split`` —
never skipping an unconsumed index upward.  Indices at or above
``split`` are local and owner-executed.  So every released task is
consumed at least once; racy interleavings only add extra consumers.

**Duplicate accounting.**  Every handout (a thief's tail store, or the
owner dequeuing an index) bumps a per-index claim count in system-side
bookkeeping; the second and later claims of one task instance increment
the victim's ``dup_handouts`` counter *at handout time* — before the
duplicate can execute — so Mattern-style termination detection stays
safe when workers report ``spawned + dup_handouts`` as their production
count, and the books close as ``executed == spawned + dup_handouts``.
Enqueueing a fresh task at a reused absolute index resets that index's
claim history (a new instance is not a duplicate of the old one).

**Slot-reuse safety.**  Space is reclaimed only below the *floor*
``F = min(tail, split, every in-flight thief snapshot)``.  A thief
registers interest before its metadata get is issued (the conservative
current floor — the NIC captures the tail at apply time, which can be no
lower), narrows it to the observed tail, and releases it only after its
tail store has applied.  F is therefore non-decreasing, and the owner's
overflow guard ``head - F <= qsize`` keeps enqueues from overwriting a
slot any thief may still copy.
"""

from __future__ import annotations

from typing import Generator

from ..fabric.errors import OracleViolation, ProtocolError
from ..shmem.api import ShmemCtx
from .config import QueueConfig
from .results import StealResult, StealStatus
from .steal_half import share_half

# Metadata word offsets (TAIL and SPLIT contiguous so the thief's
# discovery is a single get).
TAIL = 0
SPLIT = 1
META_WORDS = 2

META_REGION = "ffmq.meta"
TASK_REGION = "ffmq.tasks"


class FfMultQueueSystem:
    """Symmetric regions plus the duplicate-accounting bookkeeping.

    The claim counts, duplicate tallies, and in-flight steal snapshots
    are *simulator bookkeeping* — a real implementation carries none of
    this state (that is the protocol's entire point); here it exists so
    the oracles can check the at-least-once contract at zero fabric
    cost.
    """

    def __init__(self, ctx: ShmemCtx, config: QueueConfig | None = None) -> None:
        self.ctx = ctx
        self.config = config or QueueConfig()
        cfg = self.config
        ctx.heap.alloc_words(META_REGION, META_WORDS)
        ctx.heap.alloc_bytes(TASK_REGION, cfg.qsize * cfg.task_size)
        npes = ctx.npes
        #: Per-victim map of absolute index -> times handed out.
        self.claims: list[dict[int, int]] = [dict() for _ in range(npes)]
        #: Per-victim duplicate handouts (claims beyond the first).
        self.dups: list[int] = [0] * npes
        # In-flight steal registrations: token -> lowest index the thief
        # may still touch.  Keyed per victim rank.
        self._inflight: list[dict[int, int]] = [dict() for _ in range(npes)]
        self._next_token = 0

    def handle(self, rank: int) -> "FfMultQueue":
        """Owner/thief handle bound to PE ``rank``."""
        return FfMultQueue(self, rank)

    # ------------------------------------------------------------------
    # bookkeeping (zero fabric cost)
    # ------------------------------------------------------------------
    def current_floor(self, rank: int) -> int:
        """The reclaim floor of ``rank``'s queue right now."""
        tail, split = self.ctx.heap.load_words(rank, META_REGION, TAIL, 2)
        floor = min(tail, split)
        inflight = self._inflight[rank]
        if inflight:
            floor = min(floor, min(inflight.values()))
        return floor

    def register_inflight(self, victim: int, floor: int) -> int:
        """Pin the reclaim floor at ``floor`` for one in-flight steal."""
        token = self._next_token
        self._next_token += 1
        self._inflight[victim][token] = floor
        return token

    def update_inflight(self, victim: int, token: int, index: int) -> None:
        """Narrow a registration to the tail index actually observed."""
        self._inflight[victim][token] = index

    def unregister_inflight(self, victim: int, token: int) -> None:
        """Drop a registration (steal finished, aborted, or empty)."""
        self._inflight[victim].pop(token, None)

    def note_handout(self, victim: int, index: int) -> bool:
        """Record one handout of ``victim``'s task at ``index``.

        Returns True when this handout is a duplicate (the instance was
        already claimed), in which case the victim's duplicate tally has
        been incremented.
        """
        count = self.claims[victim].get(index, 0) + 1
        self.claims[victim][index] = count
        if count > 1:
            self.dups[victim] += 1
            return True
        return False


class FfMultQueue:
    """Per-PE handle: owner-side queue ops + the fence-free steal."""

    driver_family = "ffmult"

    def __init__(self, system: FfMultQueueSystem, rank: int) -> None:
        self.system = system
        self.cfg = system.config
        self.pe = system.ctx.pe(rank)
        self.rank = rank
        # Owner-local bookkeeping (absolute indices).
        self.head = 0        # next enqueue slot
        self.ctail = 0       # reclaim floor: space below this is free
        heap = system.ctx.heap
        self._meta = heap.word_view(rank, META_REGION)
        self._tasks = heap.byte_view(rank, TASK_REGION)
        self._qsize = self.cfg.qsize
        self._tsize = self.cfg.task_size

    # ------------------------------------------------------------------
    # owner-local index views
    # ------------------------------------------------------------------
    @property
    def local_count(self) -> int:
        """Tasks in the local (owner-only) portion."""
        return self.head - self._meta[SPLIT]

    @property
    def shared_count(self) -> int:
        """Tasks in the shared window (clamped: a stale thief store can
        transiently push the tail past the split)."""
        meta = self._meta
        return max(0, meta[SPLIT] - meta[TAIL])

    @property
    def dup_handouts(self) -> int:
        """Duplicate handouts charged to this queue (monotone)."""
        return self.system.dups[self.rank]

    def _floor(self) -> int:
        return self.system.current_floor(self.rank)

    # ------------------------------------------------------------------
    # owner operations (local, no communication)
    # ------------------------------------------------------------------
    def enqueue(self, record: bytes) -> None:
        """Append one serialized task at the head of the local portion."""
        ts = self._tsize
        if len(record) != ts:
            raise ProtocolError(
                f"record of {len(record)} bytes; queue expects {ts}"
            )
        qsize = self._qsize
        if self.head - self.ctail >= qsize:
            self.progress()
            if self.head - self.ctail >= qsize:
                raise ProtocolError(
                    f"PE {self.rank}: ff-mult queue overflow (qsize={qsize})"
                )
        # A fresh task instance at a reused absolute index is not a
        # duplicate of whatever lived there before.
        self.system.claims[self.rank].pop(self.head, None)
        addr = (self.head % qsize) * ts
        self._tasks[addr : addr + ts] = record
        self.head += 1

    def dequeue(self) -> bytes | None:
        """Pop the newest local task (LIFO); ``None`` when local is empty.

        Owner consumption is a handout too: a re-privatized task that a
        stale thief also copied must charge a duplicate to exactly one
        side, and the symmetric claim count does that for any ordering.
        """
        head = self.head
        if head <= self._meta[SPLIT]:
            return None
        self.head = head = head - 1
        self.system.note_handout(self.rank, head)
        ts = self._tsize
        addr = (head % self._qsize) * ts
        return bytes(self._tasks[addr : addr + ts])

    def release(self) -> int:
        """Expose half of the local portion to thieves.

        Plain local stores, like SDC's release.  Only valid when the
        shared window is empty; an overshot tail (a stale thief store
        that ran past the split) is repaired *first*, so any still
        in-flight store writes at most the old split and can never jump
        the new window.
        """
        if self.shared_count != 0:
            raise ProtocolError("ff-mult release requires an empty shared window")
        nshare = share_half(self.local_count)
        if nshare == 0:
            return 0
        split = self._meta[SPLIT]
        if self._meta[TAIL] != split:
            self.pe.local_store(META_REGION, TAIL, split)
        self.pe.local_store(META_REGION, SPLIT, split + nshare)
        return nshare

    def acquire(self) -> Generator:
        """Move half of the shared window back to local.

        No lock to take (there is none), so this generator never yields;
        it is a generator only to match the driver's ``yield from``
        calling convention.  An overshot tail is repaired instead.
        Returns the number of tasks re-privatized.
        """
        if False:  # pragma: no cover - makes this a generator
            yield
        meta = self._meta
        split = meta[SPLIT]
        tail = meta[TAIL]
        if tail > split:
            self.pe.local_store(META_REGION, TAIL, split)
            return 0
        avail = split - tail
        if avail <= 0:
            return 0
        ntake = share_half(avail)
        self.pe.local_store(META_REGION, SPLIT, split - ntake)
        return ntake

    def progress(self) -> int:
        """Advance the reclaim floor; returns slots freed.

        Also prunes claim-count entries now strictly below the floor: no
        in-flight thief can touch them (the floor is the minimum over
        every registration) and the owner can only enqueue above it.
        """
        floor = self._floor()
        reclaimed = floor - self.ctail
        if reclaimed <= 0:
            return 0
        claims = self.system.claims[self.rank]
        for index in range(self.ctail, floor):
            claims.pop(index, None)
        self.ctail = floor
        return reclaimed

    def seed(self, records: list[bytes]) -> None:
        """Initial task placement before the run starts (no timing)."""
        for r in records:
            self.enqueue(r)

    # ------------------------------------------------------------------
    # thief operation (remote, 3 plain communications, no atomics)
    # ------------------------------------------------------------------
    def steal(self, victim: int) -> Generator:
        """Attempt to steal one task from ``victim`` — fence-free.

        Yields fabric requests; returns a :class:`StealResult`.  An
        empty window costs a single get.  The registration brackets keep
        the victim's reclaim floor below every index this thief may
        still read (see the module docstring).
        """
        if victim == self.rank:
            raise ProtocolError("a PE cannot steal from itself")
        pe = self.pe
        system = self.system
        token = system.register_inflight(victim, system.current_floor(victim))
        try:
            # (1) discover: one get of the contiguous [TAIL, SPLIT] pair
            tail, split = yield pe.get_words(victim, META_REGION, TAIL, 2)
            if split - tail <= 0:
                return StealResult(StealStatus.EMPTY, victim)
            system.update_inflight(victim, token, tail)
            # (2) copy exactly one task record
            ts = self._tsize
            slot = tail % self._qsize
            data = yield pe.get_bytes(victim, TASK_REGION, slot * ts, ts)
            # (3) plain tail store — racy by design.  Blocking, so the
            # in-flight registration outlives the store's apply.
            yield pe.put_word(victim, META_REGION, TAIL, tail + 1)
            system.note_handout(victim, tail)
        finally:
            system.unregister_inflight(victim, token)
        return StealResult(StealStatus.STOLEN, victim, 1, [bytes(data)])

    # ------------------------------------------------------------------
    # schedule-exploration oracle hooks (repro.runtime.oracle)
    # ------------------------------------------------------------------
    def oracle_comp_words(self) -> list[int]:
        """No completion array — deferred-copy tracking does not exist."""
        return []

    def oracle_comp_expected(self) -> dict[int, int] | None:
        return None

    def oracle_check(self) -> None:
        """Per-event invariants, valid at any event boundary."""
        split = self._meta[SPLIT]
        floor = self._floor()
        if not (self.ctail <= floor <= split <= self.head):
            raise OracleViolation(
                "ffmult-index-order",
                f"ctail={self.ctail} floor={floor} split={split} "
                f"head={self.head}",
                pe=self.rank,
            )
        if self.head - self.ctail > self.cfg.qsize:
            raise OracleViolation(
                "ffmult-capacity",
                f"in_use={self.head - self.ctail} > qsize={self.cfg.qsize}",
                pe=self.rank,
            )

    def invariants(self) -> None:
        """Raise :class:`ProtocolError` if owner-visible state is inconsistent."""
        split = self._meta[SPLIT]
        floor = self._floor()
        if not (self.ctail <= floor <= split <= self.head):
            raise ProtocolError(
                f"PE {self.rank}: index order violated "
                f"ctail={self.ctail} floor={floor} split={split} "
                f"head={self.head}"
            )
        if self.head - self.ctail > self.cfg.qsize:
            raise ProtocolError(f"PE {self.rank}: queue over capacity")
