"""Configuration dataclasses for the task-queue implementations."""

from __future__ import annotations

from dataclasses import dataclass, field

from .stealval import StealValEpoch


@dataclass(frozen=True)
class QueueConfig:
    """Shape of a per-PE task queue.

    Attributes
    ----------
    qsize:
        Circular-buffer capacity in task slots.  For the epoch stealval the
        tail field is 19 bits, so ``qsize`` must not exceed ``2**19``.
    task_size:
        Bytes per serialized task record (paper workloads: 32 B BPC,
        48 B UTS; the Fig. 6 microbenchmark also uses 24 B and 192 B).
    max_epochs:
        Live completion epochs for SWS (paper: 2 sufficed to avoid
        acquire-time polling).
    comp_slots:
        Completion-array slots per epoch.  Must be at least the longest
        possible steal-half schedule (21 for a 19-bit allotment); the
        default leaves margin.
    lock_backoff:
        Seconds an SDC thief waits between lock-retry probes.
    damping_threshold:
        asteals overshoot (beyond the schedule length) after which a
        target is demoted to empty-mode when steal damping is enabled.
    sdc_steal:
        SDC thief volume policy: ``"half"`` (Hendler-Shavit steal-half,
        the paper's choice) or ``"one"`` (classic Cilk steal-one) — an
        ablation knob.  SWS volumes are fixed by the stealval schedule.
    sdc_lock_lease:
        Hold deadline (virtual seconds) for the SDC swap-lock, or ``None``
        for the classic unleased protocol.  With a lease, the lock word
        carries the holder's identity plus an acquisition timestamp, and
        any contender may CAS a lock held past the deadline back open —
        the recovery path for a fail-stopped (or wedged) lock holder.
        ``None`` keeps the baseline protocol bit-identical.
    steal_fetch_retries:
        (SWS) How many times a thief re-issues the post-claim block fetch
        after a :class:`~repro.fabric.errors.FabricTimeoutError` before
        abandoning the claimed tasks (they are unreachable if the victim
        died).  Only reached when fault injection is active.
    """

    qsize: int = 4096
    task_size: int = 48
    max_epochs: int = 2
    comp_slots: int = 24
    lock_backoff: float = 0.5e-6
    damping_threshold: int = 4
    sdc_steal: str = "half"
    sdc_lock_lease: float | None = None
    steal_fetch_retries: int = 3

    def __post_init__(self) -> None:
        if self.qsize <= 1:
            raise ValueError(f"qsize must exceed 1, got {self.qsize}")
        if self.qsize > (1 << StealValEpoch.TAIL_BITS):
            raise ValueError(
                f"qsize {self.qsize} exceeds the {StealValEpoch.TAIL_BITS}-bit "
                f"tail field of the epoch stealval"
            )
        if self.task_size <= 0:
            raise ValueError(f"task_size must be positive, got {self.task_size}")
        if not 1 <= self.max_epochs <= StealValEpoch.MAX_EPOCHS:
            raise ValueError(
                f"max_epochs must be in [1, {StealValEpoch.MAX_EPOCHS}], "
                f"got {self.max_epochs}"
            )
        if self.comp_slots < 21:
            raise ValueError(
                f"comp_slots must cover the longest steal schedule (>=21), "
                f"got {self.comp_slots}"
            )
        if self.lock_backoff < 0:
            raise ValueError("lock_backoff must be non-negative")
        if self.damping_threshold < 0:
            raise ValueError("damping_threshold must be non-negative")
        if self.sdc_steal not in ("half", "one"):
            raise ValueError(
                f"sdc_steal must be 'half' or 'one', got {self.sdc_steal!r}"
            )
        if self.sdc_lock_lease is not None and self.sdc_lock_lease <= 0:
            raise ValueError(
                f"sdc_lock_lease must be positive or None, got {self.sdc_lock_lease}"
            )
        if self.steal_fetch_retries < 0:
            raise ValueError("steal_fetch_retries must be non-negative")
