"""Shared-task state machine (paper Table 1).

Tasks in the shared portion of an SWS queue progress through::

    AVAILABLE --claim (remote fetch-add)--> CLAIMED
    CLAIMED --completion notification--> FINISHED
    FINISHED --owner reclaims space--> INVALID

plus ``AVAILABLE -> INVALID`` when the owner acquires unclaimed tasks
back into the local portion (they stop being shared without ever being
stolen).  Any other transition is a protocol bug; :class:`TaskStateTracker`
enforces this and is used by the SWS queue's debug mode and by the
Table-1 tests.
"""

from __future__ import annotations

from enum import Enum


class TaskState(Enum):
    """State of one shared task block (Table 1)."""

    AVAILABLE = "A"  #: shared, unclaimed, stealable
    CLAIMED = "C"    #: steal in progress (claimed via fetch-add)
    FINISHED = "F"   #: thief signalled completion; copy done
    INVALID = "I"    #: no longer a shared task (reclaimed or re-acquired)


#: Legal transitions of the Table-1 state machine.
ALLOWED_TRANSITIONS: frozenset[tuple[TaskState, TaskState]] = frozenset(
    {
        (TaskState.AVAILABLE, TaskState.CLAIMED),
        (TaskState.CLAIMED, TaskState.FINISHED),
        (TaskState.FINISHED, TaskState.INVALID),
        (TaskState.AVAILABLE, TaskState.INVALID),
    }
)


class IllegalTransition(Exception):
    """A shared-task block attempted a transition Table 1 forbids."""


class TaskStateTracker:
    """Tracks per-steal-block states for one allotment epoch.

    Blocks are identified by their steal ordinal within the epoch (the
    same index the completion array uses).
    """

    def __init__(self, nblocks: int) -> None:
        if nblocks < 0:
            raise ValueError(f"nblocks must be non-negative, got {nblocks}")
        self.states: list[TaskState] = [TaskState.AVAILABLE] * nblocks

    def transition(self, block: int, new: TaskState) -> None:
        """Move ``block`` to ``new``; raise :class:`IllegalTransition` otherwise."""
        old = self.states[block]
        if (old, new) not in ALLOWED_TRANSITIONS:
            raise IllegalTransition(
                f"block {block}: {old.name} -> {new.name} is not allowed"
            )
        self.states[block] = new

    def claim(self, block: int) -> None:
        """AVAILABLE → CLAIMED (remote fetch-add landed)."""
        self.transition(block, TaskState.CLAIMED)

    def finish(self, block: int) -> None:
        """CLAIMED → FINISHED (completion notification landed)."""
        self.transition(block, TaskState.FINISHED)

    def invalidate(self, block: int) -> None:
        """FINISHED/AVAILABLE → INVALID (owner reclaimed / re-acquired)."""
        self.transition(block, TaskState.INVALID)

    def count(self, state: TaskState) -> int:
        """Number of blocks currently in ``state``."""
        return sum(1 for s in self.states if s is state)

    def finished_prefix(self) -> int:
        """Length of the leading run of FINISHED/INVALID blocks.

        The owner may only reclaim queue space behind this prefix: a
        CLAIMED block still being copied pins everything after it.
        """
        n = 0
        for s in self.states:
            if s in (TaskState.FINISHED, TaskState.INVALID):
                n += 1
            else:
                break
        return n

    def all_settled(self) -> bool:
        """True when no block is still CLAIMED (no in-flight steals)."""
        return all(s is not TaskState.CLAIMED for s in self.states)
