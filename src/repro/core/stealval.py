"""Packed 64-bit stealval codecs (paper §4, Figures 3 and 4).

The entire SWS idea hinges on representing everything a thief needs to
*discover and claim* work in one 64-bit word that a single remote atomic
fetch-add can both read and update:

* the thief's fetch-add increments the **attempted-steals** counter;
* the fetched (old) value tells the thief the **initial allotment** and
  **tail index**, from which the steal-half schedule determines exactly
  which block of tasks it just claimed — no lock, no second read.

Two layouts are implemented:

``StealValV1`` (Figure 3) — the initial design::

    63........40 39 38........20 19.........0
    asteals (24)  V  itasks (19)  tail (20)

``StealValEpoch`` (Figure 4) — the completion-epoch design::

    63........40 39..38 37........19 18........0
    asteals (24) epoch   itasks (19)  tail (19)

In both, *asteals* occupies the **high-order bits** so that a thief's
``fetch_add(1 << 40)`` can never carry into owner-maintained fields: a
24-bit overflow falls off the top of the word.  The paper additionally
caps the initial allotment at ``2**19 - P`` (see :func:`max_initial_tasks`)
so that in-flight increments cannot make the claim arithmetic ambiguous.

Epoch semantics (§4.2): epoch values ``0 .. max_epochs-1`` are live; the
all-ones epoch value (3) is the **locked** sentinel — "an epoch index of
anything greater than MAX_EPOCHS signifies that the queue is locked".
The Figure-3 layout expresses the same thing through its valid bit.
"""

from __future__ import annotations

from dataclasses import dataclass

_U64 = (1 << 64) - 1


def _check_field(name: str, value: int, bits: int) -> int:
    if not isinstance(value, int):
        raise TypeError(f"{name} must be int, got {type(value).__name__}")
    if not 0 <= value < (1 << bits):
        raise ValueError(f"{name}={value} does not fit in {bits} bits")
    return value


@dataclass(frozen=True)
class StealViewV1:
    """Decoded Figure-3 stealval."""

    asteals: int
    valid: bool
    itasks: int
    tail: int

    @property
    def locked(self) -> bool:
        """Steals disabled (valid bit clear) — mirrors the epoch layout's
        locked sentinel so damping logic works against either view."""
        return not self.valid


@dataclass(frozen=True)
class StealViewEpoch:
    """Decoded Figure-4 stealval."""

    asteals: int
    epoch: int
    itasks: int
    tail: int

    @property
    def locked(self) -> bool:
        """True when the epoch field carries the locked sentinel."""
        return self.epoch == StealValEpoch.EPOCH_LOCKED


class StealValV1:
    """Codec for the Figure-3 layout: ``asteals:24 | valid:1 | itasks:19 | tail:20``."""

    ASTEAL_BITS = 24
    VALID_BITS = 1
    ITASK_BITS = 19
    TAIL_BITS = 20

    TAIL_SHIFT = 0
    ITASK_SHIFT = TAIL_BITS
    VALID_SHIFT = ITASK_SHIFT + ITASK_BITS
    ASTEAL_SHIFT = VALID_SHIFT + VALID_BITS

    #: Delta a thief adds to claim one steal attempt.
    ASTEAL_UNIT = 1 << ASTEAL_SHIFT

    MAX_ASTEALS = (1 << ASTEAL_BITS) - 1
    MAX_ITASKS = (1 << ITASK_BITS) - 1
    MAX_TAIL = (1 << TAIL_BITS) - 1

    @classmethod
    def pack(cls, asteals: int, valid: bool, itasks: int, tail: int) -> int:
        """Encode fields into a 64-bit word."""
        _check_field("asteals", asteals, cls.ASTEAL_BITS)
        _check_field("itasks", itasks, cls.ITASK_BITS)
        _check_field("tail", tail, cls.TAIL_BITS)
        return (
            (asteals << cls.ASTEAL_SHIFT)
            | (int(bool(valid)) << cls.VALID_SHIFT)
            | (itasks << cls.ITASK_SHIFT)
            | tail
        )

    @classmethod
    def unpack(cls, word: int) -> StealViewV1:
        """Decode a 64-bit word (extra high bits are ignored mod 2^64)."""
        word &= _U64
        return StealViewV1(
            asteals=(word >> cls.ASTEAL_SHIFT) & cls.MAX_ASTEALS,
            valid=bool((word >> cls.VALID_SHIFT) & 1),
            itasks=(word >> cls.ITASK_SHIFT) & cls.MAX_ITASKS,
            tail=word & cls.MAX_TAIL,
        )

    @classmethod
    def invalid_word(cls) -> int:
        """A stealval advertising no stealable work (valid bit clear)."""
        return cls.pack(0, False, 0, 0)


class StealValEpoch:
    """Codec for the Figure-4 layout: ``asteals:24 | epoch:2 | itasks:19 | tail:19``."""

    ASTEAL_BITS = 24
    EPOCH_BITS = 2
    ITASK_BITS = 19
    TAIL_BITS = 19

    TAIL_SHIFT = 0
    ITASK_SHIFT = TAIL_BITS
    EPOCH_SHIFT = ITASK_SHIFT + ITASK_BITS
    ASTEAL_SHIFT = EPOCH_SHIFT + EPOCH_BITS

    ASTEAL_UNIT = 1 << ASTEAL_SHIFT

    MAX_ASTEALS = (1 << ASTEAL_BITS) - 1
    MAX_ITASKS = (1 << ITASK_BITS) - 1
    MAX_TAIL = (1 << TAIL_BITS) - 1

    #: Epoch sentinel meaning "queue locked / steals disabled".
    EPOCH_LOCKED = (1 << EPOCH_BITS) - 1
    #: Number of usable live epochs (paper: two sufficed to avoid polling).
    MAX_EPOCHS = EPOCH_LOCKED  # epochs 0 .. MAX_EPOCHS-1 are live

    @classmethod
    def pack(cls, asteals: int, epoch: int, itasks: int, tail: int) -> int:
        """Encode fields into a 64-bit word."""
        _check_field("asteals", asteals, cls.ASTEAL_BITS)
        _check_field("epoch", epoch, cls.EPOCH_BITS)
        _check_field("itasks", itasks, cls.ITASK_BITS)
        _check_field("tail", tail, cls.TAIL_BITS)
        return (
            (asteals << cls.ASTEAL_SHIFT)
            | (epoch << cls.EPOCH_SHIFT)
            | (itasks << cls.ITASK_SHIFT)
            | tail
        )

    @classmethod
    def unpack(cls, word: int) -> StealViewEpoch:
        """Decode a 64-bit word (extra high bits are ignored mod 2^64)."""
        word &= _U64
        return StealViewEpoch(
            asteals=(word >> cls.ASTEAL_SHIFT) & cls.MAX_ASTEALS,
            epoch=(word >> cls.EPOCH_SHIFT) & cls.EPOCH_LOCKED,
            itasks=(word >> cls.ITASK_SHIFT) & cls.MAX_ITASKS,
            tail=word & cls.MAX_TAIL,
        )

    @classmethod
    def locked_word(cls) -> int:
        """A stealval with the locked epoch sentinel (steals disabled)."""
        return cls.pack(0, cls.EPOCH_LOCKED, 0, 0)


def max_initial_tasks(npes: int, codec: type = StealValEpoch) -> int:
    """Largest allotment an owner may advertise (paper §4.3: ``2^19 - P``).

    The margin of ``npes`` guarantees that even if every other PE has an
    increment in flight against a freshly exhausted stealval, the asteals
    arithmetic still identifies "no work" unambiguously.
    """
    if npes <= 0:
        raise ValueError(f"npes must be positive, got {npes}")
    return max(1, (1 << codec.ITASK_BITS) - npes)
