"""Shared result types for steal operations."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum


class StealStatus(Enum):
    """Outcome of one steal attempt."""

    STOLEN = "stolen"          #: claimed and copied ``ntasks`` tasks
    EMPTY = "empty"            #: target had no stealable work
    DISABLED = "disabled"      #: target queue locked / steals disabled
    LOCKED_ABORT = "locked"    #: (SDC) gave up waiting for the queue lock
    TIMEOUT = "timeout"        #: a fabric op timed out before claiming work
    ABANDONED = "abandoned"    #: (SWS) claimed tasks unreachable (victim died)


@dataclass
class StealResult:
    """What a steal attempt produced.

    ``records`` holds the raw serialized task records copied from the
    victim (empty for unsuccessful attempts).
    """

    status: StealStatus
    victim: int
    ntasks: int = 0
    records: list[bytes] = field(default_factory=list)

    @property
    def success(self) -> bool:
        """True when at least one task was stolen."""
        return self.status is StealStatus.STOLEN and self.ntasks > 0
