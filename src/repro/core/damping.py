"""Steal damping (paper §4.3).

Every thief tracks, per target, whether the target is in *full-mode*
(steal with the claiming fetch-add) or *empty-mode* (probe first with a
read-only atomic fetch).  A target is demoted to empty-mode when a
claiming attempt finds no work **and** the attempted-steal counter has
overshot the schedule length by more than a threshold — the signature of
many thieves hammering an exhausted queue.  A probe that discovers fresh
work promotes the target back to full-mode.

Damping bounds the growth of the 24-bit asteals field (overflow after
2^24 attempts) and cuts AMO traffic on drained queues; the paper found it
costs nothing when work is plentiful.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from .steal_half import max_steals
from .stealval import StealViewEpoch


class TargetMode(Enum):
    """Per-target damping state."""

    FULL = "full"    #: steal with claiming fetch-add
    EMPTY = "empty"  #: probe read-only first


@dataclass
class DampingStats:
    """Counters for the damping state machine, for the ablation bench."""

    demotions: int = 0
    promotions: int = 0
    probes: int = 0
    probe_aborts: int = 0


class DampingTracker:
    """Thief-side full/empty mode bookkeeping for all potential victims."""

    def __init__(self, npes: int, threshold: int = 4, enabled: bool = True) -> None:
        if threshold < 0:
            raise ValueError(f"threshold must be non-negative, got {threshold}")
        self.npes = npes
        self.threshold = threshold
        self.enabled = enabled
        self._mode: dict[int, TargetMode] = {}
        self.stats = DampingStats()

    def mode(self, target: int) -> TargetMode:
        """Current mode for ``target`` (defaults to full-mode)."""
        if not self.enabled:
            return TargetMode.FULL
        return self._mode.get(target, TargetMode.FULL)

    def note_failed_claim(self, target: int, view: StealViewEpoch) -> None:
        """A claiming fetch-add found no work; maybe demote the target.

        Demotion requires the asteals overshoot beyond the schedule length
        to exceed the threshold (repeated failed claims), per §4.3.
        """
        if not self.enabled or view.locked:
            return
        overshoot = view.asteals - max_steals(view.itasks)
        if overshoot >= self.threshold and self.mode(target) is TargetMode.FULL:
            self._mode[target] = TargetMode.EMPTY
            self.stats.demotions += 1

    def note_probe(self, target: int, has_work: bool) -> None:
        """Record a probe outcome; promote the target if work appeared."""
        self.stats.probes += 1
        if has_work:
            if self._mode.get(target) is TargetMode.EMPTY:
                self._mode[target] = TargetMode.FULL
                self.stats.promotions += 1
        else:
            self.stats.probe_aborts += 1

    def note_success(self, target: int) -> None:
        """A successful steal confirms full-mode."""
        if self._mode.get(target) is TargetMode.EMPTY:
            self._mode[target] = TargetMode.FULL
            self.stats.promotions += 1

    @staticmethod
    def view_has_work(view: StealViewEpoch) -> bool:
        """Does a decoded stealval advertise unclaimed tasks?"""
        if view.locked or view.itasks == 0:
            return False
        return view.asteals < max_steals(view.itasks)
