"""SWS task queue: structured-atomic work stealing (paper §4).

The owner advertises its shared portion through a single packed 64-bit
*stealval* (:mod:`repro.core.stealval`).  A thief's entire
discover-and-claim step is one remote ``fetch_add(1 << 40)``:

* the add increments the attempted-steals counter, atomically claiming
  the next block of the steal-half schedule;
* the fetched old value tells the thief the allotment size, the tail
  slot, and how many blocks were claimed before it — enough to compute
  its block's size and location with no further communication.

A successful steal is three one-sided communications (two blocking):
fetch-add, get of the task block, and a passive non-blocking atomic into
the victim's completion array.  A failed attempt is a single fetch-add.

Completion epochs (§4.2): the owner versions allotments into epochs, each
with its own completion-array row, so *acquire*/*release* need not wait
for in-flight steals — they close the current epoch's record, open the
next epoch (re-initializing its row), and let old completions drain
asynchronously.  Space is reclaimed strictly in claim order by folding
the finished prefix of the oldest outstanding record (Figure 5).

The owner manipulates its own stealval with processor atomics (swap to
lock, store to publish); thieves racing with the swap observe the locked
sentinel in their fetched value and abort, and their stray increments are
obliterated by the owner's publishing store — that is what makes the
lock-free protocol safe.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Generator

from ..fabric.engine import Delay
from ..fabric.errors import FabricTimeoutError, OracleViolation, ProtocolError
from ..shmem.api import ShmemCtx
from .config import QueueConfig
from .results import StealResult, StealStatus
from .steal_half import (
    max_steals,
    schedule,
    schedule_tuple,
    share_half,
    steal_displacement,
    steal_volume,
)
from .stealval import StealValEpoch, max_initial_tasks

META_REGION = "swsq.meta"
COMP_REGION = "swsq.comp"
TASK_REGION = "swsq.tasks"

STEALVAL = 0  # word offset of the stealval within META_REGION

# Stealval field constants, hoisted to module level for the inline decode
# in ``shared_remaining`` (called once per executed task by the worker's
# batch loop — the hottest property in the SWS runtime).
_EPOCH_SHIFT = StealValEpoch.EPOCH_SHIFT
_ITASK_SHIFT = StealValEpoch.ITASK_SHIFT
_ASTEAL_SHIFT = StealValEpoch.ASTEAL_SHIFT
_MAX_ITASKS = StealValEpoch.MAX_ITASKS
_EPOCH_LOCKED = StealValEpoch.EPOCH_LOCKED


@dataclass
class EpochRecord:
    """Owner-side bookkeeping for one allotment epoch.

    ``claims`` is meaningful once the record is closed (the owner swapped
    the stealval away); while open, the live claim count is read from the
    stealval itself.
    """

    epoch: int
    start: int          # absolute index of the allotment's first task
    itasks: int         # advertised allotment size
    claims: int = 0     # settled at close: min(asteals, schedule length)
    folded: int = 0     # steals already folded into the reclaim tail
    open: bool = True


class SwsQueueSystem:
    """Allocates the symmetric regions for every PE's SWS queue."""

    def __init__(self, ctx: ShmemCtx, config: QueueConfig | None = None) -> None:
        self.ctx = ctx
        self.config = config or QueueConfig()
        cfg = self.config
        self.itask_cap = max_initial_tasks(ctx.npes)
        ctx.heap.alloc_words(META_REGION, 1, fill=StealValEpoch.pack(0, 0, 0, 0))
        ctx.heap.alloc_words(COMP_REGION, cfg.max_epochs * cfg.comp_slots)
        ctx.heap.alloc_bytes(TASK_REGION, cfg.qsize * cfg.task_size)

    def handle(self, rank: int) -> "SwsQueue":
        """Owner/thief handle bound to PE ``rank``."""
        return SwsQueue(self, rank)


class SwsQueue:
    """Per-PE handle: owner-side queue ops + the 3-communication steal."""

    driver_family = "sws"

    def __init__(self, system: SwsQueueSystem, rank: int) -> None:
        self.system = system
        self.cfg = system.config
        self.pe = system.ctx.pe(rank)
        self.rank = rank
        # Owner-local bookkeeping (absolute indices; slots are idx % qsize).
        self.head = 0          # next enqueue slot
        self.split = 0         # boundary: shared [tail..split), local [split..head)
        self.reclaim_tail = 0  # everything below is reusable buffer space
        self.epoch = 0
        # Outstanding allotment records, oldest first.  The initial record
        # is the empty epoch-0 allotment the fresh stealval advertises.
        self.records: deque[EpochRecord] = deque([EpochRecord(0, 0, 0)])
        #: Cumulative time the owner spent polling for a free epoch (the
        #: cost the completion-epoch design exists to minimize).
        self.epoch_wait_time = 0.0
        #: Monotone count of stealval publications (oracle: identifies a
        #: publication uniquely even when epoch/itasks/tail repeat).
        self.publications = 0
        # Direct heap views for the owner's own rows.  Reads through a view
        # skip the (pe, region, bounds) checks of the generic heap API; the
        # task-byte view is also written through (byte regions carry no
        # waiters).  All word *mutations* still go through ``self.pe`` so
        # waiter notification semantics are preserved.
        heap = system.ctx.heap
        self._meta = heap.word_view(rank, META_REGION)
        self._comp = heap.word_view(rank, COMP_REGION)
        self._tasks = heap.byte_view(rank, TASK_REGION)
        self._qsize = self.cfg.qsize
        self._tsize = self.cfg.task_size

    # ------------------------------------------------------------------
    # owner-local views
    # ------------------------------------------------------------------
    def _load_stealval(self) -> int:
        return self._meta[STEALVAL]

    @property
    def local_count(self) -> int:
        """Tasks in the local (owner-only) portion."""
        return self.head - self.split

    @property
    def shared_remaining(self) -> int:
        """Unclaimed tasks still advertised in the current allotment."""
        # Inline stealval decode (equivalent to StealValEpoch.unpack, minus
        # the dataclass construction) — this property gates every batch of
        # the worker's execute loop.
        word = self._meta[STEALVAL]
        if (word >> _EPOCH_SHIFT) & _EPOCH_LOCKED == _EPOCH_LOCKED:
            return 0
        itasks = (word >> _ITASK_SHIFT) & _MAX_ITASKS
        asteals = word >> _ASTEAL_SHIFT
        claims = max_steals(itasks)
        if asteals < claims:
            claims = asteals
        return itasks - steal_displacement(itasks, claims)

    @property
    def in_use(self) -> int:
        """Occupied slots, including claimed-but-unreclaimed ones."""
        return self.head - self.reclaim_tail

    @property
    def free_slots(self) -> int:
        """Slots available for enqueueing."""
        return self.cfg.qsize - self.in_use

    def _slot(self, index: int) -> int:
        return index % self.cfg.qsize

    def _record_addr(self, index: int) -> int:
        return self._slot(index) * self.cfg.task_size

    def _comp_offset(self, epoch: int, ordinal: int) -> int:
        return epoch * self.cfg.comp_slots + ordinal

    # ------------------------------------------------------------------
    # owner operations
    # ------------------------------------------------------------------
    def enqueue(self, record: bytes) -> None:
        """Append one serialized task at the head of the local portion."""
        ts = self._tsize
        if len(record) != ts:
            raise ProtocolError(
                f"record of {len(record)} bytes; queue expects {ts}"
            )
        qsize = self._qsize
        if self.head - self.reclaim_tail >= qsize:
            self.progress()
            if self.head - self.reclaim_tail >= qsize:
                raise ProtocolError(
                    f"PE {self.rank}: SWS queue overflow (qsize={qsize})"
                )
        addr = (self.head % qsize) * ts
        self._tasks[addr : addr + ts] = record
        self.head += 1

    def dequeue(self) -> bytes | None:
        """Pop the newest local task (LIFO); ``None`` when local is empty."""
        head = self.head
        if head <= self.split:
            return None
        self.head = head = head - 1
        ts = self._tsize
        addr = (head % self._qsize) * ts
        return bytes(self._tasks[addr : addr + ts])

    def seed(self, records: list[bytes]) -> None:
        """Initial task placement before the run starts."""
        for r in records:
            self.enqueue(r)

    def _close_current(self) -> tuple[int, int]:
        """Lock the stealval and settle the open record.

        Returns ``(rem_start, rem)``: the absolute start and length of the
        current allotment's unclaimed remainder.  Owner-side processor
        atomics only — no communication.
        """
        old = self.pe.local_swap(META_REGION, STEALVAL, StealValEpoch.locked_word())
        view = StealValEpoch.unpack(old)
        rec = self.records[-1]
        if view.locked or not rec.open:
            raise ProtocolError(f"PE {self.rank}: stealval already locked")
        if view.itasks != rec.itasks or view.epoch != rec.epoch:
            raise ProtocolError(
                f"PE {self.rank}: stealval/record mismatch "
                f"({view.itasks},{view.epoch}) vs ({rec.itasks},{rec.epoch})"
            )
        claims = min(view.asteals, max_steals(view.itasks))
        rec.claims = claims
        rec.open = False
        disp = steal_displacement(rec.itasks, claims)
        return rec.start + disp, rec.itasks - disp

    def _open_next(self, start: int, itasks: int) -> Generator:
        """Open the next epoch advertising ``itasks`` tasks from ``start``.

        Polls (with progress folding) until the target epoch slot has no
        outstanding record — the §4.2 acquire-time wait that two epochs
        make rare.
        """
        next_epoch = (self.epoch + 1) % self.cfg.max_epochs
        t0 = self.system.ctx.engine.now
        while any(r.epoch == next_epoch for r in self.records):
            self.progress()
            if not any(r.epoch == next_epoch for r in self.records):
                break
            yield Delay(self.cfg.lock_backoff)
        self.epoch_wait_time += self.system.ctx.engine.now - t0
        # Re-initialize the epoch's completion row before re-enabling steals.
        base = self._comp_offset(next_epoch, 0)
        for i in range(self.cfg.comp_slots):
            self.pe.local_store(COMP_REGION, base + i, 0)
        self.epoch = next_epoch
        self.records.append(EpochRecord(next_epoch, start, itasks))
        self.publications += 1
        self.pe.local_store(
            META_REGION,
            STEALVAL,
            StealValEpoch.pack(0, next_epoch, itasks, self._slot(start)),
        )

    def release(self) -> Generator:
        """Expose half of the local portion to thieves (paper §4.1).

        Closes the current allotment (folding any unclaimed remainder into
        the new one) and opens the next epoch.  Returns the number of
        newly exposed tasks.
        """
        rem_start, rem = self._close_current()
        nshare = share_half(self.local_count)
        cap = min(self.system.itask_cap, self.cfg.qsize)
        nshare = max(0, min(nshare, cap - rem))
        self.split += nshare
        yield from self._open_next(rem_start, rem + nshare)
        return nshare

    def acquire(self) -> Generator:
        """Move half of the unclaimed remainder into the local portion.

        Steals are disabled (locked sentinel) for the duration; in-flight
        claimed steals keep draining into their epoch's completion row.
        Returns the number of tasks reacquired.
        """
        rem_start, rem = self._close_current()
        ntake = share_half(rem)
        self.split -= ntake
        if self.split < rem_start + (rem - ntake):
            raise ProtocolError(f"PE {self.rank}: acquire moved split below allotment")
        yield from self._open_next(rem_start, rem - ntake)
        return ntake

    def progress(self) -> int:
        """Fold finished steals (oldest first) to reclaim buffer space.

        Walks the outstanding records in claim order; a record's steal
        ``i`` is finished once its completion slot equals the schedule's
        volume for ``i``.  Folding stops at the first still-claimed block
        (Figure 5: a claimed block pins everything behind it).  Returns
        the number of task slots reclaimed.
        """
        reclaimed = 0
        comp = self._comp
        comp_slots = self.cfg.comp_slots
        while self.records:
            rec = self.records[0]
            if rec.open:
                word = self._meta[STEALVAL]
                if (word >> _EPOCH_SHIFT) & _EPOCH_LOCKED == _EPOCH_LOCKED:
                    raise ProtocolError(
                        f"PE {self.rank}: open record but stealval locked"
                    )
                claims = min(word >> _ASTEAL_SHIFT, max_steals(rec.itasks))
            else:
                claims = rec.claims
            vols = schedule_tuple(rec.itasks)
            base = rec.epoch * comp_slots
            while rec.folded < claims:
                expected = vols[rec.folded]
                got = comp[base + rec.folded]
                if got == 0:
                    break
                if got != expected:
                    raise ProtocolError(
                        f"PE {self.rank}: completion slot {rec.folded} of epoch "
                        f"{rec.epoch} holds {got}, expected {expected}"
                    )
                self.reclaim_tail += expected
                rec.folded += 1
                reclaimed += expected
            # A closed, fully folded record is done; the deque may go
            # empty transiently while release/acquire reopens the queue.
            if not rec.open and rec.folded == claims:
                self.records.popleft()
                continue
            break
        return reclaimed

    # ------------------------------------------------------------------
    # thief operations
    # ------------------------------------------------------------------
    def steal(self, victim: int) -> Generator:
        """Full-mode steal: fetch-add claim, task copy, passive completion.

        Yields fabric requests; returns a :class:`StealResult`.
        """
        if victim == self.rank:
            raise ProtocolError("a PE cannot steal from itself")
        pe = self.pe
        # (1) discover AND claim in one atomic round trip
        old = yield pe.atomic_fetch_add(
            victim, META_REGION, STEALVAL, StealValEpoch.ASTEAL_UNIT
        )
        view = StealValEpoch.unpack(old)
        if view.locked:
            return StealResult(StealStatus.DISABLED, victim)
        ntasks = steal_volume(view.itasks, view.asteals)
        if ntasks == 0:
            return StealResult(StealStatus.EMPTY, victim)
        disp = steal_displacement(view.itasks, view.asteals)
        # (2) copy the claimed block (start computed locally, §4 example).
        # The claim already happened, so under fault injection a timed-out
        # get is retried rather than surfaced: giving up here would leak
        # claimed tasks.  Only when the victim's memory is truly gone
        # (retries exhausted — it fail-stopped) is the block abandoned.
        data = None
        for attempt in range(self.cfg.steal_fetch_retries + 1):
            try:
                data = yield from self._fetch_block(victim, view.tail + disp, ntasks)
                break
            except FabricTimeoutError:
                if attempt == self.cfg.steal_fetch_retries:
                    # No completion notification: the claimed records must
                    # stay pinned in the (dead) victim's buffer.
                    return StealResult(StealStatus.ABANDONED, victim, ntasks)
        # (3) passive completion notification into this epoch's row
        yield from self._notify_completion(
            victim, self._comp_offset(view.epoch, view.asteals), ntasks
        )
        ts = self.cfg.task_size
        records = [data[i * ts : (i + 1) * ts] for i in range(ntasks)]
        return StealResult(StealStatus.STOLEN, victim, ntasks, records)

    def _notify_completion(self, victim: int, offset: int, ntasks: int) -> Generator:
        """Deliver the completion count into the victim's COMP row.

        Reliable fabric: the paper's passive non-blocking atomic.  Fault
        mode: the victim's epoch turnover *waits* on this word, so one
        dropped non-blocking add would wedge it forever — use an acked
        fetch-add instead, retried on timeout ("timed out implies never
        applied" keeps the count exact).  Exhausting the retries means
        the victim fail-stopped; its queue dies with it.
        """
        if self.system.ctx.faults is None:
            yield self.pe.atomic_add_nb(victim, COMP_REGION, offset, ntasks)
            return
        for _attempt in range(self.cfg.steal_fetch_retries + 1):
            try:
                yield self.pe.atomic_fetch_add(victim, COMP_REGION, offset, ntasks)
                return
            except FabricTimeoutError:
                continue

    def probe(self, victim: int) -> Generator:
        """Empty-mode probe (steal damping, §4.3): read-only atomic fetch.

        Returns the decoded stealval view; costs a single communication
        and never claims work.
        """
        word = yield self.pe.atomic_fetch(victim, META_REGION, STEALVAL)
        return StealValEpoch.unpack(word)

    def _fetch_block(self, victim: int, start_slot: int, ntasks: int) -> Generator:
        """Blocking copy of ``ntasks`` records from the victim's buffer."""
        ts = self.cfg.task_size
        qsize = self.cfg.qsize
        slot = start_slot % qsize
        if slot + ntasks <= qsize:
            data = yield self.pe.get_bytes(victim, TASK_REGION, slot * ts, ntasks * ts)
            return data
        first = qsize - slot
        part1 = yield self.pe.get_bytes(victim, TASK_REGION, slot * ts, first * ts)
        part2 = yield self.pe.get_bytes(victim, TASK_REGION, 0, (ntasks - first) * ts)
        return part1 + part2

    # ------------------------------------------------------------------
    # debugging / validation
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Owner-visible state as a plain dict (debugging/analysis).

        Includes the decoded live stealval, index positions, and one
        entry per outstanding allotment record.
        """
        view = StealValEpoch.unpack(self._load_stealval())
        return {
            "rank": self.rank,
            "head": self.head,
            "split": self.split,
            "reclaim_tail": self.reclaim_tail,
            "local_count": self.local_count,
            "shared_remaining": self.shared_remaining,
            "free_slots": self.free_slots,
            "epoch": self.epoch,
            "stealval": {
                "asteals": view.asteals,
                "epoch": view.epoch,
                "itasks": view.itasks,
                "tail": view.tail,
                "locked": view.locked,
            },
            "records": [
                {
                    "epoch": r.epoch,
                    "start": r.start,
                    "itasks": r.itasks,
                    "claims": r.claims,
                    "folded": r.folded,
                    "open": r.open,
                }
                for r in self.records
            ],
        }

    # ------------------------------------------------------------------
    # schedule-exploration oracle hooks (repro.runtime.oracle)
    # ------------------------------------------------------------------
    def oracle_comp_words(self) -> list[int]:
        """All completion-array words, bulk-read for transition tracking."""
        n = self.cfg.max_epochs * self.cfg.comp_slots
        return self.system.ctx.heap.load_words(self.rank, COMP_REGION, 0, n)

    def oracle_comp_expected(self) -> dict[int, int]:
        """Legal nonzero value per completion offset, from live records.

        Only offsets belonging to an outstanding allotment record may be
        written; slot ``j`` of a record's row may only ever hold the
        steal-half schedule's volume for steal ``j``.  Anything else —
        including a doubled value from two thieves claiming the same
        block — is a protocol violation.
        """
        expected: dict[int, int] = {}
        for rec in self.records:
            for j, vol in enumerate(schedule(rec.itasks)):
                expected[self._comp_offset(rec.epoch, j)] = vol
        return expected

    def oracle_check(self) -> None:
        """Per-event invariants, valid at *any* event boundary.

        Unlike :meth:`invariants` (end-of-run strictness), this tolerates
        the mid-management window where the stealval is locked and no
        record is open — but everything it does assert must hold after
        every single engine event.
        """
        if not (self.reclaim_tail <= self.split <= self.head):
            raise OracleViolation(
                "sws-index-order",
                f"reclaim={self.reclaim_tail} split={self.split} head={self.head}",
                pe=self.rank,
            )
        if self.head - self.reclaim_tail > self.cfg.qsize:
            raise OracleViolation(
                "sws-capacity",
                f"in_use={self.head - self.reclaim_tail} > qsize={self.cfg.qsize}",
                pe=self.rank,
            )
        if sum(r.open for r in self.records) > 1:
            raise OracleViolation(
                "sws-records", "more than one open allotment record", pe=self.rank
            )
        view = StealValEpoch.unpack(self._load_stealval())
        open_rec = self.records[-1] if self.records and self.records[-1].open else None
        if view.locked:
            if open_rec is not None:
                raise OracleViolation(
                    "sws-locked-open",
                    "stealval locked while a record is open", pe=self.rank,
                )
            if view.itasks or view.tail:
                raise OracleViolation(
                    "sws-locked-fields",
                    f"locked stealval carries itasks={view.itasks} "
                    f"tail={view.tail}", pe=self.rank,
                )
            return
        if open_rec is None:
            raise OracleViolation(
                "sws-unlocked-closed",
                "stealval live but no open allotment record", pe=self.rank,
            )
        cap = min(self.system.itask_cap, self.cfg.qsize)
        if view.itasks > cap:
            raise OracleViolation(
                "sws-itasks-range",
                f"advertised itasks={view.itasks} exceeds cap {cap}", pe=self.rank,
            )
        if view.tail >= self.cfg.qsize:
            raise OracleViolation(
                "sws-tail-range",
                f"tail={view.tail} outside qsize={self.cfg.qsize}", pe=self.rank,
            )
        if (view.epoch, view.itasks, view.tail) != (
            open_rec.epoch, open_rec.itasks, self._slot(open_rec.start)
        ):
            raise OracleViolation(
                "sws-stealval-record",
                f"stealval ({view.epoch},{view.itasks},{view.tail}) disagrees "
                f"with open record ({open_rec.epoch},{open_rec.itasks},"
                f"{self._slot(open_rec.start)})", pe=self.rank,
            )
        if open_rec.start + open_rec.itasks != self.split:
            raise OracleViolation(
                "sws-allotment-split",
                f"allotment end {open_rec.start + open_rec.itasks} != "
                f"split {self.split}", pe=self.rank,
            )
        for rec in self.records:
            vols = schedule(rec.itasks)
            claims = rec.claims if not rec.open else len(vols)
            if not (0 <= rec.folded <= claims <= len(vols)):
                raise OracleViolation(
                    "sws-epoch-accounting",
                    f"epoch {rec.epoch}: folded={rec.folded} claims={claims} "
                    f"schedule={len(vols)}", pe=self.rank,
                )

    def invariants(self) -> None:
        """Raise :class:`ProtocolError` on inconsistent owner state."""
        if not (self.reclaim_tail <= self.split <= self.head):
            raise ProtocolError(
                f"PE {self.rank}: index order violated reclaim={self.reclaim_tail} "
                f"split={self.split} head={self.head}"
            )
        if self.head - self.reclaim_tail > self.cfg.qsize:
            raise ProtocolError(f"PE {self.rank}: queue over capacity")
        if not self.records:
            raise ProtocolError(f"PE {self.rank}: no allotment record")
        if sum(r.open for r in self.records) != 1 or not self.records[-1].open:
            raise ProtocolError(f"PE {self.rank}: exactly the newest record must be open")
