"""Steal-half schedule arithmetic (paper §4, worked example).

Given an initial allotment of ``itasks`` shared tasks, successive steals
each take half of the *remaining* allotment (at least one task).  For an
allotment of 150 this yields the paper's sequence::

    {75, 37, 19, 9, 5, 2, 1, 1, 1}

Because the schedule is a pure function of ``(itasks, asteals)``, a thief
that atomically increments the attempted-steal counter can compute — with
no further communication — exactly how many tasks it claimed and where
they start, and the owner can compute the same partition when reclaiming.

The paper approximates the schedule length as ``log2(itasks)``; these
helpers compute it exactly (the sequence is at most ``~2 + log2`` long),
which both sides must agree on for the claim arithmetic to partition the
allotment without gaps or overlap.
"""

from __future__ import annotations

from functools import lru_cache


@lru_cache(maxsize=1 << 15)
def steal_volume(itasks: int, asteals: int) -> int:
    """Tasks claimed by the ``asteals``-th steal (0-indexed) of an allotment.

    Returns 0 when the allotment is already exhausted — i.e. the steal
    attempt found no work.
    """
    if itasks < 0:
        raise ValueError(f"itasks must be non-negative, got {itasks}")
    if asteals < 0:
        raise ValueError(f"asteals must be non-negative, got {asteals}")
    rem = itasks
    for _ in range(asteals):
        if rem == 0:
            return 0
        rem -= max(1, rem // 2)
    return max(1, rem // 2) if rem > 0 else 0


@lru_cache(maxsize=1 << 15)
def steal_displacement(itasks: int, asteals: int) -> int:
    """Tasks claimed by steals *before* the ``asteals``-th one.

    The claimed block of steal ``k`` begins ``steal_displacement(itasks, k)``
    entries past the allotment's tail (paper example: steal #2 of 150
    begins at ``tail + 75 + 37``).
    """
    if itasks < 0:
        raise ValueError(f"itasks must be non-negative, got {itasks}")
    if asteals < 0:
        raise ValueError(f"asteals must be non-negative, got {asteals}")
    rem = itasks
    for _ in range(asteals):
        if rem == 0:
            break
        rem -= max(1, rem // 2)
    return itasks - rem


@lru_cache(maxsize=4096)
def max_steals(itasks: int) -> int:
    """Number of non-empty steals that exhaust an allotment of ``itasks``.

    An attempted-steal counter at or above this value means the allotment
    is fully claimed ("no more work available for stealing").
    """
    if itasks < 0:
        raise ValueError(f"itasks must be non-negative, got {itasks}")
    count = 0
    rem = itasks
    while rem > 0:
        rem -= max(1, rem // 2)
        count += 1
    return count


@lru_cache(maxsize=1 << 15)
def schedule_tuple(itasks: int) -> tuple[int, ...]:
    """The full claim sequence for an allotment, as a cached tuple.

    Hot consumers (the owner's progress fold, oracle expectations) index
    this directly; it must never be mutated — use :func:`schedule` for a
    fresh list.
    """
    out: list[int] = []
    rem = itasks
    while rem > 0:
        vol = max(1, rem // 2)
        out.append(vol)
        rem -= vol
    return tuple(out)


def schedule(itasks: int) -> list[int]:
    """The full claim sequence for an allotment (sums to ``itasks``)."""
    return list(schedule_tuple(itasks))


def share_half(navailable: int) -> int:
    """How many tasks a release/acquire moves across the split point.

    Both queue implementations move half of what is available (rounding
    up, so a single task still moves), per §3/§4.1.
    """
    if navailable < 0:
        raise ValueError(f"navailable must be non-negative, got {navailable}")
    return (navailable + 1) // 2
